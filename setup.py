"""Thin setup.py shim.

The offline environment this project targets has setuptools but not the
``wheel`` package, so PEP 517 editable installs (which build a wheel) fail.
Keeping a ``setup.py`` enables pip's legacy ``develop`` code path:
``pip install -e . --no-build-isolation`` works without network access.
Package metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
