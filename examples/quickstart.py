"""Quickstart: source text -> CFG -> DFG -> analyses -> optimized program.

Run:  python examples/quickstart.py
"""

from repro import (
    build_cfg,
    build_dfg,
    cfg_to_dot,
    dfg_constant_propagation,
    optimize,
    parse_program,
    pretty_expr,
    run_cfg,
    verify_dfg,
)
from repro.core.dfg import CTRL_VAR

SOURCE = """
# The paper's running example (Figure 1): the false arm is dead, so the
# final use of y is the constant 3 -- but only analyses that track dead
# regions can see it.
x := 1;
y := 2;
if (x == 1) {
    y := y + 1;
} else {
    y := 5;
}
print y;
"""


def main() -> None:
    program = parse_program(SOURCE)
    graph = build_cfg(program)
    print(f"CFG: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # The dependence flow graph: def-use chains + control structure.
    dfg = build_dfg(graph)
    verify_dfg(graph, dfg)  # Definition 6, edge by edge
    print(f"DFG: {dfg.size()} dependence edges "
          f"({dfg.size(include_control=False)} data, rest control)")
    for port, heads in sorted(dfg.multiedges().items(), key=repr):
        print(f"  multiedge {port} -> {heads}")

    # Forward dataflow on the DFG: possible-paths constant propagation.
    constants = dfg_constant_propagation(graph, dfg)
    print("\nConstants at uses:")
    for (node, var), value in sorted(constants.constant_uses().items()):
        if var != CTRL_VAR:
            print(f"  node {node}: {var} = {value}")
    print(f"Dead statements: {sorted(constants.dead_nodes)}")

    # The full pipeline: propagate, fold, remove dead code, PRE.
    optimized, report = optimize(program)
    print(f"\nOptimized CFG: {optimized.num_nodes} nodes "
          f"(folded {report.constprop.folded_rhs} expressions, "
          f"{report.constprop.folded_branches} branches)")
    print("Remaining computations:",
          [pretty_expr(n.expr) for n in optimized.nodes.values()
           if n.expr is not None])
    print("Program output:", run_cfg(optimized).outputs)

    # Graphviz, if you want to look at it.
    with open("/tmp/quickstart_cfg.dot", "w") as fh:
        fh.write(cfg_to_dot(graph))
    print("\nWrote /tmp/quickstart_cfg.dot (render with: dot -Tpng ...)")


if __name__ == "__main__":
    main()
