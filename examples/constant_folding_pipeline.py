"""Constant propagation, four ways (Section 4 of the paper).

Compares, on inline-expansion-shaped code (the paper's motivating
workload for possible-paths constants):

* def-use chain propagation  -- sparse but all-paths only;
* CFG vector propagation     -- possible-paths, O(EV^2) work;
* DFG propagation            -- possible-paths, O(EV) work;
* SCCP on SSA                -- possible-paths, the SSA-world equivalent.

Run:  python examples/constant_folding_pipeline.py
"""

from repro import (
    WorkCounter,
    build_cfg,
    build_ssa_cytron,
    cfg_constant_propagation,
    defuse_constant_propagation,
    dfg_constant_propagation,
    optimize,
    pretty_program,
    run_cfg,
    sparse_conditional_constant_propagation,
)
from repro.workloads.generators import inline_expansion_program


def main() -> None:
    program = inline_expansion_program(seed=1, calls=6, num_vars=3)
    print("Workload (inlined-call shaped):\n")
    print(pretty_program(program))
    graph = build_cfg(program)

    counters = {name: WorkCounter() for name in ("defuse", "cfg", "dfg", "sccp")}

    chain_result = defuse_constant_propagation(graph, counter=counters["defuse"])
    cfg_result = cfg_constant_propagation(graph, counter=counters["cfg"])
    dfg_result = dfg_constant_propagation(graph, counter=counters["dfg"])
    ssa = build_ssa_cytron(graph)
    sccp_result = sparse_conditional_constant_propagation(
        ssa, counter=counters["sccp"]
    )

    live = set(graph.nodes) - dfg_result.dead_nodes
    rows = [
        ("def-use chains", len({k: v for k, v in
                                chain_result.constant_uses().items()
                                if k[0] in live})),
        ("CFG vectors", len({k: v for k, v in
                             cfg_result.constant_uses().items()
                             if k[0] in live})),
        ("DFG", len(dfg_result.constant_uses())),
        ("SCCP", len(sccp_result.constant_names())),
    ]
    print("constants found (at live uses) and work performed:")
    for (name, found), key in zip(rows, counters):
        print(f"  {name:16s} {found:4d} constants   "
              f"work units: {counters[key].total()}")
    print("\n(def-use chains miss the possible-paths constants: they see "
          "both definitions\nreaching each use, unaware one branch is dead.)")

    optimized, _report = optimize(program)
    print("\nAfter the full pipeline every conditional is decided:")
    print(f"  {graph.num_nodes} nodes -> {optimized.num_nodes} nodes")
    assert run_cfg(graph).outputs == run_cfg(optimized).outputs
    print("  outputs unchanged:", run_cfg(optimized).outputs)


if __name__ == "__main__":
    main()
