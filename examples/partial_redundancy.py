"""Backward dataflow on the DFG: anticipatability and partial redundancy
elimination (Section 5 of the paper).

Walks three classic scenarios -- a diamond with one computing arm, a
repeat-until loop invariant, and the staged example from the paper's
introduction -- showing where computations are inserted and deleted, and
measuring real evaluation counts with the counting interpreter.

Run:  python examples/partial_redundancy.py
"""

from repro import (
    build_cfg,
    dfg_anticipatability,
    eliminate_partial_redundancies,
    epr_all,
    parse_expr,
    parse_program,
    pretty_expr,
    run_cfg,
)
from repro.workloads.suites import section1_example

AB = parse_expr("a + b")


def report(title, graph, transformed, expr, envs):
    print(f"\n== {title} ==")
    print(f"  inserted on edges: {transformed.inserted_edges}")
    print(f"  rewritten (deleted) computations: {transformed.deleted_nodes}")
    for env in envs:
        before = run_cfg(graph, env).eval_counts[expr]
        after = run_cfg(transformed.graph, env).eval_counts[expr]
        arrow = "improved" if after < before else "unchanged"
        print(f"  env {env}: {pretty_expr(expr)} evaluated "
              f"{before} -> {after} times ({arrow})")


def main() -> None:
    # 1. Partially redundant diamond.
    diamond = build_cfg(parse_program(
        "a := p; b := q;\n"
        "if (c) { x := a + b; } else { skip; }\n"
        "y := a + b; print y;"
    ))
    ant = dfg_anticipatability(diamond, AB)
    print("anticipatable (total) on CFG edges:", sorted(ant.ant_edges))
    print("anticipatable (partial) on CFG edges:", sorted(ant.pan_edges))
    result = eliminate_partial_redundancies(diamond, AB, anticipatability=ant)
    report("diamond: computation only on one arm", diamond, result, AB,
           [{"p": 1, "q": 2, "c": 1}, {"p": 1, "q": 2, "c": 0}])

    # 2. Loop-invariant expression in a repeat-until loop.  The back edge
    # is the switch-to-merge critical edge of the paper's Section 5.2
    # discussion; being edge-based, the algorithm just inserts on the
    # loop-entry edge.
    loop = build_cfg(parse_program(
        "a := p; b := q; s := 0;\n"
        "repeat { s := s + (a + b); n := n - 1; } until (n <= 0);\n"
        "print s;"
    ))
    result = eliminate_partial_redundancies(loop, AB)
    report("repeat-until: loop-invariant hoisted to the entry edge",
           loop, result, AB, [{"p": 1, "q": 2, "n": 6}, {"n": 1}])

    # 3. The introduction's staged example: w := a+b is redundant with
    # z := a+b; the second stage (y := w+1 vs x := z+1) needs the copy
    # propagation the paper leaves to "analysis in stages".
    staged = build_cfg(section1_example())
    final, passes = epr_all(staged)
    print("\n== Section 1 staged example ==")
    print("  expressions transformed:",
          [pretty_expr(r.expr) for r in passes])
    before = run_cfg(staged).eval_counts[AB]
    after = run_cfg(final).eval_counts[AB]
    print(f"  a + b evaluated {before} -> {after} times")
    assert run_cfg(staged).outputs == run_cfg(final).outputs


if __name__ == "__main__":
    main()
