"""Arrays in the dependence flow graph (Section 6 / [BJP91]).

An array store ``a[i] := v`` is encoded as the assignment
``a := update(a, i, v)``: it *uses* the old array version and *defines*
the new one.  Output dependences between stores become plain data
dependences on versions, anti-dependences are implicit in the
versioning, and redundant-load elimination is just PRE of the load
expression.

Run:  python examples/array_dependences.py
"""

from repro import (
    build_cfg,
    build_dfg,
    eliminate_partial_redundancies,
    parse_expr,
    parse_program,
    run_cfg,
    verify_dfg,
)
from repro.core.dfg import PortKind
from repro.lang.ast_nodes import Update

SOURCE = """
a[0] := base;
a[1] := base * 2;
x := a[0];
if (p > 0) {
    a[1] := x + 5;
}
y := a[0];
z := a[0];
print x + y + z;
"""


def main() -> None:
    graph = build_cfg(parse_program(SOURCE))
    dfg = build_dfg(graph)
    verify_dfg(graph, dfg)

    stores = [n for n in graph.assign_nodes() if isinstance(n.expr, Update)]
    print(f"{len(stores)} stores lowered to array := update(array, i, v)\n")

    print("array version chain (who consumes each store's version):")
    for store in stores:
        from repro.core.dfg import Port

        port = Port(PortKind.DEF, "a", store.id)
        heads = dfg.heads_of(port)
        print(f"  store@{store.id} ({store.expr.index and ''}index "
              f"{store.expr.index}) -> {heads}")

    # The conditional store means loads after the if read the *merge* of
    # the two possible versions:
    y_load = [
        n for n in graph.assign_nodes() if n.target == "y"
    ][0]
    print(f"\nload y := a[0] is fed by: {dfg.use_sources[(y_load.id, 'a')]}")

    # Redundant-load elimination = PRE of the load expression.
    load = parse_expr("a[0]")
    result = eliminate_partial_redundancies(graph, load)
    env = {"base": 10, "p": 1}
    before = run_cfg(graph, env)
    after = run_cfg(result.graph, env)
    assert before.outputs == after.outputs
    print(f"\nPRE of a[0]: inserted {len(result.inserted_edges)}, "
          f"rewrote {len(result.deleted_nodes)} loads")
    print(f"a[0] evaluated {before.eval_counts[load]} -> "
          f"{after.eval_counts[load]} times "
          f"(outputs unchanged: {after.outputs})")


if __name__ == "__main__":
    main()
