"""Loop-carried dependences and the DOALL test (Section 6's
parallelization extension).

Run:  python examples/parallel_loops.py
"""

from repro import build_cfg, parse_program
from repro.core.loopdeps import analyze_loop_dependences, parallelizable_loops
from repro.graphs.loops import natural_loops

CASES = {
    "elementwise (DOALL)": """
        i := 0;
        while (i < n) { a[i] := b[i] * 2 + c[i]; i := i + 1; }
        print a[0];
    """,
    "stencil a[i] := a[i-1] (carried flow, distance 1)": """
        i := 1;
        while (i < n) { a[i] := a[i - 1] + 1; i := i + 1; }
        print a[4];
    """,
    "shift a[i] := a[i+1] (carried anti, distance 1)": """
        i := 0;
        while (i < n) { a[i] := a[i + 1]; i := i + 1; }
        print a[0];
    """,
    "stride 2 vs offset 1 (independent by parity)": """
        i := 0;
        while (i < n) { a[i] := a[i + 1]; i := i + 2; }
        print a[0];
    """,
    "non-affine index (unknown, assume dependent)": """
        i := 0;
        while (i < n) { a[i * i] := i; x := a[i]; i := i + 1; }
        print x;
    """,
}


def main() -> None:
    for title, source in CASES.items():
        graph = build_cfg(parse_program(source))
        loops = natural_loops(graph)
        (header, body), = loops.items()
        deps = analyze_loop_dependences(graph, header, body)
        verdict = parallelizable_loops(graph)[header]
        print(f"== {title} ==")
        carried = [d for d in deps if d.distance != 0]
        if not carried:
            print("  no loop-carried array dependences")
        for dep in carried:
            dist = "?" if dep.distance is None else dep.distance
            print(
                f"  {dep.kind:6s} on {dep.array}: node {dep.src} -> "
                f"node {dep.dst}, distance {dist} ({dep.direction})"
            )
        print(f"  DOALL parallelizable: {verdict}\n")


if __name__ == "__main__":
    main()
