"""Control structure discovery: cycle equivalence, SESE regions, the
program structure tree, and the factored control dependence graph
(Section 3 of the paper).

Run:  python examples/program_structure.py
"""

from repro import (
    build_cfg,
    build_factored_cdg,
    build_program_structure,
    build_ssa_cytron,
    build_ssa_from_dfg,
    control_dependence_edges,
    parse_program,
)

SOURCE = """
a := 1;
while (a < n) {
    if (a % 2 == 0) {
        b := a * 2;
    } else {
        b := a * 3;
    }
    a := a + b;
}
print a;
"""


def main() -> None:
    graph = build_cfg(parse_program(SOURCE))
    structure = build_program_structure(graph)

    print("cycle-equivalence classes (edges in dominance order):")
    for cls, edges in sorted(structure.classes.items()):
        described = ", ".join(
            f"e{eid}({graph.edge(eid).src}->{graph.edge(eid).dst})"
            for eid in edges
        )
        print(f"  class {cls}: {described}")

    print("\ncanonical SESE regions and their nesting (the PST):")

    def walk(region, indent):
        defines = ", ".join(sorted(structure.defs_in(region))) or "-"
        print(f"{'  ' * indent}[e{region.entry} .. e{region.exit}] "
              f"defines: {defines}")
        for child in sorted(region.children, key=lambda r: r.entry):
            walk(child, indent + 1)

    for root in sorted(structure.roots, key=lambda r: r.entry):
        walk(root, 1)

    # The factored CDG answers control-dependence-equivalence queries in
    # O(1) without ever materializing dependence sets...
    factored = build_factored_cdg(graph)
    print(f"\nfactored CDG: {factored.num_classes} classes over "
          f"{graph.num_edges} edges")

    # ...whereas the standard construction pays for the full sets:
    dense = control_dependence_edges(graph)
    total = sum(len(s) for s in dense.values())
    print(f"standard CDG: {total} (edge, controlling-edge) entries")

    # And SSA falls out of the DFG with no dominance computation at all.
    from_dfg = build_ssa_from_dfg(graph)
    cytron = build_ssa_cytron(graph, pruned=True)
    assert from_dfg.phi_placement() == cytron.phi_placement()
    print(f"\nSSA via DFG == pruned Cytron SSA: "
          f"{len(from_dfg.all_phis())} phi-functions at "
          f"{sorted({n for n, _ in from_dfg.phi_placement()})}")


if __name__ == "__main__":
    main()
