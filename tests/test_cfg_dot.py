"""Satellite S3: coverage for the Graphviz renderer -- golden DOT
output, custom labels/edge notes, and the ``node_attrs`` hook the lint
``--dot`` annotation mode is built on.

Regenerate the golden after an intentional rendering change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_cfg_dot.py
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.cfg.builder import build_cfg
from repro.cfg.dot import cfg_to_dot
from repro.cfg.graph import NodeKind
from repro.lang.parser import parse_program

GOLDEN_DIR = Path(__file__).parent / "golden"

SOURCE = 'x := 1;\nif (x > 0) { y := x + 2; } else { y := 3; }\nprint y;\n'


def graph():
    return build_cfg(parse_program(SOURCE))


def test_dot_matches_golden():
    text = cfg_to_dot(graph())
    path = GOLDEN_DIR / "cfg_sample.dot"
    if os.environ.get("REGEN_GOLDEN"):
        path.write_text(text)
    assert text == path.read_text(), "cfg_sample.dot drifted"


def test_dot_basic_shape():
    g = graph()
    text = cfg_to_dot(g)
    assert text.startswith("digraph cfg {")
    assert text.rstrip().endswith("}")
    # One node line per CFG node, one edge line per CFG edge.
    assert text.count("[label=") - text.count("->") == len(g.nodes) - sum(
        1 for eid in g.edges
        if not g.edge(eid).label  # unlabeled edges render bare
    )
    for nid in g.nodes:
        assert f"n{nid} [" in text
    # Statement labels come from the pretty-printer.
    assert '"x := 1"' in text and '"print y"' in text
    # Branch edges carry their T/F labels.
    assert '[label="T"]' in text and '[label="F"]' in text


def test_dot_shapes_by_kind():
    g = graph()
    text = cfg_to_dot(g)
    switches = [n for n in g.nodes if g.node(n).kind is NodeKind.SWITCH]
    assert switches
    for nid in switches:
        line = next(
            ln for ln in text.splitlines() if ln.strip().startswith(f"n{nid} ")
        )
        assert "shape=diamond" in line


def test_dot_custom_name_and_labels():
    text = cfg_to_dot(
        graph(), name="mygraph", node_label=lambda g, nid: f"<{nid}>"
    )
    assert text.startswith("digraph mygraph {")
    assert '[label="<0>"' in text


def test_dot_edge_notes():
    g = graph()
    eid = sorted(g.edges)[0]
    text = cfg_to_dot(g, edge_notes={eid: "live: x, y"})
    assert "live: x, y" in text


def test_dot_node_attrs_append_inside_brackets():
    g = graph()
    nid = sorted(g.nodes)[2]
    attr = 'style=filled, fillcolor="#f4cccc"'
    text = cfg_to_dot(g, node_attrs={nid: attr})
    line = next(
        ln for ln in text.splitlines() if ln.strip().startswith(f"n{nid} ")
    )
    assert line.rstrip().endswith(f"{attr}];")
    # Only the requested node is decorated.
    assert text.count("fillcolor") == 1


def test_dot_escapes_quotes_in_labels():
    g = graph()
    text = cfg_to_dot(g, node_label=lambda g, nid: 'say "hi"')
    assert '\\"hi\\"' in text


def test_dot_is_deterministic():
    assert cfg_to_dot(graph()) == cfg_to_dot(graph())
