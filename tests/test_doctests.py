"""Run the doctest examples embedded in the public modules, so the
docstring snippets stay executable as the API evolves."""

import doctest

import pytest

import repro.cfg.builder
import repro.cfg.graph
import repro.cfg.interp
import repro.lang.interp
import repro.lang.lexer
import repro.lang.parser
import repro.lang.pretty
import repro.lint.engine
import repro.pipeline.manager
import repro.ssa.destruct
import repro.util.counters
import repro.util.metrics

MODULES = [
    repro.cfg.builder,
    repro.cfg.graph,
    repro.cfg.interp,
    repro.lang.interp,
    repro.lang.lexer,
    repro.lang.parser,
    repro.lang.pretty,
    repro.lint.engine,
    repro.pipeline.manager,
    repro.ssa.destruct,
    repro.util.counters,
    repro.util.metrics,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tried = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert failures == 0
    assert tried > 0, f"{module.__name__} lost its doctest examples"
