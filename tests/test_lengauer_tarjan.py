"""Lengauer-Tarjan vs Cooper-Harvey-Kennedy: two independent dominator
implementations must agree everywhere."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.graphs.dominance import cfg_dominators, cfg_postdominators
from repro.graphs.lengauer_tarjan import (
    cfg_dominators_lt,
    cfg_postdominators_lt,
    lengauer_tarjan,
)
from repro.workloads.generators import irreducible_program, random_program
from repro.workloads.ladders import diamond_chain, loop_nest


def assert_same_tree(a, b, graph):
    for nid in graph.nodes:
        assert a.idom_of(nid) == b.idom_of(nid), nid


@given(st.integers(min_value=0, max_value=800))
@settings(max_examples=40, deadline=None)
def test_agrees_with_iterative_on_random_programs(seed):
    g = build_cfg(random_program(seed, size=15, num_vars=3))
    assert_same_tree(cfg_dominators(g), cfg_dominators_lt(g), g)
    assert_same_tree(cfg_postdominators(g), cfg_postdominators_lt(g), g)


def test_agrees_on_irreducible_graphs():
    for seed in range(8):
        g = build_cfg(irreducible_program(seed))
        assert_same_tree(cfg_dominators(g), cfg_dominators_lt(g), g)


def test_agrees_on_ladders():
    for prog in (diamond_chain(20), loop_nest(5, width=2)):
        g = build_cfg(prog)
        assert_same_tree(cfg_dominators(g), cfg_dominators_lt(g), g)
        assert_same_tree(cfg_postdominators(g), cfg_postdominators_lt(g), g)


def test_simple_diamond():
    g = {0: [1, 2], 1: [3], 2: [3], 3: []}
    preds = {0: [], 1: [0], 2: [0], 3: [1, 2]}
    tree = lengauer_tarjan(0, lambda n: g[n], lambda n: preds[n])
    assert tree.idom_of(0) is None
    assert tree.idom_of(1) == 0
    assert tree.idom_of(2) == 0
    assert tree.idom_of(3) == 0


def test_classic_lt_example():
    """The worked example from the Lengauer-Tarjan paper (Figure 1 shape):
    cross and back edges that force nontrivial semidominators."""
    succs = {
        "R": ["A", "B", "C"],
        "A": ["D"],
        "B": ["A", "D", "E"],
        "C": ["F", "G"],
        "D": ["L"],
        "E": ["H"],
        "F": ["I"],
        "G": ["I", "J"],
        "H": ["E", "K"],
        "I": ["K"],
        "J": ["I"],
        "K": ["R", "I"],
        "L": ["H"],
    }
    preds: dict = {n: [] for n in succs}
    for u, vs in succs.items():
        for v in vs:
            preds[v].append(u)
    tree = lengauer_tarjan("R", lambda n: succs[n], lambda n: preds[n])
    expected = {
        "R": None, "A": "R", "B": "R", "C": "R", "D": "R", "E": "R",
        "F": "C", "G": "C", "H": "R", "I": "R", "J": "G", "K": "R",
        "L": "D",
    }
    for node, idom in expected.items():
        assert tree.idom_of(node) == idom, node


def test_unreachable_predecessors_ignored():
    succs = {0: [1], 1: [2], 2: [], 9: [2]}  # 9 unreachable
    preds = {0: [], 1: [0], 2: [1, 9], 9: []}
    tree = lengauer_tarjan(0, lambda n: succs[n], lambda n: preds[n])
    assert tree.idom_of(2) == 1
    assert 9 not in tree.idom
