"""Unit tests for the metamorphic mutators (PR 5).

Each preserving mutator must (a) actually preserve I/O behaviour on
executable programs, (b) be deterministic for a fixed seed, and (c) not
mutate the input program in place.  The planted mutator must produce a
mutant that *observably differs* under the probe environments -- that is
the construction that makes planted recall 1.0 a theorem, not a hope.
"""

from __future__ import annotations

import random

import pytest

from repro.cfg.builder import build_cfg
from repro.fuzz.harness import derive_seed, trial_context
from repro.fuzz.mutators import MUTATORS, copy_program
from repro.fuzz.oracles import _run_outputs
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.workloads.generators import random_program

PRESERVING = [name for name in MUTATORS if name != "plant-miscompile"]


def _context(program, seed, name):
    return trial_context(program, build_cfg(program), seed, name, family="random")


def _outputs(program_or_graph, envs):
    graph = (
        program_or_graph
        if hasattr(program_or_graph, "nodes")
        else build_cfg(program_or_graph)
    )
    return [_run_outputs(graph, env, 50_000, 10**12) for env in envs]


@pytest.mark.parametrize("name", PRESERVING)
def test_preserving_mutators_preserve_io(name):
    applied = 0
    for seed in range(12):
        program = random_program(seed, size=16, num_vars=4)
        context = _context(program, seed, name)
        mutation = MUTATORS[name](program, random.Random(seed), context)
        if not mutation.applied:
            continue
        mutant = mutation.program if mutation.program is not None else mutation.graph
        applied += 1
        base = _outputs(program, context["envs"])
        got = _outputs(mutant, context["envs"])
        if name == "opt-roundtrip":
            # DCE may remove work that trapped in the base program; a
            # base trap makes that environment inconclusive (same rule
            # as the io oracle's trap tolerance for this mutator).
            pairs = [(b, g) for b, g in zip(base, got) if b[0] != "trap"]
            assert all(b == g for b, g in pairs), f"seed {seed}"
        else:
            assert got == base, f"{name} changed behaviour at seed {seed}"
    assert applied >= 4, f"{name} almost never applies"


@pytest.mark.parametrize("name", list(MUTATORS))
def test_mutators_deterministic_and_pure(name):
    for seed in (0, 3):
        program = random_program(seed, size=16, num_vars=4)
        pristine = pretty_program(copy_program(program))
        context = _context(program, seed, name)
        first = MUTATORS[name](program, random.Random(seed), context)
        again = MUTATORS[name](program, random.Random(seed), context)
        assert pretty_program(program) == pristine, f"{name} mutated its input"
        assert first.applied == again.applied
        assert first.detail == again.detail
        if first.program is not None:
            assert pretty_program(first.program) == pretty_program(again.program)


def test_plant_miscompile_is_observable_by_construction():
    planted = 0
    for seed in range(10):
        program = random_program(seed, size=16, num_vars=4)
        context = _context(program, seed, "plant-miscompile")
        mutation = MUTATORS["plant-miscompile"](
            program, random.Random(seed), context
        )
        if not mutation.applied:
            continue
        planted += 1
        assert mutation.kind == "planted"
        assert _outputs(mutation.program, context["envs"]) != _outputs(
            program, context["envs"]
        ), f"planted mutant at seed {seed} is not observable"
    assert planted >= 5


def test_plant_miscompile_skips_non_executable():
    program = random_program(0, size=16, num_vars=4)
    context = dict(_context(program, 0, "plant-miscompile"), executable=False)
    mutation = MUTATORS["plant-miscompile"](program, random.Random(0), context)
    assert not mutation.applied


def test_reorder_respects_dependences():
    # x:=1; y:=x is def-use dependent and must never swap; the two
    # independent assignments around it may.
    program = parse_program("a := p + 1; b := q + 2; x := a; print x;")
    for seed in range(20):
        context = _context(program, seed, "reorder")
        mutation = MUTATORS["reorder"](program, random.Random(seed), context)
        if not mutation.applied:
            continue
        body = mutation.program.body
        names = [getattr(s, "target", None) for s in body]
        assert names.index("x") > names.index("a")
        assert names.index("x") < len(body) - 1  # print stays last


def test_region_wrap_drops_region_expectation_on_jump_programs():
    from repro.workloads.generators import random_jump_program

    jumpy = random_jump_program(3)
    straight = random_program(0, size=12, num_vars=3)
    for seed in range(6):
        mutated = MUTATORS["region-wrap"](
            jumpy, random.Random(seed), _context(jumpy, seed, "region-wrap")
        )
        if mutated.applied:
            assert "regions_nondecrease" not in mutated.expectations
        mutated = MUTATORS["region-wrap"](
            straight,
            random.Random(seed),
            _context(straight, seed, "region-wrap"),
        )
        if mutated.applied:
            assert "regions_nondecrease" in mutated.expectations


def test_derive_seed_is_stable():
    assert derive_seed(0, "x:reorder") == derive_seed(0, "x:reorder")
    assert derive_seed(0, "x:reorder") != derive_seed(1, "x:reorder")
    assert derive_seed(0, "x:reorder") != derive_seed(0, "y:reorder")
