"""Pretty-printer tests, including the parse/pretty round-trip property."""

from hypothesis import given, settings

from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import pretty_expr, pretty_program

import strategies


def test_minimal_parentheses():
    assert pretty_expr(parse_expr("a + b * c")) == "a + b * c"
    assert pretty_expr(parse_expr("(a + b) * c")) == "(a + b) * c"


def test_left_associative_needs_parens_on_right():
    assert pretty_expr(parse_expr("a - (b - c)")) == "a - (b - c)"
    assert pretty_expr(parse_expr("(a - b) - c")) == "a - b - c"


def test_unary_rendering():
    assert pretty_expr(parse_expr("-x + 1")) == "-x + 1"
    assert pretty_expr(parse_expr("-(x + 1)")) == "-(x + 1)"
    assert pretty_expr(parse_expr("!(a && b)")) == "!(a && b)"


def test_program_rendering_structure():
    src = "x := 1;\nif (x) {\n    y := 2;\n} else {\n    y := 3;\n}\n"
    assert pretty_program(parse_program(src)) == src


def test_repeat_and_label_rendering():
    src = "label L:\nrepeat {\n    x := x - 1;\n} until (x <= 0);\ngoto L;\n"
    assert pretty_program(parse_program(src)) == src


@given(strategies.exprs())
@settings(max_examples=200)
def test_expr_round_trip(expr):
    assert parse_expr(pretty_expr(expr)) == expr


@given(strategies.programs())
@settings(max_examples=100)
def test_program_round_trip(program):
    text = pretty_program(program)
    assert parse_program(text) == program


@given(strategies.terminating_programs())
@settings(max_examples=50, deadline=None)
def test_generated_program_round_trip(program):
    text = pretty_program(program)
    assert parse_program(text) == program
