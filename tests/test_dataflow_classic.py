"""Classic CFG dataflow tests: definitional oracles for the may-analyses,
execution-trace oracles for the must-analyses."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.cfg.interp import run_cfg
from repro.dataflow.anticipatable import (
    anticipatable_expressions,
    partially_anticipatable_expressions,
)
from repro.dataflow.available import available_expressions
from repro.dataflow.liveness import live_variables
from repro.dataflow.reaching import reaching_definitions
from repro.lang.ast_nodes import expr_vars, is_trivial, subexpressions
from repro.lang.parser import parse_expr, parse_program
from repro.workloads.generators import random_program
from conftest import random_envs


def graph_of(source):
    return build_cfg(parse_program(source))


# -- definitional oracles (blocked reachability) --------------------------------


def oracle_live(graph, eid, var):
    """Live at edge: a use of var is reachable without crossing a def."""
    start = graph.edge(eid).dst
    seen, stack = set(), [start]
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = graph.node(nid)
        if var in node.uses():
            return True
        if var in node.defs():
            continue  # killed; do not look past this node
        stack.extend(graph.succs(nid))
    return False


def oracle_reaches(graph, def_node, var, eid):
    """Definition reaches edge: path from def site to the edge's source
    side without another def of var (walking edges, not nodes)."""
    target = graph.edge(eid)
    seen, stack = set(), [e.id for e in graph.out_edges(def_node)]
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        if cur == target.id:
            return True
        nxt = graph.edge(cur).dst
        node = graph.node(nxt)
        if var in node.defs():
            continue
        stack.extend(e.id for e in graph.out_edges(nxt))
    return False


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=25, deadline=None)
def test_liveness_matches_oracle(seed):
    g = build_cfg(random_program(seed, size=10, num_vars=3))
    live = live_variables(g)
    for eid in g.edges:
        for var in g.variables():
            assert (var in live[eid]) == oracle_live(g, eid, var), (
                seed, eid, var
            )


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=20, deadline=None)
def test_reaching_matches_oracle(seed):
    g = build_cfg(random_program(seed, size=10, num_vars=3))
    reach = reaching_definitions(g)
    for eid in g.edges:
        for var, def_node in reach[eid]:
            if def_node == g.start:
                continue
            assert oracle_reaches(g, def_node, var, eid)
    # Completeness: every def site reaches its own out-edge.
    for node in g.assign_nodes():
        out = g.out_edge(node.id)
        assert (node.target, node.id) in reach[out.id]


def test_reaching_entry_definitions_present():
    g = graph_of("print q;")
    reach = reaching_definitions(g)
    first = g.out_edge(g.start)
    assert ("q", g.start) in reach[first.id]


def test_reaching_kill():
    g = graph_of("x := 1; x := 2; print x;")
    reach = reaching_definitions(g)
    last = g.in_edge(g.end)
    x_defs = {d for d in reach[last.id] if d[0] == "x"}
    assert len(x_defs) == 1


def test_liveness_through_branch():
    g = graph_of("x := 1; if (p) { print x; } else { skip; } y := 2; print y;")
    live = live_variables(g)
    first = g.out_edge(g.start)
    assert "p" in live[first.id]
    x_assign = next(n for n in g.assign_nodes() if n.target == "x")
    assert "x" in live[g.out_edge(x_assign.id).id]
    # x is dead after the conditional.
    y_assign = next(n for n in g.assign_nodes() if n.target == "y")
    assert "x" not in live[g.out_edge(y_assign.id).id]


def test_live_out_parameter():
    g = graph_of("x := 1;")
    dead = live_variables(g)
    live = live_variables(g, live_out=frozenset({"x"}))
    last = g.in_edge(g.end)
    assert "x" not in dead[last.id]
    assert "x" in live[last.id]


# -- availability / anticipatability ------------------------------------------


def test_available_simple_chain():
    g = graph_of("x := a + b; y := a + b;")
    av = available_expressions(g)
    x_assign = next(n for n in g.assign_nodes() if n.target == "x")
    assert parse_expr("a + b") in av[g.out_edge(x_assign.id).id]


def test_available_killed_by_operand_assignment():
    g = graph_of("x := a + b; a := 1; y := a + b;")
    av = available_expressions(g)
    a_assign = next(n for n in g.assign_nodes() if n.target == "a")
    assert parse_expr("a + b") not in av[g.out_edge(a_assign.id).id]


def test_available_requires_all_paths():
    g = graph_of(
        "if (p) { x := a + b; } else { skip; } y := a + b;"
    )
    av = available_expressions(g)
    merge = next(n for n in g.nodes.values() if n.kind is NodeKind.MERGE)
    assert parse_expr("a + b") not in av[g.out_edge(merge.id).id]


def test_self_kill_is_not_available():
    g = graph_of("x := x + 1; print 1;")
    av = available_expressions(g)
    x_assign = next(n for n in g.assign_nodes() if n.target == "x")
    assert parse_expr("x + 1") not in av[g.out_edge(x_assign.id).id]


def test_anticipatable_simple():
    g = graph_of("x := 1; y := a + b;")
    ant = anticipatable_expressions(g)
    first = g.out_edge(g.start)
    assert parse_expr("a + b") in ant[first.id]


def test_anticipatable_blocked_by_operand_def():
    g = graph_of("a := 1; y := a + b;")
    ant = anticipatable_expressions(g)
    first = g.out_edge(g.start)
    assert parse_expr("a + b") not in ant[first.id]
    a_assign = next(n for n in g.assign_nodes() if n.target == "a")
    assert parse_expr("a + b") in ant[g.out_edge(a_assign.id).id]


def test_self_reference_is_anticipatable_on_entry():
    g = graph_of("x := x + 1;")
    ant = anticipatable_expressions(g)
    first = g.out_edge(g.start)
    assert parse_expr("x + 1") in ant[first.id]


def test_ant_requires_all_branches():
    g = graph_of("if (p) { y := a + b; } else { skip; } print y;")
    ant = anticipatable_expressions(g)
    pan = partially_anticipatable_expressions(g)
    first = g.out_edge(g.start)
    assert parse_expr("a + b") not in ant[first.id]
    assert parse_expr("a + b") in pan[first.id]


def test_loop_invariant_is_anticipatable_at_loop_entry():
    g = graph_of(
        "i := 0; while (i < n) { x := a + b; i := i + 1; } print x;"
    )
    ant = anticipatable_expressions(g)
    pan = partially_anticipatable_expressions(g)
    # At the edge entering the loop body (switch T arm) a+b must be ANT.
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    body_edge = g.switch_edge(switch, "T")
    assert parse_expr("a + b") in ant[body_edge.id]
    # At loop entry it is only partially anticipatable (loop may not run).
    i_assign = next(n for n in g.assign_nodes() if n.target == "i" and not n.uses())
    entry = g.out_edge(i_assign.id)
    assert parse_expr("a + b") not in ant[entry.id]
    assert parse_expr("a + b") in pan[entry.id]


def test_pan_contains_ant():
    for seed in range(10):
        g = build_cfg(random_program(seed, size=12, num_vars=3))
        ant = anticipatable_expressions(g)
        pan = partially_anticipatable_expressions(g)
        for eid in g.edges:
            assert ant[eid] <= pan[eid]


# -- execution-trace oracles ---------------------------------------------------


def trace_edges(graph, trace):
    """The edge ids traversed by a node trace."""
    edges = []
    for u, v in zip(trace, trace[1:]):
        candidates = [e for e in graph.out_edges(u) if e.dst == v]
        # With parallel switch arms the labels differ but either edge is
        # consistent for our fact checks (facts agree on parallel arms of
        # identical endpoints only for node-transfer reasons; pick any).
        edges.append(candidates[0].id)
    return edges


def node_computations(node):
    if node.expr is None:
        return frozenset()
    return frozenset(
        e for e in subexpressions(node.expr) if not is_trivial(e)
    )


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=20, deadline=None)
def test_available_holds_on_every_trace(seed):
    """If AV says an expression is available at an edge, then on any real
    execution passing that edge, the expression was computed earlier with
    no operand redefinition in between."""
    prog = random_program(seed, size=10, num_vars=3)
    g = build_cfg(prog)
    av = available_expressions(g)
    for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
        result = run_cfg(g, env)
        eids = trace_edges(g, result.trace)
        computed_since: dict = {}
        for i, eid in enumerate(eids):
            for expr in av[eid]:
                assert computed_since.get(expr), (
                    f"claimed available but never computed: {expr}"
                )
            node = g.node(g.edge(eid).dst)
            for expr in node_computations(node):
                computed_since[expr] = True
            for d in node.defs():
                for expr in list(computed_since):
                    if d in expr_vars(expr):
                        computed_since[expr] = False


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=20, deadline=None)
def test_anticipatable_holds_on_every_trace(seed):
    """If ANT says an expression is anticipatable at an edge, the rest of
    any real execution from that edge computes it before redefining any
    operand."""
    prog = random_program(seed, size=10, num_vars=3)
    g = build_cfg(prog)
    ant = anticipatable_expressions(g)
    for env in random_envs(seed + 1, [f"v{i}" for i in range(4)], count=3):
        result = run_cfg(g, env)
        eids = trace_edges(g, result.trace)
        # Scan backwards: track which expressions will be computed before
        # an operand kill from each position on.
        pending: set = set()
        claims = []
        for eid in reversed(eids):
            node = g.node(g.edge(eid).dst)
            for d in node.defs():
                pending = {
                    e for e in pending if d not in expr_vars(e)
                }
            pending |= node_computations(node)
            claims.append((eid, frozenset(pending)))
        for eid, witnessed in reversed(claims):
            assert ant[eid] <= witnessed, (
                f"ANT at edge {eid} claims more than the trace witnesses"
            )
