"""Loop-carried dependence analysis tests (the Section 6 extension),
including a dynamic oracle that replays the loop and checks every
claimed distance against the addresses actually touched."""

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.cfg.interp import run_cfg
from repro.core.loopdeps import (
    analyze_loop_dependences,
    collect_accesses,
    find_induction_variables,
    parallelizable_loops,
)
from repro.graphs.loops import natural_loops
from repro.lang.ast_nodes import Index, Update
from repro.lang.parser import parse_program


def loop_of(source):
    g = build_cfg(parse_program(source))
    loops = natural_loops(g)
    assert len(loops) == 1, "expected exactly one loop"
    (header, body), = loops.items()
    return g, header, body


STENCIL = """
i := 1;
while (i < n) {
    a[i] := a[i - 1] + 1;
    i := i + 1;
}
print a[4];
"""


def test_induction_variable_detected():
    g, header, body = loop_of(STENCIL)
    ivs = find_induction_variables(g, header, body)
    assert len(ivs) == 1
    assert ivs[0].var == "i" and ivs[0].step == 1


def test_decrementing_induction_variable():
    g, header, body = loop_of(
        "i := n; while (i > 0) { a[i] := 1; i := i - 2; } print a[0];"
    )
    ivs = find_induction_variables(g, header, body)
    assert [(iv.var, iv.step) for iv in ivs] == [("i", -2)]


def test_conditionally_updated_variable_is_not_basic():
    g, header, body = loop_of(
        "i := 0; k := 0; "
        "while (i < n) { if (p) { k := k + 1; } i := i + 1; } print k;"
    )
    ivs = find_induction_variables(g, header, body)
    assert [iv.var for iv in ivs] == ["i"]  # k does not run every iteration


def test_affine_accesses_collected_with_offsets():
    g, header, body = loop_of(STENCIL)
    ivs = find_induction_variables(g, header, body)
    accesses = collect_accesses(g, body, ivs)
    affine = {(a.is_write, a.offset) for a in accesses if a.affine}
    assert (True, 0) in affine  # the store a[i]
    assert (False, -1) in affine  # the load a[i-1]


def test_access_after_increment_is_shifted():
    g, header, body = loop_of(
        "i := 0; while (i < n) { i := i + 1; a[i] := 1; } print a[1];"
    )
    ivs = find_induction_variables(g, header, body)
    accesses = collect_accesses(g, body, ivs)
    store = next(a for a in accesses if a.is_write)
    assert store.offset == 1  # reads i after i := i + 1


def test_stencil_has_flow_dependence_distance_1():
    g, header, body = loop_of(STENCIL)
    deps = analyze_loop_dependences(g, header, body)
    flow = [d for d in deps if d.kind == "flow" and d.distance]
    assert any(d.distance == 1 and d.direction == "<" for d in flow)
    assert parallelizable_loops(g)[header] is False


def test_elementwise_update_is_doall():
    g, header, body = loop_of(
        "i := 0; while (i < n) { a[i] := b[i] * 2; i := i + 1; } print a[0];"
    )
    deps = analyze_loop_dependences(g, header, body)
    assert all(d.distance == 0 for d in deps)
    assert parallelizable_loops(g)[header] is True


def test_read_modify_write_same_element_is_doall():
    g, header, body = loop_of(
        "i := 0; while (i < n) { a[i] := a[i] + 1; i := i + 1; } print a[0];"
    )
    assert parallelizable_loops(g)[header] is True


def test_anti_dependence_detected():
    g, header, body = loop_of(
        "i := 0; while (i < n) { a[i] := a[i + 1]; i := i + 1; } print a[0];"
    )
    deps = analyze_loop_dependences(g, header, body)
    anti = [d for d in deps if d.kind == "anti" and d.distance]
    assert any(d.distance == 1 for d in anti)
    assert parallelizable_loops(g)[header] is False


def test_stride_two_misses_odd_offsets():
    """i stepping by 2: a[i] and a[i+1] never collide (offset parity)."""
    g, header, body = loop_of(
        "i := 0; while (i < n) { a[i] := a[i + 1]; i := i + 2; } print a[0];"
    )
    deps = analyze_loop_dependences(g, header, body)
    carried = [d for d in deps if d.distance not in (0, None)]
    assert carried == []
    assert parallelizable_loops(g)[header] is True


def test_non_affine_index_is_unknown():
    g, header, body = loop_of(
        "i := 0; while (i < n) { a[i * i] := 1; x := a[i]; i := i + 1; } print x;"
    )
    deps = analyze_loop_dependences(g, header, body)
    assert any(d.distance is None and d.direction == "*" for d in deps)
    assert parallelizable_loops(g)[header] is False


def test_different_arrays_are_independent():
    g, header, body = loop_of(
        "i := 0; while (i < n) { a[i] := 1; b[i + 1] := 2; i := i + 1; } print a[0];"
    )
    deps = analyze_loop_dependences(g, header, body)
    cross = [d for d in deps if {d.src, d.dst} != {d.src}]
    for d in deps:
        assert d.array in ("a", "b")
        assert d.distance == 0 or d.kind == "output"
    del cross


# -- dynamic oracle -------------------------------------------------------------


def dynamic_conflicts(graph, env, body):
    """Replay the loop and record (address, iteration, node, is_write) for
    every array access; return the set of observed inter-iteration
    conflict distances per (src node, dst node)."""
    from repro.lang.interp import eval_expr

    trace = run_cfg(graph, env).trace
    header = min(
        (nid for nid in body if graph.node(nid).kind is NodeKind.MERGE),
        default=None,
    )
    iteration = -1
    state = dict(env)
    touched = []  # (array, address, iteration, node, is_write)
    for nid in trace:
        node = graph.node(nid)
        if nid == header:
            iteration += 1
        if node.expr is not None and nid in body:
            from repro.lang.ast_nodes import subexpressions

            for sub in subexpressions(node.expr):
                if isinstance(sub, Index):
                    addr = eval_expr(sub.index, state)
                    touched.append((sub.array, addr, iteration, nid, False))
                elif isinstance(sub, Update):
                    addr = eval_expr(sub.index, state)
                    touched.append((sub.array, addr, iteration, nid, True))
        if node.kind is NodeKind.ASSIGN:
            state[node.target] = eval_expr(node.expr, state)
    conflicts = set()
    for arr1, ad1, t1, n1, w1 in touched:
        for arr2, ad2, t2, n2, w2 in touched:
            if arr1 == arr2 and ad1 == ad2 and (w1 or w2) and t2 >= t1:
                if (t1, n1) != (t2, n2):
                    conflicts.add((n1, n2, t2 - t1))
    return conflicts


def test_claimed_distances_match_execution():
    for src in (
        STENCIL,
        "i := 0; while (i < n) { a[i] := a[i + 1]; i := i + 1; } print a[0];",
        "i := 0; while (i < n) { a[i] := a[i] + 1; i := i + 1; } print a[0];",
        "i := 0; while (i < n) { a[i] := a[i - 2] + 1; i := i + 1; } print a[0];",
    ):
        g, header, body = loop_of(src)
        deps = analyze_loop_dependences(g, header, body)
        observed = dynamic_conflicts(g, {"n": 8}, body)
        claimed = {
            (d.src, d.dst, d.distance) for d in deps if d.distance is not None
        }
        # Every observed inter-iteration conflict must be claimed.
        for n1, n2, dist in observed:
            if dist == 0 and n1 == n2:
                continue
            assert any(
                c[0] == n1 and c[1] == n2 and c[2] == dist for c in claimed
            ) or any(
                d.distance is None and {d.src, d.dst} >= {n1, n2} & {d.src, d.dst}
                for d in deps
            ), (src, (n1, n2, dist), claimed)
