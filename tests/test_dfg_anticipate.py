"""DFG anticipatability tests (Section 5.1, Figures 6 and 7)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.core.anticipate import dfg_anticipatability
from repro.core.build import build_dfg
from repro.core.dfg import HeadKind, Port, PortKind
from repro.dataflow.anticipatable import (
    anticipatable_expressions,
    partially_anticipatable_expressions,
)
from repro.lang.ast_nodes import expr_vars
from repro.lang.parser import parse_expr, parse_program
from repro.workloads import suites
from repro.workloads.generators import irreducible_program, random_program


def graph_of(source_or_prog):
    prog = (
        parse_program(source_or_prog)
        if isinstance(source_or_prog, str)
        else source_or_prog
    )
    return build_cfg(prog)


def cfg_ant_set(g, expr):
    return {eid for eid, s in anticipatable_expressions(g).items() if expr in s}


def cfg_pan_set(g, expr):
    return {
        eid
        for eid, s in partially_anticipatable_expressions(g).items()
        if expr in s
    }


# -- Figure 6: single-variable anticipatability ---------------------------------


def test_figure6_head_values():
    """d4 (the use of x in x*3) is false; d5 and d6 (the computations of
    x+1) are true; the multiedge rule makes the tails true."""
    g = graph_of(suites.figure6())
    expr = parse_expr("x + 1")
    result = dfg_anticipatability(g, expr)
    rel = result.per_var["x"]
    other_use = next(
        n for n in g.assign_nodes() if n.target == "y"
    )  # y := x * 3
    plus_uses = [
        n for n in g.assign_nodes()
        if n.target in ("z", "w")  # z := x + 1 and w := x + 1
    ]
    from repro.core.dfg import Head

    assert rel.ant_heads[Head(HeadKind.USE, other_use.id, "x")] is False
    for node in plus_uses:
        assert rel.ant_heads[Head(HeadKind.USE, node.id, "x")] is True
    # The definition's tail is true: both branches compute x+1.
    x_def = next(n for n in g.assign_nodes() if n.target == "x")
    assert rel.ant_tails[Port(PortKind.DEF, "x", x_def.id)] is True


def test_figure6_projection_covers_def_to_computations():
    """Projection marks every point between the definition of x and the
    two computations of x+1 -- and agrees with the CFG solution."""
    g = graph_of(suites.figure6())
    expr = parse_expr("x + 1")
    result = dfg_anticipatability(g, expr)
    assert result.ant_edges == cfg_ant_set(g, expr)
    x_def = next(n for n in g.assign_nodes() if n.target == "x")
    assert g.out_edge(x_def.id).id in result.ant_edges


def test_figure6_switch_in_requires_both_arms():
    g = graph_of(suites.figure6())
    expr = parse_expr("x + 1")
    result = dfg_anticipatability(g, expr)
    rel = result.per_var["x"]
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    from repro.core.dfg import Head

    head = Head(HeadKind.SWITCH_IN, switch, "x")
    assert rel.ant_heads[head] is True  # x+1 computed on both arms


# -- Figure 7: multivariable anticipatability ------------------------------------


def test_figure7_relative_results_combine():
    """ANT relative to x holds from x's definition on (the x*2 use's head
    is false but the multiedge covers it); relative to y only from y's
    definition; the combination covers exactly the suffix from y's
    definition to the computation (the paper's e5-e7)."""
    g = graph_of(suites.figure7())
    expr = parse_expr("x + y")
    result = dfg_anticipatability(g, expr)
    assert result.ant_edges == cfg_ant_set(g, expr)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    z_def = next(n for n in g.assign_nodes() if n.target == "z")
    assert g.out_edge(y_def.id).id in result.ant_edges
    assert g.in_edge(z_def.id).id in result.ant_edges
    # Before y's definition x+y is not anticipatable.
    w_def = next(n for n in g.assign_nodes() if n.target == "w")
    assert g.in_edge(w_def.id).id not in result.ant_edges
    # ...but it is relative to x alone there (d1/d3 of the figure).
    assert g.in_edge(w_def.id).id in result.per_var["x"].ant_edges


def test_figure7_pan_is_superset_of_ant():
    g = graph_of(suites.figure7())
    result = dfg_anticipatability(g, parse_expr("x + y"))
    assert result.ant_edges <= result.pan_edges


# -- agreement with the CFG formulation ------------------------------------------


@given(st.integers(min_value=0, max_value=600))
@settings(max_examples=30, deadline=None)
def test_ant_sound_wrt_cfg(seed):
    """The projected DFG ANT never claims more than the CFG answer; PAN
    is exact for single-variable expressions (the multivariable
    intersection is a documented over-approximation used only for
    profitability)."""
    g = graph_of(random_program(seed, size=12, num_vars=3))
    for expr in sorted(g.expressions(), key=repr)[:5]:
        if not expr_vars(expr):
            continue
        result = dfg_anticipatability(g, expr)
        assert result.ant_edges <= cfg_ant_set(g, expr)
        if len(expr_vars(expr)) == 1:
            assert result.pan_edges <= cfg_pan_set(g, expr)


def test_ant_on_irreducible_graphs():
    for seed in range(4):
        g = graph_of(irreducible_program(seed))
        for expr in sorted(g.expressions(), key=repr)[:4]:
            if not expr_vars(expr):
                continue
            result = dfg_anticipatability(g, expr)
            assert result.ant_edges <= cfg_ant_set(g, expr)


def test_span_projection_recovers_region_interior():
    """A use of x inside a region makes that dependence's head false, but
    the *span* of the bypassing dependence (definition straight to the
    use after the region) covers the region interior, so projection still
    marks the arm -- here the DFG answer is exact, not conservative."""
    g = graph_of(
        """
        x := a;
        if (c > 0) { w := x * 2; }
        z := x + 1;
        print z + w;
        """
    )
    expr = parse_expr("x + 1")
    result = dfg_anticipatability(g, expr)
    cfg = cfg_ant_set(g, expr)
    assert result.ant_edges == cfg
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    arm = g.switch_edge(switch, "T").id
    assert arm in result.ant_edges


# -- loops -----------------------------------------------------------------------


def test_loop_invariant_expression_ant_inside_loop():
    g = graph_of(
        "a := p; b := q; i := 0; "
        "while (i < n) { s := s + (a + b); i := i + 1; } print s;"
    )
    expr = parse_expr("a + b")
    result = dfg_anticipatability(g, expr)
    assert result.ant_edges == cfg_ant_set(g, expr)
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    assert g.switch_edge(switch, "T").id in result.ant_edges
    assert g.switch_edge(switch, "F").id not in result.ant_edges


def test_killed_in_loop_not_anticipatable_across_it():
    g = graph_of(
        "a := p; b := q; i := 0; "
        "while (i < n) { a := a + 1; i := i + 1; } z := a + b; print z;"
    )
    expr = parse_expr("a + b")
    result = dfg_anticipatability(g, expr)
    assert result.ant_edges == cfg_ant_set(g, expr)
    # Not anticipatable before the loop: the body redefines a.
    from repro.lang.ast_nodes import Var

    a_def = next(
        n for n in g.assign_nodes()
        if n.target == "a" and n.expr == Var("p")
    )
    assert g.out_edge(a_def.id).id not in result.ant_edges


# -- input validation -------------------------------------------------------------


def test_rejects_trivial_and_constant_expressions():
    g = graph_of("x := 1; print x;")
    with pytest.raises(ValueError):
        dfg_anticipatability(g, parse_expr("x"))
    with pytest.raises(ValueError):
        dfg_anticipatability(g, parse_expr("1 + 2"))
