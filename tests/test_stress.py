"""Moderate-scale stress tests: the full stack on graphs one order of
magnitude larger than the unit tests use.  Guards against recursion
blowups and accidental quadratic hot paths."""

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.controldep.sese import ProgramStructure
from repro.core.build import build_dfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import CTRL_VAR
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.workloads.generators import random_program
from repro.workloads.ladders import diamond_chain, loop_nest


def test_large_random_program_full_stack():
    prog = random_program(123, size=400, num_vars=8)
    g = build_cfg(prog)
    assert g.num_nodes > 300
    ps = ProgramStructure(g)
    dfg = build_dfg(g, structure=ps)
    dfg_result = dfg_constant_propagation(g, dfg)
    cfg_result = cfg_constant_propagation(g)
    for key, value in dfg_result.use_values.items():
        if key[1] != CTRL_VAR:
            assert cfg_result.use_values[key] == value
    run_cfg(g, max_steps=500_000)


def test_long_diamond_chain():
    g = build_cfg(diamond_chain(300, num_vars=4))
    ps = ProgramStructure(g)
    assert len(ps.regions) > 300
    dfg = build_dfg(g, structure=ps)
    assert dfg.size() > 0
    dfg_constant_propagation(g, dfg)


def test_deep_loop_nest():
    g = build_cfg(loop_nest(12))
    ps = ProgramStructure(g)
    assert max(r.depth for r in ps.regions) >= 12
    build_dfg(g, structure=ps)
    run_cfg(g, max_steps=500_000)


def test_ssa_constructions_agree_at_scale():
    g = build_cfg(random_program(55, size=250, num_vars=6))
    assert (
        build_ssa_from_dfg(g).phi_placement()
        == build_ssa_cytron(g, pruned=True).phi_placement()
    )


def test_deeply_sequential_program_no_recursion_limit():
    """A 1000-statement straight line: resolution walks must be
    iterative, not recursive."""
    src = "x := 0;\n" + "\n".join(f"x := x + {i};" for i in range(1000))
    src += "\nprint x;"
    from repro.lang.parser import parse_program

    g = build_cfg(parse_program(src))
    dfg = build_dfg(g)
    result = dfg_constant_propagation(g, dfg)
    printer = next(n for n in g.nodes.values() if n.kind.value == "print")
    assert result.use_values[(printer.id, "x")] == sum(range(1000))
