"""Copy propagation via the dependence flow graph, and the staged
pipeline that completes the paper's Section 1 example."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.lang.ast_nodes import BinOp, Var
from repro.lang.parser import parse_expr, parse_program
from repro.opt.copyprop import copy_propagation
from repro.opt.pipeline import optimize
from repro.workloads.generators import random_program
from conftest import random_envs


def graph_of(source):
    return build_cfg(parse_program(source))


def test_simple_copy_propagated():
    g = graph_of("x := y; z := x + 1; print z;")
    stats = copy_propagation(g)
    assert stats.rewritten_uses >= 1
    z_def = next(n for n in g.assign_nodes() if n.target == "z")
    assert z_def.expr == BinOp("+", Var("y"), parse_expr("1"))


def test_copy_chain_propagates_to_origin():
    g = graph_of("a := q; b := a; c := b; print c * 2;")
    copy_propagation(g)
    printer = next(n for n in g.nodes.values() if n.kind.value == "print")
    assert printer.expr == parse_expr("q * 2")


def test_redefined_original_blocks_propagation():
    g = graph_of("x := y; y := 3; z := x + 1; print z;")
    stats = copy_propagation(g)
    z_def = next(n for n in g.assign_nodes() if n.target == "z")
    # y changed between the copy and the use: must keep reading x.
    assert z_def.expr == parse_expr("x + 1")
    del stats


def test_conditional_redefinition_blocks_propagation():
    g = graph_of(
        "x := y; if (p) { y := 3; } z := x + 1; print z;"
    )
    copy_propagation(g)
    z_def = next(n for n in g.assign_nodes() if n.target == "z")
    assert z_def.expr == parse_expr("x + 1")


def test_copy_propagates_into_branch():
    g = graph_of("x := y; if (p) { z := x * 2; print z; } print x;")
    copy_propagation(g)
    z_def = next(n for n in g.assign_nodes() if n.target == "z")
    assert z_def.expr == parse_expr("y * 2")


def test_loop_carried_copy_not_propagated_unsafely():
    g = graph_of(
        "x := y; i := 0; "
        "while (i < n) { z := x + i; y := y + 1; i := i + 1; } print z;"
    )
    copy_propagation(g)
    z_def = next(n for n in g.assign_nodes() if n.target == "z")
    # y changes inside the loop, so x may differ from y there.
    assert z_def.expr == parse_expr("x + i")


def test_self_copy_ignored():
    g = graph_of("x := x; print x;")
    stats = copy_propagation(g)
    assert stats.rewritten_uses == 0


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_copy_propagation_preserves_semantics(seed):
    prog = random_program(seed, size=14, num_vars=3)
    g = build_cfg(prog)
    g2 = g.copy()
    copy_propagation(g2)
    for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
        assert run_cfg(g, env).outputs == run_cfg(g2, env).outputs


# -- the Section 1 staged example, end to end ------------------------------------


def test_section1_staging_eliminates_both_levels():
    """"To deduce that the computation of y is redundant, we must first
    deduce that the computation of w is redundant."  One stage of PRE
    plus copy propagation exposes the second level; the staged pipeline
    eliminates both."""
    prog = parse_program(
        """
        a := p; b := q;
        z := a + b;
        w := a + b;
        x := z + 1;
        y := w + 1;
        print x; print y;
        """
    )
    g = build_cfg(prog)
    optimized, report = optimize(g)
    env = {"p": 3, "q": 4}
    before, after = run_cfg(g, env), run_cfg(optimized, env)
    assert before.outputs == after.outputs
    # Both levels of redundancy gone: each value computed exactly once.
    nontrivial = {
        expr: count for expr, count in after.eval_counts.items() if count
    }
    assert sum(nontrivial.values()) == 2, nontrivial
    assert report.stages_run >= 2
    assert report.copies_propagated > 0


def test_staged_pipeline_is_idempotent_at_fixpoint():
    prog = parse_program("x := p + q; print x;")
    g = build_cfg(prog)
    once, report = optimize(g, stages=5)
    # Nothing redundant: the stage loop must stop after one quiet stage.
    assert report.stages_run == 1
