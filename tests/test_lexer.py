"""Unit tests for the lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


def test_simple_assignment():
    assert kinds_and_texts("x := 1;") == [
        ("ident", "x"),
        ("op", ":="),
        ("int", "1"),
        ("op", ";"),
    ]


def test_keywords_vs_identifiers():
    toks = kinds_and_texts("if ifx while whiley")
    assert toks == [
        ("keyword", "if"),
        ("ident", "ifx"),
        ("keyword", "while"),
        ("ident", "whiley"),
    ]


def test_two_char_operators_are_maximal_munch():
    toks = kinds_and_texts("a <= b == c != d >= e && f || g")
    ops = [text for kind, text in toks if kind == "op"]
    assert ops == ["<=", "==", "!=", ">=", "&&", "||"]


def test_single_char_operators():
    toks = kinds_and_texts("a < b > c ! d")
    ops = [text for kind, text in toks if kind == "op"]
    assert ops == ["<", ">", "!"]


def test_comments_are_skipped():
    toks = kinds_and_texts("x := 1; # a comment := while\ny := 2;")
    texts = [text for _, text in toks]
    assert texts == ["x", ":=", "1", ";", "y", ":=", "2", ";"]


def test_positions_track_lines_and_columns():
    toks = tokenize("x := 1;\n  y := 2;")
    y_tok = next(t for t in toks if t.text == "y")
    assert (y_tok.line, y_tok.column) == (2, 3)


def test_eof_token_present():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind == "eof"


def test_numbers_are_single_tokens():
    toks = kinds_and_texts("x := 1234567;")
    assert ("int", "1234567") in toks


def test_underscored_identifiers():
    toks = kinds_and_texts("_tmp1 := fuel_0;")
    assert toks[0] == ("ident", "_tmp1")
    assert ("ident", "fuel_0") in toks


def test_unknown_character_raises_with_position():
    with pytest.raises(LexError) as info:
        tokenize("x := 1;\ny := @;")
    assert info.value.line == 2
    assert "@" in str(info.value)
