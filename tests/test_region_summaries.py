"""The PR-6 tentpole contract: hierarchical region-summary solving is
*byte-identical* to the flat bitset solver and to the generic-solver
``*_reference`` oracles on the four core analyses.

Bitvector frameworks are distributive, so summarizing a region as a
composed ``(gen, kill)`` transfer function and applying it to the real
boundary fact must reproduce the flat fixpoint exactly -- every
divergence is a bug in the system construction or the solve, never a
precision trade-off.  The sweep covers the same seeded 204-program
population as the perf-equivalence suite (structured random,
irreducible, ``goto`` soup, ladder families) plus hypothesis-generated
programs (which include infinite loops); dissolution is *tolerated*
(the solve must stay exact through it) but asserted absent outside the
``goto`` family, where unresolvable jump edges are the one known
source.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.cfg.builder import build_cfg
from repro.dataflow.anticipatable import anticipatable_expressions_reference
from repro.dataflow.available import available_expressions_reference
from repro.dataflow.liveness import live_variables_reference
from repro.dataflow.reaching import reaching_definitions_reference
from repro.perf.bitset import solve_bitset
from repro.perf.csr import build_csr
from repro.regions.edits import EditSession
from repro.regions.hierarchical import (
    build_region_systems,
    core_problems,
    solve_hierarchical,
)
from repro.regions.parallel import parallel_summaries
from repro.workloads.generators import (
    irreducible_program,
    random_jump_program,
    random_program,
)
from repro.workloads.ladders import (
    diamond_chain,
    loop_nest,
    sparse_use_program,
    wide_variable_program,
)

from strategies import programs

# -- the seeded population (same shape as test_perf_equivalence) -----------

CASES: list[tuple[str, object]] = []
for _seed in range(120):
    CASES.append((f"random-{_seed}", lambda s=_seed: random_program(s, size=18)))
for _seed in range(40):
    CASES.append(
        (f"irreducible-{_seed}", lambda s=_seed: irreducible_program(s, blocks=5))
    )
for _seed in range(40):
    CASES.append(
        (f"jump-{_seed}", lambda s=_seed: random_jump_program(s, blocks=7))
    )
CASES += [
    ("diamond-60", lambda: diamond_chain(60)),
    ("loopnest-3x3", lambda: loop_nest(3, 3)),
    ("wide-24", lambda: wide_variable_program(24, 2)),
    ("sparse-8", lambda: sparse_use_program(8)),
]
assert len(CASES) >= 200

CHUNK = 26
CHUNKS = [CASES[i:i + CHUNK] for i in range(0, len(CASES), CHUNK)]
CHUNK_IDS = [f"{chunk[0][0]}..{chunk[-1][0]}" for chunk in CHUNKS]

REFERENCES = {
    "available": available_expressions_reference,
    "anticipatable": anticipatable_expressions_reference,
    "liveness": live_variables_reference,
    "reaching": reaching_definitions_reference,
}


def _graphs(chunk):
    for name, make in chunk:
        yield name, build_cfg(make())


def _assert_hierarchical_matches_flat(graph, name: str) -> None:
    csr = build_csr(graph)
    regions = build_region_systems(graph)
    if not name.startswith("jump"):
        assert regions.dissolved == 0, name
    for analysis, problem in core_problems(graph, csr).items():
        flat = solve_bitset(csr, problem)
        hier = solve_hierarchical(csr, regions, problem)
        assert flat == hier, (name, analysis)


@pytest.mark.parametrize("chunk", CHUNKS, ids=CHUNK_IDS)
def test_hierarchical_masks_match_flat_solver(chunk) -> None:
    for name, graph in _graphs(chunk):
        _assert_hierarchical_matches_flat(graph, name)


@pytest.mark.parametrize("chunk", CHUNKS, ids=CHUNK_IDS)
def test_decoded_facts_match_reference_oracles(chunk) -> None:
    for name, graph in _graphs(chunk):
        facts = EditSession(graph).solve_all()
        for analysis, reference in REFERENCES.items():
            assert facts[analysis] == reference(graph), (name, analysis)


@given(program=programs())
@settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_hierarchical_matches_flat_on_arbitrary_programs(program) -> None:
    # ``programs()`` may generate infinite loops and other graphs no
    # execution-based check could cover; the solve is static, so the
    # equivalence must hold regardless.
    _assert_hierarchical_matches_flat(build_cfg(program), "hypothesis")


def test_parallel_summaries_match_sequential_sweep() -> None:
    # ``verify=True`` raises on any divergence between the pooled merge
    # and the in-process sweep; workers=0 keeps CI deterministic.
    payload = parallel_summaries("diamond", (40,), workers=0)
    assert payload["verified"] is True
    assert payload["systems"] > 0
    assert set(payload["summaries"]) == {
        "available", "anticipatable", "liveness", "reaching",
    }
