"""The error taxonomy, the CFG validator, and graph fingerprints.

Everything here asserts via raised exceptions (``pytest.raises``), never
bare ``assert``s on validation behavior, so the suite is also meaningful
under ``python -O`` -- the CI runs a targeted sweep of these tests with
optimizations on to prove input validation no longer relies on
``assert`` statements.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFG, CFGError, Node, NodeKind
from repro.lang.parser import parse_program
from repro.perf.bitset import BitsetProblem, solve_bitset
from repro.perf.csr import build_csr
from repro.robust import (
    AnalysisError,
    InputError,
    PassTimeout,
    ReproError,
    StaleSnapshotError,
    cfg_violations,
    check_cfg,
    error_record,
    graph_fingerprint,
)


def _graph(source: str = "x := 1; print x;") -> CFG:
    return build_cfg(parse_program(source))


# -- taxonomy ----------------------------------------------------------------


def test_input_error_is_cfg_error() -> None:
    # Existing `except CFGError` handlers must keep catching validation
    # failures raised through the new taxonomy.
    exc = InputError("bad graph")
    assert isinstance(exc, ReproError)
    assert isinstance(exc, CFGError)


def test_stale_snapshot_error_is_value_error() -> None:
    exc = StaleSnapshotError("stale")
    assert isinstance(exc, AnalysisError)
    assert isinstance(exc, ValueError)


def test_pass_timeout_is_analysis_error() -> None:
    exc = PassTimeout("slow", budget_s=1.0, elapsed_s=2.5)
    assert isinstance(exc, AnalysisError)
    assert exc.as_dict()["budget_s"] == 1.0
    assert exc.as_dict()["elapsed_s"] == 2.5


def test_error_str_carries_context() -> None:
    exc = AnalysisError(
        "kernel exploded", phase="pass:dom", pass_name="dom",
        fingerprint="abc123def456",
    )
    text = str(exc)
    assert "kernel exploded" in text
    assert "pass=dom" in text
    assert "phase=pass:dom" in text
    assert "graph=abc123def456" in text
    assert str(AnalysisError("bare")) == "bare"


def test_error_record_structured_and_foreign() -> None:
    record = error_record(InputError("nope", violations=["a", "b"]))
    assert record["schema"] == "repro.error/1"
    assert record["kind"] == "input"
    assert record["type"] == "InputError"
    assert record["violations"] == ["a", "b"]
    foreign = error_record(KeyError("x"))
    assert foreign["kind"] == "unexpected"
    assert foreign["type"] == "KeyError"


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_stable_across_rebuilds() -> None:
    a = graph_fingerprint(_graph("x := 1; while (x < 3) { x := x + 1; }"))
    b = graph_fingerprint(_graph("x := 1; while (x < 3) { x := x + 1; }"))
    assert a == b
    assert len(a) == 12
    assert int(a, 16) >= 0  # hex digest


def test_fingerprint_distinguishes_programs() -> None:
    assert graph_fingerprint(_graph("x := 1; print x;")) != graph_fingerprint(
        _graph("x := 2; print x;")
    )


# -- validator ---------------------------------------------------------------


def test_builder_output_is_clean() -> None:
    graph = _graph("x := 0; while (x < 5) { x := x + 1; } print x;")
    assert cfg_violations(graph) == []
    assert check_cfg(graph) is graph


def test_duplicate_start_detected() -> None:
    graph = _graph()
    graph.add_node(NodeKind.START)
    violations = cfg_violations(graph)
    assert any("exactly one START" in v for v in violations)


def test_dangling_edge_detected_before_deeper_checks() -> None:
    graph = _graph()
    # Corrupt the edge table directly: point an edge at a removed node.
    eid = next(iter(graph.edges))
    graph.edges[eid].dst = 10_000
    violations = cfg_violations(graph)
    assert violations
    assert all("edge" in v or "node" in v for v in violations)


def test_unreachable_node_detected() -> None:
    graph = _graph()
    orphan_a = graph.add_node(NodeKind.NOP)
    orphan_b = graph.add_node(NodeKind.NOP)
    graph.add_edge(orphan_a, orphan_b)
    graph.add_edge(orphan_b, orphan_a)
    violations = cfg_violations(graph, normalized=False)
    assert any("unreachable" in v for v in violations)
    assert any("cannot reach end" in v for v in violations)


def test_check_cfg_raises_one_precise_input_error() -> None:
    graph = _graph()
    graph.add_node(NodeKind.START)
    graph.add_node(NodeKind.START)
    with pytest.raises(InputError) as excinfo:
        check_cfg(graph, phase="unit-test")
    exc = excinfo.value
    assert exc.message.startswith("malformed CFG: ")
    assert exc.phase == "unit-test"
    assert exc.fingerprint
    assert len(exc.violations) >= 1
    if len(exc.violations) > 1:
        assert "more violation" in exc.message
    # And it is catchable as the legacy type.
    with pytest.raises(CFGError):
        check_cfg(graph)


def test_node_defs_raises_cfg_error_without_target() -> None:
    node = Node(7, NodeKind.ASSIGN)  # bypasses add_node's guard
    with pytest.raises(CFGError):
        node.defs()


# -- stale snapshots and kernel guards ---------------------------------------


def test_stale_csr_raises_taxonomy_and_legacy_type() -> None:
    graph = _graph()
    csr = build_csr(graph)
    graph.add_node(NodeKind.NOP)
    with pytest.raises(StaleSnapshotError):
        csr.check()
    with pytest.raises(ValueError):  # legacy callers
        csr.check()


def test_solve_bitset_rejects_stale_snapshot() -> None:
    graph = _graph()
    csr = build_csr(graph)
    graph.add_node(NodeKind.NOP)
    problem = BitsetProblem(
        "forward", True, True, [0] * csr.n, [0] * csr.n, 0, 0
    )
    with pytest.raises(StaleSnapshotError):
        solve_bitset(csr, problem)


def test_solve_bitset_rejects_arity_mismatch() -> None:
    csr = build_csr(_graph())
    problem = BitsetProblem("forward", True, True, [0], [0], 0, 0)
    with pytest.raises(AnalysisError):
        solve_bitset(csr, problem)
