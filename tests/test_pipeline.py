"""Cache coherence of the analysis pipeline manager.

The contract under test:

* a warm query returns the *same object* the cold query built, does zero
  analysis work (the shared WorkCounter does not move), and counts as a
  cache hit;
* a shape mutation (DCE removing nodes) invalidates everything;
* an expression-only rewrite (copy propagation, constant folding of a
  right-hand side) invalidates exactly the passes that declared
  ``uses_exprs=True`` -- dominance, cycle equivalence, SESE structure
  and the CDG stay warm;
* explicit :meth:`AnalysisManager.invalidate` cascades to declared
  transitive dependents and nothing else.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.core.dce import dfg_dead_code_elimination
from repro.lang.parser import parse_program
from repro.opt.copyprop import copy_propagation
from repro.pipeline.manager import AnalysisManager, PassRegistry
from repro.pipeline.passes import default_registry

SRC = """
x := p;
d := p * 3;
y := x + 1;
if (y > 0) { z := y; } else { z := 0 - y; }
print z;
"""

#: Shape-only passes: survive expression rewrites.
SHAPE_PASSES = (
    "cfg", "csr", "dfs", "dom", "pdom", "cycle-equiv", "sese", "cdg",
    "regions", "ntscd",
)
#: Expression-reading passes: recompute after any rewrite.
EXPR_PASSES = (
    "dfg", "defuse", "liveness", "reaching", "available", "pavailable",
    "ssa", "constprop", "constprop-cfg", "constprop-defuse", "sccp",
    "region-summaries", "arena", "arena-dataflow",
    "sparse-range", "sparse-taint", "scvn",
)


def fresh_manager() -> AnalysisManager:
    return AnalysisManager(build_cfg(parse_program(SRC)))


def test_registry_covers_the_split():
    registry = default_registry()
    assert set(SHAPE_PASSES) | set(EXPR_PASSES) == set(registry.names())
    for name in SHAPE_PASSES:
        assert not registry.spec(name).uses_exprs, name
    for name in EXPR_PASSES:
        assert registry.spec(name).uses_exprs, name


# -- warm queries --------------------------------------------------------------


def test_warm_result_is_the_cold_object():
    manager = fresh_manager()
    cold = {name: manager.get(name) for name in default_registry().names()}
    for name, result in cold.items():
        assert manager.get(name) is result, name


def test_hit_miss_accounting():
    manager = fresh_manager()
    manager.run_all()
    manager.run_all()
    for name in default_registry().names():
        stats = manager.stats[name]
        assert stats.misses == 1, name
        # Every pass is hit at least once on the second sweep; substrate
        # passes are hit more often, once per dependent resolution.
        assert stats.hits >= 1, name
        assert stats.invalidations == 0, name


def test_warm_query_does_zero_work():
    """The acceptance criterion: a warm re-query of SESE / cycle-equiv /
    DFG performs no recomputation work at all."""
    manager = fresh_manager()
    manager.run_all()
    counter = manager.metrics.counter
    before = counter.snapshot()
    for name in ("sese", "cycle-equiv", "dfg"):
        manager.get(name)
    assert counter.diff(before) == {}
    for name in ("sese", "cycle-equiv", "dfg"):
        assert manager.stats[name].hits >= 1, name


def test_warm_spans_are_marked_cached():
    manager = fresh_manager()
    manager.get("sese")
    manager.get("sese")
    spans = [s for s in manager.metrics.spans if s.name == "pass:sese"]
    assert [s.cached for s in spans] == [False, True]


def test_dependency_work_is_attributed_to_the_dependency():
    manager = fresh_manager()
    manager.get("sese")  # pulls in cycle-equiv, dom, pdom
    assert any(
        key.startswith("ce_") for key in manager.stats["cycle-equiv"].work
    )
    assert not any(
        key.startswith("ce_") for key in manager.stats["sese"].work
    )


# -- invalidation --------------------------------------------------------------


def test_shape_mutation_invalidates_everything():
    manager = fresh_manager()
    manager.run_all()
    removed = dfg_dead_code_elimination(manager.graph, dfg=manager.get("dfg"))
    assert removed.removed_assignments, "the dead assignment must go"
    for name in default_registry().names():
        assert not manager.cached(name), name
    manager.run_all()
    for name in default_registry().names():
        stats = manager.stats[name]
        assert stats.invalidations == 1, name
        assert stats.misses == 2, name


def test_expr_rewrite_keeps_control_structure_warm():
    manager = fresh_manager()
    manager.run_all()
    warm_sese = manager.get("sese")
    stats = copy_propagation(manager.graph)
    assert stats.rewritten_uses > 0, "the copy x := p must propagate"
    for name in SHAPE_PASSES:
        assert manager.cached(name), name
    for name in EXPR_PASSES:
        assert not manager.cached(name), name
    # The warm shape results are the *same objects* as before the rewrite.
    assert manager.get("sese") is warm_sese
    manager.run_all()
    for name in SHAPE_PASSES:
        assert manager.stats[name].misses == 1, name
        assert manager.stats[name].invalidations == 0, name
    for name in EXPR_PASSES:
        assert manager.stats[name].misses == 2, name
        assert manager.stats[name].invalidations == 1, name


def test_manual_note_rewrite_granularity():
    manager = fresh_manager()
    manager.run_all()
    manager.graph.note_rewrite()  # expression-only
    assert manager.cached("dom") and not manager.cached("dfg")
    manager.run_all()
    manager.graph.note_rewrite(structural=True)
    assert not manager.cached("dom") and not manager.cached("dfg")


def test_explicit_invalidate_cascades_to_declared_dependents():
    manager = fresh_manager()
    manager.run_all()
    dropped = manager.invalidate("dfg")
    assert dropped == {"dfg", "ssa", "sccp", "constprop", "scvn"}
    for name in dropped:
        assert not manager.cached(name), name
    # Unrelated branches of the DAG stay warm.
    for name in ("sese", "defuse", "constprop-defuse", "liveness"):
        assert manager.cached(name), name


def test_downstream_closure():
    registry = default_registry()
    assert registry.downstream("ssa") == {"ssa", "sccp", "scvn"}
    assert registry.downstream("defuse") == {"defuse", "constprop-defuse"}
    sese_down = registry.downstream("sese")
    assert {"sese", "dfg", "ssa", "sccp", "constprop"} <= sese_down
    assert "cdg" not in sese_down
    assert registry.downstream("cfg") == set(registry.names())


def test_rebind_drops_the_whole_cache():
    manager = fresh_manager()
    manager.run_all()
    replacement = manager.graph.copy()
    manager.rebind(replacement)
    assert manager.graph is replacement
    for name in default_registry().names():
        assert not manager.cached(name), name


# -- registry construction -----------------------------------------------------


def test_registry_rejects_duplicates_and_unknown_deps():
    registry = PassRegistry()

    @registry.register("a")
    def _a(graph, deps, counter):
        return 1

    with pytest.raises(ValueError, match="registered twice"):

        @registry.register("a")
        def _a2(graph, deps, counter):
            return 2

    with pytest.raises(ValueError, match="unregistered"):

        @registry.register("b", deps=("missing",))
        def _b(graph, deps, counter):
            return 3

    with pytest.raises(KeyError, match="unknown pass"):
        registry.spec("nope")


def test_registration_order_is_topological():
    registry = default_registry()
    seen: set[str] = set()
    for spec in registry:
        assert set(spec.deps) <= seen, spec.name
        seen.add(spec.name)
