"""CFG builder and normalizer tests, including AST-vs-CFG differential
execution on the paper's examples and on generated programs."""

from hypothesis import given, settings

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.cfg.interp import run_cfg
from repro.cfg.normalize import split_critical_edges
from repro.lang.parser import parse_program
from repro.workloads import suites
from repro.workloads.generators import irreducible_program

from conftest import assert_same_behaviour, random_envs
import strategies


def kinds(graph):
    return sorted(n.kind.value for n in graph.nodes.values())


def test_empty_program():
    g = build_cfg(parse_program(""))
    assert g.num_nodes == 2
    assert g.succs(g.start) == [g.end]


def test_straight_line_chain():
    g = build_cfg(parse_program("x := 1; y := 2; print x + y;"))
    assert kinds(g) == ["assign", "assign", "end", "print", "start"]
    # start -> x -> y -> print -> end, a single chain.
    cur, seen = g.start, []
    while cur != g.end:
        cur = g.out_edge(cur).dst
        seen.append(cur)
    assert len(seen) == 4


def test_if_produces_switch_and_merge():
    g = build_cfg(parse_program("if (p) { x := 1; } else { x := 2; } print x;"))
    assert kinds(g).count("switch") == 1
    assert kinds(g).count("merge") == 1
    switch = next(n for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    labels = sorted(e.label for e in g.out_edges(switch.id))
    assert labels == ["F", "T"]


def test_empty_if_yields_parallel_arms():
    g = build_cfg(parse_program("if (p) { } else { } print 1;"))
    g.validate(normalized=True)
    switch = next(n for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    dsts = {e.dst for e in g.out_edges(switch.id)}
    assert len(dsts) == 1  # both arms hit the same merge
    assert g.node(dsts.pop()).kind is NodeKind.MERGE


def test_while_loop_shape():
    g = build_cfg(parse_program("while (x < 3) { x := x + 1; } print x;"))
    # A while loop: merge at the header, then the switch.
    merges = [n for n in g.nodes.values() if n.kind is NodeKind.MERGE]
    switches = [n for n in g.nodes.values() if n.kind is NodeKind.SWITCH]
    assert len(merges) == 1 and len(switches) == 1
    assert g.succs(merges[0].id) == [switches[0].id]


def test_repeat_until_back_edge_is_switch_to_merge():
    g = build_cfg(parse_program("repeat { x := x + 1; } until (x > 2); print x;"))
    # The back edge runs from the until-switch to the body-entry merge --
    # the critical edge the paper discusses in Section 5.2.
    switch = next(n for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    back = [e for e in g.out_edges(switch.id) if g.node(e.dst).kind is NodeKind.MERGE]
    assert back, "expected a switch-to-merge back edge"


def test_infinite_loop_gets_synthetic_exit():
    g = build_cfg(parse_program("x := 1; while (1) { x := x + 1; } print x;"))
    g.validate(normalized=True)  # implies every node reaches end


def test_bare_goto_cycle_gets_hosted_and_exited():
    g = build_cfg(parse_program("label L: goto L;"))
    g.validate(normalized=True)


def test_dead_code_after_goto_is_pruned():
    g = build_cfg(parse_program("goto L; x := 99; label L: print 1;"))
    assert all(n.target != "x" for n in g.assign_nodes())


def test_unreachable_else_via_goto():
    prog = parse_program("goto out; while (p) { x := 1; } label out: print 2;")
    g = build_cfg(prog)
    g.validate(normalized=True)
    assert run_cfg(g).outputs == [2]


def test_split_critical_edges_inserts_nops():
    g = build_cfg(parse_program("repeat { x := x + 1; } until (x > 2); print x;"))
    inserted = split_critical_edges(g)
    assert inserted
    for nop in inserted.values():
        assert g.node(nop).kind is NodeKind.NOP
    g.validate(normalized=True)


def test_split_critical_edges_preserves_behaviour():
    prog = parse_program(
        "x := 0; repeat { x := x + 1; } until (x > 3); print x;"
    )
    g = build_cfg(prog)
    before = run_cfg(g).outputs
    split_critical_edges(g)
    assert run_cfg(g).outputs == before


def test_paper_suite_programs_build_and_agree():
    for make in (
        suites.section1_example,
        suites.figure1,
        suites.figure2,
        suites.figure3a,
        suites.figure3b,
        suites.figure6,
        suites.figure7,
    ):
        prog = make()
        assert_same_behaviour(prog, random_envs(7, ["p", "a", "b", "c"]))


def test_irreducible_program_builds_and_agrees():
    for seed in range(5):
        prog = irreducible_program(seed)
        assert_same_behaviour(prog)


@given(strategies.terminating_programs())
@settings(max_examples=60, deadline=None)
def test_generated_programs_build_normalized(program):
    g = build_cfg(program)
    g.validate(normalized=True)


@given(strategies.terminating_programs())
@settings(max_examples=40, deadline=None)
def test_generated_programs_cfg_execution_matches_ast(program):
    envs = random_envs(3, [f"v{i}" for i in range(5)], count=3)
    assert_same_behaviour(program, envs)
