"""The parameterized sparse engine vs its dense reference twins (PR 9).

Three layers of guarantee:

* **corpus equivalence** -- over the full 204-program equivalence
  population, every client of the live-range-splitting engine (SSA
  construction, def-use chains, interval ranges, taint, NTSCD) produces
  results identical to its dense reference twin; for SSA the *work
  counters* must match tick for tick, because the sparse engine claims
  to be a drop-in refactor of the historical Cytron construction;
* **cross-construction agreement** -- the engine's pruned SSA places
  phis exactly where the independent DFG-derived construction does;
* **lattice properties** -- hypothesis-checked soundness and
  monotonicity of the interval transfer functions, and monotonicity of
  taint in its source set (more sources can only taint more uses).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.controldep.ntscd import ntscd, ntscd_reference
from repro.defuse.chains import (
    build_def_use_chains,
    build_def_use_chains_reference,
)
from repro.lang.interp import apply_binop
from repro.perf.batch import equivalence_suite, resolve_family
from repro.sparse import interval as iv
from repro.sparse.range_analysis import (
    range_analysis,
    range_analysis_reference,
)
from repro.sparse.taint import taint_analysis, taint_analysis_reference
from repro.ssa.cytron import build_ssa_cytron, build_ssa_cytron_reference
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.util.counters import WorkCounter


def corpus_graphs():
    for spec in equivalence_suite(smoke=False):
        program = resolve_family(spec["family"])(*spec["args"])
        yield spec["label"], build_cfg(program)


def ssa_snapshot(ssa):
    return (
        sorted(ssa.def_names.items()),
        sorted(ssa.use_names.items()),
        sorted(ssa.entry_names.items()),
        sorted(
            (nid, var, phi.result, tuple(sorted(phi.args.items())))
            for nid, by_var in ssa.phis.items()
            for var, phi in by_var.items()
        ),
    )


def chain_set(chains):
    return {(c.var, c.def_node, c.use_node) for c in chains.chains}


def test_ssa_construction_is_tick_identical_across_corpus():
    for label, graph in corpus_graphs():
        for pruned in (False, True):
            fast_counter, ref_counter = WorkCounter(), WorkCounter()
            fast = build_ssa_cytron(graph, pruned=pruned, counter=fast_counter)
            ref = build_ssa_cytron_reference(
                graph, pruned=pruned, counter=ref_counter
            )
            assert ssa_snapshot(fast) == ssa_snapshot(ref), (label, pruned)
            assert fast_counter.snapshot() == ref_counter.snapshot(), (
                label, pruned,
            )
            fast.validate()


def test_defuse_chains_equal_reference_across_corpus():
    for label, graph in corpus_graphs():
        fast = build_def_use_chains(graph)
        ref = build_def_use_chains_reference(graph)
        assert chain_set(fast) == chain_set(ref), label
        # The sparse projection comes out canonically sorted.
        keys = [(c.use_node, c.var, c.def_node) for c in fast.chains]
        assert keys == sorted(keys), label


def test_range_taint_ntscd_equal_reference_across_corpus():
    for label, graph in corpus_graphs():
        assert range_analysis(graph).facts() == \
            range_analysis_reference(graph).facts(), label
        assert taint_analysis(graph).facts() == \
            taint_analysis_reference(graph).facts(), label
        assert ntscd(graph).facts() == ntscd_reference(graph).facts(), label


def test_engine_pruned_ssa_places_phis_like_dfg_construction():
    # Two independent constructions of pruned SSA -- the splitting
    # engine (dominance frontiers + liveness pruning) and the
    # DFG-derived overlay -- must agree on where phis live.
    for label, graph in list(corpus_graphs())[:60]:
        engine = build_ssa_cytron(graph, pruned=True)
        derived = build_ssa_from_dfg(graph)
        assert engine.phi_placement() == derived.phi_placement(), label


# -- lattice properties -------------------------------------------------------

ARITH_OPS = ("+", "-", "*", "/", "%")
ALL_OPS = ARITH_OPS + ("==", "!=", "<", "<=", ">", ">=", "&&", "||")

finite_bound = st.integers(min_value=-(10 ** 7), max_value=10 ** 7)


@st.composite
def intervals(draw):
    lo = draw(finite_bound)
    hi = draw(finite_bound)
    if lo > hi:
        lo, hi = hi, lo
    return iv.Interval(lo, hi)


def leq(a, b) -> bool:
    """The lattice order: a below b iff joining adds nothing to b."""
    return iv.join(a, b) == b


@given(
    op=st.sampled_from(ALL_OPS),
    a=intervals(),
    b=intervals(),
    data=st.data(),
)
@settings(max_examples=300, deadline=None)
def test_binop_transfer_is_sound(op, a, b, data):
    x = data.draw(st.integers(min_value=a.lo, max_value=a.hi))
    y = data.draw(st.integers(min_value=b.lo, max_value=b.hi))
    if op in ("/", "%") and y == 0:
        return  # the concrete operator traps; any abstract result is sound
    result = iv.binop(op, a, b)
    assert result.contains(apply_binop(op, x, y)), (op, a, b, x, y)


@given(
    op=st.sampled_from(ALL_OPS),
    a=intervals(),
    b=intervals(),
    wider_a=intervals(),
    wider_b=intervals(),
)
@settings(max_examples=300, deadline=None)
def test_binop_transfer_is_monotone(op, a, b, wider_a, wider_b):
    a2 = iv.join(a, wider_a)
    b2 = iv.join(b, wider_b)
    assert leq(iv.binop(op, a, b), iv.binop(op, a2, b2)), (op, a, b, a2, b2)


@given(op=st.sampled_from(("-", "!")), a=intervals(), wider=intervals())
@settings(max_examples=200, deadline=None)
def test_unop_transfer_is_monotone_and_sound(op, a, wider):
    a2 = iv.join(a, wider)
    assert leq(iv.unop(op, a), iv.unop(op, a2))
    concrete = (lambda v: -v) if op == "-" else (lambda v: int(not v))
    for probe in (a.lo, a.hi, 0 if a.contains(0) else a.lo):
        if a.contains(probe):
            assert iv.unop(op, a).contains(concrete(probe))


@given(seed=st.integers(min_value=0, max_value=40), data=st.data())
@settings(max_examples=40, deadline=None)
def test_taint_is_monotone_in_its_source_set(seed, data):
    graph = build_cfg(resolve_family("random")(seed, 18, 4))
    nodes = sorted(graph.nodes)
    larger = data.draw(st.sets(st.sampled_from(nodes)))
    smaller = data.draw(st.sets(st.sampled_from(sorted(larger)))
                        if larger else st.just(set()))
    small = taint_analysis(graph, source_nodes=smaller)
    large = taint_analysis(graph, source_nodes=larger)
    assert small.sources <= large.sources
    for key, tainted in small.use_taint.items():
        if tainted:
            assert large.use_taint[key], key


@given(seed=st.integers(min_value=0, max_value=60))
@settings(max_examples=30, deadline=None)
def test_range_use_values_are_below_top_and_agree_with_reference(seed):
    graph = build_cfg(resolve_family("random")(seed, 18, 4))
    sparse = range_analysis(graph)
    dense = range_analysis_reference(graph)
    assert sparse.facts() == dense.facts()
    for value in sparse.use_values.values():
        assert leq(value, iv.TOP)
