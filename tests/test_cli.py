"""CLI smoke tests (direct invocation of the handlers) and golden-output
tests for the JSON-emitting ``profile`` / ``trace`` subcommands.

The golden files live in ``tests/golden/``; timing fields are zeroed
before comparison (span *order* is deterministic, durations are not).
Regenerate after an intentional schema change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_cli.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import PROFILE_SCHEMA, TRACE_SCHEMA, main

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture
def sample(tmp_path):
    path = tmp_path / "sample.dfg"
    path.write_text(
        "a := p; b := q;\n"
        "z := a + b;\n"
        "w := a + b;\n"
        "if (z == 7) { t := z + 1; } else { t := w; }\n"
        "print t;\n"
    )
    return str(path)


def test_run_prints_outputs(sample, capsys):
    assert main(["run", sample, "--env", "p=3", "--env", "q=4"]) == 0
    assert capsys.readouterr().out.strip() == "8"


def test_run_default_env(sample, capsys):
    assert main(["run", sample]) == 0
    assert capsys.readouterr().out.strip() == "0"


def test_analyze_reports_structure(sample, capsys):
    assert main(["analyze", sample]) == 0
    out = capsys.readouterr().out
    assert "cycle-equivalence classes" in out
    assert "SESE regions" in out
    assert "dependence edges" in out


def test_analyze_writes_dot(sample, tmp_path, capsys):
    dot = str(tmp_path / "g.dot")
    assert main(["analyze", sample, "--dot", dot]) == 0
    text = open(dot).read()
    assert text.startswith("digraph")
    assert "->" in text


def test_optimize_reports_and_preserves(sample, capsys):
    assert main(["optimize", sample, "--env", "p=3", "--env", "q=4"]) == 0
    out = capsys.readouterr().out
    assert "outputs (unchanged): [8]" in out
    assert "dynamic expression evaluations" in out


def test_bad_env_rejected(sample):
    with pytest.raises(SystemExit):
        main(["run", sample, "--env", "p=notanumber"])


# -- golden JSON output --------------------------------------------------------


def _scrub_times(obj):
    """Zero every timing field; everything else must match exactly."""
    if isinstance(obj, dict):
        return {
            key: 0.0 if key in ("wall_ms", "dur_ms", "start_ms")
            else _scrub_times(value)
            for key, value in obj.items()
        }
    if isinstance(obj, list):
        return [_scrub_times(item) for item in obj]
    return obj


def _check_golden(name: str, payload: dict) -> None:
    normalized = _scrub_times(payload)
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        path.write_text(json.dumps(normalized, indent=2, sort_keys=True) + "\n")
    expected = json.loads(path.read_text())
    assert normalized == expected, f"{name} drifted; see module docstring"


def test_profile_matches_golden(sample, capsys):
    assert main(["profile", sample]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == PROFILE_SCHEMA
    _check_golden("profile_sample.json", payload)


def test_trace_matches_golden(sample, capsys):
    assert main(["trace", sample]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == TRACE_SCHEMA
    _check_golden("trace_sample.json", payload)


def test_profile_meets_reporting_floor(sample, capsys):
    """Acceptance criterion: per-pass rows with work units, wall time and
    cache traffic for at least six passes."""
    assert main(["profile", sample]) == 0
    payload = json.loads(capsys.readouterr().out)
    rows = payload["passes"]
    assert len(rows) >= 6
    with_work = [row for row in rows if row["work_total"] > 0]
    assert len(with_work) >= 6
    for row in rows:
        assert {"pass", "cache", "work", "work_total", "wall_ms"} <= set(row)
        assert row["cache"]["misses"] >= 1
        assert row["cache"]["hits"] >= 1  # the warm second sweep
    assert payload["totals"]["cache"]["invalidations"] == 0


def test_trace_spans_interleave_cold_and_warm(sample, capsys):
    assert main(["trace", sample]) == 0
    payload = json.loads(capsys.readouterr().out)
    by_name: dict[str, list] = {}
    for span in payload["spans"]:
        by_name.setdefault(span["name"], []).append(span["cached"])
    # Every pass appears cold exactly once, and warm at least once
    # (second sweep, plus dependency hits).
    for name, flags in by_name.items():
        assert flags.count(False) == 1, name
        assert flags.count(True) >= 1, name


def test_profile_optimize_flag(sample, capsys):
    assert main(["profile", sample, "--optimize"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # The optimizer's transforms invalidate analyses mid-run.
    assert payload["totals"]["cache"]["invalidations"] > 0


def test_constant_program_analysis(tmp_path, capsys):
    path = tmp_path / "const.dfg"
    path.write_text("x := 2; y := x + 3; if (0) { z := 1; } print y;\n")
    assert main(["analyze", str(path), "-v"]) == 0
    out = capsys.readouterr().out
    assert "y = 5" in out or "x = 2" in out
    assert "dead code" in out


# -- bench / batch -------------------------------------------------------------


def test_bench_smoke_payload(tmp_path, capsys):
    from repro.perf.batch import check_regression

    out = str(tmp_path / "bench.json")
    assert main(
        ["bench", "--smoke", "--repeat", "1", "--tag", "t", "--output", out]
    ) == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.load(open(out))
    assert payload["schema"] == "repro.bench/1"
    assert payload["tag"] == "t" and payload["mode"] == "smoke"
    names = [w["name"] for w in payload["workloads"]]
    assert names == [
        "c1-structure", "f4-dataflow", "edit-replay",
        "edit-replay-balance", "arena-fused", "sparse-clients",
    ]
    for workload in payload["workloads"]:
        assert workload["rows"], workload["name"]
        for row in workload["rows"]:
            assert row["identical"] is True
            assert row["legacy_ms"] > 0 and row["fast_ms"] > 0
        assert workload["largest"] == workload["rows"][-1]
    assert payload["batch"]["programs"] > 0
    # A payload can never regress against itself.
    assert check_regression(payload, payload) == []


def test_bench_check_flags_regression(tmp_path, capsys):
    from repro.perf.batch import check_regression

    out = str(tmp_path / "bench.json")
    assert main(
        ["bench", "--smoke", "--repeat", "1", "--tag", "t", "--output", out]
    ) == 0
    capsys.readouterr()
    payload = json.load(open(out))
    inflated = json.loads(json.dumps(payload))
    for workload in inflated["workloads"]:
        workload["largest"]["speedup"] *= 100.0
    assert check_regression(payload, inflated)


def test_batch_in_process(tmp_path, capsys):
    out = str(tmp_path / "batch.json")
    assert main(
        ["batch", "--workers", "0", "--programs", "2", "--size", "30",
         "--output", out]
    ) == 0
    payload = json.load(open(out))
    batch = payload["batch"]
    assert batch["workers"] == 0
    assert batch["programs"] == 2  # --programs caps the suite
    assert batch["passes"] and all(
        row["work"] >= 0 for row in batch["passes"].values()
    )


def test_batch_lint_suite_smoke(tmp_path, capsys):
    out = str(tmp_path / "lint_batch.json")
    assert main(
        ["batch", "--suite", "lint", "--smoke", "--workers", "0",
         "--output", out]
    ) == 0
    err = capsys.readouterr().err
    assert "unverified definite" in err
    batch = json.load(open(out))["batch"]
    lint = batch["lint"]
    assert lint["programs"] == batch["programs"] > 0
    assert lint["findings"] > 0 and lint["verified"] > 0
    # The gate the CI job relies on: nothing definite ships unverified.
    assert lint["unverified_definite"] == 0
    # Per-program rows carry their own lint summaries and pass metrics.
    assert batch.get("errors", 0) == 0 and batch.get("quarantined", 0) == 0


def test_batch_lint_suite_pool_matches_in_process(tmp_path, capsys):
    """SupervisedPool must aggregate identical lint findings (and per-pass
    work) to the in-process path; only wall times may differ."""
    out0 = str(tmp_path / "l0.json")
    out2 = str(tmp_path / "l2.json")
    args = ["batch", "--suite", "lint", "--smoke"]
    assert main(args + ["--workers", "0", "--output", out0]) == 0
    assert main(args + ["--workers", "2", "--output", out2]) == 0
    capsys.readouterr()
    serial = json.load(open(out0))["batch"]
    pooled = json.load(open(out2))["batch"]
    assert pooled["workers"] == 2
    assert pooled["lint"] == serial["lint"]
    assert {k: v["work"] for k, v in pooled["passes"].items()} == (
        {k: v["work"] for k, v in serial["passes"].items()}
    )
    # The lint registry's rule passes show up in the aggregated metrics.
    assert "lint-dead-store" in pooled["passes"]


def test_batch_spawn_pool_matches_in_process(tmp_path, capsys):
    """The multiprocessing path must aggregate the same per-pass work
    totals as the in-process path (wall times differ, work is exact)."""
    out0 = str(tmp_path / "b0.json")
    out2 = str(tmp_path / "b2.json")
    args = ["batch", "--programs", "2", "--size", "30"]
    assert main(args + ["--workers", "0", "--output", out0]) == 0
    assert main(args + ["--workers", "2", "--output", out2]) == 0
    serial = json.load(open(out0))["batch"]
    pooled = json.load(open(out2))["batch"]
    assert pooled["workers"] == 2
    assert {k: v["work"] for k, v in pooled["passes"].items()} == (
        {k: v["work"] for k, v in serial["passes"].items()}
    )


# -- unknown --suite diagnostics (PR 5 satellite) -----------------------------


@pytest.mark.parametrize(
    "command, suites",
    [
        ("batch", ("default", "equivalence", "lint")),
        ("fuzz", ("default", "smoke")),
    ],
)
def test_unknown_suite_exits_2_and_lists_names(capsys, command, suites):
    """A typo'd --suite must not traceback: exit code 2 and a one-line
    diagnostic that names every available suite."""
    assert main([command, "--suite", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "input error" in err and "bogus" in err
    for name in suites:
        assert name in err
    assert "Traceback" not in err


def test_fuzz_cli_smoke(tmp_path, capsys):
    out = str(tmp_path / "fuzz.json")
    assert main(
        ["fuzz", "--suite", "smoke", "--budget", "12", "--seed", "0",
         "--output", out]
    ) == 0
    err = capsys.readouterr().err
    assert "planted recall" in err
    payload = json.load(open(out))
    assert payload["schema"] == "repro.fuzz/1"
    assert payload["trials"] == 12
    assert payload["ok"] is True


def test_missing_file_exits_2_with_one_line_diagnostic(capsys):
    assert main(["run", "/tmp/definitely-does-not-exist.dfg"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: input error:")
    assert "Traceback" not in err
