"""CLI smoke tests (direct invocation of the handlers)."""

import pytest

from repro.cli import main


@pytest.fixture
def sample(tmp_path):
    path = tmp_path / "sample.dfg"
    path.write_text(
        "a := p; b := q;\n"
        "z := a + b;\n"
        "w := a + b;\n"
        "if (z == 7) { t := z + 1; } else { t := w; }\n"
        "print t;\n"
    )
    return str(path)


def test_run_prints_outputs(sample, capsys):
    assert main(["run", sample, "--env", "p=3", "--env", "q=4"]) == 0
    assert capsys.readouterr().out.strip() == "8"


def test_run_default_env(sample, capsys):
    assert main(["run", sample]) == 0
    assert capsys.readouterr().out.strip() == "0"


def test_analyze_reports_structure(sample, capsys):
    assert main(["analyze", sample]) == 0
    out = capsys.readouterr().out
    assert "cycle-equivalence classes" in out
    assert "SESE regions" in out
    assert "dependence edges" in out


def test_analyze_writes_dot(sample, tmp_path, capsys):
    dot = str(tmp_path / "g.dot")
    assert main(["analyze", sample, "--dot", dot]) == 0
    text = open(dot).read()
    assert text.startswith("digraph")
    assert "->" in text


def test_optimize_reports_and_preserves(sample, capsys):
    assert main(["optimize", sample, "--env", "p=3", "--env", "q=4"]) == 0
    out = capsys.readouterr().out
    assert "outputs (unchanged): [8]" in out
    assert "dynamic expression evaluations" in out


def test_bad_env_rejected(sample):
    with pytest.raises(SystemExit):
        main(["run", sample, "--env", "p=notanumber"])


def test_constant_program_analysis(tmp_path, capsys):
    path = tmp_path / "const.dfg"
    path.write_text("x := 2; y := x + 3; if (0) { z := 1; } print y;\n")
    assert main(["analyze", str(path), "-v"]) == 0
    out = capsys.readouterr().out
    assert "y = 5" in out or "x = 2" in out
    assert "dead code" in out
