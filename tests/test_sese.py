"""SESE region / program structure tree tests, with brute-force oracles."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.controldep.sese import ProgramStructure
from repro.graphs.dominance import edge_key, node_key
from repro.lang.parser import parse_program
from repro.workloads import suites
from repro.workloads.generators import irreducible_program, random_program
from repro.workloads.ladders import diamond_chain, loop_nest


def structure_of(source_or_prog):
    prog = (
        parse_program(source_or_prog)
        if isinstance(source_or_prog, str)
        else source_or_prog
    )
    g = build_cfg(prog)
    return g, ProgramStructure(g)


def brute_smallest_region_of_node(ps, nid):
    holding = [r for r in ps.regions if ps.contains_node(r, nid)]
    if not holding:
        return None
    best = holding[0]
    for r in holding[1:]:
        if region_strictly_inside(ps, r, best):
            best = r
    # Sanity: the pick must be inside every other holding region.
    assert all(
        r is best or region_strictly_inside(ps, best, r) for r in holding
    )
    return best


def region_strictly_inside(ps, inner, outer):
    if inner is outer:
        return False
    return ps.dom.dominates(
        edge_key(outer.entry), edge_key(inner.entry)
    ) and ps.pdom.dominates(edge_key(outer.exit), edge_key(inner.exit))


# -- chain / Theorem 1 structure -----------------------------------------------


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None)
def test_class_chains_are_dominance_and_postdominance_ordered(seed):
    g, ps = structure_of(random_program(seed, size=14, num_vars=3))
    for eids in ps.classes.values():
        for e1, e2 in zip(eids, eids[1:]):
            assert ps.dom.dominates(edge_key(e1), edge_key(e2))
            assert ps.pdom.dominates(edge_key(e2), edge_key(e1))


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=30, deadline=None)
def test_canonical_regions_satisfy_theorem1(seed):
    g, ps = structure_of(random_program(seed, size=12, num_vars=3))
    for region in ps.regions:
        assert ps.is_sese(region.entry, region.exit)


def test_irreducible_graphs_still_decompose():
    for seed in range(6):
        g, ps = structure_of(irreducible_program(seed))
        for eids in ps.classes.values():
            for e1, e2 in zip(eids, eids[1:]):
                assert ps.dom.dominates(edge_key(e1), edge_key(e2))


# -- worked examples -------------------------------------------------------------


def test_figure2_structure():
    """Each assignment is a SESE region; the if-then-else is one region
    that defines y; x's definition region does not define y."""
    g, ps = structure_of(suites.figure2())
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    cond_entry = g.in_edge(switch)
    cond_region = ps.opens.get(cond_entry.id)
    assert cond_region is not None, "conditional should open a region"
    assert ps.defs_in(cond_region) == frozenset({"y"})
    assign_x = next(
        n.id for n in g.nodes.values()
        if n.kind is NodeKind.ASSIGN and n.target == "x"
    )
    x_region = ps.opens[g.in_edge(assign_x).id]
    assert ps.defs_in(x_region) == frozenset({"x"})
    assert ps.contains_node(cond_region, switch)


def test_straight_line_regions_are_sequence():
    g, ps = structure_of("a := 1; b := 2; c := 3;")
    # One class (the spine), length num_edges, hence num_edges-1 regions.
    assert len(ps.classes) == 1
    assert len(ps.regions) == g.num_edges - 1
    assert all(r.parent is None for r in ps.regions)


def test_nested_if_nests_in_pst():
    g, ps = structure_of(
        """
        if (a) {
            if (b) { x := 1; } else { x := 2; }
        } else { x := 3; }
        print x;
        """
    )
    depths = sorted(r.depth for r in ps.regions)
    assert depths[-1] > depths[0]
    # Every child region is geometrically inside its parent.
    for region in ps.regions:
        if region.parent is not None:
            assert region_strictly_inside(ps, region, region.parent)


def test_while_loop_is_a_region():
    g, ps = structure_of("i := 0; while (i < 3) { i := i + 1; } print i;")
    loop_regions = [
        r for r in ps.regions if "i" in ps.defs_in(r)
        and g.node(g.edge(r.entry).dst).kind is NodeKind.MERGE
    ]
    assert loop_regions, "the loop should form a region entered at its merge"
    loop = loop_regions[0]
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    assert ps.contains_node(loop, switch)


# -- oracles -------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_region_of_node_matches_brute_force(seed):
    g, ps = structure_of(random_program(seed, size=12, num_vars=3))
    for nid in g.nodes:
        assert ps.region_of_node[nid] is brute_smallest_region_of_node(ps, nid)


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_defs_in_matches_brute_force(seed):
    g, ps = structure_of(random_program(seed, size=12, num_vars=3))
    for region in ps.regions:
        expected = frozenset(
            n.target
            for n in g.assign_nodes()
            if ps.contains_node(region, n.id)
        )
        assert ps.defs_in(region) == expected


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_pst_parents_contain_children(seed):
    g, ps = structure_of(random_program(seed, size=12, num_vars=3))
    for region in ps.regions:
        if region.parent is not None:
            assert region_strictly_inside(ps, region, region.parent)
            assert region.depth == region.parent.depth + 1


def test_ladder_region_counts_scale_linearly():
    small = structure_of(diamond_chain(5))[1]
    large = structure_of(diamond_chain(10))[1]
    assert len(large.regions) > len(small.regions)
    # Diamond chains nest nothing: every diamond region sits at depth <= 2.
    assert all(r.depth <= 2 for r in large.regions)


def test_loop_nest_depth_tracks_nesting():
    ps = structure_of(loop_nest(4))[1]
    assert max(r.depth for r in ps.regions) >= 4
