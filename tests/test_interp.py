"""Unit tests for the AST interpreter (flattening + execution)."""

import pytest

from repro.lang.errors import InterpError, StepLimitExceeded
from repro.lang.parser import parse_expr, parse_program
from repro.lang.interp import run_program


def outputs(source, env=None, **kw):
    return run_program(parse_program(source), env, **kw).outputs


def test_arithmetic_and_print():
    assert outputs("print 2 + 3 * 4;") == [14]


def test_division_is_floor():
    assert outputs("print 7 / 2; print -7 / 2;") == [3, -4]


def test_modulo_matches_floor_division():
    assert outputs("print 7 % 3; print -7 % 3;") == [1, 2]


def test_division_by_zero_raises():
    with pytest.raises(InterpError):
        outputs("print 1 / 0;")


def test_comparisons_yield_zero_one():
    assert outputs("print 1 < 2; print 2 < 1; print 3 == 3;") == [1, 0, 1]


def test_logical_ops_are_strict_and_boolean():
    assert outputs("print 5 && 0; print 5 && 2; print 0 || 7;") == [0, 1, 1]


def test_unary_negation_and_not():
    assert outputs("print -3; print !0; print !9;") == [-3, 1, 0]


def test_uninitialized_variable_defaults_to_env_or_zero():
    assert outputs("print q;") == [0]
    assert outputs("print q;", {"q": 42}) == [42]


def test_if_else_branches():
    src = "if (x > 0) { print 1; } else { print 2; }"
    assert outputs(src, {"x": 5}) == [1]
    assert outputs(src, {"x": -5}) == [2]


def test_while_loop_counts():
    src = "i := 0; while (i < 4) { i := i + 1; } print i;"
    assert outputs(src) == [4]


def test_repeat_until_runs_at_least_once():
    src = "i := 10; repeat { i := i + 1; } until (1); print i;"
    assert outputs(src) == [11]


def test_repeat_until_loops_until_condition():
    src = "i := 0; repeat { i := i + 1; } until (i >= 3); print i;"
    assert outputs(src) == [3]


def test_goto_forward_skips_statements():
    src = "goto L; print 1; label L: print 2;"
    assert outputs(src) == [2]


def test_goto_backward_forms_loop():
    src = """
    i := 0;
    label top:
    i := i + 1;
    if (i < 3) { goto top; }
    print i;
    """
    assert outputs(src) == [3]


def test_goto_into_loop_body():
    src = """
    i := 5;
    goto inside;
    while (i < 3) {
        label inside:
        i := i + 1;
    }
    print i;
    """
    # Jumping into the body runs it once; then the loop test fails.
    assert outputs(src) == [6]


def test_missing_label_raises():
    with pytest.raises(InterpError):
        outputs("goto nowhere;")


def test_duplicate_label_raises():
    with pytest.raises(InterpError):
        outputs("label L: skip; label L: skip;")


def test_step_limit():
    with pytest.raises(StepLimitExceeded):
        outputs("label L: goto L;", max_steps=100)


def test_evaluation_counting():
    result = run_program(
        parse_program("a := 1; b := 2; x := a + b; y := a + b; print x + y;")
    )
    assert result.evaluations_of(parse_expr("a + b")) == 2
    assert result.evaluations_of(parse_expr("x + y")) == 1


def test_evaluation_counting_counts_subexpressions():
    result = run_program(parse_program("z := (a + b) * 2;"))
    assert result.evaluations_of(parse_expr("a + b")) == 1
    assert result.evaluations_of(parse_expr("(a + b) * 2")) == 1


def test_evaluation_counting_rejects_trivial():
    result = run_program(parse_program("x := 1;"))
    with pytest.raises(ValueError):
        result.evaluations_of(parse_expr("x"))


def test_skip_and_empty_program():
    assert outputs("") == []
    assert outputs("skip; skip;") == []


def test_env_is_not_mutated():
    env = {"x": 1}
    run_program(parse_program("x := 2;"), env)
    assert env == {"x": 1}
