"""Arena IR: lowering fidelity, interning determinism, fused solving.

The arena subsystem (PR 7) re-represents whole corpora as flat
struct-of-arrays tables over one shared expression pool.  These tests
pin the three contracts the rest of the repo leans on:

* **structural equivalence** -- lowering a CFG yields exactly the CSR
  snapshot's enumeration and adjacency, plus faithful node/edge
  payloads, across the whole (smoke) equivalence corpus;
* **determinism** -- interned ids and the serialized corpus bytes are
  functions of insertion order only, never of the process hash seed;
* **fused solving** -- one corpus sweep matches the per-program object
  pipeline byte-for-byte and performs *zero* interning work (the pool
  is read-only after lowering, which is what makes the batch-mode
  amortization sound).
"""

import hashlib
import os
import subprocess
import sys

from repro.arena import (
    ArenaCorpus,
    ExpressionPool,
    analyze_arena,
    analyze_corpus,
    lower_cfg,
)
from repro.arena.arena import KIND_INDEX
from repro.cfg.graph import NodeKind
from repro.perf.batch import _corpus_graphs, _corpus_legacy, equivalence_suite
from repro.perf.csr import build_csr
from repro.util.counters import WorkCounter

SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "src")


def smoke_corpus() -> tuple[list, ArenaCorpus]:
    graphs = _corpus_graphs(equivalence_suite(smoke=True))
    corpus = ArenaCorpus(ExpressionPool())
    for label, graph in graphs:
        corpus.add(graph, label=label)
    return graphs, corpus


# -- structural equivalence ---------------------------------------------------


def test_lowering_matches_csr_across_corpus():
    graphs, corpus = smoke_corpus()
    for (label, graph), arena in zip(graphs, corpus.programs):
        csr = build_csr(graph)
        assert arena.label == label
        assert arena.n == csr.n and arena.m == csr.m
        assert arena.node_ids == csr.node_ids
        assert arena.edge_ids == csr.edge_ids
        assert arena.edge_src == csr.edge_src
        assert arena.edge_dst == csr.edge_dst
        assert arena.succ_off == csr.succ_off
        assert arena.succ_node == csr.succ_node
        assert arena.succ_edge == csr.succ_edge
        assert arena.pred_off == csr.pred_off
        assert arena.pred_node == csr.pred_node
        assert arena.pred_edge == csr.pred_edge
        assert arena.start == csr.start and arena.end == csr.end


def test_lowering_payloads_decode_back_to_the_cfg():
    graphs, corpus = smoke_corpus()
    pool = corpus.pool
    for (_, graph), arena in zip(graphs, corpus.programs):
        for i, nid in enumerate(arena.node_ids):
            node = graph.node(nid)
            assert arena.node_kind[i] == KIND_INDEX[node.kind]
            if node.kind is NodeKind.ASSIGN:
                assert pool.names[arena.node_target[i]] == node.target
            else:
                assert arena.node_target[i] == -1
            if node.expr is not None:
                # Pool objects are span-stripped canonical ASTs; spans
                # do not participate in expression equality.
                assert pool.objects[arena.node_expr[i]] == node.expr
            else:
                assert arena.node_expr[i] == -1
        for i, eid in enumerate(arena.edge_ids):
            label = graph.edges[eid].label
            if label is None:
                assert arena.edge_label[i] == -1
            else:
                assert pool.names[arena.edge_label[i]] == label


def test_interning_is_shared_across_the_corpus():
    _, corpus = smoke_corpus()
    pool = corpus.pool
    # Hash-consing: every (kind, args) row is unique.
    rows = list(zip(pool.kind, pool.arg0, pool.arg1, pool.arg2))
    assert len(rows) == len(set(rows))
    # The corpus shares structure: the pool is much smaller than the
    # sum of per-program expression counts.
    per_program = sum(
        1 for arena in corpus.programs for e in arena.node_expr if e >= 0
    )
    assert len(pool) < per_program


# -- determinism --------------------------------------------------------------

_DIGEST_SCRIPT = """
import hashlib
from repro.arena import ArenaCorpus, ExpressionPool
from repro.perf.batch import _corpus_graphs, equivalence_suite

corpus = ArenaCorpus(ExpressionPool())
for label, graph in _corpus_graphs(equivalence_suite(smoke=True)):
    corpus.add(graph, label=label)
print(hashlib.sha256(corpus.to_bytes()).hexdigest())
"""


def _digest_under_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC_ROOT
    out = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT],
        capture_output=True, text=True, env=env, check=True, timeout=300,
    )
    return out.stdout.strip()


def test_interned_ids_are_hash_seed_deterministic():
    digests = {_digest_under_seed(seed) for seed in ("1", "31337")}
    assert len(digests) == 1
    # And the in-process build agrees with the subprocess ones.
    _, corpus = smoke_corpus()
    assert hashlib.sha256(corpus.to_bytes()).hexdigest() == digests.pop()


def test_bytes_roundtrip_is_identity():
    _, corpus = smoke_corpus()
    wire = corpus.to_bytes()
    clone = ArenaCorpus.from_bytes(wire)
    assert clone.to_bytes() == wire
    assert analyze_corpus(clone) == analyze_corpus(corpus)


# -- fused solving ------------------------------------------------------------


def test_fused_sweep_matches_object_pipeline():
    graphs, corpus = smoke_corpus()
    assert analyze_corpus(corpus) == _corpus_legacy(graphs)


def test_fused_sweep_does_no_per_program_interning():
    counter = WorkCounter()
    graphs = _corpus_graphs(equivalence_suite(smoke=True))
    corpus = ArenaCorpus(ExpressionPool(counter=counter))
    for label, graph in graphs:
        corpus.add(graph, label=label, counter=counter)
    lowered = counter.snapshot()
    assert lowered.get("arena_interned", 0) > 0

    results = analyze_corpus(corpus, counter=counter)
    solved = counter.snapshot()
    # The fused sweep reads the pool; it never interns -- neither new
    # rows nor memo hits.
    assert solved.get("arena_interned") == lowered.get("arena_interned")
    assert solved.get("arena_intern_hits") == lowered.get("arena_intern_hits")
    assert solved.get("arena_programs_solved") == len(corpus.programs)
    assert len(results) == len(graphs)


def test_single_program_matches_corpus_row():
    graphs, corpus = smoke_corpus()
    label, graph = graphs[0]
    solo_pool = ExpressionPool()
    solo = lower_cfg(graph, solo_pool, label=label)
    assert analyze_arena(solo, solo_pool) == analyze_corpus(corpus)[label]
