"""The deterministic fault-injection harness (``repro chaos``)."""

from __future__ import annotations

import json

import pytest

from repro.pipeline.passes import default_registry
from repro.robust.chaos import (
    ChaosFault,
    Fault,
    FaultInjector,
    corrupt_result,
    derive_seed,
    make_plan,
    run_chaos,
)
from repro.robust.fallback import default_oracles


@pytest.fixture(scope="module")
def smoke_payload():
    return run_chaos(smoke=True, seed=0)


# -- plans -------------------------------------------------------------------


def test_derive_seed_stable_and_distinct() -> None:
    assert derive_seed(0, "a") == derive_seed(0, "a")
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert derive_seed(0, "a") != derive_seed(1, "a")


def test_plan_guarantees_rotating_target() -> None:
    names = default_registry().names()
    oracles = frozenset(default_oracles())
    for index in range(len(names)):
        plan = make_plan(0, index, f"p{index}", names, oracles)
        assert names[index % len(names)] in plan


def test_plan_keeps_unrecoverable_faults_on_the_target_only() -> None:
    names = default_registry().names()
    oracles = frozenset(default_oracles())
    for index in range(len(names) * 2):
        target = names[index % len(names)]
        plan = make_plan(7, index, f"p{index}", names, oracles)
        for name, fault in plan.items():
            if name == target:
                if name not in oracles:
                    # No oracle: corruption would propagate silently.
                    assert fault.kind in ("raise", "delay")
            else:
                # Extra faults only on always-recoverable passes.
                assert name in oracles


# -- injector and corruption -------------------------------------------------


def test_injector_triggers_each_fault_once() -> None:
    calls = []

    class Spec:
        name = "dfs"

        @staticmethod
        def build(graph, deps, counter):
            calls.append(1)
            return "result"

    injector = FaultInjector({"dfs": Fault("dfs", "raise")})
    fault = injector.fault_for("dfs")
    with pytest.raises(ChaosFault):
        injector.apply(fault, Spec, None, {}, None)
    assert injector.fault_for("dfs") is None  # consumed
    assert injector.triggered == [fault]
    assert not calls


def test_corrupt_result_damages_but_keeps_shape() -> None:
    damaged = corrupt_result({"a": 1, "b": 2})
    assert isinstance(damaged, dict) and len(damaged) == 1

    class TreeLike:
        def __init__(self):
            self.idom = {0: None, 1: 0, 2: 1}

    tree = corrupt_result(TreeLike())
    assert len(tree.idom) == 2  # one non-root entry dropped

    class DFSLike:
        def __init__(self):
            self.preorder = [0, 1, 2]

    dfs = corrupt_result(DFSLike())
    assert dfs.preorder == [2, 1, 0]

    with pytest.raises(ChaosFault):
        corrupt_result(object())


# -- the sweep ---------------------------------------------------------------


def test_smoke_sweep_satisfies_contract(smoke_payload) -> None:
    payload = smoke_payload
    assert payload["ok"] is True
    totals = payload["totals"]
    assert totals["programs"] == 24
    assert totals["faults_injected"] > 0
    # Every registered pass took at least one fault.
    assert len(totals["passes_covered"]) == totals["passes_registered"]
    for row in payload["rows"]:
        assert row["outcome"] in ("recovered", "quarantined", "clean")
        if row["outcome"] == "recovered":
            # Recovery means byte-identical results to the clean run.
            assert row["identical"] is True
        if row["outcome"] == "quarantined":
            quarantine = row["quarantine"]
            assert quarantine["minimized_source"].strip()
            assert (
                quarantine["minimized_stmts"] <= quarantine["original_stmts"]
            )


def test_smoke_sweep_is_deterministic(smoke_payload) -> None:
    again = run_chaos(smoke=True, seed=0)
    assert json.dumps(again, sort_keys=True) == json.dumps(
        smoke_payload, sort_keys=True
    )


def test_different_seed_changes_the_plan(smoke_payload) -> None:
    other = run_chaos(smoke=True, seed=1)
    assert json.dumps(other, sort_keys=True) != json.dumps(
        smoke_payload, sort_keys=True
    )


def test_quarantine_dir_receives_repro_artifacts(tmp_path) -> None:
    suite = [
        {"label": f"random-{seed}", "family": "random", "args": [seed, 18, 4]}
        for seed in range(2)
    ]
    payload = run_chaos(
        suite=suite, seed=0, quarantine_dir=str(tmp_path)
    )
    quarantined = [
        row for row in payload["rows"] if row["outcome"] == "quarantined"
    ]
    written = list(tmp_path.glob("*.json"))
    assert len(written) == len(quarantined)
    for path in written:
        record = json.loads(path.read_text())
        assert record["schema"] == "repro.quarantine/1"
        assert record["minimized_source"]
        assert record["error"]["type"]


def test_cli_chaos_smoke(tmp_path, capsys) -> None:
    from repro.cli import main

    out = str(tmp_path / "chaos.json")
    assert main(["chaos", "--smoke", "--seed", "0", "--output", out]) == 0
    payload = json.load(open(out))
    assert payload["schema"] == "repro.chaos/1"
    assert payload["ok"] is True
    stdout = capsys.readouterr().out
    assert "passes covered" in stdout
