"""End-to-end divergence triage (PR 5, satellite: ddmin e2e).

Plant a real miscompile, hand the failing trial to the triage pipeline,
and require a small reproducer: ddmin over the base program with the
replay predicate must shrink the seed program to at most ten lines while
the same oracle still fails, and the fingerprint must be stable so the
same bug found twice deduplicates.
"""

from __future__ import annotations

import json
import random

from repro.cfg.builder import build_cfg
from repro.fuzz.harness import derive_seed, trial_context
from repro.fuzz.mutators import MUTATORS
from repro.fuzz.oracles import run_oracles
from repro.fuzz.triage import (
    FUZZ_REPRO_SCHEMA,
    divergence_fingerprint,
    load_known_fingerprints,
    triage_divergence,
    write_reproducer,
)
from repro.workloads.generators import random_program


def _planted_trial():
    """The first random-program trial (by seed) whose planted miscompile
    applies and trips the io oracle; fully deterministic."""
    for seed in range(30):
        label = f"random-{seed}"
        fuzz_seed = derive_seed(0, f"{label}:plant-miscompile")
        program = random_program(seed, 16, 4)
        base_graph = build_cfg(program)
        context = trial_context(
            program, base_graph, fuzz_seed, "plant-miscompile", family="random"
        )
        mutation = MUTATORS["plant-miscompile"](
            program, random.Random(fuzz_seed), context
        )
        if not mutation.applied:
            continue
        mutant_graph = mutation.graph or build_cfg(mutation.program)
        context = dict(context, expectations=mutation.expectations)
        failures = [
            v
            for v in run_oracles(base_graph, mutant_graph, context)
            if v.oracle == "io" and not v.ok
        ]
        if failures:
            spec = {
                "label": label,
                "family": "random",
                "args": [seed, 16, 4],
                "fuzz": {"mutator": "plant-miscompile", "seed": fuzz_seed},
            }
            return spec, {"oracle": "io", "detail": failures[0].detail}
    raise AssertionError("no planted trial tripped the io oracle in 30 seeds")


def test_planted_miscompile_minimizes_to_small_reproducer(tmp_path):
    spec, divergence = _planted_trial()
    record = triage_divergence(spec, divergence, minimize_budget=400)

    assert record["schema"] == FUZZ_REPRO_SCHEMA
    assert record["minimized"], "replay predicate failed to reproduce"
    assert record["predicate_evals"] > 0
    assert record["minimized_stmts"] <= 10, record["minimized_source"]
    assert record["minimized_stmts"] <= record["original_stmts"]

    # Stable fingerprint: triaging the same trial again lands on the
    # same 12-hex id, so dedup across runs works.
    again = triage_divergence(spec, divergence, minimize_budget=400)
    assert again["fingerprint"] == record["fingerprint"]
    assert again["minimized_source"] == record["minimized_source"]

    # Round-trip through the repro directory: written reproducers become
    # known fingerprints, which is what un-gates CI for triaged bugs.
    path = write_reproducer(record, str(tmp_path))
    stored = json.loads(open(path).read())
    assert stored["fingerprint"] == record["fingerprint"]
    assert load_known_fingerprints(str(tmp_path)) == {record["fingerprint"]}


def test_fingerprint_masks_volatile_payload():
    a = divergence_fingerprint(
        "reorder", "io", "outputs diverge at env=[('p', 3)]: (1, 2) vs (1, 3)"
    )
    b = divergence_fingerprint(
        "reorder", "io", "outputs diverge at env=[('q', 7)]: (9, 12) vs (8, 4)"
    )
    c = divergence_fingerprint("reorder", "constprop", "anything")
    assert a == b, "same bug class must share a fingerprint"
    assert a != c, "different oracle is a different bug class"


def test_unreproducible_divergence_stays_unminimized():
    spec = {
        "label": "random-0",
        "family": "random",
        "args": [0, 16, 4],
        # A seed under which the reorder mutator finds a legal swap but
        # every oracle passes: the replay predicate never fails, so the
        # record must come back unminimized (and would trip the gate).
        "fuzz": {"mutator": "reorder", "seed": derive_seed(0, "random-0:reorder")},
    }
    record = triage_divergence(
        spec, {"oracle": "io", "detail": "synthetic"}, minimize_budget=50
    )
    assert not record["minimized"]
    assert record["predicate_evals"] == 0
    assert record["minimized_source"] == record["source"]
