"""Dominance tests: worked examples, a brute-force oracle, and a
networkx cross-check on generated CFGs."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.graphs.dominance import (
    cfg_dominators,
    cfg_postdominators,
    dominator_tree,
    edge_dominators,
    edge_key,
    edge_postdominators,
    node_key,
)
from repro.lang.parser import parse_program
from repro.workloads.generators import irreducible_program, random_program


def adj(graph):
    return lambda n: graph.get(n, [])


def preds_of(graph):
    rev = {}
    for u, vs in graph.items():
        rev.setdefault(u, [])
        for v in vs:
            rev.setdefault(v, []).append(u)
    return lambda n: rev.get(n, [])


def brute_force_dominates(graph, root, a, b):
    """a dom b iff b is unreachable from root when a is removed."""
    if a == b:
        return True
    if a == root:
        return True
    seen, stack = {root}, [root]
    while stack:
        n = stack.pop()
        for s in graph.get(n, []):
            if s != a and s not in seen:
                seen.add(s)
                stack.append(s)
    return b not in seen


def test_diamond_dominators():
    g = {0: [1, 2], 1: [3], 2: [3], 3: []}
    tree = dominator_tree(0, adj(g), preds_of(g))
    assert tree.idom_of(3) == 0
    assert tree.idom_of(1) == 0 and tree.idom_of(2) == 0
    assert tree.dominates(0, 3)
    assert not tree.dominates(1, 3)


def test_loop_dominators():
    g = {0: [1], 1: [2], 2: [1, 3], 3: []}
    tree = dominator_tree(0, adj(g), preds_of(g))
    assert tree.idom_of(2) == 1
    assert tree.idom_of(3) == 2
    assert tree.dominates(1, 3)


def test_depths():
    g = {0: [1, 2], 1: [3], 2: [3], 3: []}
    tree = dominator_tree(0, adj(g), preds_of(g))
    assert tree.depth(0) == 0
    assert tree.depth(1) == tree.depth(2) == tree.depth(3) == 1


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=40, deadline=None)
def test_dominators_match_brute_force(seed):
    prog = random_program(seed, size=12, num_vars=3)
    g = build_cfg(prog)
    tree = cfg_dominators(g)
    nodes = sorted(g.nodes)
    graph = {n: g.succs(n) for n in nodes}
    for a in nodes[::3]:
        for b in nodes[::3]:
            assert tree.dominates(a, b) == brute_force_dominates(
                graph, g.start, a, b
            )


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=30, deadline=None)
def test_idoms_match_networkx(seed):
    prog = random_program(seed, size=15, num_vars=3)
    g = build_cfg(prog)
    tree = cfg_dominators(g)
    nxg = nx.DiGraph()
    nxg.add_nodes_from(g.nodes)
    nxg.add_edges_from((e.src, e.dst) for e in g.edges.values())
    expected = nx.immediate_dominators(nxg, g.start)
    for node, idom in expected.items():
        if node == g.start:
            assert tree.idom_of(node) is None
        else:
            assert tree.idom_of(node) == idom


@pytest.mark.parametrize("seed", range(4))
def test_irreducible_graphs_agree_with_networkx(seed):
    g = build_cfg(irreducible_program(seed))
    tree = cfg_dominators(g)
    nxg = nx.DiGraph()
    nxg.add_nodes_from(g.nodes)
    nxg.add_edges_from((e.src, e.dst) for e in g.edges.values())
    expected = nx.immediate_dominators(nxg, g.start)
    for node, idom in expected.items():
        if node != g.start:
            assert tree.idom_of(node) == idom


def test_postdominators_on_diamond():
    g = build_cfg(
        parse_program("if (p) { x := 1; } else { x := 2; } print x;")
    )
    post = cfg_postdominators(g)
    printer = next(
        n.id for n in g.nodes.values() if n.kind.value == "print"
    )
    switch = next(
        n.id for n in g.nodes.values() if n.kind.value == "switch"
    )
    assert post.dominates(printer, switch)
    assert post.dominates(g.end, g.start)


def test_edge_dominance_on_diamond():
    g = build_cfg(
        parse_program("if (p) { x := 1; } else { x := 2; } print x;")
    )
    dom = edge_dominators(g)
    post = edge_postdominators(g)
    entry = g.out_edge(g.start)
    exit_edge = g.in_edge(g.end)
    # The entry edge dominates every edge; the exit edge postdominates all.
    for eid in g.edges:
        assert dom.dominates(edge_key(entry.id), edge_key(eid))
        assert post.dominates(edge_key(exit_edge.id), edge_key(eid))
    # Branch arms dominate nothing outside themselves.
    switch = next(n.id for n in g.nodes.values() if n.kind.value == "switch")
    t_edge = g.switch_edge(switch, "T")
    assert not dom.dominates(edge_key(t_edge.id), edge_key(exit_edge.id))


def test_edge_dominance_mixes_nodes_and_edges():
    g = build_cfg(parse_program("x := 1; print x;"))
    dom = edge_dominators(g)
    assign = next(n.id for n in g.nodes.values() if n.kind.value == "assign")
    out = g.out_edge(assign)
    assert dom.dominates(node_key(assign), edge_key(out.id))
    assert dom.dominates(edge_key(g.in_edge(assign).id), node_key(assign))
