"""Lint output formats: golden-tested ``repro.lint/1`` JSON and SARIF
2.1.0 documents, the text renderer, and the baseline suppression cycle.

The CLI is driven through ``main`` from a temporary working directory so
the file path embedded in the payloads is the stable relative name
``demo.dfg``.  Regenerate goldens after an intentional schema change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_lint_output.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cfg.builder import build_cfg
from repro.cli import main
from repro.lang.parser import parse_program
from repro.lint.engine import LintEngine
from repro.lint.model import RULES, SARIF_LEVELS
from repro.lint.output import (
    BASELINE_SCHEMA,
    LINT_SCHEMA,
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    baseline_fingerprints,
    baseline_payload,
    filter_baseline,
    render_text,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small but rule-dense: R001, R003, R004, R005, R009, R010 all fire,
#: and line 4 hosts an info-only finding (for the --dot color test).
DEMO = """\
x := 1;
x := 2;
y := x;
t := y + 1;
y := y;
if (0) {
    dead := x;
}
print t + y + boom;
"""


@pytest.fixture
def demo(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    Path("demo.dfg").write_text(DEMO)
    return "demo.dfg"


def _check_golden(name: str, payload: dict) -> None:
    path = GOLDEN_DIR / name
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if os.environ.get("REGEN_GOLDEN"):
        path.write_text(text)
    assert text == path.read_text(), f"{name} drifted; see module docstring"


def test_lint_json_matches_golden(demo, capsys):
    assert main(["lint", demo, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == LINT_SCHEMA
    assert payload["file"] == "demo.dfg"
    _check_golden("lint_demo.json", payload)


def test_lint_sarif_matches_golden(demo, capsys):
    assert main(["lint", demo, "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == SARIF_VERSION
    assert payload["$schema"] == SARIF_SCHEMA_URI
    _check_golden("lint_demo.sarif", payload)


def test_sarif_structure_is_well_formed(demo, capsys):
    main(["lint", demo, "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    codes = [rule["id"] for rule in driver["rules"]]
    assert codes == sorted(RULES)  # the full catalog, always
    assert run["columnKind"] == "unicodeCodePoints"
    assert run["results"]
    for result in run["results"]:
        # ruleIndex must point at the matching catalog entry.
        assert codes[result["ruleIndex"]] == result["ruleId"]
        assert result["level"] == SARIF_LEVELS[RULES[result["ruleId"]].severity]
        assert result["partialFingerprints"]["reproLint/v1"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
    # Verified definite findings carry the property the CI gate reads.
    errors = [r for r in run["results"] if r["level"] == "error"]
    assert errors and all(r["properties"]["verified"] for r in errors)


def test_lint_text_format(demo, capsys):
    assert main(["lint", demo]) == 1
    out = capsys.readouterr().out
    assert "demo.dfg:1:1: definite R003 [dead-store]" in out
    assert "(verified)" in out
    assert "fix: remove the assignment" in out
    # The R010 related note points back at the copy site.
    assert "note: copied here" in out
    assert out.rstrip().splitlines()[-1] == (
        "7 findings (5 definite, 0 possible, 2 info)"
    )


def test_lint_output_file_and_fail_on(demo, tmp_path, capsys):
    out = str(tmp_path / "report.json")
    assert main(["lint", demo, "--format", "json", "--output", out,
                 "--fail-on", "never"]) == 0
    assert "wrote" in capsys.readouterr().out
    assert json.load(open(out))["schema"] == LINT_SCHEMA
    # 'info' is the strictest threshold: any finding at all fails.
    assert main(["lint", demo, "--fail-on", "info"]) == 1


def test_baseline_roundtrip_suppresses_everything(demo, capsys):
    assert main(["lint", demo, "--write-baseline", "base.json"]) == 0
    assert "suppressions" in capsys.readouterr().out
    assert main(["lint", demo, "--baseline", "base.json"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("0 findings")
    assert "suppressed by baseline" in out
    # New findings are NOT suppressed: a fresh defect still fails.
    Path("demo.dfg").write_text(DEMO + "w := w;\nprint w;\n")
    assert main(["lint", demo, "--baseline", "base.json"]) == 1
    out = capsys.readouterr().out
    assert "R009" in out and "'w'" in out


def test_baseline_schema_is_validated(tmp_path):
    with pytest.raises(ValueError, match=BASELINE_SCHEMA):
        baseline_fingerprints({"schema": "something/else"})


def test_filter_baseline_counts():
    graph = build_cfg(parse_program(DEMO))
    diags = LintEngine(graph).run(verify=False).diagnostics
    payload = baseline_payload(diags)
    assert payload["schema"] == BASELINE_SCHEMA
    prints = baseline_fingerprints(payload)
    kept, suppressed = filter_baseline(diags, prints)
    assert kept == [] and suppressed == len(diags)
    kept, suppressed = filter_baseline(diags, frozenset())
    assert kept == diags and suppressed == 0


def test_render_text_handles_spanless_findings():
    graph = build_cfg(parse_program("x := 1; print x;"))
    result = LintEngine(graph).run(verify=False)
    from repro.lint.model import make_diagnostic

    diag = make_diagnostic("R004", None, "no position", node=1)
    text = render_text("f.dfg", [diag])
    assert text.startswith("f.dfg:?:?: definite R004")
    assert result.diagnostics == []  # clean program stays clean


def test_example_demo_fires_every_rule():
    source = (
        Path(__file__).parents[1] / "examples" / "lint_demo.dfg"
    ).read_text()
    graph = build_cfg(parse_program(source))
    result = LintEngine(graph).run(verify=True)
    assert {d.rule for d in result.diagnostics} == set(RULES)
    assert result.unverified_definite() == 0


def test_lint_dot_colors_flagged_nodes(demo, tmp_path, capsys):
    dot = str(tmp_path / "lint.dot")
    assert main(["lint", demo, "--dot", dot, "--fail-on", "never"]) == 0
    text = open(dot).read()
    assert text.startswith("digraph lint")
    assert 'style=filled, fillcolor="#f4cccc"' in text  # definite
    assert 'fillcolor="#d9ead3"' in text  # info (the R010 copy read)


def test_lint_no_verify_leaves_findings_unconfirmed(demo, capsys):
    assert main(["lint", demo, "--no-verify"]) == 1
    out = capsys.readouterr().out
    assert "(verified)" not in out
