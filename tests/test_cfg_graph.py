"""Unit tests for the CFG data structure."""

import pytest

from repro.cfg.graph import CFG, CFGError, NodeKind
from repro.lang.parser import parse_expr


def tiny_graph():
    g = CFG()
    start = g.add_node(NodeKind.START)
    end = g.add_node(NodeKind.END)
    a = g.add_node(NodeKind.ASSIGN, target="x", expr=parse_expr("1"))
    g.add_edge(start, a)
    g.add_edge(a, end)
    return g, start, a, end


def test_add_and_query_nodes_edges():
    g, start, a, end = tiny_graph()
    assert g.num_nodes == 3 and g.num_edges == 2
    assert g.succs(start) == [a]
    assert g.preds(end) == [a]
    assert g.out_edge(a).dst == end
    assert g.in_edge(a).src == start


def test_validate_accepts_tiny_graph():
    g, *_ = tiny_graph()
    g.validate(normalized=True)


def test_assign_requires_target_and_expr():
    g = CFG()
    with pytest.raises(CFGError):
        g.add_node(NodeKind.ASSIGN, target="x")
    with pytest.raises(CFGError):
        g.add_node(NodeKind.ASSIGN, expr=parse_expr("1"))


def test_switch_requires_expr():
    g = CFG()
    with pytest.raises(CFGError):
        g.add_node(NodeKind.SWITCH)


def test_defs_and_uses():
    g, _, a, _ = tiny_graph()
    node = g.node(a)
    assert node.defs() == frozenset({"x"})
    assert node.uses() == frozenset()
    s = g.add_node(NodeKind.SWITCH, expr=parse_expr("x + y > 0"))
    assert g.node(s).uses() == frozenset({"x", "y"})
    assert g.node(s).defs() == frozenset()


def test_variables_and_expressions():
    g, *_ = tiny_graph()
    p = g.add_node(NodeKind.PRINT, expr=parse_expr("(a + b) * x"))
    assert g.variables() == frozenset({"x", "a", "b"})
    assert parse_expr("a + b") in g.expressions()
    assert parse_expr("(a + b) * x") in g.expressions()
    del p


def test_remove_edge_updates_adjacency():
    g, start, a, end = tiny_graph()
    eid = g.out_edge(a).id
    g.remove_edge(eid)
    assert g.succs(a) == []
    assert g.preds(end) == []


def test_remove_node_removes_incident_edges():
    g, start, a, end = tiny_graph()
    g.remove_node(a)
    assert g.num_edges == 0
    assert a not in g.nodes


def test_parallel_edges_are_allowed():
    g = CFG()
    s = g.add_node(NodeKind.START)
    sw = g.add_node(NodeKind.SWITCH, expr=parse_expr("p"))
    m = g.add_node(NodeKind.MERGE)
    e = g.add_node(NodeKind.END)
    g.add_edge(s, sw)
    g.add_edge(sw, m, label="T")
    g.add_edge(sw, m, label="F")
    g.add_edge(m, e)
    g.validate(normalized=True)
    with pytest.raises(CFGError):
        g.edge_between(sw, m)  # ambiguous


def test_switch_edge_lookup():
    g = CFG()
    s = g.add_node(NodeKind.START)
    sw = g.add_node(NodeKind.SWITCH, expr=parse_expr("p"))
    m = g.add_node(NodeKind.MERGE)
    e = g.add_node(NodeKind.END)
    g.add_edge(s, sw)
    g.add_edge(sw, m, label="T")
    g.add_edge(sw, m, label="F")
    g.add_edge(m, e)
    assert g.switch_edge(sw, "T").label == "T"
    with pytest.raises(CFGError):
        g.switch_edge(sw, "X")


def test_validate_rejects_unreachable_node():
    g, *_ = tiny_graph()
    g.add_node(NodeKind.MERGE)  # floating
    with pytest.raises(CFGError):
        g.validate()


def test_validate_rejects_node_not_reaching_end():
    g, start, a, end = tiny_graph()
    nop = g.add_node(NodeKind.NOP)
    g.add_edge(a, nop)  # a now has 2 out-edges; nop is a dead end
    with pytest.raises(CFGError):
        g.validate()


def test_validate_rejects_duplicate_switch_labels():
    g = CFG()
    s = g.add_node(NodeKind.START)
    sw = g.add_node(NodeKind.SWITCH, expr=parse_expr("p"))
    e = g.add_node(NodeKind.END)
    m = g.add_node(NodeKind.MERGE)
    g.add_edge(s, sw)
    g.add_edge(sw, m, label="T")
    g.add_edge(sw, m, label="T")
    g.add_edge(m, e)
    with pytest.raises(CFGError):
        g.validate(normalized=True)


def test_copy_is_deep_for_structure():
    g, start, a, end = tiny_graph()
    dup = g.copy()
    dup.remove_node(a)
    assert a in g.nodes
    assert g.num_edges == 2
    g.validate(normalized=True)


def test_copy_preserves_ids_and_labels():
    g = CFG()
    s = g.add_node(NodeKind.START)
    sw = g.add_node(NodeKind.SWITCH, expr=parse_expr("p"))
    m = g.add_node(NodeKind.MERGE)
    e = g.add_node(NodeKind.END)
    g.add_edge(s, sw)
    t = g.add_edge(sw, m, label="T")
    g.add_edge(sw, m, label="F")
    g.add_edge(m, e)
    dup = g.copy()
    assert dup.edge(t).label == "T"
    assert dup.start == g.start and dup.end == g.end
