"""Idempotence of the optimizer passes (PR-5 satellite).

Applying any single pass twice must produce the same graph as applying
it once: a pass that keeps finding work on its own output either loops
(EPR's zero-profit motion treadmill, fixed in this PR by the
cycle-equivalence profit filter) or silently degrades determinism.
The property is checked over the full 204-program equivalence corpus
(plus array workloads) by comparing structural graph fingerprints.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dce import dfg_dead_code_elimination
from repro.core.epr import epr_all
from repro.fuzz.harness import fuzz_suite
from repro.opt.copyprop import copy_propagation
from repro.opt.transform import fold_and_eliminate
from repro.pipeline.manager import AnalysisManager
from repro.robust.errors import graph_fingerprint
from repro.util.metrics import WorkCounter

CORPUS = fuzz_suite(smoke=False)

#: EPR is ~20x the cost of the other passes, so it sweeps a fixed
#: stratified slice of the corpus (every 4th program still covers every
#: family) while the cheap passes sweep everything.
EPR_CORPUS = CORPUS[::4]


def _program_for(spec):
    from repro.perf.batch import resolve_family

    return resolve_family(spec["family"])(*spec["args"])


def _apply(graph, name):
    if name == "epr":
        manager = AnalysisManager(graph)
        transformed, _ = epr_all(graph, counter=WorkCounter(), manager=manager)
        return transformed
    if name == "constprop":
        fold_and_eliminate(
            graph, analyze=lambda g: dfg_constant_propagation(g).rhs_values
        )
        return graph
    if name == "copyprop":
        copy_propagation(graph)
        return graph
    if name == "dce":
        dfg_dead_code_elimination(graph)
        return graph
    raise ValueError(name)


def _assert_idempotent(spec, pass_name):
    graph = build_cfg(_program_for(spec))
    once = _apply(graph.copy(), pass_name)
    twice = _apply(once.copy(), pass_name)
    assert graph_fingerprint(once) == graph_fingerprint(twice), (
        f"{pass_name} is not idempotent on {spec['label']}: "
        f"{once.num_nodes} -> {twice.num_nodes} nodes"
    )


@pytest.mark.parametrize(
    "pass_name", ["constprop", "copyprop", "dce"]
)
def test_cheap_passes_idempotent_over_corpus(pass_name):
    for spec in CORPUS:
        _assert_idempotent(spec, pass_name)


@pytest.mark.parametrize(
    "spec", EPR_CORPUS, ids=lambda spec: spec["label"]
)
def test_epr_idempotent(spec):
    _assert_idempotent(spec, "epr")


def test_epr_zero_profit_guard_fires():
    """The regression that motivated the guard: on an already-EPR'd
    graph, a second run used to walk single-site computations up their
    own straight-line SESE chains forever (insert one node, delete one
    node, zero dynamic profit, repeat).  The cycle-equivalence filter
    must reject every such motion, so re-running EPR is a no-op."""
    from repro.workloads.generators import random_program

    grew = 0
    for seed in (0, 1, 3, 4):
        graph = build_cfg(random_program(seed, size=18, num_vars=4))
        once = _apply(graph, "epr")
        nodes_after_once = once.num_nodes
        twice = _apply(once.copy(), "epr")
        assert twice.num_nodes == nodes_after_once, seed
        grew += int(nodes_after_once > graph.num_nodes)
    # The guard must not neuter EPR itself: first runs still transform.
    assert grew >= 1
