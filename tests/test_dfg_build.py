"""DFG construction tests: Definition 6 verification, Figure 1/2
structure, multiedges, control edges, demand restriction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.core.build import build_dfg
from repro.core.dfg import CTRL_VAR, HeadKind, PortKind
from repro.core.verify import verify_dfg
from repro.defuse.chains import build_def_use_chains
from repro.lang.parser import parse_program
from repro.ssa.cytron import build_ssa_cytron
from repro.workloads import suites
from repro.workloads.generators import irreducible_program, random_program
from repro.workloads.ladders import defuse_worst_case, loop_nest


def dfg_of(source_or_prog):
    prog = (
        parse_program(source_or_prog)
        if isinstance(source_or_prog, str)
        else source_or_prog
    )
    g = build_cfg(prog)
    dfg = build_dfg(g)
    return g, dfg


# -- structural verification ---------------------------------------------------


@given(st.integers(min_value=0, max_value=600))
@settings(max_examples=50, deadline=None)
def test_definition6_holds_on_generated_programs(seed):
    g, dfg = dfg_of(random_program(seed, size=14, num_vars=3))
    verify_dfg(g, dfg)


def test_definition6_holds_on_paper_examples():
    for make in (
        suites.figure1,
        suites.figure2,
        suites.figure3a,
        suites.figure3b,
        suites.figure6,
        suites.figure7,
        suites.section1_example,
    ):
        g, dfg = dfg_of(make())
        verify_dfg(g, dfg)


def test_definition6_holds_on_irreducible_graphs():
    for seed in range(6):
        g, dfg = dfg_of(irreducible_program(seed))
        verify_dfg(g, dfg)


def test_definition6_holds_on_loop_nests():
    g, dfg = dfg_of(loop_nest(3, width=2))
    verify_dfg(g, dfg)


# -- figure structure -----------------------------------------------------------


def test_figure1_x_bypasses_conditional_y_is_intercepted():
    """Figure 1(c): x's dependence runs from its definition straight to
    its use in the switch; y's dependences are intercepted by the
    conditional's operators."""
    g, dfg = dfg_of(suites.figure1())
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    x_source = dfg.use_sources[(switch, "x")]
    assert x_source.kind is PortKind.DEF
    assert g.node(x_source.node).target == "x"
    # y's final use is fed by the merge operator, not directly by a def.
    printer = next(n.id for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    y_source = dfg.use_sources[(printer, "y")]
    assert y_source.kind is PortKind.MERGE
    # y entering the conditional is intercepted by a switch operator.
    assert any(v == "y" for (_s, v) in dfg.switch_inputs)


def test_figure2_multiedge_from_x_definition():
    """Figure 2(c): "two dependence edges start at the assignment
    x := 1" -- a multiedge whose heads are the later uses of x."""
    g, dfg = dfg_of(suites.figure2())
    x_def = next(n for n in g.assign_nodes() if n.target == "x")
    from repro.core.dfg import Port

    port = Port(PortKind.DEF, "x", x_def.id)
    heads = dfg.heads_of(port)
    assert len(heads) == 2 or (
        len(heads) == 1 and heads[0].kind is not HeadKind.USE
    )
    multi = dfg.multiedges()
    assert port in multi


def test_sequential_uses_share_one_tail():
    g, dfg = dfg_of("x := 1; a := x + 1; b := x + 2; print a + b;")
    x_def = next(n for n in g.assign_nodes() if n.target == "x")
    from repro.core.dfg import Port

    heads = dfg.heads_of(Port(PortKind.DEF, "x", x_def.id))
    assert len(heads) == 2
    assert all(h.kind is HeadKind.USE for h in heads)


def test_redefinition_cuts_the_web():
    g, dfg = dfg_of("x := 1; a := x; x := 2; b := x; print a + b;")
    defs = [n for n in g.assign_nodes() if n.target == "x"]
    from repro.core.dfg import Port

    for d in defs:
        heads = dfg.heads_of(Port(PortKind.DEF, "x", d.id))
        assert len(heads) == 1


def test_entry_port_feeds_uninitialized_use():
    g, dfg = dfg_of("print q;")
    printer = next(n.id for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert dfg.use_sources[(printer, "q")].kind is PortKind.ENTRY


def test_loop_merge_intercepts_loop_carried_variable():
    g, dfg = dfg_of("i := 0; while (i < 3) { i := i + 1; } print i;")
    merge = next(n.id for n in g.nodes.values() if n.kind is NodeKind.MERGE)
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    # The switch's use of i is fed by the loop merge operator.
    assert dfg.use_sources[(switch, "i")].kind is PortKind.MERGE
    assert dfg.use_sources[(switch, "i")].node == merge
    # The merge has an input per in-edge.
    from repro.core.dfg import Port

    inputs = dfg.merge_inputs[Port(PortKind.MERGE, "i", merge)]
    assert set(inputs) == {e.id for e in g.in_edges(merge)}


def test_variable_unused_in_loop_bypasses_it():
    g, dfg = dfg_of(
        "x := 7; i := 0; while (i < 3) { i := i + 1; } print x;"
    )
    printer = next(n.id for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    src = dfg.use_sources[(printer, "x")]
    assert src.kind is PortKind.DEF  # straight from the def, past the loop


# -- control edges ---------------------------------------------------------------


def test_control_edges_attach_to_variable_free_statements():
    g, dfg = dfg_of("x := 5; if (p) { y := 1; } print y;")
    x_def = next(n for n in g.assign_nodes() if n.target == "x")
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert (x_def.id, CTRL_VAR) in dfg.use_sources
    assert (y_def.id, CTRL_VAR) in dfg.use_sources
    # The conditional's arm statement hangs off the switch's control port.
    assert dfg.use_sources[(y_def.id, CTRL_VAR)].kind is PortKind.SWITCH


def test_control_edges_can_be_disabled():
    g = build_cfg(parse_program("x := 5; print x;"))
    dfg = build_dfg(g, control_edges=False)
    assert not any(v == CTRL_VAR for (_n, v) in dfg.use_sources)


def test_demand_restriction_to_variable_subset():
    g = build_cfg(parse_program("x := 1; y := 2; print x; print y;"))
    dfg = build_dfg(g, variables={"x"}, control_edges=False)
    assert all(v == "x" for (_n, v) in dfg.use_sources)


# -- size (experiment F1's correctness side) -------------------------------------


def test_dfg_size_linear_where_chains_quadratic():
    def sizes(n):
        g = build_cfg(defuse_worst_case(n))
        return (
            build_def_use_chains(g).size(),
            build_ssa_cytron(g).size(),
            build_dfg(g).size(include_control=False),
        )

    chains5, ssa5, dfg5 = sizes(5)
    chains10, ssa10, dfg10 = sizes(10)
    assert chains10 > 3 * chains5  # quadratic
    assert ssa10 < 3 * ssa5  # linear
    assert dfg10 < 3 * dfg5  # linear


def test_every_use_has_exactly_one_source():
    for seed in range(10):
        g, dfg = dfg_of(random_program(seed, size=12, num_vars=3))
        for node in g.nodes.values():
            for var in node.uses():
                assert (node.id, var) in dfg.use_sources
