"""Recursion audit: analyses must survive pathologically deep CFGs.

A 5,000-block straight-line chain produces a dominator tree that *is*
the chain, DFS paths 5,000 frames deep, and bracket lists propagated
through 5,000 nodes.  CPython's default recursion limit is 1,000, so any
analysis that recurses per node dies here.  Everything in the project is
written with explicit stacks instead; raising ``sys.setrecursionlimit``
is banned (it trades a clean failure for interpreter stack corruption on
genuinely deep inputs).
"""

from __future__ import annotations

import sys

import pytest

from repro.cfg.builder import build_cfg
from repro.controldep.sese import ProgramStructure
from repro.core.build import build_dfg
from repro.graphs.dfs import depth_first_search
from repro.graphs.dominance import cfg_dominators
from repro.pipeline.manager import AnalysisManager
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.workloads.ladders import straight_line

DEPTH = 5_000


@pytest.fixture(scope="module")
def deep_graph():
    limit = sys.getrecursionlimit()
    graph = build_cfg(straight_line(DEPTH))
    assert len(graph.nodes) > DEPTH
    yield graph
    # No analysis (nor the CFG builder) may have bumped the limit.
    assert sys.getrecursionlimit() == limit


def test_deep_traversals_and_dominators(deep_graph) -> None:
    dfs = depth_first_search([deep_graph.start], deep_graph.succs)
    assert len(dfs.preorder) == len(deep_graph.nodes)
    dom = cfg_dominators(deep_graph)
    # The chain is its own dominator tree: every node's idom is its
    # unique predecessor.
    for nid, parent in dom.idom.items():
        if parent is not None:
            assert [parent] == deep_graph.preds(nid)


def test_deep_structure_and_dfg(deep_graph) -> None:
    structure = ProgramStructure(deep_graph)
    # Every consecutive pair of chain edges bounds a canonical region.
    assert len(structure.regions) == len(deep_graph.edges) - 1
    dfg = build_dfg(deep_graph, structure=structure)
    assert dfg.use_sources


def test_deep_ssa_both_constructions(deep_graph) -> None:
    cytron = build_ssa_cytron(deep_graph)
    from_dfg = build_ssa_from_dfg(deep_graph)
    # Straight-line code has no merges, hence no phis, and each of the
    # 5,000 assignments gets a fresh name in both constructions.
    assert not cytron.phis and not from_dfg.phis
    assert len(cytron.def_names) == len(from_dfg.def_names) == DEPTH + 2


def test_deep_full_pipeline(deep_graph) -> None:
    manager = AnalysisManager(deep_graph)
    manager.run_all()
