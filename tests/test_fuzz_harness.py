"""The fuzz sweep driver: schedule, budget, pooling, gate (PR 5)."""

from __future__ import annotations

import json

from repro.fuzz.harness import (
    FUZZ_SCHEMA,
    fuzz_suites,
    resolve_fuzz_suite,
    run_fuzz,
    run_trial,
    trial_specs,
)
from repro.fuzz.mutators import MUTATORS
from repro.robust.errors import InputError


def test_trial_schedule_is_program_major_and_seeded():
    suite = resolve_fuzz_suite("smoke")
    specs = trial_specs(0, suite)
    assert len(specs) == len(suite) * len(MUTATORS)
    # Program-major: the first len(MUTATORS) trials share the first label.
    first = suite[0]["label"]
    assert [s["label"] for s in specs[: len(MUTATORS)]] == [first] * len(MUTATORS)
    assert [s["fuzz"]["mutator"] for s in specs[: len(MUTATORS)]] == list(MUTATORS)
    # Seeds differ per (program, mutator) and change with the run seed.
    seeds = {s["fuzz"]["seed"] for s in specs}
    assert len(seeds) == len(specs)
    assert trial_specs(1, suite)[0]["fuzz"]["seed"] != specs[0]["fuzz"]["seed"]


def test_budget_is_a_prefix_of_the_schedule(tmp_path):
    full = run_fuzz(seed=3, suite="smoke", repro_dir=str(tmp_path))
    cut = run_fuzz(seed=3, suite="smoke", budget=10, repro_dir=str(tmp_path))
    assert cut["trials"] == 10
    assert cut["rows"] == full["rows"][:10]


def test_jobs_do_not_change_the_payload(tmp_path):
    solo = run_fuzz(seed=1, suite="smoke", budget=24, repro_dir=str(tmp_path))
    pooled = run_fuzz(
        seed=1, suite="smoke", budget=24, jobs=2, repro_dir=str(tmp_path)
    )
    # Everything but the jobs echo must be identical -- rows come back in
    # schedule order regardless of pool interleaving.
    solo.pop("jobs"), pooled.pop("jobs")
    assert json.dumps(solo, sort_keys=True) == json.dumps(pooled, sort_keys=True)


def test_payload_shape_and_gate(tmp_path):
    payload = run_fuzz(seed=0, suite="smoke", repro_dir=str(tmp_path))
    assert payload["schema"] == FUZZ_SCHEMA
    assert payload["programs"] == len(resolve_fuzz_suite("smoke"))
    assert payload["errors"] == 0
    assert payload["divergences"] == []
    assert payload["planted"]["recall"] == 1.0
    assert payload["ok"] is True
    # Coverage: every preserving mutator exercised at least one
    # consistency oracle; the planted mutator exercised io.
    assert payload["coverage"]["plant-miscompile"]["io"] > 0
    for name in MUTATORS:
        assert payload["mutators"][name]["applied"] > 0, name


def test_run_trial_never_raises_on_bad_spec():
    row = run_trial(
        {
            "label": "broken",
            "family": "no-such-family",
            "args": [],
            "fuzz": {"mutator": "reorder", "seed": 1},
        }
    )
    assert "error" in row
    assert row["label"] == "broken"


def test_unknown_suite_lists_available_names():
    try:
        resolve_fuzz_suite("bogus")
    except InputError as exc:
        message = str(exc)
        for name in fuzz_suites():
            assert name in message
    else:
        raise AssertionError("unknown suite must raise InputError")
