"""Property tests: the CSR kernels and the bitset dataflow solver must
be *byte-identical* to the legacy dict-based implementations.

The perf layer (:mod:`repro.perf`) is pure plumbing -- same algorithms,
flat-array data layout -- so every divergence is a bug, not a precision
trade-off.  This suite sweeps a seeded population of 200+ generated
programs (structured random, irreducible, goto soup, plus the ladder
families) and asserts exact equality of:

* dominator / postdominator trees (node graph and split graph),
* cycle-equivalence class assignments,
* canonical SESE regions and the node -> region map,
* all seven dataflow results (liveness, reaching definitions, and the
  four expression analyses) against the generic-solver ``*_reference``
  oracles.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.controldep.cycle_equiv import (
    cycle_equivalence,
    cycle_equivalence_reference,
)
from repro.controldep.sese import ProgramStructure
from repro.dataflow import (
    anticipatable_expressions,
    anticipatable_expressions_reference,
    available_expressions,
    available_expressions_reference,
    live_variables,
    live_variables_reference,
    partially_anticipatable_expressions,
    partially_anticipatable_expressions_reference,
    partially_available_expressions,
    partially_available_expressions_reference,
    reaching_definitions,
    reaching_definitions_reference,
)
from repro.graphs.dominance import (
    cfg_dominators,
    cfg_postdominators,
    dominator_tree,
    edge_dominators,
    edge_dominators_reference,
    edge_postdominators,
    edge_postdominators_reference,
)
from repro.perf.csr import build_csr
from repro.workloads.generators import (
    irreducible_program,
    random_jump_program,
    random_program,
)
from repro.workloads.ladders import (
    diamond_chain,
    loop_nest,
    sparse_use_program,
    wide_variable_program,
)

# -- the seeded population (>= 200 programs) -------------------------------

CASES: list[tuple[str, object]] = []
for _seed in range(120):
    CASES.append((f"random-{_seed}", lambda s=_seed: random_program(s, size=18)))
for _seed in range(40):
    CASES.append(
        (f"irreducible-{_seed}", lambda s=_seed: irreducible_program(s, blocks=5))
    )
for _seed in range(40):
    CASES.append(
        (f"jump-{_seed}", lambda s=_seed: random_jump_program(s, blocks=7))
    )
CASES += [
    ("diamond-60", lambda: diamond_chain(60)),
    ("loopnest-3x3", lambda: loop_nest(3, 3)),
    ("wide-24", lambda: wide_variable_program(24, 2)),
    ("sparse-8", lambda: sparse_use_program(8)),
]
assert len(CASES) >= 200

# Chunked so a failure names a narrow seed range without paying pytest
# collection overhead for 200+ parametrized ids per property.
CHUNK = 26
CHUNKS = [CASES[i:i + CHUNK] for i in range(0, len(CASES), CHUNK)]
CHUNK_IDS = [f"{chunk[0][0]}..{chunk[-1][0]}" for chunk in CHUNKS]


def _graphs(chunk):
    for name, make in chunk:
        yield name, build_cfg(make())


@pytest.mark.parametrize("chunk", CHUNKS, ids=CHUNK_IDS)
def test_structure_kernels_match_legacy(chunk) -> None:
    for name, graph in _graphs(chunk):
        csr = build_csr(graph)

        dom = cfg_dominators(graph, csr)
        ref = dominator_tree(graph.start, graph.succs, graph.preds)
        assert (dom.root, dom.idom) == (ref.root, ref.idom), name

        pdom = cfg_postdominators(graph, csr)
        ref = dominator_tree(graph.end, graph.preds, graph.succs)
        assert (pdom.root, pdom.idom) == (ref.root, ref.idom), name

        edom = edge_dominators(graph, csr)
        ref = edge_dominators_reference(graph)
        assert (edom.root, edom.idom) == (ref.root, ref.idom), name

        epdom = edge_postdominators(graph, csr)
        ref = edge_postdominators_reference(graph)
        assert (epdom.root, epdom.idom) == (ref.root, ref.idom), name

        assert cycle_equivalence(graph, csr=csr) == (
            cycle_equivalence_reference(graph)
        ), name


@pytest.mark.parametrize("chunk", CHUNKS, ids=CHUNK_IDS)
def test_sese_regions_match_legacy(chunk) -> None:
    for name, graph in _graphs(chunk):
        fast = ProgramStructure(graph)
        slow = ProgramStructure(
            graph,
            dom=edge_dominators_reference(graph),
            pdom=edge_postdominators_reference(graph),
            edge_class=cycle_equivalence_reference(graph),
        )
        fast_regions = sorted((r.entry, r.exit) for r in fast.regions)
        slow_regions = sorted((r.entry, r.exit) for r in slow.regions)
        assert fast_regions == slow_regions, name
        for nid in graph.nodes:
            a, b = fast.region_of_node[nid], slow.region_of_node[nid]
            assert (a and (a.entry, a.exit)) == (b and (b.entry, b.exit)), name


@pytest.mark.parametrize("chunk", CHUNKS, ids=CHUNK_IDS)
def test_dataflow_bitsets_match_generic_solver(chunk) -> None:
    pairs = [
        (live_variables, live_variables_reference),
        (reaching_definitions, reaching_definitions_reference),
        (available_expressions, available_expressions_reference),
        (partially_available_expressions,
         partially_available_expressions_reference),
        (anticipatable_expressions, anticipatable_expressions_reference),
        (partially_anticipatable_expressions,
         partially_anticipatable_expressions_reference),
    ]
    for name, graph in _graphs(chunk):
        csr = build_csr(graph)
        for fast, slow in pairs:
            assert fast(graph, csr=csr) == slow(graph), (name, fast.__name__)
