"""Ablation of region bypassing (Section 3.3).

"Bypassing single-entry single-exit regions of the control flow graph is
useful because it speeds up optimization.  However, the DFG-based
optimization algorithms described in this paper work correctly even if
some or no bypassing at all is performed."

``build_dfg(bypass=False)`` produces the base-level DFG (every switch
and merge intercepts every live variable); all analyses must agree with
the bypassed form, and the bypassed form must never be larger.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.core.anticipate import dfg_anticipatability
from repro.core.build import build_dfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import CTRL_VAR, PortKind
from repro.core.verify import verify_dfg
from repro.lang.ast_nodes import expr_vars
from repro.lang.parser import parse_program
from repro.workloads.generators import random_program
from repro.workloads.ladders import diamond_chain


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_constprop_agrees_with_and_without_bypassing(seed):
    g = build_cfg(random_program(seed, size=12, num_vars=3))
    fast = dfg_constant_propagation(g, build_dfg(g))
    base = dfg_constant_propagation(g, build_dfg(g, bypass=False))
    for key, value in fast.use_values.items():
        if key[1] != CTRL_VAR:
            assert base.use_values[key] == value
    assert fast.dead_nodes == base.dead_nodes


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=15, deadline=None)
def test_anticipatability_agrees_with_and_without_bypassing(seed):
    g = build_cfg(random_program(seed, size=10, num_vars=3))
    for expr in sorted(g.expressions(), key=repr)[:3]:
        if not expr_vars(expr):
            continue
        fast = dfg_anticipatability(g, expr, build_dfg(g))
        base = dfg_anticipatability(g, expr, build_dfg(g, bypass=False))
        assert fast.ant_edges == base.ant_edges
        assert fast.pan_edges == base.pan_edges


def test_base_level_never_smaller():
    for seed in range(10):
        g = build_cfg(random_program(seed, size=14, num_vars=3))
        assert build_dfg(g, bypass=False).size() >= build_dfg(g).size()


def test_bypassing_pays_off_for_untouched_crossings():
    """A variable crossing many diamonds untouched: with bypassing one
    dependence edge spans the whole chain; without it every switch and
    merge intercepts it."""
    diamonds = "\n".join(
        f"if (c{i} > 0) {{ y := y + 1; }} else {{ y := y - 1; }}"
        for i in range(10)
    )
    g = build_cfg(parse_program(f"x := 1;\n{diamonds}\nprint x; print y;"))
    fast = build_dfg(g, variables={"x"}, control_edges=False)
    base = build_dfg(g, variables={"x"}, control_edges=False, bypass=False)
    assert fast.size() == 1  # def straight to use, past all ten diamonds
    assert base.size() > 10  # intercepted at every switch and merge


def test_bypassing_shrinks_diamond_chains_overall():
    g = build_cfg(diamond_chain(12, num_vars=2))
    fast = build_dfg(g)
    base = build_dfg(g, bypass=False)
    assert base.size() > 1.3 * fast.size()


def test_base_level_dependences_are_local():
    """Without bypassing no dependence edge crosses an operator: every
    use in a branch arm is fed from within its own region."""
    g = build_cfg(
        parse_program("x := 1; if (p) { skip; } else { skip; } print x;")
    )
    base = build_dfg(g, bypass=False)
    printer = next(n for n in g.nodes.values() if n.kind.value == "print")
    # With bypassing the print reads the def directly; base-level routes
    # it through the conditional's merge operator.
    fast = build_dfg(g)
    assert fast.use_sources[(printer.id, "x")].kind is PortKind.DEF
    assert base.use_sources[(printer.id, "x")].kind is PortKind.MERGE


def test_base_level_still_satisfies_definition6_locally():
    """Base-level dependence edges still satisfy the dominance,
    postdominance and no-intervening-assignment conditions -- they are
    just shorter (a finer equivalence relation, as Section 3.3 allows)."""
    for seed in range(8):
        g = build_cfg(random_program(seed, size=10, num_vars=3))
        verify_dfg(g, build_dfg(g, bypass=False))
