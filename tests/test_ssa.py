"""SSA construction (Cytron) and SCCP tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.dataflow.lattice import BOTTOM, TOP
from repro.lang.parser import parse_program
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.sccp import sparse_conditional_constant_propagation
from repro.workloads import suites
from repro.workloads.generators import irreducible_program, random_program
from repro.workloads.ladders import defuse_worst_case


def graph_of(source):
    return build_cfg(parse_program(source))


def test_straight_line_has_no_phis():
    ssa = build_ssa_cytron(graph_of("x := 1; x := x + 1; print x;"))
    assert ssa.all_phis() == []
    # Two defs of x get distinct names; the use reads the first.
    names = set(ssa.def_names.values())
    assert len(names) == 2


def test_diamond_places_one_phi():
    ssa = build_ssa_cytron(
        graph_of("if (p) { x := 1; } else { x := 2; } print x;")
    )
    placement = ssa.phi_placement()
    assert len(placement) == 1
    (nid, var), = placement
    assert var == "x"
    assert ssa.graph.node(nid).kind is NodeKind.MERGE


def test_phi_args_come_from_each_branch():
    g = graph_of("if (p) { x := 1; } else { x := 2; } print x;")
    ssa = build_ssa_cytron(g)
    phi = ssa.all_phis()[0]
    assert set(phi.args.values()) == set(ssa.def_names.values())
    printer = next(n for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert ssa.use_names[(printer.id, "x")] == phi.result


def test_loop_places_phi_at_header():
    g = graph_of("i := 0; while (i < 3) { i := i + 1; } print i;")
    ssa = build_ssa_cytron(g)
    placement = ssa.phi_placement()
    headers = {nid for nid, var in placement if var == "i"}
    merge = next(n.id for n in g.nodes.values() if n.kind is NodeKind.MERGE)
    assert merge in headers


def test_minimal_places_phi_for_dead_variable_pruned_does_not():
    # x is dead after the conditional; minimal SSA still places a phi,
    # pruned SSA does not.
    src = "if (p) { x := 1; } else { x := 2; } y := 3; print y;"
    minimal = build_ssa_cytron(graph_of(src), pruned=False)
    pruned = build_ssa_cytron(graph_of(src), pruned=True)
    assert any(var == "x" for _, var in minimal.phi_placement())
    assert not any(var == "x" for _, var in pruned.phi_placement())


def test_ssa_size_linear_on_defuse_worst_case():
    small = build_ssa_cytron(build_cfg(defuse_worst_case(5))).size()
    big = build_ssa_cytron(build_cfg(defuse_worst_case(10))).size()
    # Doubling n should roughly double (not quadruple) the size.
    assert big < 3 * small


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=30, deadline=None)
def test_ssa_validates_on_generated_programs(seed):
    g = build_cfg(random_program(seed, size=14, num_vars=3))
    build_ssa_cytron(g).validate()
    build_ssa_cytron(g, pruned=True).validate()


def test_ssa_on_irreducible_graphs():
    for seed in range(5):
        g = build_cfg(irreducible_program(seed))
        build_ssa_cytron(g).validate()


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=30, deadline=None)
def test_pruned_placement_subset_of_minimal(seed):
    g = build_cfg(random_program(seed, size=14, num_vars=3))
    minimal = build_ssa_cytron(g).phi_placement()
    pruned = build_ssa_cytron(g, pruned=True).phi_placement()
    assert pruned <= minimal


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=25, deadline=None)
def test_single_reaching_name_per_use(seed):
    """Each use of a variable maps to exactly one SSA name -- the defining
    property of SSA (Definition 5's factoring)."""
    g = build_cfg(random_program(seed, size=12, num_vars=3))
    ssa = build_ssa_cytron(g)
    definers = ssa.definers()
    for (nid, var), name in ssa.use_names.items():
        kind, _site = definers[name]
        assert kind in ("assign", "phi", "entry")


# -- SCCP ------------------------------------------------------------------


def sccp_of(source_or_prog):
    prog = (
        parse_program(source_or_prog)
        if isinstance(source_or_prog, str)
        else source_or_prog
    )
    g = build_cfg(prog)
    ssa = build_ssa_cytron(g)
    return g, ssa, sparse_conditional_constant_propagation(ssa)


def test_sccp_folds_straight_line():
    g, ssa, result = sccp_of("x := 2; y := x + 3; print y;")
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.values[ssa.def_names[y_def.id]] == 5


def test_sccp_finds_possible_paths_constant_figure3b():
    g, ssa, result = sccp_of(suites.figure3b())
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.value_of_use(ssa, y_def.id, "x") == 1


def test_sccp_marks_dead_branch_unexecutable():
    g, ssa, result = sccp_of(suites.figure3b())
    dead_assign = next(
        n for n in g.assign_nodes()
        if n.target == "x" and n.expr.value == 2
    )
    assert dead_assign.id not in result.executable_nodes
    assert result.value_of_use(ssa, dead_assign.id, "x") is BOTTOM


def test_sccp_figure1_finds_final_constant():
    """SCCP resolves the final use of y to 3 (dead false side ignored)."""
    g, ssa, result = sccp_of(suites.figure1())
    printer = next(n for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert result.value_of_use(ssa, printer.id, "y") == 3


def test_sccp_join_of_live_branches_is_top():
    g, ssa, result = sccp_of(
        "if (p) { x := 1; } else { x := 2; } print x;"
    )
    printer = next(n for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert result.value_of_use(ssa, printer.id, "x") is TOP


def test_sccp_loop_fixpoint():
    g, ssa, result = sccp_of(
        "i := 0; while (i < 3) { i := i + 1; } print i;"
    )
    printer = next(n for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    # i varies around the loop: TOP at the print.
    assert result.value_of_use(ssa, printer.id, "i") is TOP


def test_sccp_constant_loop_bound_folds_through():
    g, ssa, result = sccp_of(
        "x := 7; i := 0; while (i < 0) { x := 1; i := i + 1; } print x;"
    )
    printer = next(n for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    # The loop body never executes (0 < 0 is false): x stays 7.
    assert result.value_of_use(ssa, printer.id, "x") == 7


def test_sccp_sound_on_executions():
    from repro.cfg.interp import run_cfg
    from repro.lang.interp import eval_expr
    from conftest import random_envs

    for seed in range(8):
        prog = random_program(seed, size=12, num_vars=3)
        g = build_cfg(prog)
        ssa = build_ssa_cytron(g)
        result = sparse_conditional_constant_propagation(ssa)
        for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
            run = run_cfg(g, env)
            state = dict(env)
            for nid in run.trace:
                node = g.node(nid)
                assert nid in result.executable_nodes or nid in (
                    g.start, g.end
                ), f"executed node {nid} claimed dead"
                for var in node.uses():
                    claimed = result.value_of_use(ssa, nid, var)
                    if isinstance(claimed, int):
                        assert state.get(var, 0) == claimed
                if node.kind is NodeKind.ASSIGN:
                    state[node.target] = eval_expr(node.expr, state)
