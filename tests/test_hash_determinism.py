"""Hash-seed determinism: ``repro profile`` must not depend on
``PYTHONHASHSEED``.

Python randomizes string hashing per process, so any analysis that
iterates a bare ``set``/``frozenset`` of variable names (or keys a
worklist on one) produces run-to-run differences in visit order -- and
therefore in work counters, span order, and SSA name numbering.  The
sweep in PR 2 sorted every such iteration point; this test pins the
property end-to-end by running the CLI under different hash seeds in
subprocesses (in-process tests cannot vary the seed: it is fixed at
interpreter startup) and requiring byte-identical JSON after zeroing
wall-clock timings.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")

PROGRAM = """\
a := p; b := q;
count := 3;
total := 0;
while (count > 0) {
  if (a > b) { total := total + a; } else { total := total + b; }
  zig := a + b;
  zag := a + b;
  a := zag - zig + a;
  count := count - 1;
}
print total; print zig;
"""


def _scrub(obj):
    if isinstance(obj, dict):
        return {
            key: 0.0 if key in ("wall_ms", "dur_ms", "start_ms") else _scrub(value)
            for key, value in obj.items()
        }
    if isinstance(obj, list):
        return [_scrub(item) for item in obj]
    return obj


def _profile_json(path: str, subcommand: list[str], seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *subcommand, path],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return _scrub(json.loads(proc.stdout))


@pytest.mark.parametrize("subcommand", [["profile"], ["trace"]], ids=lambda s: s[0])
def test_profile_json_identical_across_hash_seeds(tmp_path, subcommand) -> None:
    path = str(tmp_path / "prog.dfg")
    Path(path).write_text(PROGRAM)
    baseline = _profile_json(path, subcommand, "1")
    for seed in ("2", "42", "12345"):
        assert _profile_json(path, subcommand, seed) == baseline, seed


# A program that fires many rules at once: spans, related spans, data
# payloads and fingerprints all appear in the output, so any ordering
# leak through a bare set/dict would show up as byte drift.
LINT_PROGRAM = """\
x := 1;
x := 2;
y := x;
t := y + 1;
y := y;
zig := x + t;
zag := x + t;
if (0) {
    dead := zig;
}
while (zag > 0) {
  hoist := x * 2;
  zag := zag - 1;
}
print t + y + zig + hoist + boom;
"""


def _lint_bytes(path: str, fmt: str, seed: str) -> bytes:
    """Raw stdout of ``repro lint`` -- no scrubbing: lint payloads carry
    no timing fields, so the bytes themselves must be identical."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", path, "--format", fmt],
        capture_output=True,
        env=env,
        check=False,  # findings exist, so lint exits 1 by design
    )
    assert proc.returncode == 1, proc.stderr.decode()
    assert proc.stdout
    return proc.stdout


@pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
def test_lint_output_bytes_identical_across_hash_seeds(tmp_path, fmt) -> None:
    path = str(tmp_path / "prog.dfg")
    Path(path).write_text(LINT_PROGRAM)
    baseline = _lint_bytes(path, fmt, "1")
    for seed in ("2", "42", "12345"):
        assert _lint_bytes(path, fmt, seed) == baseline, seed


# -- generators and fuzz mutators ---------------------------------------------
#
# The fuzzer's byte-determinism contract starts at the program
# generators and the mutators: for a fixed seed both must produce
# byte-identical source under every hash seed.  The helper script prints
# pretty-printed sources, so any set-ordering leak in a generator or a
# mutator (site enumeration, variable choice, shuffles) shows up as a
# stdout diff.

_GEN_SCRIPT = """\
import random
from repro.lang.pretty import pretty_program
from repro.workloads.generators import (
    array_program, inline_expansion_program, irreducible_program,
    random_jump_program, random_program,
)
from repro.fuzz.mutators import MUTATORS
from repro.fuzz.harness import probe_envs, trial_context
from repro.cfg.builder import build_cfg

for seed in range(6):
    print(pretty_program(random_program(seed, size=14, num_vars=4)))
    print(pretty_program(irreducible_program(seed)))
    print(pretty_program(random_jump_program(seed)))
    print(pretty_program(array_program(seed)))
    print(pretty_program(inline_expansion_program(seed)))

for seed in range(4):
    base = random_program(seed, size=14, num_vars=4)
    graph = build_cfg(base)
    for name, mutator in MUTATORS.items():
        context = trial_context(base, graph, seed, name, family="random")
        mutation = mutator(base, random.Random(seed), context)
        print(name, mutation.applied, sorted(mutation.detail.items()))
        if mutation.program is not None:
            print(pretty_program(mutation.program))
    print(probe_envs(seed, sorted(graph.variables())))
"""


def _generator_bytes(seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", _GEN_SCRIPT],
        capture_output=True,
        env=env,
        check=True,
    )
    assert proc.stdout
    return proc.stdout


def test_generators_and_mutators_identical_across_hash_seeds() -> None:
    baseline = _generator_bytes("1")
    for seed in ("2", "42", "12345"):
        assert _generator_bytes(seed) == baseline, seed


# -- region summaries and the edit-replay workload ----------------------------
#
# The PR-6 surfaces: phase-1 region summaries (canonical ``(gen, kill)``
# pairs keyed by region boundary) and the ``repro.bench/1`` edit-replay
# payload must not depend on set iteration order anywhere in the SESE
# update, the system assembly, or the solver.  Timing fields are zeroed;
# everything else -- summary values, work counters, edit counts -- must
# be byte-identical across hash seeds.

_REGION_SCRIPT = """\
import json
from repro.regions.parallel import parallel_summaries
from repro.regions.replay import build_replay_graph, edit_script, replay_row
from repro.regions.edits import EditSession

for family, args in (("diamond", [24]), ("loopnest", [4]), ("jump", [6])):
    payload = parallel_summaries(family, tuple(args), workers=0)
    print(json.dumps(payload, sort_keys=True))

row = replay_row(24, repeat=1)
for key in ("legacy_ms", "fast_ms", "speedup"):
    row[key] = 0.0
print(json.dumps(row, sort_keys=True))

graph = build_replay_graph(24)
print(edit_script(graph))
session = EditSession(graph)
facts = session.solve_all()
print(json.dumps(
    {
        name: {
            str(eid): sorted(map(str, values))
            for eid, values in sorted(result.items())
        }
        for name, result in facts.items()
    },
    sort_keys=True,
))
"""


def _region_bytes(seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", _REGION_SCRIPT],
        capture_output=True,
        env=env,
        check=True,
    )
    assert proc.stdout
    return proc.stdout


def test_region_summaries_and_replay_identical_across_hash_seeds() -> None:
    baseline = _region_bytes("1")
    for seed in ("2", "42", "12345"):
        assert _region_bytes(seed) == baseline, seed


# -- the fuzz sweep end to end ------------------------------------------------


def _fuzz_bytes(tmp_path, hash_seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = SRC
    out = str(tmp_path / f"fuzz_{hash_seed}.json")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "fuzz",
            "--suite", "smoke", "--budget", "18", "--seed", "7",
            "--output", out,
        ],
        capture_output=True,
        env=env,
        check=True,
    )
    return Path(out).read_bytes()


def test_fuzz_payload_bytes_identical_across_hash_seeds(tmp_path) -> None:
    """``repro fuzz --seed N`` is byte-identical across runs and hash
    seeds -- the payload carries no wall-clock fields at all."""
    baseline = _fuzz_bytes(tmp_path, "1")
    assert b'"wall_ms"' not in baseline and b'"dur_ms"' not in baseline
    for seed in ("2", "42"):
        assert _fuzz_bytes(tmp_path, seed) == baseline, seed


# -- the sparse-engine clients ------------------------------------------------
#
# The PR-9 surfaces: def-use chains, interval ranges, taint, NTSCD and
# SCVN all key worklists on variable *names*, so a single unsorted set
# iteration anywhere in the splitting engine or a client would leak the
# hash seed into fact order, SSA numbering, or work counters.

_SPARSE_SCRIPT = """\
from repro.cfg.builder import build_cfg
from repro.controldep.ntscd import ntscd
from repro.defuse.chains import build_def_use_chains
from repro.pipeline.manager import AnalysisManager
from repro.sparse.range_analysis import range_analysis
from repro.sparse.taint import taint_analysis
from repro.util.counters import WorkCounter
from repro.workloads.generators import (
    irreducible_program,
    random_jump_program,
    random_program,
)

for builder, args in (
    (random_program, (3, 18, 4)),
    (irreducible_program, (1, 5)),
    (random_jump_program, (2, 7)),
):
    graph = build_cfg(builder(*args))
    counter = WorkCounter()
    chains = build_def_use_chains(graph, counter=counter)
    print([(c.var, c.def_node, c.use_node) for c in chains.chains])
    print(range_analysis(graph, counter=counter).facts())
    print(taint_analysis(graph, counter=counter).facts())
    print(ntscd(graph, counter=counter).facts())
    print(sorted(counter.snapshot().items()))
    manager = AnalysisManager(graph)
    print(manager.get("scvn").facts())
"""


def _sparse_bytes(seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", _SPARSE_SCRIPT],
        capture_output=True,
        env=env,
        check=True,
    )
    assert proc.stdout
    return proc.stdout


def test_sparse_clients_identical_across_hash_seeds() -> None:
    baseline = _sparse_bytes("1")
    for seed in ("2", "42", "12345"):
        assert _sparse_bytes(seed) == baseline, seed


# -- the serve stack: cache keys, op payloads, loadgen schedule ---------------
#
# The PR-10 surfaces: a content-addressed cache key must hash the same
# bytes in every process (or a daemon restarted under a different hash
# seed would silently miss everything it just stored), every serve op
# payload is canonical JSON whose bytes feed the byte-identity gate, and
# the loadgen schedule is the seeded workload replayed by CI -- drift in
# any of them would make "warm hit equals cold one-shot" unverifiable.

_SERVE_SCRIPT = """\
from repro.serve.cache import cache_key_bytes, source_sha
from repro.serve.loadgen import loadgen_corpus, loadgen_schedule
from repro.serve.ops import run_op
from repro.serve.server import canonical_json

corpus = loadgen_corpus(smoke=True)
for label, source in corpus[:6]:
    sha = source_sha(source)
    print(label, sha)
    for name in ("cfg", "sese", "dfg", "constprop", "arena", "op:lint"):
        print(cache_key_bytes(sha, name, "seed-sweep").hex())
    for op in ("analyze", "constprop", "lint"):
        print(canonical_json(run_op(op, source, label=label)).hex())

print(loadgen_schedule(seed=11, requests=64, programs=len(corpus)))
print(loadgen_schedule(seed=99, requests=32, programs=5, hot_set=2))
"""


def _serve_bytes(seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", _SERVE_SCRIPT],
        capture_output=True,
        env=env,
        check=True,
    )
    assert proc.stdout
    return proc.stdout


def test_serve_cache_keys_and_loadgen_identical_across_hash_seeds() -> None:
    baseline = _serve_bytes("1")
    for seed in ("2", "42", "12345"):
        assert _serve_bytes(seed) == baseline, seed
