"""Hash-seed determinism: ``repro profile`` must not depend on
``PYTHONHASHSEED``.

Python randomizes string hashing per process, so any analysis that
iterates a bare ``set``/``frozenset`` of variable names (or keys a
worklist on one) produces run-to-run differences in visit order -- and
therefore in work counters, span order, and SSA name numbering.  The
sweep in PR 2 sorted every such iteration point; this test pins the
property end-to-end by running the CLI under different hash seeds in
subprocesses (in-process tests cannot vary the seed: it is fixed at
interpreter startup) and requiring byte-identical JSON after zeroing
wall-clock timings.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")

PROGRAM = """\
a := p; b := q;
count := 3;
total := 0;
while (count > 0) {
  if (a > b) { total := total + a; } else { total := total + b; }
  zig := a + b;
  zag := a + b;
  a := zag - zig + a;
  count := count - 1;
}
print total; print zig;
"""


def _scrub(obj):
    if isinstance(obj, dict):
        return {
            key: 0.0 if key in ("wall_ms", "dur_ms", "start_ms") else _scrub(value)
            for key, value in obj.items()
        }
    if isinstance(obj, list):
        return [_scrub(item) for item in obj]
    return obj


def _profile_json(path: str, subcommand: list[str], seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *subcommand, path],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return _scrub(json.loads(proc.stdout))


@pytest.mark.parametrize("subcommand", [["profile"], ["trace"]], ids=lambda s: s[0])
def test_profile_json_identical_across_hash_seeds(tmp_path, subcommand) -> None:
    path = str(tmp_path / "prog.dfg")
    Path(path).write_text(PROGRAM)
    baseline = _profile_json(path, subcommand, "1")
    for seed in ("2", "42", "12345"):
        assert _profile_json(path, subcommand, seed) == baseline, seed


# A program that fires many rules at once: spans, related spans, data
# payloads and fingerprints all appear in the output, so any ordering
# leak through a bare set/dict would show up as byte drift.
LINT_PROGRAM = """\
x := 1;
x := 2;
y := x;
t := y + 1;
y := y;
zig := x + t;
zag := x + t;
if (0) {
    dead := zig;
}
while (zag > 0) {
  hoist := x * 2;
  zag := zag - 1;
}
print t + y + zig + hoist + boom;
"""


def _lint_bytes(path: str, fmt: str, seed: str) -> bytes:
    """Raw stdout of ``repro lint`` -- no scrubbing: lint payloads carry
    no timing fields, so the bytes themselves must be identical."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", path, "--format", fmt],
        capture_output=True,
        env=env,
        check=False,  # findings exist, so lint exits 1 by design
    )
    assert proc.returncode == 1, proc.stderr.decode()
    assert proc.stdout
    return proc.stdout


@pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
def test_lint_output_bytes_identical_across_hash_seeds(tmp_path, fmt) -> None:
    path = str(tmp_path / "prog.dfg")
    Path(path).write_text(LINT_PROGRAM)
    baseline = _lint_bytes(path, fmt, "1")
    for seed in ("2", "42", "12345"):
        assert _lint_bytes(path, fmt, seed) == baseline, seed
