"""Incremental re-solving is exact and O(dirty region spine).

Two contracts, checked independently:

* **Correctness** -- after any supported statement edit (expression
  rewrite, splice, unsplice), the incremental engine's decoded facts
  equal a from-scratch flat bitset solve of the post-edit graph.  A
  randomized differential sweep drives seeded edit walks over the
  structured-random / irreducible / ``goto``-soup families; the engine
  may *choose* to fall back to a full rebuild (out-of-universe
  expression, vanished variable) but must never be wrong.
* **Locality** -- the :class:`~repro.util.counters.WorkCounter` ticks
  prove the work bound: an expression rewrite re-summarizes at most the
  edited node's spine to the root (times the three dirtied analyses --
  reaching stays warm), a splice/unsplice reuses the unit tuples of
  every region the edit did not touch, and a quiescent ``solve_all``
  does no summary work at all.
"""

from __future__ import annotations

import random

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.dataflow.bitsets import (
    anticipatable_bitsets,
    available_bitsets,
    liveness_bitsets,
    reaching_bitsets,
)
from repro.lang.ast_nodes import BinOp, IntLit, Var
from repro.regions.edits import EditSession
from repro.util.counters import WorkCounter
from repro.workloads.generators import (
    irreducible_program,
    random_jump_program,
    random_program,
)
from repro.workloads.ladders import diamond_chain


def _flat_all(graph):
    return {
        "available": available_bitsets(graph),
        "anticipatable": anticipatable_bitsets(graph),
        "liveness": liveness_bitsets(graph),
        "reaching": reaching_bitsets(graph),
    }


def _population():
    for seed in range(16):
        yield f"random-{seed}", build_cfg(random_program(seed, size=18))
    for seed in range(6):
        yield f"irr-{seed}", build_cfg(irreducible_program(seed, blocks=5))
    for seed in range(6):
        yield f"jump-{seed}", build_cfg(random_jump_program(seed, blocks=7))


def _random_edit(rng, graph, session, spliced) -> bool:
    """One seeded edit mirroring the PR-5 mutator kinds: mutate a
    statement's expression, insert a statement, or delete one."""
    variables = sorted(graph.variables()) or ["v0"]
    op = rng.random()
    if op < 0.45:
        nodes = [
            n for n in graph.nodes.values()
            if n.kind in (NodeKind.ASSIGN, NodeKind.PRINT, NodeKind.SWITCH)
        ]
        if not nodes:
            return False
        node = rng.choice(sorted(nodes, key=lambda n: n.id))
        if rng.random() < 0.6:
            expr = BinOp(
                "+", Var(rng.choice(variables)), Var(rng.choice(variables))
            )
        else:
            expr = IntLit(rng.randrange(100))
        session.rewrite_rhs(node.id, expr)
        return True
    if op < 0.8 or not spliced:
        eid = rng.choice(sorted(graph.edges))
        expr = BinOp("*", Var(rng.choice(variables)), IntLit(rng.randrange(10)))
        nid, _, _ = session.splice_assign(eid, rng.choice(variables), expr)
        spliced.append(nid)
        return True
    nid = spliced.pop(rng.randrange(len(spliced)))
    if nid not in graph.nodes:
        return False
    if len(graph.in_edges(nid)) != 1 or len(graph.out_edges(nid)) != 1:
        return False
    session.unsplice(nid)
    return True


def test_randomized_edits_match_from_scratch() -> None:
    rng = random.Random(99)
    checks = 0
    for name, graph in _population():
        session = EditSession(graph)
        spliced: list[int] = []
        for step in range(8):
            if not _random_edit(rng, graph, session, spliced):
                continue
            incremental = session.solve_all()
            reference = _flat_all(graph)
            checks += 1
            for analysis in reference:
                assert incremental[analysis] == reference[analysis], (
                    name, step, analysis,
                )
    assert checks > 100


def _spine_systems(engine, nid: int) -> int:
    """How many systems lie on ``nid``'s spine to the root (inclusive)."""
    systems = engine.systems.systems
    index = engine.systems.sys_of_node[nid]
    count = 0
    walk: int | None = index
    while walk is not None:
        count += 1
        walk = systems[walk].parent
    return count


def test_rewrite_resummarizes_only_the_dirty_spine() -> None:
    graph = build_cfg(diamond_chain(40))
    counter = WorkCounter()
    session = EditSession(graph, counter=counter)
    session.solve_all()

    # An in-universe rewrite: give one arm the other arm's expression
    # (both already live in the expression universe, so no rebuild).
    node_a, node_b = [
        n for n in sorted(graph.nodes.values(), key=lambda n: n.id)
        if n.kind is NodeKind.ASSIGN and isinstance(n.expr, BinOp)
    ][:2]
    spine = _spine_systems(session.engine, node_a.id)
    total = len(session.engine.systems.systems)
    assert total > 4 * spine  # the bound below is meaningfully local

    before = counter.snapshot().get("inc_regions_resummarized", 0)
    session.rewrite_rhs(node_a.id, node_b.expr)
    session.solve_all()
    delta = counter.snapshot().get("inc_regions_resummarized", 0) - before
    assert counter.snapshot().get("inc_full_rebuilds", 0) == 0
    assert delta > 0
    # Three analyses dirty (available/anticipatable/liveness; reaching
    # is warm for a same-variable rewrite), each visiting at most the
    # spine plus the concrete root re-solve.
    assert delta <= 3 * (spine + 1)

    # Quiescent re-query: every cache is warm, no summary work at all.
    before = counter.snapshot().get("inc_regions_resummarized", 0)
    session.solve_all()
    assert counter.snapshot().get("inc_regions_resummarized", 0) == before


def test_splice_reuses_units_of_untouched_regions() -> None:
    graph = build_cfg(diamond_chain(40))
    counter = WorkCounter()
    session = EditSession(graph, counter=counter)
    session.solve_all()
    total = len(session.engine.systems.systems)

    eid = sorted(graph.edges)[len(graph.edges) // 2]
    var = sorted(graph.variables())[0]
    before = counter.snapshot().get("region_units_reused", 0)
    nid, _, _ = session.splice_assign(eid, var, Var(var))
    session.solve_all()
    reused = counter.snapshot().get("region_units_reused", 0) - before
    # The reassembly after the splice rebuilt units only for the handful
    # of regions the edit touched; everything else carried over.
    assert reused > total - 8
    assert counter.snapshot().get("inc_full_rebuilds", 0) == 0

    session.unsplice(nid)
    assert session.solve_all() == _flat_all(graph)


def test_out_of_universe_rewrite_falls_back_and_stays_exact() -> None:
    graph = build_cfg(diamond_chain(10))
    counter = WorkCounter()
    session = EditSession(graph, counter=counter)
    session.solve_all()

    node = next(
        n for n in sorted(graph.nodes.values(), key=lambda n: n.id)
        if n.kind is NodeKind.ASSIGN
    )
    # A brand-new variable cannot be expressed in the sticky universes:
    # the engine must rebuild rather than answer from stale spaces.
    session.rewrite_rhs(node.id, BinOp("+", Var("zz_new"), IntLit(1)))
    assert session.solve_all() == _flat_all(graph)
    assert counter.snapshot().get("inc_full_rebuilds", 0) >= 1


def test_manager_adopts_incremental_structure() -> None:
    from repro.pipeline.manager import AnalysisManager

    graph = build_cfg(diamond_chain(12))
    manager = AnalysisManager(graph)
    manager.get("sese")
    session = EditSession(graph, manager=manager)

    eid = sorted(graph.edges)[3]
    var = sorted(graph.variables())[0]
    session.splice_assign(eid, var, Var(var))
    # The manager's sese result is the session's live structure, not a
    # from-scratch rebuild -- the pass was adopted, not recomputed.
    assert manager.get("sese") is session.structure
    regions = manager.get("regions")
    assert regions.structure is session.structure
    # The pass's masks live in freshly-built universes (the session's
    # sticky universes may order sites differently), so compare against
    # a fresh flat solve of the same problems.
    from repro.perf.bitset import solve_bitset
    from repro.perf.csr import build_csr
    from repro.regions.hierarchical import core_problems

    summaries = manager.get("region-summaries")
    csr = build_csr(graph)
    for name, problem in core_problems(graph, csr).items():
        flat = solve_bitset(csr, problem)
        assert summaries[name] == {
            csr.edge_ids[e]: flat[e] for e in range(csr.m)
        }, name
