"""Out-of-SSA tests: the semantic round trip original == destructed, for
both SSA constructions, plus the parallel-copy sequentializer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.lang.parser import parse_program
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.destruct import destruct_ssa, sequentialize_parallel_copies
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.workloads.generators import irreducible_program, random_program
from conftest import random_envs


# -- parallel copy sequentialization ------------------------------------------


def apply_copies(ordered, env):
    state = dict(env)
    for dst, src in ordered:
        state[dst] = state.get(src, 0)
    return state


def test_independent_copies_any_order():
    ordered = sequentialize_parallel_copies({"a": "x", "b": "y"}, lambda: "t")
    state = apply_copies(ordered, {"x": 1, "y": 2})
    assert state["a"] == 1 and state["b"] == 2


def test_chain_ordered_correctly():
    # a := b and b := c: must copy a first.
    ordered = sequentialize_parallel_copies({"a": "b", "b": "c"}, lambda: "t")
    state = apply_copies(ordered, {"b": 10, "c": 20})
    assert state["a"] == 10 and state["b"] == 20


def test_swap_uses_temp():
    ordered = sequentialize_parallel_copies({"a": "b", "b": "a"}, lambda: "t")
    state = apply_copies(ordered, {"a": 1, "b": 2})
    assert state["a"] == 2 and state["b"] == 1
    assert any(dst == "t" for dst, _ in ordered)


def test_three_cycle():
    temps = iter(["t1", "t2"])
    ordered = sequentialize_parallel_copies(
        {"a": "b", "b": "c", "c": "a"}, lambda: next(temps)
    )
    state = apply_copies(ordered, {"a": 1, "b": 2, "c": 3})
    assert (state["a"], state["b"], state["c"]) == (2, 3, 1)


def test_self_copy_dropped():
    assert sequentialize_parallel_copies({"a": "a"}, lambda: "t") == []


@given(
    st.dictionaries(
        st.sampled_from("abcdef"), st.sampled_from("abcdef"), max_size=6
    )
)
@settings(max_examples=200)
def test_sequentialization_semantics(copies):
    counter = [0]

    def fresh():
        counter[0] += 1
        return f"t{counter[0]}"

    ordered = sequentialize_parallel_copies(copies, fresh)
    env = {name: ord(name) for name in "abcdef"}
    state = apply_copies(ordered, env)
    for dst, src in copies.items():
        assert state[dst] == env[src], (copies, ordered)


# -- round trip -----------------------------------------------------------------


def round_trip(prog, builder, envs):
    g = build_cfg(prog)
    ssa = builder(g)
    lowered = destruct_ssa(ssa)
    for env in envs:
        assert run_cfg(g, env).outputs == run_cfg(lowered, env).outputs


@given(st.integers(min_value=0, max_value=600))
@settings(max_examples=25, deadline=None)
def test_cytron_round_trip(seed):
    prog = random_program(seed, size=14, num_vars=3)
    envs = random_envs(seed, [f"v{i}" for i in range(4)], count=3)
    round_trip(prog, build_ssa_cytron, envs)


@given(st.integers(min_value=0, max_value=600))
@settings(max_examples=25, deadline=None)
def test_from_dfg_round_trip(seed):
    prog = random_program(seed, size=14, num_vars=3)
    envs = random_envs(seed, [f"v{i}" for i in range(4)], count=3)
    round_trip(prog, build_ssa_from_dfg, envs)


def test_round_trip_on_irreducible():
    for seed in range(5):
        prog = irreducible_program(seed)
        round_trip(prog, build_ssa_cytron, [{}])
        round_trip(prog, build_ssa_from_dfg, [{}])


def test_loop_swap_pattern():
    """The classic swap-in-a-loop that breaks naive phi lowering."""
    prog = parse_program(
        """
        a := 1; b := 2; i := 0;
        while (i < 5) {
            t := a; a := b; b := t;
            i := i + 1;
        }
        print a; print b;
        """
    )
    round_trip(prog, build_ssa_cytron, [{}])
    round_trip(prog, build_ssa_from_dfg, [{}])


def test_entry_values_flow_from_environment():
    prog = parse_program("print q + 1;")
    round_trip(prog, build_ssa_cytron, [{"q": 41}])
