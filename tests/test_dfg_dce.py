"""DFG mark-sweep dead code elimination tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.core.dce import dfg_dead_code_elimination
from repro.lang.parser import parse_program
from repro.opt.transform import remove_dead_assignments
from repro.workloads.generators import array_program, random_program
from conftest import random_envs


def graph_of(source):
    return build_cfg(parse_program(source))


def test_straight_line_dead_assign_removed():
    g = graph_of("x := 1; y := 2; print y;")
    stats = dfg_dead_code_elimination(g)
    assert len(stats.removed_assignments) == 1
    assert run_cfg(g).outputs == [2]


def test_cyclic_dead_counter_removed():
    """The case liveness-based DCE cannot handle: the counter feeds only
    itself around the loop."""
    src = "i := 0; p := n; while (p > 0) { i := i + 1; p := p - 1; } print 9;"
    by_liveness = graph_of(src)
    stats_liveness = remove_dead_assignments(by_liveness)
    by_adce = graph_of(src)
    stats_adce = dfg_dead_code_elimination(by_adce)
    # Liveness keeps the self-sustaining chain; mark-sweep removes it.
    liveness_left = {n.target for n in by_liveness.assign_nodes()}
    adce_left = {n.target for n in by_adce.assign_nodes()}
    assert "i" in liveness_left
    assert "i" not in adce_left
    assert "p" in adce_left  # controls the branch: observable
    del stats_liveness, stats_adce
    for env in ({"n": 3}, {"n": 0}):
        assert run_cfg(by_adce, env).outputs == [9]


def test_mutually_dead_pair_removed():
    src = (
        "a := 1; b := 2; k := n; "
        "while (k > 0) { a := b + 1; b := a + 1; k := k - 1; } print k;"
    )
    g = graph_of(src)
    dfg_dead_code_elimination(g)
    left = {n.target for n in g.assign_nodes()}
    assert "a" not in left and "b" not in left
    assert run_cfg(g, {"n": 2}).outputs == [0]


def test_branch_predicate_keeps_its_operands():
    g = graph_of("x := n + 1; if (x > 0) { print 1; } else { print 2; }")
    stats = dfg_dead_code_elimination(g)
    assert stats.removed_assignments == []
    assert {n.target for n in g.assign_nodes()} == {"x"}


def test_value_reaching_print_through_merge_kept():
    g = graph_of("if (p) { x := 1; } else { x := 2; } print x;")
    stats = dfg_dead_code_elimination(g)
    assert stats.removed_assignments == []


def test_dead_store_chain_removed():
    g = graph_of("a[0] := 1; a[1] := 2; print 5;")
    stats = dfg_dead_code_elimination(g)
    assert len(stats.removed_assignments) == 2
    assert run_cfg(g).outputs == [5]


def test_live_store_chain_kept():
    g = graph_of("a[0] := 1; a[1] := 2; print a[0];")
    stats = dfg_dead_code_elimination(g)
    assert stats.removed_assignments == []


@given(st.integers(min_value=0, max_value=600))
@settings(max_examples=30, deadline=None)
def test_adce_preserves_outputs(seed):
    prog = random_program(seed, size=14, num_vars=3)
    g = build_cfg(prog)
    g2 = g.copy()
    dfg_dead_code_elimination(g2)
    for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
        assert run_cfg(g, env).outputs == run_cfg(g2, env).outputs


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=15, deadline=None)
def test_adce_preserves_outputs_with_arrays(seed):
    prog = array_program(seed)
    g = build_cfg(prog)
    g2 = g.copy()
    dfg_dead_code_elimination(g2)
    for env in ({}, {"p": 2}, {"arr": {0: 5}, "s": 1}):
        assert run_cfg(g, env).outputs == run_cfg(g2, env).outputs


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=20, deadline=None)
def test_adce_removes_at_least_what_liveness_does(seed):
    prog = random_program(seed, size=14, num_vars=3)
    by_liveness = build_cfg(prog)
    by_adce = build_cfg(prog)
    live_stats = remove_dead_assignments(by_liveness)
    adce_stats = dfg_dead_code_elimination(by_adce)
    assert len(adce_stats.removed_assignments) >= live_stats.removed_assignments
