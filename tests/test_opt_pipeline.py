"""Transform and pipeline tests: folding, branch folding, DCE, and the
end-to-end optimizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.cfg.interp import run_cfg
from repro.core.constprop import dfg_constant_propagation
from repro.lang.ast_nodes import IntLit
from repro.lang.parser import parse_program
from repro.opt.pipeline import optimize
from repro.opt.transform import (
    fold_and_eliminate,
    fold_constants,
    remove_dead_assignments,
)
from repro.workloads import suites
from repro.workloads.generators import (
    inline_expansion_program,
    irreducible_program,
    random_program,
)
from conftest import random_envs


def graph_of(source_or_prog):
    prog = (
        parse_program(source_or_prog)
        if isinstance(source_or_prog, str)
        else source_or_prog
    )
    return build_cfg(prog)


def dfg_rhs(g):
    return dfg_constant_propagation(g).rhs_values


def test_fold_constant_rhs():
    g = graph_of("x := 2; y := x + 3; print y;")
    stats = fold_constants(g, dfg_rhs(g))
    assert stats.folded_rhs >= 2
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert y_def.expr == IntLit(5)


def test_fold_constant_branch_removes_dead_arm():
    g = graph_of("if (1) { x := 1; } else { x := 2; } print x;")
    before_switches = sum(
        1 for n in g.nodes.values() if n.kind is NodeKind.SWITCH
    )
    stats = fold_constants(g, dfg_rhs(g))
    assert before_switches == 1 and stats.folded_branches == 1
    assert not any(n.kind is NodeKind.SWITCH for n in g.nodes.values())
    assert run_cfg(g).outputs == [1]


def test_branch_fold_preserves_semantics_in_loop():
    g = graph_of(
        "x := 0; i := 0; while (i < 3) { if (1) { x := x + 2; } "
        "i := i + 1; } print x;"
    )
    expected = run_cfg(g).outputs
    fold_and_eliminate(g, dfg_rhs)
    assert run_cfg(g).outputs == expected


def test_remove_dead_assignment():
    g = graph_of("x := 1; y := 2; print y;")
    stats = remove_dead_assignments(g)
    assert stats.removed_assignments == 1
    assert all(n.target != "x" for n in g.assign_nodes())
    assert run_cfg(g).outputs == [2]


def test_dead_chain_removed_over_rounds():
    g = graph_of("a := 1; b := a + 1; c := b + 1; print 9;")
    fold_and_eliminate(g, dfg_rhs)
    assert g.assign_nodes() == []
    assert run_cfg(g).outputs == [9]


def test_live_out_protects_variables():
    g = graph_of("x := 1;")
    stats = remove_dead_assignments(g, live_out=frozenset({"x"}))
    assert stats.removed_assignments == 0


def test_figure1_collapses_to_print_3():
    """The paper's running example fully optimizes: the conditional is
    decided, the dead arm removed, and the remaining code folds."""
    g, _report = optimize(suites.figure1())
    exprs = [n.expr for n in g.nodes.values() if n.expr is not None]
    assert exprs == [IntLit(3)]
    assert run_cfg(g).outputs == [3]


def test_figure3b_dead_branch_removed():
    g, _report = optimize(suites.figure3b())
    assert not any(n.kind is NodeKind.SWITCH for n in g.nodes.values())
    assert run_cfg(g).outputs == [1]


def test_inline_expansion_fully_decided():
    for seed in range(5):
        prog = inline_expansion_program(seed)
        g, _report = optimize(prog)
        # All flags are constants: every conditional is decided.
        assert not any(
            n.kind is NodeKind.SWITCH for n in g.nodes.values()
        ), seed
        assert run_cfg(g).outputs == run_cfg(build_cfg(prog)).outputs


@given(st.integers(min_value=0, max_value=600))
@settings(max_examples=25, deadline=None)
def test_pipeline_preserves_semantics(seed):
    prog = random_program(seed, size=14, num_vars=3)
    g = build_cfg(prog)
    for constprop in ("dfg", "cfg", "defuse"):
        g2, _report = optimize(g, constprop=constprop, run_epr=False)
        for env in random_envs(seed, [f"v{i}" for i in range(4)], count=2):
            assert run_cfg(g, env).outputs == run_cfg(g2, env).outputs


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=12, deadline=None)
def test_full_pipeline_with_epr_preserves_semantics(seed):
    prog = random_program(seed, size=12, num_vars=3)
    g = build_cfg(prog)
    g2, _report = optimize(g)
    for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
        assert run_cfg(g, env).outputs == run_cfg(g2, env).outputs


def test_pipeline_on_irreducible_graphs():
    for seed in range(4):
        prog = irreducible_program(seed)
        g = build_cfg(prog)
        g2, _report = optimize(g)
        assert run_cfg(g).outputs == run_cfg(g2).outputs


def test_pipeline_never_grows_evaluation_counts():
    for seed in range(8):
        prog = random_program(seed, size=12, num_vars=3)
        g = build_cfg(prog)
        g2, _report = optimize(g)
        for env in random_envs(seed, [f"v{i}" for i in range(4)], count=2):
            r1, r2 = run_cfg(g, env), run_cfg(g2, env)
            # Constant folding may remove expressions wholesale; EPR must
            # not add evaluations of surviving original expressions.
            for expr in g.expressions():
                if expr in g2.expressions():
                    assert r2.eval_counts[expr] <= r1.eval_counts[expr]


def test_unknown_engine_rejected():
    import pytest

    with pytest.raises(ValueError):
        optimize(parse_program("x := 1;"), constprop="magic")
    with pytest.raises(ValueError):
        optimize(parse_program("x := 1;"), epr="magic")
