"""Arrays: the Section 6 / [BJP91] extension.

A store ``a[i] := v`` is encoded as ``a := update(a, i, v)`` -- the store
uses the old array and defines the new one -- so aliasing, anti- and
output dependences are carried by the unmodified scalar dependence
machinery, and PRE performs redundant-load elimination for free.
"""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.cfg.interp import run_cfg
from repro.core.build import build_dfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import HeadKind, Port, PortKind
from repro.core.epr import eliminate_partial_redundancies
from repro.core.verify import verify_dfg
from repro.lang.ast_nodes import Index, Update
from repro.lang.errors import InterpError
from repro.lang.interp import run_program
from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import pretty_program
from repro.opt.pipeline import optimize
from conftest import assert_same_behaviour


def outputs(source, env=None):
    return run_program(parse_program(source), env).outputs


# -- frontend ----------------------------------------------------------------


def test_parse_load_and_store():
    prog = parse_program("a[0] := 5; x := a[0];")
    assert prog.body[0].array == "a"
    assert prog.body[1].expr == Index("a", parse_expr("0"))


def test_nested_index_expressions():
    expr = parse_expr("a[b[i] + 1]")
    assert expr == Index("a", parse_expr("b[i] + 1"))


def test_pretty_round_trip_with_arrays():
    src = "a[i + 1] := a[i] * 2;\nprint a[0];\n"
    prog = parse_program(src)
    assert pretty_program(prog) == src
    assert parse_program(pretty_program(prog)) == prog


# -- semantics ---------------------------------------------------------------


def test_store_then_load():
    assert outputs("a[3] := 42; print a[3];") == [42]


def test_unset_elements_are_zero():
    assert outputs("print a[7];") == [0]


def test_computed_indices():
    assert outputs("i := 2; a[i * 2] := 9; print a[4];") == [9]


def test_overwrite():
    assert outputs("a[0] := 1; a[0] := 2; print a[0];") == [2]


def test_array_from_environment():
    assert outputs("print a[1] + a[2];", {"a": {1: 10, 2: 20}}) == [30]


def test_loop_fills_array():
    src = """
    i := 0;
    while (i < 5) { a[i] := i * i; i := i + 1; }
    print a[0] + a[1] + a[2] + a[3] + a[4];
    """
    assert outputs(src) == [0 + 1 + 4 + 9 + 16]


def test_array_used_as_scalar_raises():
    with pytest.raises(InterpError):
        outputs("a[0] := 1; x := a + 1;")
    with pytest.raises(InterpError):
        outputs("a[0] := 1; print a;")
    with pytest.raises(InterpError):
        outputs("a[0] := 1; if (a) { skip; }")


def test_scalar_used_as_array_raises():
    with pytest.raises(InterpError):
        outputs("x := 5; y := x[0];")


def test_cfg_execution_matches_ast_with_arrays():
    prog = parse_program(
        """
        n := 4; i := 0;
        while (i < n) { a[i] := i + 10; i := i + 1; }
        if (a[2] == 12) { b[0] := 1; } else { b[0] := 2; }
        print a[3] + b[0];
        """
    )
    assert_same_behaviour(prog)


# -- dependence structure ------------------------------------------------------


def test_store_is_def_and_use_of_the_array():
    g = build_cfg(parse_program("a[0] := 1; a[1] := 2; x := a[0]; print x;"))
    stores = [
        n for n in g.assign_nodes() if isinstance(n.expr, Update)
    ]
    assert len(stores) == 2
    for store in stores:
        assert store.defs() == frozenset({"a"})
        assert "a" in store.uses()


def test_output_dependence_chains_stores():
    """Store; store: the second store's old-array dependence comes from
    the first -- the output dependence is a data dependence on the
    version."""
    g = build_cfg(parse_program("a[0] := 1; a[1] := 2; print a[0];"))
    dfg = build_dfg(g)
    verify_dfg(g, dfg)
    first, second = [
        n for n in g.assign_nodes() if isinstance(n.expr, Update)
    ]
    assert dfg.use_sources[(second.id, "a")] == Port(
        PortKind.DEF, "a", first.id
    )
    # The load reads the *second* version.
    printer = next(n for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert dfg.use_sources[(printer.id, "a")] == Port(
        PortKind.DEF, "a", second.id
    )


def test_load_and_following_store_share_a_version():
    """Load; store: both consume the same array version -- a multiedge
    from the producing store, which is how the anti-dependence ordering
    is represented without extra edge kinds."""
    g = build_cfg(
        parse_program("a[0] := 1; x := a[5]; a[1] := 2; print x + a[1];")
    )
    dfg = build_dfg(g)
    verify_dfg(g, dfg)
    first = next(
        n for n in g.assign_nodes()
        if isinstance(n.expr, Update) and n.expr.index == parse_expr("0")
    )
    heads = dfg.heads_of(Port(PortKind.DEF, "a", first.id))
    kinds = sorted(
        (h.kind, g.node(h.node).kind.value) for h in heads
    )
    assert len(heads) == 2  # the load and the next store
    assert all(h.kind is HeadKind.USE for h in heads)


def test_array_dependences_intercepted_at_conditional():
    g = build_cfg(
        parse_program(
            "a[0] := 1; if (p) { a[1] := 2; } x := a[0]; print x;"
        )
    )
    dfg = build_dfg(g)
    verify_dfg(g, dfg)
    load = next(
        n for n in g.assign_nodes() if isinstance(n.expr, Index)
    )
    # a is (conditionally) redefined inside the region: the load's
    # dependence comes from the merge operator.
    assert dfg.use_sources[(load.id, "a")].kind is PortKind.MERGE


# -- analyses over arrays ---------------------------------------------------------


def test_constprop_treats_array_contents_as_unknown_but_tracks_deadness():
    g = build_cfg(
        parse_program("if (0) { a[0] := 1; x := a[0]; } print 2;")
    )
    result = dfg_constant_propagation(g)
    store = next(
        n for n in g.assign_nodes() if isinstance(n.expr, Update)
    )
    assert store.id in result.dead_nodes


def test_pre_eliminates_redundant_load():
    g = build_cfg(
        parse_program("x := a[i]; y := a[i]; print x + y;")
    )
    load = parse_expr("a[i]")
    res = eliminate_partial_redundancies(g, load)
    assert res.deleted_nodes
    env = {"a": {0: 7}, "i": 0}
    before = run_cfg(g, env)
    after = run_cfg(res.graph, env)
    assert before.outputs == after.outputs
    assert after.eval_counts[load] < before.eval_counts[load]


def test_store_kills_load_availability():
    g = build_cfg(
        parse_program("x := a[i]; a[j] := 5; y := a[i]; print x + y;")
    )
    load = parse_expr("a[i]")
    res = eliminate_partial_redundancies(g, load)
    # The intervening store may alias a[i]: the second load must remain.
    env = {"a": {0: 7}, "i": 0, "j": 0}
    after = run_cfg(res.graph, env)
    assert after.eval_counts[load] == 2
    assert after.outputs == [12]


def test_index_change_kills_load_availability():
    g = build_cfg(
        parse_program("x := a[i]; i := i + 1; y := a[i]; print x + y;")
    )
    load = parse_expr("a[i]")
    res = eliminate_partial_redundancies(g, load)
    env = {"a": {0: 3, 1: 4}, "i": 0}
    assert run_cfg(res.graph, env).outputs == [7]
    assert run_cfg(res.graph, env).eval_counts[load] == 2


def test_full_pipeline_preserves_array_semantics():
    prog = parse_program(
        """
        n := 3; i := 0;
        while (i < n) { a[i] := a[i] + i; i := i + 1; }
        s := a[0] + a[1] + a[2];
        t := a[0] + a[1] + a[2];
        print s + t;
        """
    )
    g = build_cfg(prog)
    optimized, _report = optimize(g)
    env = {"a": {0: 1, 1: 2, 2: 3}}
    assert run_cfg(g, env).outputs == run_cfg(optimized, env).outputs


# -- SSA with arrays -------------------------------------------------------------


def test_ssa_round_trip_with_arrays():
    from repro.ssa.cytron import build_ssa_cytron
    from repro.ssa.destruct import destruct_ssa
    from repro.ssa.from_dfg import build_ssa_from_dfg

    prog = parse_program(
        """
        n := 3; i := 0;
        while (i < n) { a[i] := a[i] + i; i := i + 1; }
        print a[0] + a[1] + a[2];
        """
    )
    g = build_cfg(prog)
    env = {"a": {0: 1, 1: 2, 2: 3}}
    expected = run_cfg(g, env).outputs
    for builder in (build_ssa_from_dfg, lambda gg: build_ssa_cytron(gg, pruned=True)):
        ssa = builder(g)
        assert run_cfg(destruct_ssa(ssa), env).outputs == expected


def test_array_versions_get_phis():
    from repro.ssa.from_dfg import build_ssa_from_dfg

    g = build_cfg(
        parse_program(
            "a[0] := 1; if (p) { a[1] := 2; } x := a[0]; print x;"
        )
    )
    ssa = build_ssa_from_dfg(g)
    assert any(var == "a" for _, var in ssa.phi_placement())
