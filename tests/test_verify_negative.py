"""Negative tests: the Definition-6 verifier must catch corrupted DFGs.

Each test takes a correctly constructed DFG, damages it in one specific
way, and requires :func:`verify_dfg` to object.  (A verifier that never
fires proves nothing.)
"""

import pytest

from repro.cfg.builder import build_cfg
from repro.core.build import build_dfg
from repro.core.dfg import Head, HeadKind, Port, PortKind
from repro.core.verify import DFGVerificationError, verify_dfg
from repro.lang.parser import parse_program


def fresh(source):
    g = build_cfg(parse_program(source))
    return g, build_dfg(g)


def test_use_fed_from_wrong_definition():
    """Feed a use from a def whose value is killed in between."""
    g, dfg = fresh("x := 1; x := 2; print x;")
    printer = next(n for n in g.nodes.values() if n.kind.value == "print")
    first_def = next(
        n for n in g.assign_nodes() if n.expr.value == 1
    )
    dfg.use_sources[(printer.id, "x")] = Port(PortKind.DEF, "x", first_def.id)
    with pytest.raises(DFGVerificationError, match="assignment to x"):
        verify_dfg(g, dfg)


def test_dependence_jumping_into_branch():
    """A def feeding a use inside a conditional directly (bypassing the
    switch operator) violates postdominance."""
    g, dfg = fresh("x := 1; if (p) { y := x; } print y;")
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    x_def = next(n for n in g.assign_nodes() if n.target == "x")
    dfg.use_sources[(y_def.id, "x")] = Port(PortKind.DEF, "x", x_def.id)
    # Remove the switch operator's record so only the bad edge remains.
    dfg.switch_inputs.pop((next(
        n.id for n in g.nodes.values() if n.kind.value == "switch"
    ), "x"), None)
    with pytest.raises(DFGVerificationError):
        verify_dfg(g, dfg)


def test_dependence_escaping_branch():
    """A switch-arm port feeding a use after the merge violates cycle
    equivalence / postdominance the other way."""
    g, dfg = fresh("x := 1; if (p) { y := x; } else { y := 2; } print y;")
    printer = next(n for n in g.nodes.values() if n.kind.value == "print")
    switch = next(n.id for n in g.nodes.values() if n.kind.value == "switch")
    bad = Port(PortKind.SWITCH, "y", switch, "T")
    dfg.switch_ports.setdefault((switch, "y"), []).append(bad)
    dfg.switch_inputs.setdefault(
        (switch, "y"), dfg.use_sources[(printer.id, "y")]
    )
    dfg.use_sources[(printer.id, "y")] = bad
    with pytest.raises(DFGVerificationError):
        verify_dfg(g, dfg)


def test_variable_mismatch():
    g, dfg = fresh("x := 1; print x;")
    printer = next(n for n in g.nodes.values() if n.kind.value == "print")
    x_def = next(n for n in g.assign_nodes())
    dfg.use_sources[(printer.id, "x")] = Port(PortKind.DEF, "q", x_def.id)
    with pytest.raises(DFGVerificationError):
        verify_dfg(g, dfg)


def test_merge_with_missing_input():
    g, dfg = fresh("if (p) { x := 1; } else { x := 2; } print x;")
    merge_port = next(p for p in dfg.merge_inputs if p.var == "x")
    some_edge = next(iter(dfg.merge_inputs[merge_port]))
    del dfg.merge_inputs[merge_port][some_edge]
    with pytest.raises(DFGVerificationError, match="merge operator"):
        verify_dfg(g, dfg)


def test_switch_arms_without_input():
    g, dfg = fresh("x := 1; if (p) { y := x; } print y;")
    switch = next(n.id for n in g.nodes.values() if n.kind.value == "switch")
    assert (switch, "x") in dfg.switch_inputs
    del dfg.switch_inputs[(switch, "x")]
    with pytest.raises(DFGVerificationError, match="no input"):
        verify_dfg(g, dfg)


def test_use_source_for_non_use():
    g, dfg = fresh("x := 1; print x;")
    x_def = next(n for n in g.assign_nodes())
    dfg.use_sources[(x_def.id, "zz")] = Port(PortKind.ENTRY, "zz")
    with pytest.raises(DFGVerificationError, match="non-use"):
        verify_dfg(g, dfg)


def test_def_port_of_wrong_variable():
    g, dfg = fresh("x := 1; y := 2; print x;")
    printer = next(n for n in g.nodes.values() if n.kind.value == "print")
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    dfg.use_sources[(printer.id, "x")] = Port(PortKind.DEF, "x", y_def.id)
    with pytest.raises(DFGVerificationError):
        verify_dfg(g, dfg)


def test_clean_dfg_passes():
    g, dfg = fresh("x := 1; if (p) { y := x; } else { y := 2; } print y;")
    verify_dfg(g, dfg)  # sanity: undamaged input is accepted
