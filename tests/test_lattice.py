"""Property tests for the constant lattice and abstract evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.lattice import (
    BOTTOM,
    TOP,
    eval_abstract,
    join_all,
    join_const,
    leq_const,
    truthiness,
)
from repro.lang.interp import eval_expr
from repro.lang.errors import InterpError

import strategies

values = st.one_of(
    st.just(BOTTOM), st.just(TOP), st.integers(min_value=-20, max_value=20)
)


@given(values, values)
def test_join_commutative(a, b):
    assert join_const(a, b) == join_const(b, a)


@given(values, values, values)
def test_join_associative(a, b, c):
    assert join_const(join_const(a, b), c) == join_const(a, join_const(b, c))


@given(values)
def test_join_idempotent(a):
    assert join_const(a, a) == a


@given(values)
def test_bottom_is_identity_top_absorbs(a):
    assert join_const(BOTTOM, a) == a
    assert join_const(TOP, a) is TOP


@given(values, values)
def test_leq_agrees_with_join(a, b):
    assert leq_const(a, b) == (join_const(a, b) == b)


def test_distinct_constants_join_to_top():
    assert join_const(1, 2) is TOP
    assert join_const(0, 0) == 0


def test_join_all():
    assert join_all([]) is BOTTOM
    assert join_all([BOTTOM, 5, BOTTOM]) == 5
    assert join_all([5, 5]) == 5
    assert join_all([5, 6]) is TOP


def test_truthiness():
    assert truthiness(BOTTOM) is BOTTOM
    assert truthiness(TOP) is TOP
    assert truthiness(0) == 0
    assert truthiness(7) == 1
    assert truthiness(-3) == 1


@given(strategies.exprs(max_leaves=8))
@settings(max_examples=150)
def test_eval_abstract_with_all_constants_matches_concrete(expr):
    """With every variable bound to a constant, abstract evaluation folds
    exactly like the interpreter (or yields TOP where the interpreter
    would trap)."""
    env = {name: 3 for name in _vars(expr)}
    abstract = eval_abstract(expr, lambda v: env[v])
    try:
        concrete = eval_expr(expr, env)
    except InterpError:
        assert abstract is TOP  # would trap: must not fold
        return
    assert abstract == concrete


@given(strategies.exprs(max_leaves=8))
@settings(max_examples=100)
def test_eval_abstract_bottom_dominates_top(expr):
    names = sorted(_vars(expr))
    if not names:
        return
    half = len(names) // 2
    lookup = {}
    for i, name in enumerate(names):
        lookup[name] = BOTTOM if i <= half else TOP
    result = eval_abstract(expr, lambda v: lookup[v])
    assert result is BOTTOM  # any BOTTOM operand wins over TOP


@given(strategies.exprs(max_leaves=8))
@settings(max_examples=100)
def test_eval_abstract_monotone_in_one_variable(expr):
    """Raising one variable from BOTTOM to a constant to TOP never lowers
    the result."""
    names = sorted(_vars(expr))
    if not names:
        return
    target = names[0]
    base = {name: 2 for name in names}

    def result(value):
        env = dict(base)
        env[target] = value
        return eval_abstract(expr, lambda v: env[v])

    assert leq_const(result(BOTTOM), result(5))
    assert leq_const(result(5), result(TOP))


def _vars(expr):
    from repro.lang.ast_nodes import expr_vars

    return expr_vars(expr)
