"""Def-use chain and chain-based constant-propagation tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.dataflow.lattice import TOP
from repro.defuse.chains import build_def_use_chains
from repro.defuse.constprop import defuse_constant_propagation
from repro.lang.parser import parse_program
from repro.workloads import suites
from repro.workloads.generators import random_program
from repro.workloads.ladders import defuse_worst_case


def graph_of(source):
    return build_cfg(parse_program(source))


def assign_node(g, target, pred=None):
    nodes = [
        n for n in g.assign_nodes()
        if n.target == target and (pred is None or pred(n))
    ]
    assert len(nodes) == 1, f"ambiguous assign {target}"
    return nodes[0]


def test_straight_line_chain():
    g = graph_of("x := 1; y := x + 1;")
    chains = build_def_use_chains(g)
    x_def = assign_node(g, "x")
    y_def = assign_node(g, "y")
    assert chains.defs_reaching_use(y_def.id, "x") == [x_def.id]


def test_kill_breaks_chain():
    g = graph_of("x := 1; x := 2; y := x;")
    chains = build_def_use_chains(g)
    y_def = assign_node(g, "y")
    reaching = chains.defs_reaching_use(y_def.id, "x")
    second = [
        n for n in g.assign_nodes()
        if n.target == "x" and n.expr.value == 2
    ]
    assert reaching == [second[0].id]


def test_both_branches_reach_merge_use():
    g = graph_of("if (p) { x := 1; } else { x := 2; } y := x;")
    chains = build_def_use_chains(g)
    y_def = assign_node(g, "y")
    assert len(chains.defs_reaching_use(y_def.id, "x")) == 2


def test_entry_definition_reaches_uninitialized_use():
    g = graph_of("print q;")
    chains = build_def_use_chains(g)
    printer = next(n for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert chains.defs_reaching_use(printer.id, "q") == [g.start]


def test_loop_carried_chain():
    g = graph_of("i := 0; while (i < 3) { i := i + 1; } print i;")
    chains = build_def_use_chains(g)
    inc = next(n for n in g.assign_nodes() if "i" in n.uses())
    # The increment's use of i is reached by both the init and itself.
    reaching = set(chains.defs_reaching_use(inc.id, "i"))
    init = next(n for n in g.assign_nodes() if not n.uses())
    assert {init.id, inc.id} <= reaching


def test_quadratic_worst_case_size():
    small = build_def_use_chains(build_cfg(defuse_worst_case(5))).size()
    big = build_def_use_chains(build_cfg(defuse_worst_case(10))).size()
    # Doubling n should roughly quadruple the chain count.
    assert big > 3 * small


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=25, deadline=None)
def test_every_use_has_a_reaching_def(seed):
    g = build_cfg(random_program(seed, size=12, num_vars=3))
    chains = build_def_use_chains(g)
    for node in g.nodes.values():
        for var in node.uses():
            assert chains.defs_reaching_use(node.id, var)


# -- constant propagation ------------------------------------------------------


def test_figure3a_all_paths_constants_found():
    g = build_cfg(suites.figure3a())
    result = defuse_constant_propagation(g)
    # x := z + 2 and x := z + 1 both fold to 3; y := x folds to 3.
    x_rhs = {
        result.rhs_values[n.id]
        for n in g.assign_nodes()
        if n.target == "x"
    }
    assert x_rhs == {3}
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.rhs_values[y_def.id] == 3


def test_figure3b_possible_paths_constant_missed():
    """The headline deficiency: chain-based CP cannot see that the false
    branch is dead, so the use of x joins 1 and 2 into TOP."""
    g = build_cfg(suites.figure3b())
    result = defuse_constant_propagation(g)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.use_values[(y_def.id, "x")] is TOP


def test_figure1_partial_results():
    """Def-use CP finds x == 1 at the switch and y+1 -> 3, but not the
    final use of y (two chains with different constants)."""
    g = build_cfg(suites.figure1())
    result = defuse_constant_propagation(g)
    switch = next(n for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    assert result.use_values[(switch.id, "x")] == 1
    inc = next(
        n for n in g.assign_nodes() if n.target == "y" and "y" in n.uses()
    )
    assert result.rhs_values[inc.id] == 3
    printer = next(n for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert result.use_values[(printer.id, "y")] is TOP


def test_uninitialized_uses_are_top():
    g = graph_of("y := q + 1;")
    result = defuse_constant_propagation(g)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.use_values[(y_def.id, "q")] is TOP


def test_chain_cp_is_sound_on_executions():
    """Any constant the analysis claims must match the actual runtime
    value on every execution."""
    from repro.cfg.interp import run_cfg
    from conftest import random_envs

    for seed in range(8):
        prog = random_program(seed, size=12, num_vars=3)
        g = build_cfg(prog)
        result = defuse_constant_propagation(g)
        constants = result.constant_uses()
        if not constants:
            continue
        for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
            run = run_cfg(g, env)
            # Re-execute, checking claimed-constant uses on the trace.
            state = dict(env)
            for nid in run.trace:
                node = g.node(nid)
                for var in node.uses():
                    if (nid, var) in constants:
                        assert state.get(var, 0) == constants[(nid, var)]
                if node.kind is NodeKind.ASSIGN:
                    from repro.lang.interp import eval_expr

                    state[node.target] = eval_expr(node.expr, state)
