"""End-to-end daemon tests over real sockets.

Everything here runs a real :class:`~repro.serve.server.ReproServer` on
a private port (or unix socket) with a private cache directory, talks to
it through the real :class:`~repro.serve.client.ServeClient`, and
asserts the service contracts:

* warm daemon answers are byte-identical to the one-shot CLI twin;
* a scripted session's responses match a checked-in golden transcript
  (regenerate with ``REGEN_GOLDEN=1``);
* malformed requests produce structured errors -- never a dropped
  connection -- and map onto the CLI's exit-2 taxonomy;
* repeated edits reuse one :class:`~repro.regions.edits.EditSession`
  (zero re-parses, dirty-spine-bounded re-summarization, measured with
  the session's :class:`~repro.util.counters.WorkCounter`);
* pool timeouts are driven by a :class:`~repro.robust.watchdog.
  FakeClock` -- no real deadline sleeps in the test;
* shutdown is graceful: in-flight work completes, then the serve loop
  exits.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.robust.watchdog import FakeClock
from repro.serve.client import ServeClient, one_shot, raise_for_error
from repro.serve.ops import run_op
from repro.serve.server import SERVE_SCHEMA, ReproServer, canonical_json

SRC = str(Path(__file__).resolve().parents[1] / "src")
GOLDEN = Path(__file__).parent / "golden" / "serve_session.json"

SOURCE = (
    "limit := 4;\ntotal := 0;\n"
    "while (limit > 0) { total := total + limit; limit := limit - 1; }\n"
    "print total;\n"
)
SOURCE_B = "x := 1;\ny := x + x;\nprint y;\n"
BAD_SOURCE = "x := ;\n"


@pytest.fixture()
def server(tmp_path):
    srv = ReproServer(
        host="127.0.0.1", port=0, cache_dir=str(tmp_path / "cache"),
        debug_ops=True,
    )
    srv.start_background()
    yield srv
    if not srv.broker.stopping:
        srv.shutdown()
    srv.join(timeout=10.0)


def _client(server: ReproServer, timeout_s: float = 30.0) -> ServeClient:
    _, host, port = server.address
    return ServeClient(host=host, port=port, timeout_s=timeout_s)


# -- byte identity vs the one-shot twin ---------------------------------------


def test_daemon_answers_byte_identical_to_one_shot(server) -> None:
    with _client(server) as client:
        # analyze resolves constprop's whole pass set, so the later
        # constprop request is warm from the start.
        for op, states in (
            ("analyze", ("miss", "warm")),
            ("constprop", ("warm", "warm")),
            ("lint", ("miss", "warm")),
        ):
            expected = canonical_json(run_op(op, SOURCE, label="prog.dfg"))
            for expected_state in states:  # cold, then memoized
                response = client.request(
                    op, source=SOURCE, file="prog.dfg"
                )
                assert response["ok"], response
                assert response["cache"] == expected_state, op
                assert canonical_json(response["result"]) == expected, op


def test_disk_tier_survives_daemon_restart(tmp_path) -> None:
    cache_dir = str(tmp_path / "cache")
    expected = canonical_json(run_op("analyze", SOURCE_B))

    first = ReproServer(host="127.0.0.1", port=0, cache_dir=cache_dir)
    first.start_background()
    with _client(first) as client:
        assert client.request("analyze", source=SOURCE_B)["cache"] == "miss"
        client.request("shutdown")
    first.join(timeout=10.0)

    second = ReproServer(host="127.0.0.1", port=0, cache_dir=cache_dir)
    second.start_background()
    with _client(second) as client:
        response = client.request("analyze", source=SOURCE_B)
        assert response["cache"] == "disk"  # no recompute after restart
        assert canonical_json(response["result"]) == expected
        assert second.broker.stats["misses"] == 0
        client.request("shutdown")
    second.join(timeout=10.0)


def test_unix_socket_transport(tmp_path) -> None:
    path = str(tmp_path / "repro.sock")
    srv = ReproServer(socket_path=path, cache_dir=str(tmp_path / "cache"))
    srv.start_background()
    try:
        with ServeClient(socket_path=path) as client:
            assert client.ping()["result"]["pong"] is True
            response = client.request("analyze", source=SOURCE_B)
            assert canonical_json(response["result"]) == canonical_json(
                run_op("analyze", SOURCE_B)
            )
            client.request("shutdown")
    finally:
        srv.join(timeout=10.0)
    assert not os.path.exists(path)  # socket file cleaned up


# -- golden request/response transcript ---------------------------------------

#: The scripted session: (op, params).  Every response is deterministic
#: (no wall-clock fields; the cache directory starts empty each run).
_GOLDEN_SCRIPT = [
    ("ping", {}),
    ("analyze", {"source": SOURCE, "file": "prog.dfg"}),
    ("analyze", {"source": SOURCE, "file": "prog.dfg"}),
    ("constprop", {"source": SOURCE}),
    ("lint", {"source": SOURCE_B, "file": "b.dfg"}),
    ("nope", {}),
    ("analyze", {}),
    ("analyze", {"source": BAD_SOURCE}),
    ("edit", {"action": "open", "session": "g", "source": SOURCE_B}),
    ("edit", {"action": "query", "session": "g"}),
    ("edit", {"action": "close", "session": "g"}),
    ("batch-sarif", {"docs": [{"label": "b.dfg", "source": SOURCE_B}]}),
]


def test_golden_session_transcript(server) -> None:
    with _client(server) as client:
        transcript = []
        for op, params in _GOLDEN_SCRIPT:
            response = client.request(op, **params)
            transcript.append({
                "request": {"op": op, **params},
                "response": response,
            })
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN.write_text(
            json.dumps(transcript, indent=2, sort_keys=True) + "\n"
        )
    expected = json.loads(GOLDEN.read_text())
    assert transcript == expected


# -- malformed requests -------------------------------------------------------


def test_malformed_lines_get_structured_errors_not_disconnects(
    server,
) -> None:
    import socket as socketlib

    _, host, port = server.address
    sock = socketlib.create_connection((host, port), timeout=10.0)
    try:
        reader = sock.makefile("rb")
        for raw, expected_kind in (
            (b"this is not json\n", "input"),
            (b'"just a string"\n', "input"),
            (b'{"id": 1, "op": "edit", "action": 7}\n', "input"),
            (b'{"id": 2, "op": "analyze", "source": 42}\n', "input"),
            (b'{"id": 3, "op": "analyze", "source": "x := ;"}\n', "language"),
        ):
            sock.sendall(raw)
            response = json.loads(reader.readline())
            assert response["schema"] == SERVE_SCHEMA
            assert response["ok"] is False
            assert response["error"]["kind"] == expected_kind, raw
        # The connection is still alive and serving after five bad lines.
        sock.sendall(
            json.dumps({"id": 9, "op": "ping"}).encode() + b"\n"
        )
        assert json.loads(reader.readline())["result"]["pong"] is True
    finally:
        sock.close()


def test_daemon_error_maps_to_cli_exit_2(server, tmp_path) -> None:
    """``repro request`` against a live daemon turns a daemon-side error
    into the one-line structured stderr + exit 2 contract."""
    bad = tmp_path / "bad.dfg"
    bad.write_text(BAD_SOURCE)
    _, host, port = server.address
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "request", "analyze", str(bad),
            "--host", host, "--port", str(port),
        ],
        capture_output=True, text=True,
        env=dict(os.environ, PYTHONPATH=SRC),
    )
    assert proc.returncode == 2
    assert proc.stdout == ""
    lines = [line for line in proc.stderr.splitlines() if line]
    assert len(lines) == 1 and lines[0].startswith("repro: input error:")


def test_client_raise_for_error_taxonomy(server) -> None:
    from repro.robust.errors import InputError

    with _client(server) as client:
        response = client.request("analyze")  # missing source
        with pytest.raises(InputError):
            raise_for_error(response)
        ok = client.request("analyze", source=SOURCE_B)
        assert raise_for_error(ok) == ok["result"]


def test_request_cli_offline_equals_daemon(server, tmp_path) -> None:
    """The no-address fallback of ``repro request`` prints byte-identical
    JSON to a request served by a warm daemon."""
    prog = tmp_path / "prog.dfg"
    prog.write_text(SOURCE)
    _, host, port = server.address
    env = dict(os.environ, PYTHONPATH=SRC)
    offline = subprocess.run(
        [sys.executable, "-m", "repro", "request", "analyze", str(prog)],
        capture_output=True, env=env, check=True,
    )
    via_daemon = subprocess.run(
        [
            sys.executable, "-m", "repro", "request", "analyze", str(prog),
            "--host", host, "--port", str(port),
        ],
        capture_output=True, env=env, check=True,
    )
    assert offline.stdout == via_daemon.stdout


# -- edit sessions: one parse, dirty-spine-bounded work ----------------------


def test_edit_session_reuses_incremental_state(server) -> None:
    with _client(server) as client:
        opened = raise_for_error(
            client.request(
                "edit", action="open", session="e1", source=SOURCE
            )
        )
        assert server.broker.stats["parses"] == 1
        assigns = [
            s["id"] for s in opened["statements"] if s["kind"] == "ASSIGN"
        ]
        assert assigns

        # First query pays for the initial solve.
        raise_for_error(client.request("edit", action="query", session="e1"))
        session = server.broker._sessions["e1"]["session"]
        systems_total = len(session.engine.systems.systems)

        # Repeated rewrite+query cycles: no re-parse ever, and each
        # re-solve touches a bounded slice of the region tree, not all
        # of it.
        for round_ in range(3):
            work = raise_for_error(
                client.request(
                    "edit", action="rewrite", session="e1",
                    node=assigns[0], expr=str(10 + round_),
                )
            )["work"]
            assert work.get("inc_full_rebuilds", 0) == 0
            queried = raise_for_error(
                client.request("edit", action="query", session="e1")
            )
            resummarized = queried["work"].get(
                "inc_regions_resummarized", 0
            )
            assert 0 < resummarized < systems_total, round_
        assert server.broker.stats["parses"] == 1  # still the one parse

        # Splice + unsplice round-trip through the wire API.
        edge = opened["edge_ids"][0]
        spliced = raise_for_error(
            client.request(
                "edit", action="splice", session="e1",
                edge=edge, target="tmp", expr="5",
            )
        )
        raise_for_error(
            client.request(
                "edit", action="unsplice", session="e1",
                node=spliced["node"],
            )
        )
        closed = raise_for_error(
            client.request("edit", action="close", session="e1")
        )
        assert closed["edits"] == 5  # 3 rewrites + splice + unsplice
        assert server.broker.stats["parses"] == 1


def test_edit_session_never_aliases_warm_lru(server) -> None:
    """The latent-bug regression at the protocol level: analyzing X,
    editing X in a session, then re-analyzing X must serve the
    *original* answer (the session's graph is private)."""
    with _client(server) as client:
        expected = canonical_json(run_op("analyze", SOURCE_B))
        first = client.request("analyze", source=SOURCE_B)
        assert canonical_json(first["result"]) == expected

        opened = raise_for_error(
            client.request(
                "edit", action="open", session="alias", source=SOURCE_B
            )
        )
        assign = next(
            s["id"] for s in opened["statements"] if s["kind"] == "ASSIGN"
        )
        raise_for_error(
            client.request(
                "edit", action="rewrite", session="alias",
                node=assign, expr="99",
            )
        )
        raise_for_error(client.request("edit", action="query", session="alias"))

        again = client.request("analyze", source=SOURCE_B)
        assert again["cache"] == "warm"
        assert canonical_json(again["result"]) == expected  # not 99-tainted


# -- batch-sarif: cache + supervised pool with a fake clock -------------------


def test_batch_sarif_mixed_docs_and_disk_cache(server) -> None:
    with _client(server) as client:
        docs = [
            {"label": "b.dfg", "source": SOURCE_B},
            {"label": "gen", "family": "diamond", "args": [4]},
        ]
        first = raise_for_error(client.request("batch-sarif", docs=docs))
        assert [d["cache"] for d in first["documents"]] == ["miss", "miss"]
        sarif = first["documents"][0]["sarif"]
        assert sarif["version"] == "2.1.0"

        second = raise_for_error(client.request("batch-sarif", docs=docs))
        # Source docs hit the disk tier; family docs are never cached.
        assert second["documents"][0]["cache"] == "disk"
        assert second["documents"][0]["sarif"] == sarif
        assert second["documents"][1]["cache"] == "miss"


def test_batch_sarif_pool_timeout_with_fake_clock(tmp_path) -> None:
    """A hung worker is cut off at the per-doc deadline without any real
    sleeping: the supervisor's poll-loop sleeps advance a FakeClock.

    The healthy doc opts out of the deadline with a per-doc
    ``timeout_s: None`` override -- under a fake clock a real worker's
    spawn time would otherwise count against a purely fictional budget.
    """
    clock = FakeClock()
    srv = ReproServer(
        host="127.0.0.1", port=0, cache_dir=str(tmp_path / "cache"),
        pool_workers=1, pool_timeout_s=5.0,
        clock=clock.now, sleep=clock.sleep,
    )
    srv.start_background()
    try:
        with _client(srv, timeout_s=120.0) as client:
            result = raise_for_error(
                client.request(
                    "batch-sarif",
                    docs=[
                        {"label": "hang", "family": "__hang__", "args": []},
                        {
                            "label": "ok", "source": SOURCE_B,
                            "timeout_s": None,
                        },
                    ],
                )
            )
            hang, ok = result["documents"]
            assert hang["label"] == "hang"
            assert hang["quarantined"]
            assert hang["error"]["type"] == "PassTimeout"
            assert ok["sarif"]["version"] == "2.1.0"
            assert srv.broker.incidents.count("worker-timeout") >= 1
            assert clock.sleeps  # the fake clock did the waiting
            client.request("shutdown")
    finally:
        srv.join(timeout=30.0)


# -- stats + graceful shutdown ------------------------------------------------


def test_stats_op_accounts_tiers(server) -> None:
    with _client(server) as client:
        client.request("analyze", source=SOURCE_B)
        client.request("analyze", source=SOURCE_B)
        stats = raise_for_error(client.request("stats"))
        assert stats["misses"] == 1 and stats["warm_hits"] == 1
        assert stats["parses"] == 1
        assert stats["cache"]["version"] == server.broker.cache.version
        assert stats["by_op"]["analyze"] == 2


def test_graceful_shutdown_drains_in_flight_work(server) -> None:
    """A request already executing when shutdown arrives still gets its
    response before the serve loop exits."""
    slow_response: dict = {}

    def slow() -> None:
        with _client(server, timeout_s=30.0) as client:
            slow_response.update(
                client.request("debug-sleep", ms=400)
            )

    worker = threading.Thread(target=slow)
    worker.start()
    # Give the slow request time to reach the broker, then shut down
    # from a second connection.
    import time

    deadline = time.monotonic() + 5.0
    while (
        server.broker._by_op.get("debug-sleep", 0) == 0
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    with _client(server) as client:
        assert client.request("shutdown")["result"]["stopping"] is True
    worker.join(timeout=30.0)
    server.join(timeout=30.0)
    assert slow_response.get("ok") is True  # drained, not dropped
    assert slow_response["result"]["slept_ms"] == 400


def test_one_shot_helper_matches_run_op() -> None:
    assert one_shot("constprop", SOURCE) == run_op("constprop", SOURCE)
