"""DFG constant propagation (Figure 4(b)) tests.

The central differential property: the DFG algorithm, the CFG vector
algorithm (Figure 4(a)) and SCCP find exactly the same possible-paths
constants and the same dead code; def-use-chain propagation finds only
the all-paths subset.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.cfg.interp import run_cfg
from repro.core.build import build_dfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import CTRL_VAR
from repro.dataflow.lattice import BOTTOM, TOP
from repro.defuse.constprop import defuse_constant_propagation
from repro.lang.interp import eval_expr
from repro.lang.parser import parse_program
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.sccp import sparse_conditional_constant_propagation
from repro.workloads import suites
from repro.workloads.generators import (
    inline_expansion_program,
    irreducible_program,
    random_program,
)
from conftest import random_envs


def graph_of(source_or_prog):
    prog = (
        parse_program(source_or_prog)
        if isinstance(source_or_prog, str)
        else source_or_prog
    )
    return build_cfg(prog)


def assign(g, target, value=None):
    from repro.lang.ast_nodes import IntLit

    nodes = [
        n for n in g.assign_nodes()
        if n.target == target
        and (value is None or n.expr == IntLit(value))
    ]
    assert len(nodes) == 1
    return nodes[0]


# -- the paper's worked examples -------------------------------------------------


def test_figure3a_all_paths_constants():
    g = graph_of(suites.figure3a())
    result = dfg_constant_propagation(g)
    x_defs = [n for n in g.assign_nodes() if n.target == "x"]
    assert {result.rhs_values[n.id] for n in x_defs} == {3}
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.rhs_values[y_def.id] == 3


def test_figure3b_possible_paths_constant():
    """The DFG algorithm ignores the definition on the unexecuted branch:
    x is 1 at the last statement."""
    g = graph_of(suites.figure3b())
    result = dfg_constant_propagation(g)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.use_values[(y_def.id, "x")] == 1
    dead = assign(g, "x", 2)
    assert dead.id in result.dead_nodes


def test_figure3b_defuse_misses_what_dfg_finds():
    g = graph_of(suites.figure3b())
    dfg_result = dfg_constant_propagation(g)
    chain_result = defuse_constant_propagation(g)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert dfg_result.use_values[(y_def.id, "x")] == 1
    assert chain_result.use_values[(y_def.id, "x")] is TOP


def test_figure1_final_use_resolves_to_3():
    g = graph_of(suites.figure1())
    result = dfg_constant_propagation(g)
    printer = next(n.id for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert result.use_values[(printer, "y")] == 3
    dead = assign(g, "y", 5)
    assert dead.id in result.dead_nodes


# -- dead code ---------------------------------------------------------------


def test_constant_predicate_kills_branch():
    g = graph_of("if (0) { x := 1; print x; } else { skip; } print 2;")
    result = dfg_constant_propagation(g)
    x_def = next(n for n in g.assign_nodes() if n.target == "x")
    assert x_def.id in result.dead_nodes


def test_nested_dead_regions():
    g = graph_of(
        """
        p := 0;
        if (p) {
            if (q) { x := 1; } else { x := 2; }
            print x;
        }
        print 9;
        """
    )
    result = dfg_constant_propagation(g)
    dead_assigns = {
        n.id for n in g.assign_nodes() if n.target == "x"
    }
    assert dead_assigns <= result.dead_nodes


def test_zero_trip_loop_body_is_dead():
    g = graph_of("x := 5; i := 0; while (i < 0) { x := 1; } print x;")
    result = dfg_constant_propagation(g)
    body_def = assign(g, "x", 1)
    assert body_def.id in result.dead_nodes
    printer = next(n.id for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert result.use_values[(printer, "x")] == 5


def test_live_loop_variable_is_top():
    g = graph_of("i := 0; while (i < n) { i := i + 1; } print i;")
    result = dfg_constant_propagation(g)
    printer = next(n.id for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert result.use_values[(printer, "i")] is TOP


def test_constant_through_loop():
    """A variable unmodified by the loop keeps its constant across it."""
    g = graph_of("x := 7; i := 0; while (i < n) { i := i + 1; } print x;")
    result = dfg_constant_propagation(g)
    printer = next(n.id for n in g.nodes.values() if n.kind is NodeKind.PRINT)
    assert result.use_values[(printer, "x")] == 7


def test_entry_values_are_top():
    g = graph_of("y := q + 1; print y;")
    result = dfg_constant_propagation(g)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.use_values[(y_def.id, "q")] is TOP


# -- differential agreement ---------------------------------------------------


def agreement_case(prog):
    g = build_cfg(prog)
    dfg_result = dfg_constant_propagation(g)
    cfg_result = cfg_constant_propagation(g)
    ssa = build_ssa_cytron(g)
    sccp_result = sparse_conditional_constant_propagation(ssa)
    for (nid, var), dv in dfg_result.use_values.items():
        if var == CTRL_VAR:
            continue
        assert cfg_result.use_values[(nid, var)] == dv, (nid, var)
        assert sccp_result.value_of_use(ssa, nid, var) == dv, (nid, var)
    statements = {
        n.id
        for n in g.nodes.values()
        if n.kind in (NodeKind.ASSIGN, NodeKind.PRINT, NodeKind.SWITCH)
    }
    assert (cfg_result.dead_nodes & statements) == dfg_result.dead_nodes


@given(st.integers(min_value=0, max_value=800))
@settings(max_examples=40, deadline=None)
def test_three_way_agreement_on_random_programs(seed):
    agreement_case(random_program(seed, size=14, num_vars=3))


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=20, deadline=None)
def test_three_way_agreement_on_inline_expansion(seed):
    agreement_case(inline_expansion_program(seed))


def test_three_way_agreement_on_irreducible():
    for seed in range(5):
        agreement_case(irreducible_program(seed))


def test_defuse_is_never_more_precise():
    """All-paths constants are a subset of possible-paths constants."""
    for seed in range(15):
        g = build_cfg(inline_expansion_program(seed))
        dfg_result = dfg_constant_propagation(g)
        chain_result = defuse_constant_propagation(g)
        for key, cv in chain_result.constant_uses().items():
            dv = dfg_result.use_values[key]
            assert dv is BOTTOM or dv == cv, key


def test_inline_expansion_shows_the_precision_gap():
    """The motivating workload: possible-paths constants the chains miss."""
    gap = 0
    for seed in range(10):
        g = build_cfg(inline_expansion_program(seed))
        dfg_found = dfg_constant_propagation(g).constant_uses()
        chain_found = defuse_constant_propagation(g).constant_uses()
        dead = dfg_constant_propagation(g).dead_nodes
        live_dfg = {k: v for k, v in dfg_found.items() if k[0] not in dead}
        gap += len(set(live_dfg) - set(chain_found))
    assert gap > 0


# -- soundness against real executions ------------------------------------------


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=25, deadline=None)
def test_claimed_constants_match_executions(seed):
    prog = random_program(seed, size=12, num_vars=3)
    g = build_cfg(prog)
    result = dfg_constant_propagation(g)
    constants = result.constant_uses()
    for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
        run = run_cfg(g, env)
        state = dict(env)
        for nid in run.trace:
            node = g.node(nid)
            assert nid not in result.dead_nodes, f"dead node {nid} executed"
            for var in node.uses():
                if (nid, var) in constants:
                    assert state.get(var, 0) == constants[(nid, var)]
            if node.kind is NodeKind.ASSIGN:
                state[node.target] = eval_expr(node.expr, state)
