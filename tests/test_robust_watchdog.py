"""Deadlines, retry and backoff -- all on an injectable fake clock.

No test here (or anywhere in tier 1) performs a real sleep: the clock
only moves when the test moves it, so timeout and backoff behavior is
exercised deterministically and instantly.
"""

from __future__ import annotations

import pytest

from repro.robust import Backoff, Deadline, FakeClock, PassTimeout, retry_with_backoff
from repro.robust.errors import InputError


def test_fake_clock_sleep_advances_and_records() -> None:
    clock = FakeClock(start=10.0)
    clock.sleep(1.5)
    clock.sleep(0.5)
    assert clock.now() == 12.0
    assert clock.sleeps == [1.5, 0.5]


def test_deadline_expires_exactly_on_fake_clock() -> None:
    clock = FakeClock()
    deadline = Deadline(2.0, clock=clock.now)
    assert not deadline.expired()
    assert deadline.remaining() == 2.0
    clock.advance(1.9)
    deadline.check()  # still inside budget
    clock.advance(0.2)
    assert deadline.expired()
    with pytest.raises(PassTimeout) as excinfo:
        deadline.check(phase="pass:dom", pass_name="dom", fingerprint="f00")
    exc = excinfo.value
    assert exc.budget_s == 2.0
    assert exc.elapsed_s == pytest.approx(2.1)
    assert exc.pass_name == "dom"


def test_deadline_reset_restores_budget() -> None:
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock.now)
    clock.advance(5.0)
    assert deadline.expired()
    deadline.reset()
    assert not deadline.expired()
    assert deadline.remaining() == 1.0


def test_none_budget_never_expires() -> None:
    clock = FakeClock()
    deadline = Deadline(None, clock=clock.now)
    clock.advance(1e9)
    assert deadline.remaining() == float("inf")
    deadline.check()  # never raises


def test_backoff_sequence_caps() -> None:
    backoff = Backoff(base_s=0.1, factor=2.0, max_s=0.5)
    assert [backoff.delay(a) for a in range(5)] == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_retry_succeeds_after_transient_failures() -> None:
    clock = FakeClock()
    attempts: list[int] = []
    retried: list[tuple[int, str]] = []

    def flaky() -> str:
        attempts.append(len(attempts))
        if len(attempts) < 3:
            raise RuntimeError(f"transient {len(attempts)}")
        return "done"

    result = retry_with_backoff(
        flaky,
        retries=3,
        backoff=Backoff(base_s=0.05, factor=2.0, max_s=1.0),
        sleep=clock.sleep,
        on_retry=lambda attempt, exc: retried.append((attempt, str(exc))),
    )
    assert result == "done"
    assert len(attempts) == 3
    # Exponential backoff between attempts, via the fake clock only.
    assert clock.sleeps == [0.05, 0.1]
    assert retried == [(0, "transient 1"), (1, "transient 2")]


def test_retry_exhaustion_propagates_last_error() -> None:
    clock = FakeClock()

    def hopeless() -> None:
        raise RuntimeError("still broken")

    with pytest.raises(RuntimeError, match="still broken"):
        retry_with_backoff(hopeless, retries=2, sleep=clock.sleep)
    assert len(clock.sleeps) == 2  # two retries scheduled, both failed


def test_should_retry_filters_permanent_failures() -> None:
    clock = FakeClock()
    calls: list[int] = []

    def rejects_input() -> None:
        calls.append(1)
        raise InputError("the input will not improve")

    with pytest.raises(InputError):
        retry_with_backoff(
            rejects_input,
            retries=5,
            sleep=clock.sleep,
            should_retry=lambda exc: not isinstance(exc, InputError),
        )
    assert len(calls) == 1  # no second attempt
    assert clock.sleeps == []  # and no backoff sleep at all
