"""Unit tests for the small supporting modules: counters, dot export,
workload generators, the factored CDG, and the generic solver."""

import random

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.dot import cfg_to_dot
from repro.cfg.graph import NodeKind
from repro.controldep.factored import build_factored_cdg
from repro.dataflow.solver import solve_dataflow
from repro.lang.ast_nodes import program_labels, program_vars
from repro.lang.interp import run_program
from repro.lang.parser import parse_program
from repro.util.counters import WorkCounter
from repro.workloads.generators import (
    inline_expansion_program,
    irreducible_program,
    random_expr,
    random_program,
)
from repro.workloads.ladders import (
    defuse_worst_case,
    diamond_chain,
    loop_nest,
    sparse_use_program,
    wide_variable_program,
)


# -- counters ------------------------------------------------------------------


def test_counter_basics():
    w = WorkCounter()
    w.tick("a")
    w.tick("a", 4)
    w.tick("b")
    assert w["a"] == 5 and w["b"] == 1 and w["missing"] == 0
    assert w.total() == 6
    assert w.as_dict() == {"a": 5, "b": 1}


def test_counter_merge_and_reset():
    a, b = WorkCounter(), WorkCounter()
    a.tick("x", 2)
    b.tick("x")
    b.tick("y", 3)
    a.merge(b)
    assert a["x"] == 3 and a["y"] == 3
    a.reset()
    assert a.total() == 0


def test_counter_repr_sorted():
    w = WorkCounter()
    w.tick("zeta")
    w.tick("alpha")
    assert repr(w).index("alpha") < repr(w).index("zeta")


# -- dot export -----------------------------------------------------------------


def test_dot_contains_nodes_edges_and_labels():
    g = build_cfg(parse_program('if (p) { x := 1; } else { x := 2; } print x;'))
    text = cfg_to_dot(g)
    assert text.startswith("digraph cfg {")
    assert text.count("->") == g.num_edges
    assert 'label="T"' in text and 'label="F"' in text
    assert "x := 1" in text


def test_dot_edge_notes_and_custom_labels():
    g = build_cfg(parse_program("x := 1;"))
    eid = g.out_edge(g.start).id
    text = cfg_to_dot(g, edge_notes={eid: "hello"}, name="g2")
    assert "digraph g2" in text and "hello" in text
    text2 = cfg_to_dot(g, node_label=lambda graph, nid: f"N{nid}")
    assert "N0" in text2


def test_dot_escapes_quotes():
    g = build_cfg(parse_program("x := 1;"))
    text = cfg_to_dot(g, node_label=lambda graph, nid: 'say "hi"')
    assert '\\"hi\\"' in text


# -- workload generators -----------------------------------------------------------


def test_random_program_deterministic():
    a = random_program(99, size=15, num_vars=3)
    b = random_program(99, size=15, num_vars=3)
    assert a == b


def test_random_program_terminates_on_inputs():
    rng = random.Random(0)
    for seed in range(10):
        prog = random_program(seed, size=20, num_vars=4)
        for _ in range(3):
            env = {f"v{i}": rng.randint(-9, 9) for i in range(4)}
            run_program(prog, env, max_steps=200_000)  # must not raise


def test_random_expr_is_total():
    for seed in range(30):
        expr = random_expr(seed, ["a", "b"], depth=3)
        from repro.lang.interp import eval_expr

        eval_expr(expr, {"a": 0, "b": 0})  # never divides by zero


def test_inline_expansion_has_constant_flags():
    prog = inline_expansion_program(4, calls=6)
    text_vars = program_vars(prog)
    assert "p" in text_vars
    g = build_cfg(prog)
    switches = [n for n in g.nodes.values() if n.kind is NodeKind.SWITCH]
    assert len(switches) == 6


def test_irreducible_program_runs():
    for seed in range(6):
        prog = irreducible_program(seed)
        assert program_labels(prog)
        run_program(prog, max_steps=100_000)


def test_ladder_families_build_and_validate():
    for prog in (
        defuse_worst_case(4),
        diamond_chain(5),
        loop_nest(3, width=2),
        wide_variable_program(6, uses_per_var=2),
        sparse_use_program(4),
    ):
        g = build_cfg(prog)
        g.validate(normalized=True)
        run_program(prog, max_steps=100_000)


def test_defuse_worst_case_multi_var():
    g = build_cfg(defuse_worst_case(4, num_vars=3))
    assert len([v for v in g.variables() if v.startswith("x")]) == 3


# -- factored CDG -----------------------------------------------------------------


def test_factored_cdg_queries():
    g = build_cfg(parse_program("if (p) { x := 1; } else { x := 2; } print x;"))
    f = build_factored_cdg(g)
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    t_arm = g.switch_edge(switch, "T").id
    f_arm = g.switch_edge(switch, "F").id
    entry = g.out_edge(g.start).id
    exit_edge = g.in_edge(g.end).id
    assert not f.same_control_dependence(t_arm, f_arm)
    assert f.same_control_dependence(entry, exit_edge)
    assert f.class_of(t_arm) != f.class_of(f_arm)
    assert f.num_classes == len(f.members)
    assert sorted(e for m in f.members.values() for e in m) == sorted(g.edges)


# -- generic solver ---------------------------------------------------------------


class _ReachableFromStart:
    """Trivial forward problem: an edge's fact is True when reachable."""

    direction = "forward"

    def initial(self, graph, eid):
        return False

    def transfer(self, graph, nid, facts_in):
        node = graph.node(nid)
        reached = (
            nid == graph.start or any(facts_in.values()) if facts_in or nid == graph.start else False
        )
        return {e.id: bool(reached or nid == graph.start) for e in graph.out_edges(nid)}


def test_solver_reaches_fixpoint_and_counts():
    g = build_cfg(
        parse_program("i := 0; while (i < 3) { i := i + 1; } print i;")
    )
    counter = WorkCounter()
    facts = solve_dataflow(g, _ReachableFromStart(), counter)
    assert all(facts.values())  # every edge reachable in a valid CFG
    assert counter["node_visits"] >= g.num_nodes
