"""Experiment C3's correctness core: the DFG-derived SSA construction
(Section 3.3) agrees with the classical one."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.workloads import suites
from repro.workloads.generators import irreducible_program, random_program
from repro.workloads.ladders import defuse_worst_case, diamond_chain, loop_nest


def both(prog):
    g = build_cfg(prog)
    return g, build_ssa_from_dfg(g), build_ssa_cytron(g, pruned=True)


def names_equivalent(g, a, b):
    """Same phi placement and the same def-use factoring: two uses share
    a name in one form iff they share a name in the other."""
    if a.phi_placement() != b.phi_placement():
        return False
    groups_a = {}
    groups_b = {}
    for key, name in a.use_names.items():
        groups_a.setdefault(name, set()).add(key)
    for key, name in b.use_names.items():
        groups_b.setdefault(name, set()).add(key)
    return set(
        frozenset(v) for v in groups_a.values()
    ) == set(frozenset(v) for v in groups_b.values())


@given(st.integers(min_value=0, max_value=800))
@settings(max_examples=40, deadline=None)
def test_matches_pruned_cytron_on_random_programs(seed):
    g, from_dfg, cytron = both(random_program(seed, size=14, num_vars=3))
    assert from_dfg.phi_placement() == cytron.phi_placement()
    assert names_equivalent(g, from_dfg, cytron)


def test_matches_on_paper_examples():
    for make in (
        suites.figure1,
        suites.figure2,
        suites.figure3a,
        suites.figure3b,
        suites.figure6,
        suites.figure7,
    ):
        g, from_dfg, cytron = both(make())
        assert from_dfg.phi_placement() == cytron.phi_placement()
        assert names_equivalent(g, from_dfg, cytron)


def test_matches_on_irreducible_graphs():
    for seed in range(6):
        g, from_dfg, cytron = both(irreducible_program(seed))
        assert from_dfg.phi_placement() == cytron.phi_placement()


def test_matches_on_ladders():
    for prog in (defuse_worst_case(6), diamond_chain(8), loop_nest(3)):
        g, from_dfg, cytron = both(prog)
        assert from_dfg.phi_placement() == cytron.phi_placement()
        assert names_equivalent(g, from_dfg, cytron)


def test_trivial_phis_are_removed():
    """A variable crossing a loop unchanged gets a merge operator in the
    DFG but must not surface as a phi."""
    g, from_dfg, cytron = both(
        parse_program(
            "x := 7; i := 0; while (i < n) { i := i + 1; } print x + i;"
        )
    )
    assert not any(var == "x" for _, var in from_dfg.phi_placement())
    assert any(var == "i" for _, var in from_dfg.phi_placement())


def test_result_validates():
    for seed in range(10):
        g = build_cfg(random_program(seed, size=12, num_vars=3))
        build_ssa_from_dfg(g).validate()
