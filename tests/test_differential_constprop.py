"""Differential testing of the four constant propagators (Section 4).

Three possible-paths engines (DFG, CFG vector, SCCP-on-SSA) and the
all-paths baseline (def-use chains) run over a fixed population of 200
seeded random programs.  Everywhere *all* engines classify a use as
constant, the values must agree; the all-paths engine must never beat
the possible-paths engines; and folding the constants found must
preserve interpreter behaviour on deterministic random inputs.

The population is a plain seed loop -- no property-based shrinking, no
time-dependent generation -- so a failure names the exact seed and
replays identically everywhere.  The whole file must stay well under a
minute (tier-1 budget).
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.core.dfg import CTRL_VAR
from repro.opt.pipeline import optimize
from repro.pipeline.manager import AnalysisManager
from repro.workloads.generators import random_program

from conftest import assert_same_behaviour, random_envs

SEEDS = range(200)
#: Seeds that additionally go through the full (EPR + copy-prop) pipeline;
#: the staged optimizer is ~30x the cost of fold-only, so a sample.
DEEP_SEEDS = range(0, 200, 10)


def program_for(seed: int):
    """The deterministic program population: sizes 8..17, 2..4 variables."""
    return random_program(seed, size=8 + seed % 10, num_vars=2 + seed % 3)


def engine_constants(graph):
    """``({engine: {(node, var): value}}, {engine: dead node set})``.
    All four engines run through one AnalysisManager, so the DFG and SSA
    substrates are built once and shared."""
    manager = AnalysisManager(graph)
    dfg_result = manager.get("constprop")
    cfg_result = manager.get("constprop-cfg")
    found = {
        "dfg": dfg_result.constant_uses(),
        "cfg": cfg_result.constant_uses(),
        "defuse": manager.get("constprop-defuse").constant_uses(),
    }
    ssa = manager.get("ssa")
    sccp = manager.get("sccp")
    found["sccp"] = {
        key: value
        for key in ssa.use_names
        if isinstance(value := sccp.value_of_use(ssa, *key), int)
    }
    dead = {
        "dfg": set(dfg_result.dead_nodes),
        "cfg": set(cfg_result.dead_nodes),
        "sccp": set(graph.nodes) - sccp.executable_nodes,
    }
    return {
        name: {k: v for k, v in result.items() if k[1] != CTRL_VAR}
        for name, result in found.items()
    }, dead


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_agree_where_all_constant(seed):
    graph = build_cfg(program_for(seed))
    by_engine, dead = engine_constants(graph)
    # Pairwise: wherever two engines both classify a use constant, the
    # values must be equal (this subsumes the all-engines intersection).
    names = sorted(by_engine)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            for key in by_engine[a].keys() & by_engine[b].keys():
                assert by_engine[a][key] == by_engine[b][key], (
                    seed, a, b, key, by_engine[a][key], by_engine[b][key],
                )
    # All-paths constants are a subset of possible-paths constants with
    # identical values -- except at uses a possible-paths engine proved
    # unreachable, which it drops instead of classifying.
    for name in ("dfg", "cfg"):
        for key, value in by_engine["defuse"].items():
            if key[0] in dead[name]:
                continue
            assert by_engine[name].get(key) == value, (seed, name, key)


@pytest.mark.parametrize("seed", SEEDS)
def test_folding_preserves_behaviour(seed):
    program = program_for(seed)
    graph = build_cfg(program)
    envs = random_envs(seed, sorted(graph.variables()), count=3)
    # The generator's output itself must agree across both interpreters...
    assert_same_behaviour(program, envs)
    # ...and constant folding + DCE must not change what the program does.
    folded, _report = optimize(graph, run_epr=False)
    for env in envs:
        before = run_cfg(graph, env)
        after = run_cfg(folded, env)
        assert before.outputs == after.outputs, (seed, env)


@pytest.mark.parametrize("seed", DEEP_SEEDS)
def test_full_pipeline_preserves_behaviour(seed):
    graph = build_cfg(program_for(seed))
    envs = random_envs(seed * 31 + 7, sorted(graph.variables()), count=3)
    optimized, _report = optimize(graph)
    for env in envs:
        before = run_cfg(graph, env)
        after = run_cfg(optimized, env)
        assert before.outputs == after.outputs, (seed, env)


def test_population_is_deterministic():
    """The population hash is pinned: any change to the generator or the
    seed schedule is a visible diff, not a silent reshuffle."""
    import hashlib

    digest = hashlib.sha256()
    for seed in (0, 50, 199):
        graph = build_cfg(program_for(seed))
        digest.update(
            f"{seed}:{graph.num_nodes}:{graph.num_edges}".encode()
        )
    assert len(digest.hexdigest()) == 64
    first = [program_for(s) for s in range(3)]
    second = [program_for(s) for s in range(3)]
    assert [str(p) for p in first] == [str(p) for p in second]
