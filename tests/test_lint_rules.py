"""Positive and negative unit tests for every lint rule R001-R010.

Each rule gets at least one program that must trigger it (with the span
pointing at the right line) and one near-miss that must not.  Rules run
unverified here -- the oracle has its own suite -- except for a final
sanity check that the definite positives survive verification.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program
from repro.lint.engine import LintEngine
from repro.lint.model import RULES
from repro.lint.rules import RULE_PASSES


def lint(source: str, verify: bool = False):
    graph = build_cfg(parse_program(source))
    return LintEngine(graph).run(verify=verify).diagnostics


def fired(source: str) -> set[str]:
    return {d.rule for d in lint(source)}


def only(source: str, rule: str):
    matches = [d for d in lint(source) if d.rule == rule]
    assert matches, f"{rule} did not fire"
    return matches


# -- R001 use-before-def -------------------------------------------------------


def test_r001_positive():
    (diag,) = only("x := y;\nprint x;\n", "R001")
    assert diag.var == "y"
    assert diag.severity == "definite"
    assert (diag.span.line, diag.span.column) == (1, 6)


def test_r001_negative():
    assert "R001" not in fired("y := 1;\nx := y;\nprint x;\n")


def test_r001_not_raised_for_partial_init():
    # Assigned on one path: that is R002's finding, never R001's.
    source = "if (p > 0) { x := 1; }\nprint x;\n"
    assert all(d.var != "x" for d in lint(source) if d.rule == "R001")


# -- R002 maybe-uninitialized --------------------------------------------------


def test_r002_positive():
    source = "if (p > 0) {\n    x := 1;\n}\nprint x;\n"
    matches = [d for d in only(source, "R002") if d.var == "x"]
    (diag,) = matches
    assert diag.severity == "possible"
    assert diag.span.line == 4
    # The related span points at the partial assignment.
    assert [(note, span.line) for note, span in diag.related] == [
        ("assigned here", 2)
    ]


def test_r002_negative_both_arms_assign():
    source = "if (p > 0) { x := 1; } else { x := 2; }\nprint x;\n"
    assert all(d.var != "x" for d in lint(source) if d.rule == "R002")


# -- R003 dead-store -----------------------------------------------------------


def test_r003_positive():
    source = "x := 1;\nx := 2;\nprint x;\n"
    (diag,) = only(source, "R003")
    assert diag.var == "x" and diag.span.line == 1
    assert diag.severity == "definite"


def test_r003_negative():
    assert "R003" not in fired("x := 1;\nprint x;\nx := 2;\nprint x;\n")


# -- R004 unreachable-statement ------------------------------------------------


def test_r004_positive():
    source = "if (0) {\n    x := 1;\n}\nprint 5;\n"
    (diag,) = only(source, "R004")
    assert diag.span.line == 2


def test_r004_negative():
    assert "R004" not in fired("if (p > 0) { x := 1; }\nprint 0;\n")


# -- R005 constant-branch ------------------------------------------------------


def test_r005_positive():
    source = "n := 1;\nif (n > 0) { print 1; } else { print 2; }\n"
    (diag,) = only(source, "R005")
    assert diag.span.line == 2
    assert dict(diag.data) == {"value": 1, "arm": "T"}
    assert "always 1" in diag.message


def test_r005_positive_false_branch():
    (diag,) = only("if (0) { print 1; }\nprint 2;\n", "R005")
    assert dict(diag.data) == {"value": 0, "arm": "F"}


def test_r005_negative():
    assert "R005" not in fired(
        "if (p > 0) { print 1; } else { print 2; }\n"
    )


def test_r005_skips_synthetic_loop_switches():
    # A while loop's exit test is a source branch only once; the
    # normalizer's span-less duplicates must not produce findings.
    source = "n := 3;\nwhile (n > 0) { n := n - 1; }\nprint n;\n"
    assert all(d.span is not None for d in lint(source))


# -- R006 dead-code (cyclic chains) -------------------------------------------


CYCLIC_DEAD = (
    "k := 0;\n"
    "t := 3;\n"
    "while (t > 0) {\n"
    "    k := k + 1;\n"
    "    t := t - 1;\n"
    "}\n"
    "print t;\n"
)


def test_r006_positive():
    matches = only(CYCLIC_DEAD, "R006")
    assert {d.span.line for d in matches} == {1, 4}
    assert all(d.var == "k" for d in matches)
    # Liveness keeps k live around the loop, so R003 stays silent:
    # this chain is exactly what the DFG mark phase exists to catch.
    assert "R003" not in {d.rule for d in lint(CYCLIC_DEAD)}


def test_r006_negative_when_observed():
    assert "R006" not in fired(CYCLIC_DEAD.replace(
        "print t;", "print t;\nprint k;"
    ))


# -- R007 redundant-expression -------------------------------------------------


def test_r007_positive_full():
    source = "p := 1;\nq := 2;\na := p + q;\nb := p + q;\nprint a + b;\n"
    matches = only(source, "R007")
    full = [d for d in matches if dict(d.data)["kind"] == "full"]
    assert any(d.var == "p + q" and d.span.line == 4 for d in full)


def test_r007_positive_partial():
    source = (
        "p := 1;\nq := 2;\n"
        "if (g > 0) { a := p + q; print a; }\n"
        "print p + q;\n"
    )
    partial = [
        d for d in only(source, "R007") if dict(d.data)["kind"] == "partial"
    ]
    assert any(d.var == "p + q" and d.span.line == 4 for d in partial)


def test_r007_negative_killed_by_redefinition():
    source = "p := 1;\nq := 2;\na := p + q;\nq := 3;\nb := p + q;\nprint a + b;\n"
    assert all(d.var != "p + q" for d in lint(source) if d.rule == "R007")


# -- R008 loop-invariant -------------------------------------------------------


def test_r008_positive():
    source = (
        "i := 3;\nb := 4;\n"
        "while (i > 0) {\n    x := b * 2;\n    i := i - 1;\n}\n"
        "print x;\n"
    )
    (diag,) = only(source, "R008")
    assert diag.var == "b * 2" and diag.span.line == 4
    assert diag.severity == "info"


def test_r008_negative_operand_defined_in_loop():
    source = (
        "i := 3;\n"
        "while (i > 0) {\n    x := i * 2;\n    i := i - 1;\n}\n"
        "print x;\n"
    )
    assert "R008" not in fired(source)


# -- R009 self-assignment ------------------------------------------------------


def test_r009_positive():
    source = "x := 1;\nx := x;\nprint x;\n"
    (diag,) = only(source, "R009")
    assert diag.var == "x" and diag.span.line == 2


def test_r009_negative():
    assert "R009" not in fired("x := 1;\ny := x;\nprint y;\n")


# -- R010 copy-chain -----------------------------------------------------------


def test_r010_positive():
    source = "x := 1;\ny := x;\nprint y;\n"
    (diag,) = only(source, "R010")
    assert diag.var == "y" and diag.span.line == 3
    assert "'x'" in diag.message
    assert [(note, span.line) for note, span in diag.related] == [
        ("copied here", 2)
    ]


def test_r010_negative_original_redefined():
    assert "R010" not in fired("x := 1;\ny := x;\nx := 2;\nprint y;\nprint x;\n")


# -- cross-cutting -------------------------------------------------------------


def test_rule_catalog_and_passes_agree():
    assert set(RULE_PASSES) == set(RULES)
    assert len(RULES) >= 8  # the acceptance floor
    for code, info in RULES.items():
        assert info.code == code
        assert info.severity in ("definite", "possible", "info")
        assert info.fix_hint


def test_clean_program_is_silent():
    source = (
        "n := 3;\ntotal := 0;\n"
        "while (n > 0) {\n    total := total + n;\n    n := n - 1;\n}\n"
        "print total;\n"
    )
    assert lint(source) == []


@pytest.mark.parametrize(
    "source, rule",
    [
        ("x := y;\nprint x;\n", "R001"),
        ("x := 1;\nx := 2;\nprint x;\n", "R003"),
        ("if (0) {\n    x := 1;\n}\nprint 5;\n", "R004"),
        ("n := 1;\nif (n > 0) { print 1; } else { print 2; }\n", "R005"),
        (CYCLIC_DEAD, "R006"),
        ("x := 1;\nx := x;\nprint x;\n", "R009"),
    ],
)
def test_definite_positives_survive_verification(source, rule):
    matches = [d for d in lint(source, verify=True) if d.rule == rule]
    assert matches
    assert all(d.verified is True and not d.demoted for d in matches)
