"""Unit tests for the fuzzing oracles (PR 5).

Every oracle must pass a program against itself (reflexivity), fail on a
genuinely divergent pair, and never raise -- a crashing oracle comes
back as a failing verdict, not an exception.
"""

from __future__ import annotations

from repro.cfg.builder import build_cfg
from repro.fuzz.harness import trial_context
from repro.fuzz.oracles import (
    ORACLES,
    dfg_digest,
    oracle_constprop,
    oracle_dataflow,
    oracle_determinism,
    oracle_io,
    oracle_structure,
    run_oracles,
)
from repro.lang.parser import parse_program

CLEAN = """\
a := p; total := 0; count := 3;
while (count > 0) {
  total := total + a;
  count := count - 1;
}
print total;
"""

# Same shape, different arithmetic: observably different output.
BROKEN = CLEAN.replace("total + a", "total - a")


def _pair(src_a, src_b, mutator="reorder"):
    a = parse_program(src_a)
    graph_a = build_cfg(a)
    graph_b = build_cfg(parse_program(src_b))
    context = trial_context(a, graph_a, 7, mutator, family="random")
    return graph_a, graph_b, context


def test_all_oracles_reflexive():
    graph_a, graph_b, context = _pair(CLEAN, CLEAN)
    verdicts = run_oracles(graph_a, graph_b, context)
    assert {v.oracle for v in verdicts} == set(ORACLES)
    assert all(v.ok for v in verdicts), [
        (v.oracle, v.detail) for v in verdicts if not v.ok
    ]


def test_io_oracle_catches_miscompile():
    graph_a, graph_b, context = _pair(CLEAN, BROKEN)
    verdict = oracle_io(graph_a, graph_b, context)
    assert not verdict.ok
    assert "env" in verdict.detail


def test_io_oracle_trap_tolerance_is_mutator_scoped():
    trapping = "x := p / 0; print x;"
    fine = "x := p; print x;"
    # Base traps, mutant does not: under opt-roundtrip that environment
    # is inconclusive (DCE may drop trapping work) -- under any other
    # mutator it is a divergence.
    graph_a, graph_b, context = _pair(trapping, fine, mutator="opt-roundtrip")
    assert oracle_io(graph_a, graph_b, context).ok
    graph_a, graph_b, context = _pair(trapping, fine, mutator="reorder")
    assert not oracle_io(graph_a, graph_b, context).ok


CONSTANT_RICH = """\
a := 2; b := a + 3;
if (p > 0) { c := b * 2; } else { c := 10; }
print c + a;
"""


def test_constprop_oracle_cross_checks_engines():
    graph_a, graph_b, context = _pair(CONSTANT_RICH, CONSTANT_RICH)
    verdict = oracle_constprop(graph_a, graph_b, context)
    assert verdict.ok
    assert verdict.checks > 0


def test_dataflow_oracle_reference_vs_csr():
    graph_a, graph_b, context = _pair(CLEAN, CLEAN)
    verdict = oracle_dataflow(graph_a, graph_b, context)
    assert verdict.ok and verdict.checks >= 2  # both sides checked


def test_structure_oracle_flags_shape_change_under_same_shape_expectation():
    graph_a, graph_b, context = _pair(
        "a := p; b := q; print a + b;", "a := p; print a;"
    )
    context = dict(context, expectations=("same_shape",))
    verdict = oracle_structure(graph_a, graph_b, context)
    assert not verdict.ok


def test_sparse_vs_dense_oracle_checks_every_client():
    from repro.fuzz.oracles import oracle_sparse_vs_dense

    graph_a, graph_b, context = _pair(CLEAN, CLEAN)
    verdict = oracle_sparse_vs_dense(graph_a, graph_b, context)
    assert verdict.ok
    # chains, ssa, pruned ssa, range, taint, ntscd -- one check each.
    assert verdict.checks == 6


def test_determinism_oracle_and_digest_stability():
    graph = build_cfg(parse_program(CLEAN))
    assert dfg_digest(graph) == dfg_digest(graph.copy())
    _, graph_b, context = _pair(CLEAN, CLEAN)
    assert oracle_determinism(graph, graph_b, context).ok


def test_io_oracle_skipped_for_non_executable():
    graph_a, graph_b, context = _pair(CLEAN, CLEAN)
    context = dict(context, executable=False)
    verdicts = run_oracles(graph_a, graph_b, context)
    assert "io" not in {v.oracle for v in verdicts}
    assert all(v.ok for v in verdicts)


def test_crashing_oracle_becomes_failing_verdict(monkeypatch):
    import repro.fuzz.oracles as oracles_mod

    def boom(base, mutant, context):
        raise RuntimeError("synthetic oracle crash")

    monkeypatch.setitem(oracles_mod.ORACLES, "io", boom)
    graph_a, graph_b, context = _pair(CLEAN, CLEAN)
    verdicts = run_oracles(graph_a, graph_b, context)
    failed = [v for v in verdicts if not v.ok]
    assert [v.oracle for v in failed] == ["io"]
    assert "oracle crashed" in failed[0].detail
