"""Unit tests for the parser."""

import pytest

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Goto,
    If,
    IntLit,
    Label,
    Print,
    Repeat,
    Skip,
    UnOp,
    Var,
    While,
)
from repro.lang.errors import LangError, ParseError
from repro.lang.parser import parse_expr, parse_program


def test_precedence_mul_over_add():
    assert parse_expr("a + b * c") == BinOp(
        "+", Var("a"), BinOp("*", Var("b"), Var("c"))
    )


def test_precedence_cmp_over_and_over_or():
    expr = parse_expr("a < b && c || d")
    assert expr == BinOp(
        "||", BinOp("&&", BinOp("<", Var("a"), Var("b")), Var("c")), Var("d")
    )


def test_left_associativity_of_subtraction():
    assert parse_expr("a - b - c") == BinOp(
        "-", BinOp("-", Var("a"), Var("b")), Var("c")
    )


def test_parentheses_override_precedence():
    assert parse_expr("(a + b) * c") == BinOp(
        "*", BinOp("+", Var("a"), Var("b")), Var("c")
    )


def test_unary_operators_nest():
    assert parse_expr("!-x") == UnOp("!", UnOp("-", Var("x")))


def test_assignment_statement():
    prog = parse_program("x := y + 1;")
    assert prog.body == [Assign("x", BinOp("+", Var("y"), IntLit(1)))]


def test_if_without_else():
    prog = parse_program("if (x) { y := 1; }")
    stmt = prog.body[0]
    assert isinstance(stmt, If)
    assert stmt.else_body == []


def test_if_with_else():
    prog = parse_program("if (x) { y := 1; } else { y := 2; }")
    stmt = prog.body[0]
    assert isinstance(stmt, If)
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_while_loop():
    prog = parse_program("while (x < 3) { x := x + 1; }")
    stmt = prog.body[0]
    assert isinstance(stmt, While)
    assert stmt.cond == BinOp("<", Var("x"), IntLit(3))


def test_repeat_until():
    prog = parse_program("repeat { x := x - 1; } until (x == 0);")
    stmt = prog.body[0]
    assert isinstance(stmt, Repeat)
    assert stmt.cond == BinOp("==", Var("x"), IntLit(0))


def test_goto_label_skip_print():
    prog = parse_program("label L: skip; goto L; print x;")
    assert isinstance(prog.body[0], Label)
    assert isinstance(prog.body[1], Skip)
    assert prog.body[2] == Goto("L")
    assert prog.body[3] == Print(Var("x"))


def test_nested_blocks():
    prog = parse_program(
        "if (a) { while (b) { if (c) { x := 1; } } } else { skip; }"
    )
    outer = prog.body[0]
    assert isinstance(outer, If)
    inner_while = outer.then_body[0]
    assert isinstance(inner_while, While)
    assert isinstance(inner_while.body[0], If)


@pytest.mark.parametrize(
    "bad",
    [
        "x := ;",
        "x = 1;",
        "if x { }",
        "while (x) y := 1;",
        "repeat { } until (x)",
        "x := 1",
        "{ x := 1; }",
        "if (x) { y := 1; ",
    ],
)
def test_syntax_errors_raise(bad):
    # `x = 1;` fails in the lexer (bare `=` is not a token); the rest fail
    # in the parser.  Both are LangErrors.
    with pytest.raises(LangError):
        parse_program(bad)


def test_parse_expr_rejects_trailing_input():
    with pytest.raises(ParseError):
        parse_expr("a + b extra")


def test_error_carries_position():
    with pytest.raises(ParseError) as info:
        parse_program("x := 1;\nbroken")
    assert info.value.line == 2
