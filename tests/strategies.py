"""Hypothesis strategies for ASTs, programs and CFGs."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    BINARY_OPS,
    If,
    IntLit,
    Print,
    Program,
    Repeat,
    Skip,
    UnOp,
    UNARY_OPS,
    Var,
    While,
)
from repro.workloads.generators import random_program

_names = st.sampled_from(["a", "b", "c", "x", "y", "z", "tmp"])


def exprs(max_leaves: int = 12):
    """Arbitrary expression trees (may divide by zero -- fine for syntax
    round-trips, not for execution)."""
    leaves = st.one_of(
        st.integers(min_value=0, max_value=99).map(IntLit),
        _names.map(Var),
    )
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.tuples(st.sampled_from(BINARY_OPS), inner, inner).map(
                lambda t: BinOp(*t)
            ),
            st.tuples(st.sampled_from(UNARY_OPS), inner).map(
                lambda t: UnOp(*t)
            ),
        ),
        max_leaves=max_leaves,
    )


def statements(depth: int = 2):
    base = st.one_of(
        st.tuples(_names, exprs(6)).map(lambda t: Assign(*t)),
        exprs(4).map(Print),
        st.just(Skip()),
    )
    if depth == 0:
        return base
    inner = st.lists(statements(depth - 1), max_size=3)
    return st.one_of(
        base,
        st.tuples(exprs(4), inner, inner).map(lambda t: If(*t)),
        st.tuples(exprs(4), inner).map(lambda t: While(t[0], t[1])),
        st.tuples(inner, exprs(4)).map(lambda t: Repeat(t[0], t[1])),
    )


def programs():
    """Arbitrary structured programs (syntax only; loops may not
    terminate, so use these for round-trip tests, not execution)."""
    return st.lists(statements(), min_size=0, max_size=8).map(Program)


def terminating_programs(max_size: int = 25):
    """Seeded generator-backed programs that terminate on all inputs."""
    return st.builds(
        random_program,
        seed=st.integers(min_value=0, max_value=10_000),
        size=st.integers(min_value=1, max_value=max_size),
        num_vars=st.integers(min_value=1, max_value=5),
    )
