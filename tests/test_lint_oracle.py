"""The oracle verifier: genuine definite findings earn independent
confirmation; fabricated ones are demoted, and ones a probe actively
contradicts are marked refuted (the measured-false-positive channel)."""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.cfg.interp import run_cfg
from repro.lang.errors import InterpError
from repro.lang.parser import parse_program
from repro.lint.engine import LintEngine
from repro.lint.model import make_diagnostic
from repro.lint.oracle import (
    PROBE_VALUE_LIMIT,
    probe_environments,
    verify_diagnostics,
)


def graph_of(source: str):
    return build_cfg(parse_program(source))


def node_of_kind(graph, kind, index=0):
    return [
        nid for nid in sorted(graph.nodes) if graph.node(nid).kind is kind
    ][index]


def test_probe_environments_are_deterministic():
    graph = graph_of("x := a + b;\nprint x;\n")
    envs = probe_environments(graph)
    assert envs == probe_environments(graph)
    assert envs[0] == {}
    assert all(set(env) <= graph.variables() for env in envs[1:])


def test_genuine_findings_are_confirmed():
    source = "x := 1;\nx := 2;\nif (0) {\n    y := x;\n}\nprint x;\n"
    result = LintEngine(graph_of(source)).run(verify=True)
    definite = [d for d in result.diagnostics if d.severity == "definite"]
    assert {d.rule for d in definite} == {"R003", "R004", "R005"}
    assert all(d.verified is True for d in definite)
    assert result.unverified_definite() == 0


def test_bogus_dead_store_is_demoted_not_shipped():
    # Claim 'x := 1' is a dead store in a program that prints x: the
    # liveness witness fails, so the finding is demoted to possible.
    graph = graph_of("x := 1;\nprint x;\n")
    nid = node_of_kind(graph, NodeKind.ASSIGN)
    bogus = make_diagnostic(
        "R003", graph.node(nid).span, "fabricated", node=nid, var="x"
    )
    (out,) = verify_diagnostics(graph, [bogus])
    assert out.severity == "possible"
    assert out.verified is False and out.demoted is True
    # The splice would change output, but the static witness already
    # failed, so this is an unconfirmed claim -- not a measured FP.
    assert out.refuted is False


def test_bogus_unreachable_claim_is_refuted_by_probe_trace():
    graph = graph_of("print 7;\n")
    nid = node_of_kind(graph, NodeKind.PRINT)
    bogus = make_diagnostic(
        "R004", graph.node(nid).span, "fabricated", node=nid
    )
    (out,) = verify_diagnostics(graph, [bogus])
    assert out.demoted is True and out.refuted is True


def test_bogus_use_before_def_is_refuted_by_trace_replay():
    graph = graph_of("x := 1;\nprint x;\n")
    nid = node_of_kind(graph, NodeKind.PRINT)
    bogus = make_diagnostic(
        "R001", graph.node(nid).span, "fabricated", node=nid, var="x"
    )
    (out,) = verify_diagnostics(graph, [bogus])
    assert out.demoted is True and out.refuted is True


def test_bogus_constant_branch_is_refuted_when_probes_disagree():
    # p is an entry variable, so probes drive both arms.
    graph = graph_of("if (p > 1) { print 1; } else { print 2; }\n")
    nid = node_of_kind(graph, NodeKind.SWITCH)
    bogus = make_diagnostic(
        "R005", graph.node(nid).span, "fabricated", node=nid,
        data={"value": 1, "arm": "T"},
    )
    (out,) = verify_diagnostics(graph, [bogus])
    assert out.demoted is True and out.refuted is True


def test_non_definite_findings_earn_witness_verdicts():
    # Every rule now has a checker, so possible/info findings no longer
    # pass through untouched: a genuine copy chain comes back as a *new*
    # diagnostic carrying verified=True (severity unchanged -- only
    # definite findings are demoted on failure).
    graph = graph_of("x := 1;\ny := x;\nprint y;\n")
    result = LintEngine(graph).run(verify=True)
    r010 = [d for d in result.diagnostics if d.rule == "R010"]
    assert r010
    assert all(d.verified is True for d in r010)
    assert all(d.severity == "info" and not d.refuted for d in r010)
    # Without verification the same findings stay unjudged.
    plain = LintEngine(graph).run(verify=False).diagnostics
    assert all(d.verified is None for d in plain if d.rule == "R010")


def test_verification_never_mutates_inputs():
    graph = graph_of("x := 1;\nx := 2;\nprint x;\n")
    engine = LintEngine(graph)
    unverified = engine.run(verify=False).diagnostics
    snapshot = list(unverified)
    verify_diagnostics(graph, unverified)
    # The cached diagnostics are frozen; the oracle returned new objects.
    assert unverified == snapshot
    assert all(d.verified is None for d in unverified)


def test_value_limit_aborts_bigint_blowup():
    # Squaring doubles the digit count per iteration: within a tiny step
    # budget the values dwarf any bound, so the capped run must abort
    # (and the oracle treats that probe as inconclusive).
    source = (
        "x := 10;\nn := 5;\n"
        "while (n > 0) {\n    x := x * x;\n    n := n - 1;\n}\n"
        "print x;\n"
    )
    graph = graph_of(source)
    with pytest.raises(InterpError):
        run_cfg(graph, {}, max_steps=1000, value_limit=PROBE_VALUE_LIMIT)
    # Without the cap the same run is legal (just huge): 10 ** (2 ** 5).
    assert run_cfg(graph, {}, max_steps=1000).outputs[0] == 10 ** 32


def test_inconclusive_probes_still_allow_static_confirmation():
    # The loop never terminates under the empty env's step budget -- all
    # probes may be inconclusive -- yet static witnesses still confirm.
    source = (
        "x := 1;\nx := 2;\n"
        "while (1) {\n    print x;\n}\n"
    )
    result = LintEngine(graph_of(source)).run(verify=True, max_steps=100)
    r003 = [d for d in result.diagnostics if d.rule == "R003"]
    assert r003 and all(d.verified is True for d in r003)


def test_checker_exception_is_routed_to_failures_not_raised(monkeypatch):
    import repro.lint.oracle as oracle_mod

    def boom(oracle, diag):
        raise RuntimeError("synthetic checker crash")

    monkeypatch.setitem(oracle_mod._CHECKERS, "R003", boom)
    graph = graph_of("x := 1;\nx := 2;\nprint x;\n")
    result = LintEngine(graph).run(verify=True)
    # The error is recorded, attributed to the rule's oracle...
    assert len(result.oracle_failures) == 1
    record = result.oracle_failures[0]
    assert record["pass"] == "oracle:R003"
    assert record["phase"] == "lint-verify"
    assert record["type"] == "RuntimeError"
    # ...and the definite finding is demoted, never shipped bare.
    r003 = [d for d in result.diagnostics if d.rule == "R003"]
    assert r003
    assert all(d.severity == "possible" and d.demoted for d in r003)
    assert result.unverified_definite() == 0


def test_checker_exception_on_info_finding_marks_it_unverified(monkeypatch):
    import repro.lint.oracle as oracle_mod

    def boom(oracle, diag):
        raise ValueError("synthetic checker crash")

    monkeypatch.setitem(oracle_mod._CHECKERS, "R010", boom)
    graph = graph_of("x := 1;\ny := x;\nprint y;\n")
    result = LintEngine(graph).run(verify=True)
    assert result.oracle_failures
    r010 = [d for d in result.diagnostics if d.rule == "R010"]
    # Severity survives; the finding just loses its witness.
    assert r010
    assert all(d.severity == "info" and d.verified is False for d in r010)
    assert all(not d.refuted for d in r010)


def test_cli_reports_oracle_failures_as_analysis_error(monkeypatch, tmp_path, capsys):
    import repro.lint.oracle as oracle_mod
    from repro.cli import main

    def boom(oracle, diag):
        raise RuntimeError("synthetic checker crash")

    monkeypatch.setitem(oracle_mod._CHECKERS, "R003", boom)
    path = tmp_path / "prog.dfg"
    path.write_text("x := 1;\nx := 2;\nprint x;\n")
    code = main(["lint", str(path), "--fail-on", "never"])
    assert code == 2
    err = capsys.readouterr().err
    assert "repro: analysis error:" in err
    assert "RuntimeError" in err and "synthetic checker crash" in err
