"""The content-addressed cross-run cache: byte-identity, versioning,
corruption recovery, concurrency, and the export detach discipline.

The acceptance bar for the serve subsystem is that a cached answer is
indistinguishable from a fresh one: every pass result must export to the
same bytes no matter which process computed it, a corrupt entry must be
a recoverable non-event, and a cached blob must never alias a live
mutable graph.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_expr, parse_program
from repro.pipeline.manager import AnalysisManager
from repro.pipeline.passes import default_registry
from repro.serve.cache import ResultCache, cache_key_bytes, source_sha
from repro.util.metrics import Metrics

SRC = str(Path(__file__).resolve().parents[1] / "src")

#: A small smoke corpus covering straight-line code, branching, a loop,
#: and dead code -- enough shapes to exercise every registered pass.
SMOKE_CORPUS = {
    "straight": "x := 1;\ny := x + 2;\nprint y;\n",
    "branchy": (
        "a := p;\nb := 2;\n"
        "if (a > 0) { c := a + b; } else { c := b - a; }\n"
        "print c;\n"
    ),
    "loopy": (
        "n := 5;\ntotal := 0;\n"
        "while (n > 0) { total := total + n; n := n - 1; }\n"
        "print total;\n"
    ),
    "deadcode": "x := 0;\nif (x) { y := 1; }\nprint x;\n",
}

ALL_PASSES = default_registry().names()


def _manager(source: str) -> AnalysisManager:
    return AnalysisManager(
        build_cfg(parse_program(source)), metrics=Metrics()
    )


# -- cold miss vs warm hit, byte identity across all passes ------------------


def test_cold_miss_then_warm_hit_byte_identical_all_passes(tmp_path) -> None:
    """Populate from one manager, recompute independently in another:
    every registered pass must load back the exact bytes the second
    computation would have produced."""
    cache = ResultCache(str(tmp_path), version="v-test")
    for label, source in SMOKE_CORPUS.items():
        sha = source_sha(source)
        producer = _manager(source)
        producer.run_all()
        for name in ALL_PASSES:
            assert cache.load(sha, name) is None, (label, name)  # cold
            cache.store(sha, name, producer.export_result(name))
        # An independent parse + analysis in the same process must
        # export byte-identical blobs for every pass.
        twin = _manager(source)
        twin.run_all()
        for name in ALL_PASSES:
            blob = cache.load(sha, name)
            assert blob is not None, (label, name)
            assert blob == twin.export_result(name), (label, name)
    assert cache.stats["corrupt"] == 0
    assert cache.stats["stores"] == len(SMOKE_CORPUS) * len(ALL_PASSES)


def test_import_result_feeds_dependents(tmp_path) -> None:
    """A manager warm-started from cached blobs serves dependents
    without recomputing the imported passes."""
    source = SMOKE_CORPUS["loopy"]
    producer = _manager(source)
    dfg_blob = producer.export_result("dfg")
    sese_blob = producer.export_result("sese")

    consumer = _manager(source)
    consumer.import_result("sese", sese_blob)
    consumer.import_result("dfg", dfg_blob)
    assert consumer.cached("dfg") and consumer.cached("sese")
    # constprop depends on dfg: it must build on the imported result.
    constants = consumer.get("constprop")
    assert constants.constant_uses() == producer.get(
        "constprop"
    ).constant_uses()
    assert consumer.export_result("constprop") == producer.export_result(
        "constprop"
    )


def test_arena_blob_is_rpa1_wire_format() -> None:
    """The arena pass exports its versioned RPA1 payload, not a pickle,
    and the import rebuilds an equivalent pool + program."""
    from repro.arena import analyze_arena

    source = SMOKE_CORPUS["branchy"]
    producer = _manager(source)
    blob = producer.export_result("arena")
    assert blob.startswith(b"RPA1")

    consumer = _manager(source)
    pool, arena = consumer.import_result("arena", blob)
    p_pool, p_arena = producer.get("arena")
    assert analyze_arena(arena, pool) == analyze_arena(p_arena, p_pool)


# -- engine version bump ------------------------------------------------------


def test_engine_version_bump_is_a_miss(tmp_path) -> None:
    source = SMOKE_CORPUS["straight"]
    sha = source_sha(source)
    old = ResultCache(str(tmp_path), version="v1")
    old.store(sha, "constprop", b"old-engine-bytes")
    assert old.load(sha, "constprop") == b"old-engine-bytes"

    new = ResultCache(str(tmp_path), version="v2")
    assert new.load(sha, "constprop") is None  # orphaned, not served
    # The old entry is untouched -- versions are disjoint key spaces.
    assert old.load(sha, "constprop") == b"old-engine-bytes"
    assert cache_key_bytes(sha, "constprop", "v1") != cache_key_bytes(
        sha, "constprop", "v2"
    )


# -- corruption: detected, evicted, recomputed, recorded ---------------------


def _corrupt(path: str, mode: str) -> None:
    data = Path(path).read_bytes()
    if mode == "truncate":
        Path(path).write_bytes(data[: len(data) // 2])
    elif mode == "flip":
        mutated = bytearray(data)
        mutated[-1] ^= 0xFF
        Path(path).write_bytes(bytes(mutated))
    elif mode == "header":
        Path(path).write_bytes(b"XX")
    else:  # pragma: no cover
        raise AssertionError(mode)


def test_corrupt_entry_detected_evicted_recomputed(tmp_path) -> None:
    source = SMOKE_CORPUS["branchy"]
    sha = source_sha(source)
    for i, mode in enumerate(("truncate", "flip", "header")):
        cache = ResultCache(str(tmp_path / mode), version="v1")
        good = _manager(source).export_result("constprop")
        path = cache.store(sha, "constprop", good)
        _corrupt(path, mode)

        assert cache.load(sha, "constprop") is None, mode  # no crash
        assert not os.path.exists(path), mode  # evicted
        assert cache.stats["corrupt"] == 1, mode
        incident = cache.incidents.incidents[-1]
        assert incident.kind == "cache-corrupt"
        assert incident.recovered
        assert incident.fingerprint == sha

        # Recompute + republish: the key serves good bytes again.
        cache.store(sha, "constprop", good)
        assert cache.load(sha, "constprop") == good, mode


# -- concurrent writers -------------------------------------------------------

_WRITER_SCRIPT = """\
import sys
from repro.serve.cache import ResultCache, source_sha

root, payload = sys.argv[1], sys.argv[2].encode()
cache = ResultCache(root, version="v1")
sha = source_sha("concurrent")
for _ in range(200):
    cache.store(sha, "constprop", payload * 64)
"""


def test_concurrent_writers_leave_consistent_store(tmp_path) -> None:
    """Two real processes hammering the same key must leave one complete,
    checksum-valid winner and no temp debris."""
    env = dict(os.environ, PYTHONPATH=SRC)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), payload],
            env=env,
        )
        for payload in ("A", "B")
    ]
    for proc in procs:
        assert proc.wait(timeout=120) == 0

    cache = ResultCache(str(tmp_path), version="v1")
    blob = cache.load(source_sha("concurrent"), "constprop")
    assert blob in (b"A" * 64, b"B" * 64)  # one complete winner
    assert cache.stats["corrupt"] == 0
    leftovers = [
        name
        for _, _, files in os.walk(tmp_path)
        for name in files
        if name.startswith(".tmp-")
    ]
    assert leftovers == []


# -- the detach discipline (the latent-bug regression) ------------------------


def test_export_detaches_from_live_graph() -> None:
    """Exported blobs must snapshot the result at export time: mutating
    the producing manager's graph afterwards (the warm-daemon + edit
    scenario) must not change what a consumer materializes."""
    from repro.regions.edits import EditSession

    source = SMOKE_CORPUS["loopy"]
    producer = _manager(source)
    blobs = {
        name: producer.export_result(name)
        for name in ("cfg", "sese", "dfg", "constprop", "arena")
    }

    # Mutate the live graph through an edit session sharing the manager:
    # rewrite an RHS, then splice a new assignment (shape change).
    session = EditSession(producer.graph, manager=producer)
    assign = next(
        nid
        for nid, node in sorted(producer.graph.nodes.items())
        if node.kind.name == "ASSIGN"
    )
    session.rewrite_rhs(assign, parse_expr("41"))
    edge = sorted(producer.graph.edges)[0]
    session.splice_assign(edge, "injected", parse_expr("1"))
    session.solve_all()

    # The blobs are unchanged (they are bytes), and -- the real point --
    # importing them materializes the *pristine* results, not views of
    # the mutated graph.
    pristine = _manager(source)
    for name, blob in blobs.items():
        assert blob == pristine.export_result(name), name
    consumer = _manager(source)
    consumer.import_result("dfg", blobs["dfg"])
    consumer.import_result("constprop", blobs["constprop"])
    assert (
        consumer.get("constprop").constant_uses()
        == pristine.get("constprop").constant_uses()
    )


def test_import_is_isolated_from_later_source_of_blob() -> None:
    """The dual direction: after a consumer imports a blob, further use
    of the producer (recompute after invalidation) must not disturb the
    consumer's adopted result."""
    source = SMOKE_CORPUS["branchy"]
    producer = _manager(source)
    blob = producer.export_result("constprop")

    consumer = _manager(source)
    imported = consumer.import_result("constprop", blob)
    expected = dict(imported.constant_uses())

    producer.graph.note_rewrite()  # invalidate + recompute on producer
    producer.get("constprop")
    assert dict(imported.constant_uses()) == expected
    assert consumer.export_result("constprop") == blob


# -- cache stats & layout -----------------------------------------------------


def test_entries_listing_and_layout(tmp_path) -> None:
    cache = ResultCache(str(tmp_path), version="v9")
    sha = source_sha("layout")
    cache.store(sha, "dfg", b"x")
    cache.store(sha, "op:lint", b"y")
    entries = cache.entries()
    assert (sha, "dfg.bin") in entries
    assert (sha, "op_lint.bin") in entries  # ':' made filesystem-safe
    path = cache.entry_path(sha, "dfg")
    assert path.startswith(os.path.join(str(tmp_path), "v9", sha[:2]))
    assert cache.as_dict()["version"] == "v9"
