"""Every structural algorithm on arbitrary (frequently irreducible)
control flow from random goto programs.

Structured programs exercise the common shapes; these graphs exercise
the general-CFG guarantees the paper insists on ("for general control
flow graphs, however, we need an efficient algorithm...").
"""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.controldep.cdg import control_dependence_edges
from repro.controldep.cycle_equiv import cycle_equivalence
from repro.controldep.sese import ProgramStructure
from repro.core.build import build_dfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import CTRL_VAR
from repro.core.verify import verify_dfg
from repro.graphs.dominance import cfg_dominators, edge_key
from repro.graphs.lengauer_tarjan import cfg_dominators_lt
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.workloads.generators import random_jump_program


def graph_for(seed):
    return build_cfg(random_jump_program(seed))


def partition(mapping):
    buckets = defaultdict(set)
    for key, value in mapping.items():
        buckets[value].add(key)
    return frozenset(frozenset(b) for b in buckets.values())


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_normalized_and_dominators_agree(seed):
    g = graph_for(seed)
    g.validate(normalized=True)
    chk = cfg_dominators(g)
    lt = cfg_dominators_lt(g)
    for nid in g.nodes:
        assert chk.idom_of(nid) == lt.idom_of(nid)


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_cycle_equivalence_refines_control_dependence(seed):
    g = graph_for(seed)
    classes = partition(cycle_equivalence(g))
    cd = partition(
        {eid: deps for eid, deps in control_dependence_edges(g).items()}
    )
    lookup = {}
    for block in cd:
        for item in block:
            lookup[item] = block
    for block in classes:
        anchor = lookup[next(iter(block))]
        assert all(lookup[e] == anchor for e in block)


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_sese_chains_are_ordered(seed):
    g = graph_for(seed)
    ps = ProgramStructure(g)
    for eids in ps.classes.values():
        for e1, e2 in zip(eids, eids[1:]):
            assert ps.dom.dominates(edge_key(e1), edge_key(e2))
            assert ps.pdom.dominates(edge_key(e2), edge_key(e1))
    for region in ps.regions:
        assert ps.is_sese(region.entry, region.exit)


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_dfg_satisfies_definition6(seed):
    g = graph_for(seed)
    verify_dfg(g, build_dfg(g))


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_constprop_agreement_up_to_divergence(seed):
    """On arbitrary graphs the two algorithms agree at every use the CFG
    algorithm considers reachable.  The one divergence mode: code that is
    unreachable only because a preceding loop provably never exits.  Its
    entry edge still *postdominates* the loop entry, so Definition 6
    legitimately lets a dependence bypass the never-taken exit branch and
    deliver a value; the vector algorithm instead sees the all-BOTTOM
    edge.  Both are sound -- they only disagree about code that never
    runs -- and the executed-use soundness tests cover both."""
    from repro.dataflow.lattice import BOTTOM

    g = graph_for(seed)
    dfg_result = dfg_constant_propagation(g)
    cfg_result = cfg_constant_propagation(g)
    for key, value in dfg_result.use_values.items():
        if key[1] == CTRL_VAR:
            continue
        cfg_value = cfg_result.use_values[key]
        assert cfg_value == value or cfg_value is BOTTOM, (key, cfg_value, value)
        # The CFG algorithm is never *less* precise about deadness.
        if value is BOTTOM:
            assert cfg_value is BOTTOM, key


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_ssa_constructions_agree(seed):
    g = graph_for(seed)
    assert (
        build_ssa_from_dfg(g).phi_placement()
        == build_ssa_cytron(g, pruned=True).phi_placement()
    )
