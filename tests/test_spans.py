"""Satellite S1: every AST node carries a source span, spans survive the
parse -> pretty -> parse round trip, and they propagate onto CFG nodes.

Spans are deliberately excluded from node equality (two occurrences of
``a + b`` at different positions are the *same* lexical expression for
the redundancy analyses), so the round-trip test compares structure with
``==`` and span presence separately.
"""

from __future__ import annotations

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.lang.ast_nodes import (
    Assign,
    Goto,
    If,
    Label,
    Print,
    Repeat,
    Skip,
    Span,
    Store,
    While,
    subexpressions,
)
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program

#: Exercises every statement and expression form the parser accepts.
ALL_CONSTRUCTS = """\
x := 1;
a[x] := x + 2;
y := a[x] * -x;
skip;
if (x < y && y != 0) { y := y - 1; } else { y := y + 1; }
while (y > 0) { y := y - 1; }
repeat { x := x + 1; } until (x >= 3);
label L:
if (!(x == y)) { goto L; }
print x % 2;
"""


def _stmt_exprs(stmt):
    if isinstance(stmt, (Assign, Print)):
        return [stmt.expr]
    if isinstance(stmt, Store):
        return [stmt.index, stmt.expr]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, (While, Repeat)):
        return [stmt.cond]
    return []


def _assert_fully_spanned(program):
    statements = list(program.walk())
    assert statements
    for stmt in statements:
        assert stmt.span is not None, f"statement without span: {stmt!r}"
        for expr in _stmt_exprs(stmt):
            for sub in subexpressions(expr):
                assert sub.span is not None, (
                    f"expression without span in {stmt!r}: {sub!r}"
                )


def test_every_ast_node_carries_a_span():
    _assert_fully_spanned(parse_program(ALL_CONSTRUCTS))


def test_statement_spans_point_at_their_source_lines():
    program = parse_program(ALL_CONSTRUCTS)
    top = program.body
    kinds_and_lines = [(type(s).__name__, s.span.line) for s in top]
    assert kinds_and_lines == [
        ("Assign", 1),
        ("Store", 2),
        ("Assign", 3),
        ("Skip", 4),
        ("If", 5),
        ("While", 6),
        ("Repeat", 7),
        ("Label", 8),
        ("If", 9),
        ("Print", 10),
    ]
    # Columns are 1-based: the first statement starts at column 1.
    assert top[0].span.column == 1
    # A nested statement's span sits inside its parent's line range.
    branch = top[4]
    assert isinstance(branch, If)
    assert branch.then_body[0].span.line == branch.span.line


def test_expression_spans_are_nested_in_statement_spans():
    program = parse_program("total := alpha + beta * gamma;\n")
    stmt = program.body[0]
    assert isinstance(stmt, Assign)
    subs = list(subexpressions(stmt.expr))
    for sub in subs:
        assert sub.span.line == 1
    columns = sorted(sub.span.column for sub in subs)
    # alpha at 10, beta at 18, gamma at 25; the + and * nodes cover
    # their operands, starting where the left operand starts.
    assert columns == [10, 10, 18, 18, 25]


def test_parse_pretty_parse_round_trip_preserves_spans():
    first = parse_program(ALL_CONSTRUCTS)
    rendered = pretty_program(first)
    second = parse_program(rendered)
    # Structure is preserved exactly (spans are compare=False) ...
    assert second.body == first.body
    # ... and the re-parse attaches a span to every node again.
    _assert_fully_spanned(second)
    # The round trip is a fixed point from the first rendering on.
    assert pretty_program(second) == rendered


def test_spans_propagate_to_cfg_nodes():
    source = (
        "x := 1;\n"
        "if (x > 0) { y := x; } else { y := 2; }\n"
        "print y;\n"
    )
    graph = build_cfg(parse_program(source))
    by_kind: dict[NodeKind, list[int]] = {}
    for nid in sorted(graph.nodes):
        node = graph.node(nid)
        if node.span is not None:
            by_kind.setdefault(node.kind, []).append(node.span.line)
    assert by_kind[NodeKind.ASSIGN] == [1, 2, 2]
    assert by_kind[NodeKind.SWITCH] == [2]
    assert by_kind[NodeKind.PRINT] == [3]


def test_synthetic_nodes_carry_no_span():
    # The normalizer's loop-exit switch and merges are not source
    # statements; they must stay span-less so lint never points at them.
    graph = build_cfg(parse_program("n := 2; while (n > 0) { n := n - 1; }"))
    spans = {
        graph.node(nid).kind
        for nid in graph.nodes
        if graph.node(nid).span is None
    }
    assert NodeKind.MERGE in spans or NodeKind.NOP in spans


def test_span_cover_and_as_dict():
    a = Span(1, 5, 1, 9)
    b = Span(2, 1, 2, 4)
    covered = Span.cover(a, b)
    assert covered == Span(1, 5, 2, 4)
    assert a.as_dict() == {
        "line": 1, "column": 5, "end_line": 1, "end_column": 9,
    }


def test_spans_do_not_affect_expression_equality():
    one = parse_program("x := a + b;").body[0].expr
    other = parse_program("\n\n   x := a + b;").body[0].expr
    assert one == other
    assert one.span != other.span
