"""The hardened batch driver: per-spec errors, supervision, minimization.

The ``__raise__`` / ``__hang__`` / ``__crash__`` program families are
baked into the worker-resolvable family table precisely so these tests
can misbehave inside *real* spawned processes -- monkeypatching does not
survive ``spawn``.
"""

from __future__ import annotations

import pytest

from repro.perf.batch import (
    _analyze_chunk,
    _analyze_one,
    equivalence_suite,
    resolve_family,
    run_batch,
)
from repro.robust import Backoff, IncidentLog, InputError
from repro.robust.minimize import minimize_program
from repro.robust.pool import SupervisedPool

GOOD = {"label": "good", "family": "random", "args": [0, 20, 4]}
POISON = {"label": "poison", "family": "__raise__", "args": []}


# -- per-spec error rows (the chunk no longer dies with its worst spec) ------


def test_chunk_survives_poison_spec() -> None:
    rows = _analyze_chunk([GOOD, POISON, dict(GOOD, label="good-2")])
    assert [row["label"] for row in rows] == ["good", "poison", "good-2"]
    assert "passes" in rows[0] and "passes" in rows[2]
    assert rows[1]["error"]["type"] == "RuntimeError"
    assert "injected family failure" in rows[1]["error"]["message"]


def test_analyze_one_reports_unknown_family() -> None:
    row = _analyze_one({"label": "x", "family": "nonesuch", "args": []})
    assert row["error"]["type"] == "InputError"


def test_resolve_family_raises_input_error() -> None:
    with pytest.raises(InputError, match="unknown program family"):
        resolve_family("nonesuch")


def test_equivalence_suite_mirrors_test_population() -> None:
    suite = equivalence_suite()
    assert len(suite) == 204
    labels = [spec["label"] for spec in suite]
    assert len(set(labels)) == 204
    smoke = equivalence_suite(smoke=True)
    assert len(smoke) == 24
    for spec in smoke:
        resolve_family(spec["family"])  # every family resolves


def test_run_batch_in_process_with_poison() -> None:
    payload = run_batch(suite=[GOOD, POISON], workers=0)
    assert payload["programs"] == 2
    assert payload["errors"] == 1
    # Aggregation skips the error row instead of crashing on it.
    assert payload["passes"]
    assert all(agg["work"] >= 0 for agg in payload["passes"].values())


# -- the supervised pool (real spawned processes) ----------------------------


def test_pool_retries_then_quarantines_deterministic_failure() -> None:
    minimized: list[tuple[dict, dict]] = []

    def minimizer(spec, error):
        minimized.append((spec, error))
        return {"marker": spec["label"]}

    incidents = IncidentLog()
    pool = SupervisedPool(
        workers=2,
        retries=1,
        backoff=Backoff(base_s=0.01, max_s=0.05),
        incidents=incidents,
        minimizer=minimizer,
    )
    rows = pool.run([GOOD, POISON])
    assert rows[0]["label"] == "good" and "passes" in rows[0]
    poison_row = rows[1]
    assert poison_row["quarantined"]
    assert poison_row["failure"] == "spec-error"
    assert poison_row["attempts"] == 2  # first try + one retry
    assert poison_row["quarantine"] == {"marker": "poison"}
    assert minimized and minimized[0][1]["type"] == "RuntimeError"
    assert incidents.count("retry") == 1
    assert incidents.count("quarantine") == 1
    assert pool.stats["retries"] == 1
    assert pool.stats["quarantined"] == 1


def test_pool_terminates_hung_worker() -> None:
    incidents = IncidentLog()
    pool = SupervisedPool(
        workers=1, timeout_s=2.0, retries=0, incidents=incidents
    )
    rows = pool.run([{"label": "hang", "family": "__hang__", "args": []}])
    assert rows[0]["quarantined"]
    assert rows[0]["failure"] == "worker-timeout"
    assert rows[0]["error"]["type"] == "PassTimeout"
    assert incidents.count("worker-timeout") == 1
    assert pool.stats["timeouts"] == 1


def test_pool_isolates_crashed_worker_and_retries() -> None:
    incidents = IncidentLog()
    pool = SupervisedPool(
        workers=1, retries=1, backoff=Backoff(base_s=0.01, max_s=0.05),
        incidents=incidents,
    )
    rows = pool.run([{"label": "boom", "family": "__crash__", "args": []}])
    assert rows[0]["quarantined"]
    assert rows[0]["failure"] == "worker-crash"
    assert pool.stats["crashes"] == 2  # initial attempt + the retry
    assert pool.stats["retries"] == 1
    crash = incidents.incidents[0]
    assert crash.kind == "worker-crash"
    assert crash.detail["exitcode"] == 3


def test_pool_preserves_spec_order_under_mixed_outcomes() -> None:
    specs = [
        dict(GOOD, label="a"),
        POISON,
        dict(GOOD, label="c", args=[1, 20, 4]),
    ]
    pool = SupervisedPool(
        workers=2, retries=0, backoff=Backoff(base_s=0.01, max_s=0.05)
    )
    rows = pool.run(specs)
    assert [row["label"] for row in rows] == ["a", "poison", "c"]


# -- the minimizer -----------------------------------------------------------


def _has_while(program) -> bool:
    from repro.lang.ast_nodes import While

    return any(isinstance(stmt, While) for stmt in program.body)


def test_minimize_program_shrinks_to_failing_core() -> None:
    source = "\n".join(
        [
            "a := 1;",
            "b := a + 2;",
            "print a;",
            "while (a < 3) { a := a + 1; }",
            "c := b * 2;",
            "print c;",
        ]
    )
    minimized, evals = minimize_program(source, _has_while)
    assert "while" in minimized
    assert "print" not in minimized  # everything irrelevant removed
    assert evals > 0
    # The artifact round-trips: it is source, not an AST dump.
    from repro.lang.parser import parse_program

    assert _has_while(parse_program(minimized))


def test_minimize_program_flattens_compounds() -> None:
    from repro.lang.ast_nodes import Assign

    source = "if (1 < 2) { x := 42; } else { y := 0; }"

    def has_x_assign(program) -> bool:
        def walk(stmts):
            for stmt in stmts:
                if isinstance(stmt, Assign) and stmt.target == "x":
                    return True
                for attr in ("then_body", "else_body", "body"):
                    if walk(getattr(stmt, attr, [])):
                        return True
            return False

        return walk(program.body)

    minimized, _ = minimize_program(source, has_x_assign)
    assert "if" not in minimized  # the compound wrapper is gone
    assert "x := 42" in minimized


def test_minimize_program_returns_original_when_not_failing() -> None:
    source = "x := 1;\nprint x;"
    minimized, evals = minimize_program(source, lambda program: False)
    assert minimized == source
    assert evals == 1  # the initial probe only


# -- CLI surface -------------------------------------------------------------


def test_cli_batch_equivalence_smoke(tmp_path, capsys) -> None:
    import json

    from repro.cli import main

    out = str(tmp_path / "batch.json")
    assert main(
        ["batch", "--workers", "0", "--suite", "equivalence", "--smoke",
         "--output", out]
    ) == 0
    payload = json.load(open(out))["batch"]
    assert payload["programs"] == 24
    assert "errors" not in payload  # the suite is healthy
    assert payload["passes"]


def test_cli_reports_one_line_diagnostic_not_traceback(tmp_path, capsys) -> None:
    from repro.cli import main

    bad = tmp_path / "bad.dfg"
    bad.write_text("x := ;")
    assert main(["run", str(bad)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: ")
    assert "Traceback" not in err
