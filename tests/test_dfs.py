"""Depth-first search order and edge-classification tests."""

from repro.graphs.dfs import depth_first_search, reverse_postorder


def adj(graph):
    return lambda n: graph.get(n, [])


def test_linear_chain_orders():
    g = {0: [1], 1: [2], 2: []}
    r = depth_first_search([0], adj(g))
    assert r.preorder == [0, 1, 2]
    assert r.postorder == [2, 1, 0]
    assert reverse_postorder(0, adj(g)) == [0, 1, 2]


def test_tree_edges_form_spanning_tree():
    g = {0: [1, 2], 1: [3], 2: [3], 3: []}
    r = depth_first_search([0], adj(g))
    assert set(r.tree_edges) == {(0, 1), (1, 3), (0, 2)}
    assert r.parent[3] == 1


def test_back_edge_detected_in_cycle():
    g = {0: [1], 1: [2], 2: [1, 3], 3: []}
    r = depth_first_search([0], adj(g))
    assert r.back_edges == [(2, 1)]


def test_self_loop_is_back_edge():
    g = {0: [0, 1], 1: []}
    r = depth_first_search([0], adj(g))
    assert (0, 0) in r.back_edges


def test_forward_and_cross_edges():
    # 0 -> 1 -> 2, 0 -> 2 is forward; 0 -> 3, 3 -> 2 would be cross.
    g = {0: [1, 2, 3], 1: [2], 2: [], 3: [2]}
    r = depth_first_search([0], adj(g))
    assert (0, 2) in r.forward_edges
    assert (3, 2) in r.cross_edges


def test_edge_partition_is_complete():
    g = {0: [1, 2], 1: [2, 0], 2: [0, 2], 3: [0]}
    r = depth_first_search([0, 3], adj(g))
    all_edges = [(u, v) for u in g for v in g[u]]
    classified = (
        r.tree_edges + r.back_edges + r.forward_edges + r.cross_edges
    )
    assert sorted(classified) == sorted(all_edges)


def test_multiple_roots_cover_disconnected_parts():
    g = {0: [1], 1: [], 2: [3], 3: []}
    r = depth_first_search([0, 2], adj(g))
    assert set(r.preorder) == {0, 1, 2, 3}


def test_rpo_respects_dependencies_in_dag():
    g = {0: [2, 1], 1: [3], 2: [3], 3: []}
    order = reverse_postorder(0, adj(g))
    pos = {n: i for i, n in enumerate(order)}
    for u in g:
        for v in g[u]:
            assert pos[u] < pos[v]
