"""The lint engine as a pipeline citizen: rule results are cached by the
AnalysisManager, invalidation drops exactly the affected rules, and the
lint registry never leaks into the shared default registry."""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program
from repro.lint.engine import LintEngine
from repro.lint.rules import LINT_PASS, RULE_PASSES, lint_registry
from repro.pipeline.manager import AnalysisManager
from repro.pipeline.passes import default_registry

SOURCE = "x := 1;\nx := 2;\ny := x;\nprint y;\n"


@pytest.fixture
def engine():
    graph = build_cfg(parse_program(SOURCE))
    return LintEngine(graph)


def test_second_run_is_all_cache_hits(engine):
    engine.run(verify=False)
    stats = engine.manager.stats
    assert stats[LINT_PASS].misses == 1 and stats[LINT_PASS].hits == 0
    engine.run(verify=False)
    assert stats[LINT_PASS].misses == 1 and stats[LINT_PASS].hits == 1
    for name in RULE_PASSES.values():
        assert stats[name].misses == 1, name


def test_runs_on_shared_manager_reuse_analyses(engine):
    # A caller that already analyzed the graph hands its manager in; the
    # rule passes then hit the existing liveness/constprop/dfg entries.
    manager = AnalysisManager(engine.graph, registry=lint_registry())
    manager.get("liveness")
    manager.get("constprop")
    LintEngine(engine.graph, manager=manager).run(verify=False)
    assert manager.stats["liveness"].hits >= 1
    assert manager.stats["constprop"].hits >= 1


def test_explicit_invalidation_drops_dependent_rules(engine):
    engine.run(verify=False)
    dropped = engine.manager.invalidate("liveness")
    # Exactly the liveness-dependent rules (and the aggregate) fall out.
    assert {"liveness", RULE_PASSES["R003"], RULE_PASSES["R006"],
            LINT_PASS} <= dropped
    assert RULE_PASSES["R009"] not in dropped
    engine.run(verify=False)
    stats = engine.manager.stats
    assert stats[RULE_PASSES["R003"]].misses == 2
    assert stats[RULE_PASSES["R009"]].misses == 1  # untouched, still cached


def test_graph_mutation_invalidates_findings(engine):
    first = engine.run(verify=False).diagnostics
    assert any(d.rule == "R003" for d in first)  # x := 1 is a dead store
    # Splice the dead store out; the manager notices the shape change.
    graph = engine.graph
    (nid,) = [d.node for d in first if d.rule == "R003"]
    in_edge, out_edge = graph.in_edge(nid), graph.out_edge(nid)
    graph.add_edge(in_edge.src, out_edge.dst, label=in_edge.label)
    graph.remove_node(nid)
    second = engine.run(verify=False).diagnostics
    assert all(d.rule != "R003" for d in second)
    assert engine.manager.stats[LINT_PASS].misses == 2


def test_lint_registry_is_memoized_and_isolated():
    assert lint_registry() is lint_registry()
    base = default_registry()
    assert LINT_PASS not in base
    assert all(name not in base for name in RULE_PASSES.values())
    assert "anticipatable" not in base
    # The clone extends, never shrinks: every default pass is available.
    assert set(base.names()) <= set(lint_registry().names())


def test_result_summary_shape(engine):
    result = engine.run(verify=True)
    summary = result.summary()
    assert summary["total"] == len(result.diagnostics)
    assert sum(summary["by_severity"].values()) == summary["total"]
    assert sum(summary["by_rule"].values()) == summary["total"]
    assert result.unverified_definite() == 0


def test_unverified_definite_counts_skipped_verification(engine):
    result = engine.run(verify=False)
    assert result.unverified_definite() == sum(
        1 for d in result.diagnostics if d.severity == "definite"
    ) > 0
