"""The degradation policy: oracle fallback, cross-checks, deadlines."""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program
from repro.pipeline.manager import AnalysisManager, PassRegistry
from repro.pipeline.passes import default_registry
from repro.robust import (
    AnalysisError,
    Deadline,
    DegradationPolicy,
    FakeClock,
    IncidentLog,
    InputError,
    default_oracles,
)
from repro.robust.fallback import results_equal
from repro.util.metrics import Metrics

SOURCE = """
x := 0;
while (x < 5) { x := x + 1; }
if (x > 2) { y := x * 2; } else { y := 7; }
print y;
"""


def _graph():
    return build_cfg(parse_program(SOURCE))


def _registry(**overrides) -> PassRegistry:
    """A registry with the standard pass bodies, selected ones replaced."""
    registry = PassRegistry()
    for spec in default_registry():
        build = overrides.get(spec.name, spec.build)
        registry.register(
            spec.name, deps=spec.deps, uses_exprs=spec.uses_exprs,
            description=spec.description,
        )(build)
    return registry


def test_raising_pass_falls_back_to_oracle() -> None:
    def broken_dom(graph, deps, counter):
        raise RuntimeError("fast kernel bug")

    log = IncidentLog()
    manager = AnalysisManager(
        _graph(),
        registry=_registry(dom=broken_dom),
        metrics=Metrics(),
        policy=DegradationPolicy(incidents=log),
    )
    dom = manager.get("dom")  # does not raise
    reference = AnalysisManager(_graph(), metrics=Metrics()).get("dom")
    assert results_equal("dom", dom, reference)
    assert log.count("oracle-fallback") == 1
    incident = log.incidents[0]
    assert incident.pass_name == "dom"
    assert incident.recovered
    assert incident.error["type"] == "RuntimeError"


def test_incidents_mirror_into_metrics() -> None:
    def broken_liveness(graph, deps, counter):
        raise RuntimeError("boom")

    metrics = Metrics()
    manager = AnalysisManager(
        _graph(),
        registry=_registry(liveness=broken_liveness),
        metrics=metrics,
        policy=DegradationPolicy(incidents=IncidentLog(metrics=metrics)),
    )
    manager.get("liveness")
    assert metrics.counter["incident:oracle-fallback"] == 1
    doc = metrics.as_dict()
    assert len(doc["incidents"]) == 1
    assert doc["incidents"][0]["kind"] == "oracle-fallback"


def test_clean_metrics_payload_has_no_incidents_key() -> None:
    metrics = Metrics()
    AnalysisManager(_graph(), metrics=metrics).run_all()
    assert "incidents" not in metrics.as_dict()


def test_cross_check_substitutes_oracle_on_mismatch() -> None:
    def lying_reaching(graph, deps, counter):
        return {}  # plausible type, wrong answer

    log = IncidentLog()
    manager = AnalysisManager(
        _graph(),
        registry=_registry(reaching=lying_reaching),
        metrics=Metrics(),
        policy=DegradationPolicy(incidents=log, cross_check=True),
    )
    reaching = manager.get("reaching")
    reference = AnalysisManager(_graph(), metrics=Metrics()).get("reaching")
    assert results_equal("reaching", reaching, reference)
    assert log.count("cross-check-mismatch") == 1


def test_cross_check_quiet_when_results_agree() -> None:
    log = IncidentLog()
    manager = AnalysisManager(
        _graph(),
        metrics=Metrics(),
        policy=DegradationPolicy(incidents=log, cross_check=True),
    )
    manager.run_all()
    assert len(log) == 0


def test_pass_without_oracle_escalates() -> None:
    def broken_dfg(graph, deps, counter):
        raise RuntimeError("no oracle for me")

    log = IncidentLog()
    manager = AnalysisManager(
        _graph(),
        registry=_registry(dfg=broken_dfg),
        metrics=Metrics(),
        policy=DegradationPolicy(incidents=log),
    )
    with pytest.raises(AnalysisError) as excinfo:
        manager.get("dfg")
    assert excinfo.value.pass_name == "dfg"
    assert isinstance(excinfo.value.__cause__, RuntimeError)
    assert log.count("unrecovered") == 1


def test_input_error_is_not_degraded() -> None:
    def picky_dom(graph, deps, counter):
        raise InputError("graph rejected", phase="pass:dom")

    manager = AnalysisManager(
        _graph(),
        registry=_registry(dom=picky_dom),
        metrics=Metrics(),
        policy=DegradationPolicy(incidents=IncidentLog()),
    )
    # A malformed input is precise; substituting an oracle answer would
    # mask the caller's bug.
    with pytest.raises(InputError):
        manager.get("dom")


def test_timeout_recovers_and_deadline_resets() -> None:
    clock = FakeClock()

    def slow_dom(graph, deps, counter):
        from repro.graphs.dominance import edge_dominators

        clock.advance(2.0)  # past the 1s budget
        return edge_dominators(graph)

    log = IncidentLog()
    manager = AnalysisManager(
        _graph(),
        registry=_registry(dom=slow_dom),
        metrics=Metrics(),
        policy=DegradationPolicy(
            incidents=log, deadline=Deadline(1.0, clock=clock.now)
        ),
    )
    results = manager.run_all()  # no PassTimeout escapes
    assert log.count("timeout-fallback") == 1
    # The deadline was reset after the recovered timeout, so the many
    # passes after `dom` ran without further incidents.
    assert len(log) == 1
    assert "sccp" in results


def test_default_oracles_cover_reference_twins() -> None:
    names = set(default_oracles())
    assert names == {
        "dfs", "dom", "pdom", "cycle-equiv", "sese",
        "liveness", "reaching", "available", "pavailable",
        "region-summaries", "arena-dataflow",
        "defuse", "sparse-range", "sparse-taint", "ntscd",
    }
    registered = set(default_registry().names())
    assert names <= registered


def test_oracles_match_fast_passes() -> None:
    graph = _graph()
    manager = AnalysisManager(graph, metrics=Metrics())
    deps = {"csr": manager.get("csr")}
    for name, oracle in default_oracles().items():
        fast = manager.get(name)
        reference = oracle(graph, deps, manager.metrics.counter)
        assert results_equal(name, fast, reference), name
