"""Non-termination-sensitive control dependence (PR 9).

NTSCD differs from the classic postdominance CDG exactly on CFGs with
infinite or irreducible control flow: a statement *after* a loop is
NTSCD-dependent on the loop predicate (looping forever is a maximal path
that avoids it), and goto soup that never terminates still gets a
well-defined dependence relation.  The fast edge-counter fixpoint must
agree with the first-principles escape-analysis twin everywhere.
"""

from __future__ import annotations

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.controldep.ntscd import ntscd, ntscd_reference
from repro.lang.parser import parse_program
from repro.workloads.generators import (
    irreducible_program,
    random_jump_program,
    random_program,
)


def graph_of(source: str):
    return build_cfg(parse_program(source))


def nodes_of_kind(graph, kind):
    return [
        nid for nid in sorted(graph.nodes) if graph.node(nid).kind is kind
    ]


def test_statement_after_loop_depends_on_loop_predicate():
    # The classic CDG says 'print n' postdominates the loop and depends
    # on nothing; NTSCD says it depends on the predicate, because the
    # infinite iteration of the loop is a maximal path avoiding it.
    graph = graph_of(
        "n := 3;\nwhile (n > 0) {\n    n := n - 1;\n}\nprint n;\n"
    )
    (switch,) = nodes_of_kind(graph, NodeKind.SWITCH)
    (print_node,) = nodes_of_kind(graph, NodeKind.PRINT)
    result = ntscd(graph)
    assert switch in result.deps[print_node]
    assert print_node in result.controls(switch)


def test_code_after_infinite_loop_still_depends_on_predicate():
    # 'while (1)' never exits, but the CFG still has both arms; the exit
    # path exists structurally, so the print is controlled by the switch.
    graph = graph_of("x := 1;\nwhile (1) {\n    x := x + 1;\n}\nprint x;\n")
    (switch,) = nodes_of_kind(graph, NodeKind.SWITCH)
    (print_node,) = nodes_of_kind(graph, NodeKind.PRINT)
    result = ntscd(graph)
    assert switch in result.deps[print_node]
    assert result.facts() == ntscd_reference(graph).facts()


def test_loop_body_depends_on_its_predicate():
    graph = graph_of(
        "n := 3;\nwhile (n > 0) {\n    n := n - 1;\n}\nprint n;\n"
    )
    (switch,) = nodes_of_kind(graph, NodeKind.SWITCH)
    body = [
        nid for nid in nodes_of_kind(graph, NodeKind.ASSIGN)
        if graph.node(nid).span and graph.node(nid).span.line == 3
    ]
    result = ntscd(graph)
    assert body and all(switch in result.deps[nid] for nid in body)


IRREDUCIBLE = """\
n := 5;
if (n > 2) {
    goto second;
}
label first:
n := n - 1;
label second:
n := n - 2;
if (n > 0) {
    goto first;
}
print n;
"""


def test_irreducible_goto_cfg_matches_reference():
    graph = graph_of(IRREDUCIBLE)
    fast = ntscd(graph)
    assert fast.facts() == ntscd_reference(graph).facts()
    # The loop formed by 'goto first' has two entries; dependences still
    # exist and both branch nodes control something.
    switches = nodes_of_kind(graph, NodeKind.SWITCH)
    assert len(switches) == 2
    assert all(fast.controls(p) for p in switches)


NONTERMINATING = """\
x := p;
label spin:
x := x + 1;
if (x > 0) {
    goto spin;
}
print x;
"""


def test_nonterminating_goto_cfg_matches_reference():
    graph = graph_of(NONTERMINATING)
    fast = ntscd(graph)
    assert fast.facts() == ntscd_reference(graph).facts()
    (switch,) = nodes_of_kind(graph, NodeKind.SWITCH)
    (print_node,) = nodes_of_kind(graph, NodeKind.PRINT)
    assert switch in fast.deps[print_node]


def test_straight_line_code_has_no_dependences():
    graph = graph_of("x := 1;\ny := x + 1;\nprint y;\n")
    result = ntscd(graph)
    assert result.facts() == ()
    assert all(not deps for deps in result.deps.values())


def test_generated_families_match_reference():
    cases = (
        [random_program(seed, size=18, num_vars=4) for seed in range(6)]
        + [irreducible_program(seed, 5) for seed in range(4)]
        + [random_jump_program(seed, 7) for seed in range(4)]
    )
    for program in cases:
        graph = build_cfg(program)
        assert ntscd(graph).facts() == ntscd_reference(graph).facts()


def test_controls_is_the_inverse_of_deps():
    graph = graph_of(IRREDUCIBLE)
    result = ntscd(graph)
    for p in nodes_of_kind(graph, NodeKind.SWITCH):
        for n in result.controls(p):
            assert p in result.deps[n]
    for n, ps in result.deps.items():
        for p in ps:
            assert n in result.controls(p)
