"""The Section 4 Multiflow extension: predicate-implied constants.

"If the predicate at a switch is x=1, we can propagate the constant 1
for x on the true side of the conditional even if we cannot determine
the value of x for the false side.  It is easy to extend both the DFG
and CFG algorithms to accomplish this, but this extension seems
difficult in SSA-based algorithms since SSA edges bypass switches."
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.cfg.interp import run_cfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import CTRL_VAR
from repro.dataflow.lattice import TOP, branch_implications
from repro.lang.interp import eval_expr
from repro.lang.parser import parse_expr, parse_program
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.sccp import sparse_conditional_constant_propagation
from repro.workloads.generators import random_program
from conftest import random_envs


def graph_of(source):
    return build_cfg(parse_program(source))


# -- branch_implications unit tests ---------------------------------------------


def test_equality_true_side():
    assert branch_implications(parse_expr("x == 5"), taken=True) == {"x": 5}
    assert branch_implications(parse_expr("5 == x"), taken=True) == {"x": 5}
    assert branch_implications(parse_expr("x == 5"), taken=False) == {}


def test_inequality_false_side():
    assert branch_implications(parse_expr("x != 7"), taken=False) == {"x": 7}
    assert branch_implications(parse_expr("x != 7"), taken=True) == {}


def test_no_implication_for_other_shapes():
    for text in ("x < 5", "x == y", "x + 1 == 5", "x", "1 == 2"):
        assert branch_implications(parse_expr(text), taken=True) == {}
        assert branch_implications(parse_expr(text), taken=False) == {}


# -- behaviour of the extended algorithms ----------------------------------------


EXAMPLE = """
if (x == 5) { y := x + 1; } else { z := x; }
if (x != 7) { skip; } else { w := x * 2; }
print y; print z; print w;
"""


def test_dfg_refinement_finds_branch_constants():
    g = graph_of(EXAMPLE)
    plain = dfg_constant_propagation(g)
    refined = dfg_constant_propagation(g, refine_predicates=True)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    z_def = next(n for n in g.assign_nodes() if n.target == "z")
    w_def = next(n for n in g.assign_nodes() if n.target == "w")
    assert plain.rhs_values[y_def.id] is TOP
    assert refined.rhs_values[y_def.id] == 6
    assert refined.rhs_values[w_def.id] == 14
    # Nothing is known on the other side of ==.
    assert refined.use_values[(z_def.id, "x")] is TOP


def test_cfg_refinement_agrees_with_dfg():
    g = graph_of(EXAMPLE)
    dfg_result = dfg_constant_propagation(g, refine_predicates=True)
    cfg_result = cfg_constant_propagation(g, refine_predicates=True)
    for key, value in dfg_result.use_values.items():
        if key[1] != CTRL_VAR:
            assert cfg_result.use_values[key] == value


def test_sccp_cannot_express_it():
    """Unchanged SSA-based SCCP misses the branch constant -- the
    paper's observation about SSA edges bypassing switches."""
    g = graph_of(EXAMPLE)
    ssa = build_ssa_cytron(g)
    result = sparse_conditional_constant_propagation(ssa)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    assert result.value_of_use(ssa, y_def.id, "x") is TOP


def test_refinement_interacts_with_dead_code():
    g = graph_of(
        "x := 3; if (x == 5) { y := x + 1; print y; } print 0;"
    )
    refined = dfg_constant_propagation(g, refine_predicates=True)
    y_def = next(n for n in g.assign_nodes() if n.target == "y")
    # x is 3, so the == 5 arm is dead; refinement must not resurrect it.
    assert y_def.id in refined.dead_nodes


def test_refined_equals_plain_when_no_equalities():
    g = graph_of("if (x < 5) { y := x; } print y;")
    plain = dfg_constant_propagation(g)
    refined = dfg_constant_propagation(g, refine_predicates=True)
    assert plain.use_values == refined.use_values


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=20, deadline=None)
def test_refined_dfg_and_cfg_agree_on_random_programs(seed):
    g = build_cfg(random_program(seed, size=12, num_vars=3))
    dfg_result = dfg_constant_propagation(g, refine_predicates=True)
    cfg_result = cfg_constant_propagation(g, refine_predicates=True)
    for key, value in dfg_result.use_values.items():
        if key[1] != CTRL_VAR:
            assert cfg_result.use_values[key] == value


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=20, deadline=None)
def test_refined_constants_sound_on_executions(seed):
    prog = random_program(seed, size=12, num_vars=3)
    g = build_cfg(prog)
    result = dfg_constant_propagation(g, refine_predicates=True)
    constants = result.constant_uses()
    for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
        run = run_cfg(g, env)
        state = dict(env)
        for nid in run.trace:
            node = g.node(nid)
            for var in node.uses():
                if (nid, var) in constants:
                    assert state.get(var, 0) == constants[(nid, var)]
            if node.kind is NodeKind.ASSIGN:
                state[node.target] = eval_expr(node.expr, state)
