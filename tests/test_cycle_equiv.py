"""Cycle-equivalence tests.

Two independent oracles validate the O(E) bracket-list algorithm:

* a brute-force simple-cycle oracle -- in the strongly connected
  augmentation, two edges are cycle equivalent iff they lie on exactly
  the same set of simple cycles;
* Claim 1 of the paper -- the partition by cycle equivalence must equal
  the partition of edges by their (standard, postdominator-computed)
  control-dependence sets.
"""

from collections import defaultdict

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.controldep.cdg import control_dependence_edges
from repro.controldep.cycle_equiv import cycle_equivalence
from repro.lang.parser import parse_program
from repro.workloads.generators import irreducible_program, random_program
from repro.workloads.ladders import diamond_chain, loop_nest


def partition(mapping):
    groups = defaultdict(frozenset)
    buckets = defaultdict(set)
    for key, value in mapping.items():
        buckets[value].add(key)
    del groups
    return frozenset(frozenset(b) for b in buckets.values())


def oracle_partition(graph):
    """Edge partition by the set of simple *edge* cycles through each edge."""
    g = nx.MultiDiGraph()
    for eid, edge in graph.edges.items():
        g.add_edge(edge.src, edge.dst, key=eid)
    g.add_edge(graph.end, graph.start, key="synthetic")
    cycles_of = defaultdict(set)
    for i, cycle in enumerate(_edge_cycles(g)):
        for eid in cycle:
            cycles_of[eid].add(i)
    groups = defaultdict(set)
    for eid in graph.edges:
        groups[frozenset(cycles_of[eid])].add(eid)
    return frozenset(frozenset(v) for v in groups.values())


def _edge_cycles(g):
    """All simple cycles as tuples of edge keys (exponential; small graphs
    only)."""
    for nodes in nx.simple_cycles(nx.DiGraph(g)):
        yield from _expand(g, nodes)


def _expand(g, nodes):
    pairs = list(zip(nodes, nodes[1:] + nodes[:1]))
    choices = []
    for u, v in pairs:
        choices.append([k for k in g[u][v]])
    def rec(i, acc):
        if i == len(choices):
            yield tuple(acc)
            return
        for k in choices[i]:
            yield from rec(i + 1, acc + [k])
    yield from rec(0, [])


def algo_partition(graph):
    classes = cycle_equivalence(graph)
    groups = defaultdict(set)
    for eid, cls in classes.items():
        groups[cls].add(eid)
    return frozenset(frozenset(v) for v in groups.values())


def cd_partition(graph):
    deps = control_dependence_edges(graph)
    groups = defaultdict(set)
    for eid, cd in deps.items():
        groups[cd].add(eid)
    return frozenset(frozenset(v) for v in groups.values())


# -- worked examples ----------------------------------------------------------


def test_straight_line_all_edges_one_class():
    g = build_cfg(parse_program("x := 1; y := 2; print x + y;"))
    classes = cycle_equivalence(g)
    assert len(set(classes.values())) == 1


def test_diamond_classes():
    g = build_cfg(parse_program("if (p) { x := 1; } else { x := 2; } print x;"))
    classes = cycle_equivalence(g)
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    t_arm = g.switch_edge(switch, "T")
    f_arm = g.switch_edge(switch, "F")
    # The two arms are in different classes; each arm's entry and exit
    # edges share a class; the spine is a third class.
    t_exit = g.out_edge(g.succs(switch)[0])
    assert classes[t_arm.id] != classes[f_arm.id]
    assert classes[t_arm.id] == classes[t_exit.id]
    spine = g.out_edge(g.start)
    assert classes[spine.id] not in (classes[t_arm.id], classes[f_arm.id])


def test_while_loop_spine_passes_through():
    g = build_cfg(
        parse_program("i := 0; while (i < 3) { i := i + 1; } print i;")
    )
    classes = cycle_equivalence(g)
    # The edge entering the loop merge from outside and the switch's exit
    # (F) edge bound the loop region: same class as the spine.
    switch = next(n.id for n in g.nodes.values() if n.kind is NodeKind.SWITCH)
    exit_edge = g.switch_edge(switch, "F")
    entry_edge = g.out_edge(g.start)
    assert classes[entry_edge.id] == classes[exit_edge.id]
    # The back edge is in its own class (only the inner cycle crosses it).
    body_assign = next(
        n.id
        for n in g.nodes.values()
        if n.kind is NodeKind.ASSIGN and n.target == "i" and "i" in n.uses()
    )
    back = g.out_edge(body_assign)
    assert classes[back.id] != classes[entry_edge.id]


def test_self_loop_gets_own_class():
    g = build_cfg(parse_program("label L: goto L;"))
    classes = cycle_equivalence(g)
    assert len(classes) == g.num_edges


# -- oracle cross-checks ------------------------------------------------------


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=40, deadline=None)
def test_matches_simple_cycle_oracle(seed):
    prog = random_program(seed, size=8, num_vars=2)
    g = build_cfg(prog)
    if g.num_edges > 24:  # keep the exponential oracle tractable
        return
    assert algo_partition(g) == oracle_partition(g)


def refines(finer, coarser):
    """Every block of ``finer`` lies inside one block of ``coarser``."""
    lookup = {}
    for block in coarser:
        for item in block:
            lookup[item] = block
    return all(
        all(lookup[item] == lookup[next(iter(block))] for item in block)
        for block in finer
    )


def is_acyclic(graph):
    from repro.graphs.dfs import depth_first_search

    return not depth_first_search([graph.start], graph.succs).back_edges


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=50, deadline=None)
def test_claim1_cycle_equivalence_refines_control_dependence(seed):
    """Cycle equivalence never merges edges with different control
    dependence sets (the sound direction of Claim 1).  On loop exits it
    is strictly finer -- e.g. a while loop's merge->switch edge shares its
    CD set with the body edges but no cycle relates them -- which Section
    3.3 explicitly allows: any relation *finer* than control-dependence
    equivalence builds a correct DFG."""
    prog = random_program(seed, size=14, num_vars=3)
    g = build_cfg(prog)
    assert refines(algo_partition(g), cd_partition(g))


@given(st.integers(min_value=0, max_value=400))
@settings(max_examples=50, deadline=None)
def test_claim1_exact_on_acyclic_graphs(seed):
    """Without loops the two partitions coincide exactly."""
    prog = random_program(seed, size=14, num_vars=3)
    g = build_cfg(prog)
    if not is_acyclic(g):
        return
    assert algo_partition(g) == cd_partition(g)


def test_claim1_refinement_on_irreducible_graphs():
    for seed in range(6):
        g = build_cfg(irreducible_program(seed))
        assert refines(algo_partition(g), cd_partition(g))


def test_claim1_refinement_on_ladders():
    for prog in (diamond_chain(6), loop_nest(3), loop_nest(2, width=2)):
        g = build_cfg(prog)
        assert refines(algo_partition(g), cd_partition(g))


def test_claim1_exact_on_diamond_chain():
    g = build_cfg(diamond_chain(6))
    assert algo_partition(g) == cd_partition(g)


def test_loop_exit_edge_is_strictly_finer():
    """The canonical counterexample recorded above, pinned as a test."""
    g = build_cfg(
        parse_program("i := 0; while (i < 3) { i := i + 1; } print i;")
    )
    assert algo_partition(g) != cd_partition(g)
    assert refines(algo_partition(g), cd_partition(g))


def test_classes_cover_every_edge_exactly_once():
    g = build_cfg(diamond_chain(5))
    classes = cycle_equivalence(g)
    assert set(classes) == set(g.edges)
