"""Shared helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.lang.ast_nodes import Program
from repro.lang.interp import run_program


def random_envs(seed: int, variables: list[str], count: int = 5) -> list[dict]:
    """Deterministic small input environments over ``variables``."""
    rng = random.Random(seed)
    envs = [{}]
    for _ in range(count - 1):
        envs.append({v: rng.randint(-3, 9) for v in variables})
    return envs


def assert_same_behaviour(program: Program, envs: list[dict] | None = None) -> None:
    """Run ``program`` through the AST interpreter and its CFG through the
    CFG interpreter and require identical observable behaviour."""
    graph = build_cfg(program)
    graph.validate(normalized=True)
    for env in envs or [{}]:
        ast_result = run_program(program, env)
        cfg_result = run_cfg(graph, env)
        assert ast_result.outputs == cfg_result.outputs
        assert ast_result.env == cfg_result.env


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)
