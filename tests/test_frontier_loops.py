"""Dominance frontier and natural-loop tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.graphs.dominance import cfg_dominators, dominator_tree
from repro.graphs.frontier import dominance_frontiers, iterated_frontier
from repro.graphs.loops import (
    back_edges,
    is_reducible,
    natural_loops,
    retreating_edges,
)
from repro.lang.parser import parse_program
from repro.workloads.generators import irreducible_program, random_program


def adj(graph):
    return lambda n: graph.get(n, [])


def preds_of(graph):
    rev = {}
    for u, vs in graph.items():
        rev.setdefault(u, [])
        for v in vs:
            rev.setdefault(v, []).append(u)
    return lambda n: rev.get(n, [])


def test_diamond_frontier():
    g = {0: [1, 2], 1: [3], 2: [3], 3: []}
    tree = dominator_tree(0, adj(g), preds_of(g))
    df = dominance_frontiers(tree, preds_of(g))
    assert df[1] == {3} and df[2] == {3}
    assert df[0] == set() and df[3] == set()


def test_loop_frontier_contains_header():
    g = {0: [1], 1: [2], 2: [1, 3], 3: []}
    tree = dominator_tree(0, adj(g), preds_of(g))
    df = dominance_frontiers(tree, preds_of(g))
    # The loop body's frontier includes the header itself.
    assert 1 in df[2]
    assert 1 in df[1]


def test_iterated_frontier_reaches_transitive_joins():
    # Two nested diamonds: a def in the inner arm needs phis at both joins.
    g = {0: [1, 2], 1: [3, 4], 3: [5], 4: [5], 5: [6], 2: [6], 6: []}
    tree = dominator_tree(0, adj(g), preds_of(g))
    df = dominance_frontiers(tree, preds_of(g))
    assert iterated_frontier(df, [3]) == {5, 6}


def test_frontier_matches_definition_on_generated_cfgs():
    for seed in range(20):
        g = build_cfg(random_program(seed, size=12, num_vars=3))
        tree = cfg_dominators(g)
        df = dominance_frontiers(tree, g.preds)
        for x in g.nodes:
            expected = set()
            for y in g.nodes:
                if any(tree.dominates(x, p) for p in g.preds(y)) and not (
                    x != y and tree.dominates(x, y)
                ):
                    if g.preds(y):
                        expected.add(y)
            assert df[x] == expected, f"seed={seed} node={x}"


def test_while_loop_is_natural_loop():
    g = build_cfg(
        parse_program("i := 0; while (i < 3) { i := i + 1; } print i;")
    )
    loops = natural_loops(g)
    assert len(loops) == 1
    (header, body), = loops.items()
    assert header in body
    kinds = {g.node(n).kind.value for n in body}
    assert "merge" in kinds and "switch" in kinds and "assign" in kinds


def test_nested_loops_nest():
    g = build_cfg(
        parse_program(
            """
            i := 0;
            while (i < 3) {
                j := 0;
                while (j < 3) { j := j + 1; }
                i := i + 1;
            }
            print i;
            """
        )
    )
    loops = natural_loops(g)
    assert len(loops) == 2
    bodies = sorted(loops.values(), key=len)
    assert bodies[0] < bodies[1]  # inner strictly inside outer


def test_structured_programs_are_reducible():
    for seed in range(10):
        g = build_cfg(random_program(seed, size=15, num_vars=3))
        assert is_reducible(g)
        assert set(retreating_edges(g)) == set(back_edges(g))


def test_irreducible_graph_detected():
    hits = 0
    for seed in range(8):
        g = build_cfg(irreducible_program(seed))
        if not is_reducible(g):
            hits += 1
    assert hits > 0, "generator should produce at least one irreducible CFG"


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_loop_bodies_are_dominated_by_header(seed):
    g = build_cfg(random_program(seed, size=15, num_vars=3))
    dom = cfg_dominators(g)
    for header, body in natural_loops(g).items():
        for node in body:
            assert dom.dominates(header, node)
