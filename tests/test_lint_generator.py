"""Satellite S6: the planted-defect generator and its measured scores.

Every planted label must be found at its exact line (recall), every
finding of a planted rule must match a label (precision) -- the same
matching the ``repro lintsweep`` payload ships -- and generation must be
a pure function of the seed.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.lint.engine import LintEngine
from repro.lint.sweep import LINTSWEEP_SCHEMA, RECALL_FLOOR, run_lint_sweep
from repro.workloads import (
    PLANTED_RULES,
    PlantedDefect,
    lint_defect_case,
    lint_defect_program,
)


def test_generation_is_deterministic():
    assert lint_defect_case(7) == lint_defect_case(7)
    assert lint_defect_case(7) != lint_defect_case(8)


def test_labels_are_well_formed():
    source, labels = lint_defect_case(3)
    lines = source.splitlines()
    assert labels
    assert {label.rule for label in labels} == set(PLANTED_RULES)
    for label in labels:
        assert isinstance(label, PlantedDefect)
        assert 1 <= label.line <= len(lines)
        if label.var is not None:
            assert label.var in lines[label.line - 1]


def test_copies_scale_the_program():
    one, labels_one = lint_defect_case(5, copies=1)
    three, labels_three = lint_defect_case(5, copies=3)
    assert len(labels_three) == 3 * len(labels_one)
    assert len(three.splitlines()) > len(one.splitlines())


def test_defect_program_parses_with_spans():
    program = lint_defect_program(2)
    assert isinstance(program, Program)
    assert all(stmt.span is not None for stmt in program.walk())


@pytest.mark.parametrize("seed", range(4))
def test_perfect_recall_and_precision_on_planted_cases(seed):
    source, labels = lint_defect_case(seed)
    graph = build_cfg(parse_program(source))
    result = LintEngine(graph).run(verify=True)
    positions = {
        (d.rule, d.span.line)
        for d in result.diagnostics
        if d.span is not None
    }
    label_keys = {(label.rule, label.line) for label in labels}
    missed = label_keys - positions
    assert not missed, f"seed {seed}: planted defects not found: {missed}"
    # Precision over the planted rules: the generator's filler machinery
    # must not trip any planted rule at an unlabelled position.
    unplanted = {
        (d.rule, d.span.line)
        for d in result.diagnostics
        if d.rule in PLANTED_RULES and d.span is not None
    } - label_keys
    assert not unplanted, f"seed {seed}: spurious findings: {unplanted}"
    # And the zero-FP contract holds on generated programs too.
    assert result.unverified_definite() == 0
    assert not any(d.refuted for d in result.diagnostics)


def test_smoke_sweep_payload_meets_the_contract():
    payload = run_lint_sweep(tag="t", smoke=True)
    assert payload["schema"] == LINTSWEEP_SCHEMA
    assert payload["mode"] == "smoke" and payload["tag"] == "t"
    assert payload["ok"] is True
    corpus = payload["corpus"]
    assert corpus["programs"] == 24
    assert corpus["unverified_definite"] == 0
    assert corpus["refuted"] == 0
    assert corpus["failing_programs"] == []
    for rule, row in corpus["by_rule"].items():
        assert row["found"] >= 1, rule
        assert row["refuted"] == 0, rule
    planted = payload["planted"]
    assert planted["recall"] >= RECALL_FLOOR
    assert planted["precision"] == 1.0
    assert planted["missed"] == []
    # Determinism: the payload carries no timing or environment fields,
    # so a second sweep is byte-for-byte identical.
    assert run_lint_sweep(tag="t", smoke=True) == payload
