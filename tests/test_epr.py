"""Partial redundancy elimination tests (Section 5.2).

The governing dynamic properties, checked with the counting interpreter:

* outputs never change;
* no execution evaluates the candidate expression more often than before
  (the Morel-Renvoise guarantee);
* on genuinely redundant workloads some execution evaluates it less.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.core.epr import (
    eliminate_partial_redundancies,
    epr_all,
    replace_subexpr,
)
from repro.lang.parser import parse_expr, parse_program
from repro.opt.cfg_epr import cfg_eliminate_partial_redundancies, cfg_epr_all
from repro.workloads import suites
from repro.workloads.generators import random_program
from conftest import random_envs

AB = parse_expr("a + b")


def graph_of(source_or_prog):
    prog = (
        parse_program(source_or_prog)
        if isinstance(source_or_prog, str)
        else source_or_prog
    )
    return build_cfg(prog)


def assert_safe(original, transformed, expr, envs, expect_improvement=None):
    improved = False
    for env in envs:
        r1, r2 = run_cfg(original, env), run_cfg(transformed, env)
        assert r1.outputs == r2.outputs
        c1, c2 = r1.eval_counts[expr], r2.eval_counts[expr]
        assert c2 <= c1, f"a path got worse: {c1} -> {c2}"
        improved |= c2 < c1
    if expect_improvement is not None:
        assert improved == expect_improvement
    return improved


def test_replace_subexpr():
    expr = parse_expr("(a + b) * (a + b) + c")
    out = replace_subexpr(expr, AB, parse_expr("t"))
    assert out == parse_expr("t * t + c")


def test_total_redundancy_eliminated():
    g = graph_of("a := p; b := q; x := a + b; y := a + b; print x + y;")
    res = eliminate_partial_redundancies(g, AB)
    assert len(res.deleted_nodes) == 2
    assert_safe(g, res.graph, AB, [{"p": 1, "q": 2}, {}], True)


def test_partial_redundancy_diamond():
    g = graph_of(
        "a := p; b := q; if (c) { x := a + b; } else { skip; } "
        "y := a + b; print y;"
    )
    res = eliminate_partial_redundancies(g, AB)
    envs = [{"p": 1, "q": 2, "c": 1}, {"p": 1, "q": 2, "c": 0}]
    assert_safe(g, res.graph, AB, envs, True)
    # The c-true path drops from 2 evaluations to 1.
    before = run_cfg(g, envs[0]).eval_counts[AB]
    after = run_cfg(res.graph, envs[0]).eval_counts[AB]
    assert (before, after) == (2, 1)


def test_repeat_until_loop_invariant_hoisted():
    """The back edge is switch-to-merge -- the critical edge of the
    Section 5.2 discussion -- and the body runs at least once, so the
    invariant hoists."""
    g = graph_of(
        "a := p; b := q; s := 0; "
        "repeat { s := s + (a + b); n := n - 1; } until (n <= 0); print s;"
    )
    res = eliminate_partial_redundancies(g, AB)
    envs = [{"p": 1, "q": 2, "n": 5}, {"n": 1}]
    assert_safe(g, res.graph, AB, envs, True)
    assert run_cfg(res.graph, {"p": 1, "q": 2, "n": 6}).eval_counts[AB] == 1


def test_while_loop_zero_trip_blocks_hoisting():
    """A while loop may run zero times: hoisting above the test would
    lengthen that path, so the static guarantee forbids it."""
    g = graph_of(
        "a := p; b := q; i := 0; s := 0; "
        "while (i < n) { s := s + (a + b); i := i + 1; } print s;"
    )
    res = eliminate_partial_redundancies(g, AB)
    assert_safe(g, res.graph, AB, [{"n": 5}, {"n": 0}], False)
    zero_trip = run_cfg(res.graph, {"n": 0}).eval_counts[AB]
    assert zero_trip == 0


def test_while_loop_with_later_use_hoists():
    g = graph_of(
        "a := p; b := q; i := 0; s := 0; "
        "while (i < n) { s := s + (a + b); i := i + 1; } "
        "t := a + b; print s + t;"
    )
    res = eliminate_partial_redundancies(g, AB)
    envs = [{"n": 5}, {"n": 0}, {"n": 1}]
    assert_safe(g, res.graph, AB, envs, True)
    # Every run now evaluates a+b exactly once.
    for env in envs:
        assert run_cfg(res.graph, env).eval_counts[AB] == 1


def test_section1_first_stage():
    g = graph_of(suites.section1_example())
    new_graph, results = epr_all(g)
    r1, r2 = run_cfg(g), run_cfg(new_graph)
    assert r1.outputs == r2.outputs
    assert r2.eval_counts[AB] == 1 < r1.eval_counts[AB]


def test_no_change_when_no_redundancy():
    g = graph_of("a := p; b := q; x := a + b; print x;")
    res = eliminate_partial_redundancies(g, AB)
    assert not res.changed
    assert res.graph.num_nodes == g.num_nodes


def test_nested_occurrences_rewritten():
    g = graph_of("a := p; b := q; x := (a + b) * (a + b); y := a + b; print x + y;")
    res = eliminate_partial_redundancies(g, AB)
    assert_safe(g, res.graph, AB, [{"p": 3, "q": 4}], True)


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_epr_all_preserves_semantics_and_counts(seed):
    prog = random_program(seed, size=14, num_vars=3)
    g = build_cfg(prog)
    g2, _results = epr_all(g)
    for env in random_envs(seed, [f"v{i}" for i in range(4)], count=3):
        r1, r2 = run_cfg(g, env), run_cfg(g2, env)
        assert r1.outputs == r2.outputs
        for expr in g.expressions():
            assert r2.eval_counts[expr] <= r1.eval_counts[expr]


# -- the dense CFG baseline ----------------------------------------------------


def test_cfg_epr_matches_quality_on_diamond():
    g = graph_of(
        "a := p; b := q; if (c) { x := a + b; } else { skip; } "
        "y := a + b; print y;"
    )
    res = cfg_eliminate_partial_redundancies(g, AB)
    envs = [{"p": 1, "q": 2, "c": 1}, {"p": 1, "q": 2, "c": 0}]
    assert_safe(g, res.graph, AB, envs, True)


def test_cfg_epr_hoists_repeat_until():
    g = graph_of(
        "a := p; b := q; s := 0; "
        "repeat { s := s + (a + b); n := n - 1; } until (n <= 0); print s;"
    )
    res = cfg_eliminate_partial_redundancies(g, AB)
    assert_safe(g, res.graph, AB, [{"n": 5}, {"n": 1}], True)


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=10, deadline=None)
def test_cfg_epr_safe_on_random_programs(seed):
    prog = random_program(seed, size=12, num_vars=3)
    g = build_cfg(prog)
    g2, _ = cfg_epr_all(g)
    for env in random_envs(seed, [f"v{i}" for i in range(4)], count=2):
        r1, r2 = run_cfg(g, env), run_cfg(g2, env)
        assert r1.outputs == r2.outputs
        for expr in g.expressions():
            assert r2.eval_counts[expr] <= r1.eval_counts[expr]


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=10, deadline=None)
def test_dfg_and_cfg_epr_agree_on_improvement(seed):
    """The two implementations share placement filtering; their dynamic
    improvement should coincide on random workloads."""
    prog = random_program(seed, size=12, num_vars=3)
    g = build_cfg(prog)
    dfg_graph, _ = epr_all(g)
    cfg_graph, _ = cfg_epr_all(g)
    for env in random_envs(seed + 7, [f"v{i}" for i in range(4)], count=2):
        base = run_cfg(g, env)
        d = run_cfg(dfg_graph, env)
        c = run_cfg(cfg_graph, env)
        assert d.outputs == base.outputs == c.outputs
