"""Sparse conditional value numbering layered on SCCP.

Optimistic hash-based value numbering over SSA names (Simpson-style
iterate-to-fixpoint): start with every name congruent, then repeatedly
re-key each name by its defining expression's *skeleton* with operand
names replaced by their current class, until the partition stabilizes.
The "conditional" part comes from SCCP: names SCCP proves constant key
by their constant (so ``x := 2 * 3`` and ``y := 5 + 1`` land in one
class), phi-functions key only over SCCP-*executable* in-edges, and a
phi with a single live argument collapses into its argument's class --
congruences that flow across branches SCCP has folded away, which plain
hash-based value numbering cannot see.

The result is deterministic: names are visited in program order and
class ids are allocated first-seen, so equal programs yield equal
numberings under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import NodeKind
from repro.dataflow.lattice import BOTTOM, TOP
from repro.lang.ast_nodes import BinOp, Expr, Index, IntLit, UnOp, Update, Var
from repro.ssa.sccp import SCCPResult, sparse_conditional_constant_propagation
from repro.ssa.ssagraph import SSAForm
from repro.util.counters import WorkCounter


@dataclass
class SCVNResult:
    """The congruence partition: ``classes[name]`` is the class id."""

    classes: dict[str, int] = field(default_factory=dict)
    rounds: int = 0

    def congruent(self, a: str, b: str) -> bool:
        return self.classes[a] == self.classes[b]

    def num_classes(self) -> int:
        return len(set(self.classes.values()))

    def facts(self):
        """Partition as sorted tuples of names, order-insensitive."""
        groups: dict[int, list[str]] = {}
        for name in sorted(self.classes):
            groups.setdefault(self.classes[name], []).append(name)
        return tuple(sorted(tuple(g) for g in groups.values()))


def _skeleton(expr: Expr, lookup) -> tuple:
    if isinstance(expr, IntLit):
        return ("lit", expr.value)
    if isinstance(expr, Var):
        return ("var", lookup(expr.name))
    if isinstance(expr, UnOp):
        return ("un", expr.op, _skeleton(expr.operand, lookup))
    if isinstance(expr, BinOp):
        left = _skeleton(expr.left, lookup)
        right = _skeleton(expr.right, lookup)
        if expr.op in ("+", "*", "==", "!=", "&&", "||") and right < left:
            left, right = right, left  # commutative: canonical operand order
        return ("bin", expr.op, left, right)
    if isinstance(expr, Index):
        return ("index", lookup(expr.array), _skeleton(expr.index, lookup))
    if isinstance(expr, Update):
        return (
            "update",
            lookup(expr.array),
            _skeleton(expr.index, lookup),
            _skeleton(expr.value, lookup),
        )
    raise TypeError(f"not an expression: {expr!r}")


def sparse_value_numbering(
    ssa: SSAForm,
    sccp: SCCPResult | None = None,
    counter: WorkCounter | None = None,
) -> SCVNResult:
    """Value-number the names of ``ssa`` using ``sccp``'s facts."""
    counter = counter if counter is not None else WorkCounter()
    if sccp is None:
        sccp = sparse_conditional_constant_propagation(ssa, counter=counter)
    graph = ssa.graph

    # Names in deterministic program order: entry values, then each
    # node's phis and definition in node order.
    names: list[str] = [ssa.entry_names[v] for v in sorted(ssa.entry_names)]
    keyers: dict[str, object] = {}
    for var in sorted(ssa.entry_names):
        keyers[ssa.entry_names[var]] = ("entry", var)
    for nid in graph.nodes:
        for var, phi in ssa.phis.get(nid, {}).items():
            names.append(phi.result)
            keyers[phi.result] = ("phi", phi)
        name = ssa.def_names.get(nid)
        if name is not None:
            names.append(name)
            keyers[name] = ("def", graph.node(nid))

    # The conditional collapse: a phi with exactly one SCCP-executable
    # in-edge is a copy of that argument -- the congruence plain value
    # numbering misses when SCCP has folded a branch away.  Resolved
    # statically (chains compress; cycles, impossible for live phis,
    # would simply stop resolving).
    canon: dict[str, str] = {}
    for name in names:
        kind, payload = keyers[name]
        if kind != "phi":
            continue
        phi = payload
        live = sorted(
            {
                arg
                for eid, arg in phi.args.items()
                if eid in sccp.executable_edges
            }
        )
        if phi.node in sccp.executable_nodes and len(live) == 1:
            canon[phi.result] = live[0]
            counter.tick("scvn_phi_copies")

    def resolve(name: str) -> str:
        seen = {name}
        while name in canon and canon[name] not in seen:
            name = canon[name]
            seen.add(name)
        return name

    solved = [name for name in names if resolve(name) == name]

    def key_of(name: str, classes: dict[str, int]) -> tuple:
        value = sccp.values.get(name, BOTTOM)
        if value is not TOP and value is not BOTTOM:
            return ("const", value)
        kind, payload = keyers[name]
        if kind == "entry":
            return ("entry", payload)
        if kind == "def":
            node = payload
            if node.id not in sccp.executable_nodes:
                return ("dead",)
            lookup = lambda v: classes[  # noqa: E731
                resolve(ssa.use_names[(node.id, v)])
            ]
            return ("expr", _skeleton(node.expr, lookup))
        phi = payload
        if phi.node not in sccp.executable_nodes:
            return ("dead",)
        args = sorted(
            {
                classes[resolve(arg)]
                for eid, arg in phi.args.items()
                if eid in sccp.executable_edges
            }
        )
        return ("phi", phi.node, tuple(args))

    classes = {name: 0 for name in solved}
    rounds = 0
    while True:
        rounds += 1
        counter.tick("scvn_rounds")
        table: dict[tuple, int] = {}
        new: dict[str, int] = {}
        for name in solved:
            counter.tick("scvn_keys")
            new[name] = table.setdefault(key_of(name, classes), len(table))
        if new == classes or rounds > len(solved) + 2:
            classes = new
            break
        classes = new
    return SCVNResult({name: classes[resolve(name)] for name in names}, rounds)
