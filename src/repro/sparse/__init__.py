"""Parameterized sparse dataflow framework (live-range splitting).

Tavares, Boissinot, Pereira & Rastello ("Parameterized Construction of
Program Representations for Sparse Dataflow Analyses", arXiv:1403.5952)
observe that def-use chains, SSA and SSI are all the same construction:
*split* the live range of each variable at every program point where the
analysis learns something new about it, then propagate facts sparsely
along the def-use edges of the split representation instead of densely
over every (edge, variable) pair of the CFG.

This package is that construction for the reproduction's CFGs:

* :mod:`repro.sparse.engine` -- the engine.  A client declares a
  :class:`~repro.sparse.engine.SplittingStrategy` (which variables gain
  information at which statements and along which branch edges); the
  engine places phi-joins on iterated dominance frontiers and
  sigma-splits on the requested edges, renames with the classic
  dominator-tree walk, and exposes a :func:`~repro.sparse.engine.solve`
  fixpoint over the sparse propagation graph.
* :mod:`repro.sparse.interval` -- a finite "ladder" interval lattice
  (deterministic least fixpoints without widening).
* :mod:`repro.sparse.range_analysis` -- interval range analysis with
  branch refinement (sigma splitting), plus a dense reference twin.
* :mod:`repro.sparse.taint` -- forward taint tracking (sources: entry
  reads; sinks: prints/stores), plus a dense reference twin.
* :mod:`repro.sparse.scvn` -- sparse conditional value numbering
  layered on SCCP's executable-edge information.

The existing representations are thin instantiations: ``ssa/cytron.py``
and ``defuse/chains.py`` both delegate to this engine (their dense
bodies survive as ``*_reference`` oracles), and the DFG's value edges
project out of the no-split instantiation (``tests/test_sparse_framework
.py`` pins that equivalence).
"""

from repro.sparse.engine import (
    DefUseStrategy,
    SparseForm,
    SplittingStrategy,
    SSAStrategy,
    build_sparse_form,
    solve,
    sparse_chain_items,
)
from repro.sparse.interval import Interval, IntervalLattice
from repro.sparse.range_analysis import (
    RangeResult,
    range_analysis,
    range_analysis_reference,
)
from repro.sparse.scvn import SCVNResult, sparse_value_numbering
from repro.sparse.taint import TaintResult, taint_analysis, taint_analysis_reference

__all__ = [
    "DefUseStrategy",
    "Interval",
    "IntervalLattice",
    "RangeResult",
    "SCVNResult",
    "SSAStrategy",
    "SparseForm",
    "SplittingStrategy",
    "TaintResult",
    "build_sparse_form",
    "range_analysis",
    "range_analysis_reference",
    "solve",
    "sparse_chain_items",
    "sparse_value_numbering",
    "taint_analysis",
    "taint_analysis_reference",
]
