"""Forward taint tracking: the engine's simplest non-SSA client.

Sources are *entry values*: the values variables hold before the
program runs (externally controlled, hence untrusted).  By default
every variable's entry value is a source; passing ``source_nodes``
restricts sources to the variables whose entry value is actually read
inside that statement set (the "variables first read inside a chosen
region" notion from the issue).  Taint propagates through assignments
(any tainted operand taints the target; literals are clean) and joins
by disjunction at merges.  Sinks are the observable statements:
``print`` and array stores (``a[i] := v``, encoded as ``a :=
update(a, i, v)``).

The lattice is two-point (clean < tainted), the strategy never splits,
and the dense reference twin (:func:`taint_analysis_reference`)
iterates tainted-variable *sets* per CFG edge; the two agree at every
use site and sink across the corpus.  Lint rule R011 reports tainted
prints from the sparse client, verified against the dense witness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cfg.graph import CFG, NodeKind
from repro.lang.ast_nodes import Update, expr_vars
from repro.sparse.engine import (
    SplittingStrategy,
    build_sparse_form,
    solve,
    sparse_chain_items,
)
from repro.util.counters import WorkCounter


class TaintStrategy(SplittingStrategy):
    """Defs at assignments, no splitting: taint needs only SSA shape."""


class _TaintClient:
    bottom = False

    def __init__(self, sources: frozenset[str]) -> None:
        self.sources = sources

    def entry_value(self, graph: CFG, var: str) -> bool:
        return var in self.sources

    def join(self, a: bool, b: bool) -> bool:
        return a or b

    def transfer_def(self, graph: CFG, node, var: str, inputs) -> bool:
        assert node.expr is not None
        return any(
            inputs.get(v, False) for v in sorted(expr_vars(node.expr))
        )


def is_sink(node) -> bool:
    """Print statements and array stores observe values."""
    if node.kind is NodeKind.PRINT:
        return True
    return node.kind is NodeKind.ASSIGN and isinstance(node.expr, Update)


@dataclass
class TaintResult:
    """Per-use taint plus the sink report.

    * ``use_taint[(node, var)]`` -- whether the use may see a source;
    * ``sinks[node]`` -- for each reachable sink, whether any operand
      is tainted;
    * ``sources`` -- the variables whose entry values are tainted.
    """

    graph: CFG
    sources: frozenset[str]
    use_taint: dict[tuple[int, str], bool] = field(default_factory=dict)
    sinks: dict[int, bool] = field(default_factory=dict)

    def facts(self):
        return (
            tuple(sorted(self.sources)),
            sorted(self.use_taint.items()),
            sorted(self.sinks.items()),
        )


def _resolve_sources(
    graph: CFG, source_nodes, form=None
) -> frozenset[str]:
    if source_nodes is None:
        return graph.variables()
    if form is None:
        from repro.sparse.engine import DefUseStrategy

        form = build_sparse_form(graph, DefUseStrategy())
    chosen = set(source_nodes)
    sources = {
        var
        for var, def_node, use_node in sparse_chain_items(form)
        if use_node in chosen and def_node == graph.start
    }
    return frozenset(sources)


def taint_analysis(
    graph: CFG,
    source_nodes=None,
    counter: WorkCounter | None = None,
) -> TaintResult:
    """Sparse forward taint tracking."""
    counter = counter if counter is not None else WorkCounter()
    form = build_sparse_form(graph, TaintStrategy(), counter=counter)
    sources = _resolve_sources(graph, source_nodes, form)
    values = solve(form, _TaintClient(sources), counter=counter)

    use_taint = {key: values[name] for key, name in form.use_names.items()}
    sinks: dict[int, bool] = {}
    for nid in sorted(graph.reachable_from_start()):
        node = graph.node(nid)
        if is_sink(node):
            sinks[nid] = any(
                use_taint[(nid, var)] for var in sorted(node.uses())
            )
    return TaintResult(graph, sources, use_taint, sinks)


def taint_analysis_reference(
    graph: CFG,
    source_nodes=None,
    counter: WorkCounter | None = None,
) -> TaintResult:
    """Dense reference twin: tainted-variable sets per CFG edge."""
    counter = counter if counter is not None else WorkCounter()
    sources = _resolve_sources(graph, source_nodes)
    edge_taint: dict[int, frozenset[str]] = {
        eid: frozenset() for eid in graph.edges
    }

    def in_set(nid: int) -> frozenset[str]:
        if nid == graph.start:
            return frozenset(sources)
        result: frozenset[str] = frozenset()
        for edge in graph.in_edges(nid):
            result |= edge_taint[edge.id]
        return result

    work = deque(sorted(graph.nodes))
    pending = set(work)
    while work:
        nid = work.popleft()
        pending.discard(nid)
        counter.tick("dense_taint_visits", max(1, len(graph.variables())))
        node = graph.node(nid)
        tainted = in_set(nid)
        if node.kind is NodeKind.ASSIGN:
            if expr_vars(node.expr) & tainted:
                tainted |= {node.target}
            else:
                tainted -= {node.target}
        for edge in graph.out_edges(nid):
            if tainted != edge_taint[edge.id]:
                edge_taint[edge.id] = tainted
                if edge.dst not in pending:
                    pending.add(edge.dst)
                    work.append(edge.dst)

    use_taint: dict[tuple[int, str], bool] = {}
    sinks: dict[int, bool] = {}
    for nid in sorted(graph.reachable_from_start()):
        node = graph.node(nid)
        tainted = in_set(nid)
        for var in sorted(node.uses()):
            use_taint[(nid, var)] = var in tainted
        if is_sink(node):
            sinks[nid] = any(
                use_taint[(nid, var)] for var in sorted(node.uses())
            )
    return TaintResult(graph, sources, use_taint, sinks)
