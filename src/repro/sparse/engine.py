"""The parameterized sparse dataflow engine (arXiv:1403.5952).

A client hands the engine a :class:`SplittingStrategy` -- which
variables it *defines* information about at each statement and which it
*refines* along each branch edge -- and the engine builds the
live-range-split representation:

* phi-joins on the iterated dominance frontier of each variable's
  information sites (via the existing machinery in
  :mod:`repro.graphs.frontier`),
* sigma-splits on the requested branch edges (a fresh name per refined
  variable per edge),
* names assigned by the classic Cytron dominator-tree renaming walk.

With the no-split :class:`SSAStrategy` the construction *is* Cytron SSA
-- byte-identical, tick-for-tick, to the historical implementation that
now lives in ``repro.ssa.cytron.build_ssa_cytron_reference`` -- and
def-use chains are a projection of it (:func:`sparse_chain_items`).
Clients with real splitting (range analysis) get SSI-style refinement
for free.

:func:`solve` then runs the client's transfer functions to the least
fixpoint over the *sparse propagation graph* (name -> consumer sites)
instead of iterating every (CFG edge, variable) pair: each site
re-evaluates only when one of its input names actually changes, which is
the whole point of sparseness and what the ``sparse-clients`` bench
workload measures.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.cfg.graph import CFG, Node, NodeKind
from repro.graphs.dominance import cfg_dominators
from repro.graphs.frontier import dominance_frontiers, iterated_frontier
from repro.ssa.ssagraph import Phi, SSAForm
from repro.util.counters import WorkCounter


class SplittingStrategy:
    """Where an analysis gains information (defaults model plain SSA).

    Subclasses override:

    * :meth:`variables` -- the variables the client tracks;
    * :meth:`defs_at` -- variables (re)defined by a statement;
    * :meth:`uses_at` -- variables whose value the statement consumes;
    * :meth:`splits_on` -- variables *refined* along a branch edge
      (sigma splitting; the SSI half of the construction).
    """

    def variables(self, graph: CFG):
        return graph.variables()

    def defs_at(self, graph: CFG, node: Node):
        if node.kind is NodeKind.ASSIGN:
            return (node.target,)
        return ()

    def uses_at(self, graph: CFG, node: Node):
        return node.uses()

    def splits_on(self, graph: CFG, edge):
        return ()


class SSAStrategy(SplittingStrategy):
    """Defs at assignments, no edge splitting: classic (pruned) SSA."""


class DefUseStrategy(SplittingStrategy):
    """Identical sites to SSA; chains project out of the built form."""


@dataclass
class SparseForm:
    """The live-range-split overlay: SSA plus sigma names on edges.

    * ``def_names[(node, var)]`` -- name defined by a statement site;
    * ``use_names[(node, var)]`` -- name consumed by a use site;
    * ``phis[node][var]`` -- phi-joins at merges;
    * ``sigmas[(edge, var)]`` -- ``(fresh, input)`` names for an edge
      refinement;
    * ``entry_names[var]`` -- the variable's value at ``start``.
    """

    graph: CFG
    def_names: dict[tuple[int, str], str] = field(default_factory=dict)
    use_names: dict[tuple[int, str], str] = field(default_factory=dict)
    phis: dict[int, dict[str, Phi]] = field(default_factory=dict)
    sigmas: dict[tuple[int, str], tuple[str, str]] = field(
        default_factory=dict
    )
    entry_names: dict[str, str] = field(default_factory=dict)

    def all_phis(self) -> list[Phi]:
        return [p for by_var in self.phis.values() for p in by_var.values()]

    def phi_placement(self) -> frozenset[tuple[int, str]]:
        return frozenset(
            (nid, var) for nid, by_var in self.phis.items() for var in by_var
        )

    def definers(self) -> dict[str, tuple[str, object]]:
        """name -> ("assign"|"phi"|"sigma"|"entry", site)."""
        where: dict[str, tuple[str, object]] = {}
        for (nid, _var), name in self.def_names.items():
            where[name] = ("assign", nid)
        for phi in self.all_phis():
            where[phi.result] = ("phi", phi.node)
        for (eid, _var), (fresh, _src) in self.sigmas.items():
            where[fresh] = ("sigma", eid)
        for name in self.entry_names.values():
            where[name] = ("entry", self.graph.start)
        return where

    def size(self) -> int:
        phi_args = sum(len(p.args) for p in self.all_phis())
        return (
            len(self.use_names)
            + phi_args
            + len(self.all_phis())
            + len(self.sigmas)
        )

    def to_ssa(self) -> SSAForm:
        """Project the split-free part onto the classic SSA overlay."""
        ssa = SSAForm(self.graph)
        ssa.use_names = dict(self.use_names)
        ssa.phis = self.phis
        ssa.entry_names = dict(self.entry_names)
        for (nid, _var), name in self.def_names.items():
            ssa.def_names[nid] = name
        return ssa

    def validate(self) -> None:
        """Every used name has a definer; phi args cover in-edges."""
        defined = self.definers()
        for key, name in self.use_names.items():
            if name not in defined:
                raise ValueError(
                    f"use {key} of undefined sparse name {name!r}"
                )
        for phi in self.all_phis():
            in_edges = {e.id for e in self.graph.in_edges(phi.node)}
            if set(phi.args) != in_edges:
                raise ValueError(
                    f"phi at {phi.node} args {set(phi.args)} != in-edges "
                    f"{in_edges}"
                )
            for name in phi.args.values():
                if name not in defined:
                    raise ValueError(
                        f"phi argument uses undefined name {name!r}"
                    )
        for (eid, _var), (_fresh, src) in self.sigmas.items():
            if src not in defined:
                raise ValueError(
                    f"sigma on edge {eid} splits undefined name {src!r}"
                )


def build_sparse_form(
    graph: CFG,
    strategy: SplittingStrategy,
    counter: WorkCounter | None = None,
    prune_live: dict | None = None,
) -> SparseForm:
    """Build the live-range-split representation for ``strategy``.

    ``prune_live`` (a per-edge live-variable map) restricts phi placement
    to live variables -- pruned SSA, used by the Cytron wrapper.
    """
    counter = counter if counter is not None else WorkCounter()
    dom = cfg_dominators(graph)
    frontier = dominance_frontiers(dom, graph.preds)
    counter.tick("frontier_entries", sum(len(s) for s in frontier.values()))

    form = SparseForm(graph)
    def_sites: dict[str, set[int]] = defaultdict(set)
    for node in graph.nodes.values():
        for var in strategy.defs_at(graph, node):
            def_sites[var].add(node.id)
    for var in sorted(strategy.variables(graph)):
        def_sites[var].add(graph.start)

    # -- sigma sites --------------------------------------------------------
    # splits[eid] lists the variables refined along edge eid; a split is
    # an information site at the edge's destination for phi placement,
    # and a merge destination needs the phi even outside the frontier
    # (its other in-edges carry the unrefined name).
    splits: dict[int, tuple[str, ...]] = {}
    split_sites: dict[str, set[int]] = defaultdict(set)
    forced: dict[str, set[int]] = defaultdict(set)
    for eid in sorted(graph.edges):
        edge = graph.edge(eid)
        vars_ = tuple(sorted(set(strategy.splits_on(graph, edge))))
        if not vars_:
            continue
        splits[eid] = vars_
        for var in vars_:
            split_sites[var].add(edge.dst)
            if graph.node(edge.dst).kind is NodeKind.MERGE:
                forced[var].add(edge.dst)

    # -- phi placement ------------------------------------------------------
    for var, sites in def_sites.items():
        seeds = sites | split_sites.get(var, set())
        placed = iterated_frontier(frontier, seeds)
        for nid in placed:
            counter.tick("phi_candidates")
            if graph.node(nid).kind is not NodeKind.MERGE:
                # All joins are merges in normalized form; anything else
                # (e.g. END with one in-edge) cannot need a phi.
                continue
            if prune_live is not None:
                out_edge = graph.out_edge(nid)
                if var not in prune_live[out_edge.id]:
                    continue  # pruned: dead here, no phi
            form.phis.setdefault(nid, {})[var] = Phi(var, nid, result="")
        for nid in sorted(forced.get(var, set()) - placed):
            counter.tick("phi_candidates")
            if var not in form.phis.get(nid, {}):
                form.phis.setdefault(nid, {})[var] = Phi(var, nid, result="")

    # -- renaming -----------------------------------------------------------
    stacks: dict[str, list[str]] = defaultdict(list)
    version: dict[str, int] = defaultdict(int)

    def fresh(var: str) -> str:
        name = f"{var}.{version[var]}"
        version[var] += 1
        return name

    for var in sorted(strategy.variables(graph)):
        name = fresh(var)
        form.entry_names[var] = name
        stacks[var].append(name)

    dom_children = {nid: [] for nid in graph.nodes}
    for nid in graph.nodes:
        parent = dom.idom_of(nid) if nid != graph.start else None
        if parent is not None:
            dom_children[parent].append(nid)

    # Sigma names pushed at the entry of a single-predecessor successor
    # (its unique in-edge was split; the successor is dominated by the
    # branch, so the refined name scopes over exactly its subtree).
    sigma_entry: dict[int, list[tuple[str, str]]] = defaultdict(list)

    # Explicit-stack walk of the dominator tree: a frame with
    # ``pushed is None`` is a node entry, one with the list is its exit
    # (pop the names its subtree no longer sees).  No recursion, so
    # arbitrarily deep graphs rename without touching the interpreter's
    # recursion limit.
    stack: list[tuple[int, list[str] | None]] = [(graph.start, None)]
    while stack:
        nid, pushed = stack.pop()
        if pushed is not None:
            for var in reversed(pushed):
                stacks[var].pop()
            continue
        node = graph.node(nid)
        pushed = []
        for var, name in sigma_entry.get(nid, ()):
            stacks[var].append(name)
            pushed.append(var)
        if nid in form.phis:
            for var, phi in form.phis[nid].items():
                phi.result = fresh(var)
                stacks[var].append(phi.result)
                pushed.append(var)
        for var in sorted(strategy.uses_at(graph, node)):
            counter.tick("use_renames")
            form.use_names[(nid, var)] = stacks[var][-1]
        for var in strategy.defs_at(graph, node):
            name = fresh(var)
            form.def_names[(nid, var)] = name
            stacks[var].append(name)
            pushed.append(var)
        for edge in graph.out_edges(nid):
            succ = edge.dst
            for var in splits.get(edge.id, ()):
                counter.tick("sigma_splits")
                name = fresh(var)
                form.sigmas[(edge.id, var)] = (name, stacks[var][-1])
                if graph.node(succ).kind is not NodeKind.MERGE:
                    sigma_entry[succ].append((var, name))
            if succ in form.phis:
                for var, phi in form.phis[succ].items():
                    sigma = form.sigmas.get((edge.id, var))
                    phi.args[edge.id] = (
                        sigma[0] if sigma is not None else stacks[var][-1]
                    )
        stack.append((nid, pushed))
        for child in reversed(dom_children[nid]):
            stack.append((child, None))

    form.validate()
    return form


# ---------------------------------------------------------------------------
# The sparse fixpoint solver.


def _site_inputs(form: SparseForm, values: dict, node: Node) -> dict:
    inputs = {}
    for var in sorted(node.uses()):
        name = form.use_names.get((node.id, var))
        if name is not None:
            inputs[var] = values[name]
    return inputs


def solve(
    form: SparseForm,
    client,
    counter: WorkCounter | None = None,
) -> dict[str, object]:
    """Run ``client``'s transfers to the least fixpoint over ``form``.

    The client supplies ``bottom``, ``entry_value(graph, var)``,
    ``transfer_def(graph, node, var, inputs)``, ``join(a, b)`` and
    (for splitting clients) ``transfer_sigma(graph, edge, var, value,
    inputs)``; transfers must be monotone over a finite lattice.
    Returns the final ``name -> value`` map.
    """
    counter = counter if counter is not None else WorkCounter()
    graph = form.graph
    values: dict[str, object] = {}
    for name in form.definers():
        values[name] = client.bottom
    for var, name in form.entry_names.items():
        values[name] = client.entry_value(graph, var)

    # Sites in deterministic program order, plus the name each defines
    # and the names it consumes (the sparse propagation graph).
    sites: list[tuple] = []
    defined_by: dict[tuple, str] = {}
    consumers: dict[str, list[tuple]] = defaultdict(list)
    defs_by_node: dict[int, list[str]] = defaultdict(list)
    for (nid, var) in form.def_names:
        defs_by_node[nid].append(var)
    for nid in graph.nodes:
        node = graph.node(nid)
        for var, phi in form.phis.get(nid, {}).items():
            site = ("phi", nid, var)
            sites.append(site)
            defined_by[site] = phi.result
            for arg in phi.args.values():
                consumers[arg].append(site)
        for var in defs_by_node.get(nid, ()):
            site = ("def", nid, var)
            sites.append(site)
            defined_by[site] = form.def_names[(nid, var)]
            for uvar in sorted(node.uses()):
                use = form.use_names.get((nid, uvar))
                if use is not None:
                    consumers[use].append(site)
    for (eid, var), (fresh_name, src_name) in sorted(form.sigmas.items()):
        site = ("sigma", eid, var)
        sites.append(site)
        defined_by[site] = fresh_name
        consumers[src_name].append(site)
        src_node = graph.node(graph.edge(eid).src)
        for uvar in sorted(src_node.uses()):
            use = form.use_names.get((src_node.id, uvar))
            if use is not None and use != src_name:
                consumers[use].append(site)

    def evaluate(site: tuple):
        kind, a, b = site
        if kind == "phi":
            phi = form.phis[a][b]
            value = client.bottom
            for eid in sorted(phi.args):
                value = client.join(value, values[phi.args[eid]])
            return value
        if kind == "def":
            node = graph.node(a)
            return client.transfer_def(
                graph, node, b, _site_inputs(form, values, node)
            )
        edge = graph.edge(a)
        _fresh, src_name = form.sigmas[(a, b)]
        src_node = graph.node(edge.src)
        return client.transfer_sigma(
            graph, edge, b, values[src_name],
            _site_inputs(form, values, src_node),
        )

    work = deque(sites)
    pending = set(sites)
    while work:
        site = work.popleft()
        pending.discard(site)
        counter.tick("sparse_visits")
        new = evaluate(site)
        name = defined_by[site]
        if new != values[name]:
            values[name] = new
            for consumer in consumers.get(name, ()):
                if consumer not in pending:
                    pending.add(consumer)
                    work.append(consumer)
    return values


def value_at_use(form: SparseForm, values: dict, nid: int, var: str):
    """The solved value the use site ``(nid, var)`` observes."""
    return values[form.use_names[(nid, var)]]


# ---------------------------------------------------------------------------
# Def-use chains as a projection of the no-split form.


def sparse_chain_items(form: SparseForm) -> list[tuple[str, int, int]]:
    """``(var, def_node, use_node)`` triples, canonically sorted.

    The *origins* of a name -- the assignment nodes (or ``start``) whose
    value it may carry -- are the least fixpoint of origin sets over the
    name graph (phi results union their arguments, sigmas pass through),
    which is exactly the reaching-definitions relation restricted to
    uses: the classic equivalence of def-use chains and SSA.
    """
    origins: dict[str, set[int]] = defaultdict(set)
    feeds: dict[str, list[str]] = defaultdict(list)
    for (nid, _var), name in form.def_names.items():
        origins[name].add(nid)
    for name in form.entry_names.values():
        origins[name].add(form.graph.start)
    for phi in form.all_phis():
        for arg in phi.args.values():
            feeds[arg].append(phi.result)
    for (_eid, _var), (fresh_name, src_name) in form.sigmas.items():
        feeds[src_name].append(fresh_name)

    work = deque(sorted(origins))
    pending = set(work)
    while work:
        name = work.popleft()
        pending.discard(name)
        for out in feeds.get(name, ()):
            if not origins[name] <= origins[out]:
                origins[out] |= origins[name]
                if out not in pending:
                    pending.add(out)
                    work.append(out)

    items = []
    for (nid, var), name in form.use_names.items():
        for def_node in origins.get(name, ()):
            items.append((var, def_node, nid))
    items.sort(key=lambda t: (t[2], t[0], t[1]))
    return items
