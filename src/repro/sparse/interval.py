"""A finite "ladder" interval lattice for deterministic range analysis.

Classic interval analysis needs widening to terminate, and widening
makes the result depend on iteration order -- unacceptable here, where
the sparse client must be *byte-identical* to its dense reference twin
and to itself under ``PYTHONHASHSEED`` permutation.  Instead we make the
lattice finite: interval bounds produced by arithmetic are snapped
*outward* to a ladder of landmark integers (every integer of magnitude
<= 256, then powers of two up to 2**40, then infinity).  Transfer
functions stay monotone, the value set is finite, and the unique least
fixpoint is reached by any fair iteration order -- no widening, no
order sensitivity, no divergence on ``while (1) x := x + 1``.

Literals and branch refinements keep their exact program constants
(only *derived* arithmetic snaps), so ``if (x == 1000)`` still refines
``x`` to ``[1000, 1000]``; the constant pool of a program is finite, so
finiteness is preserved.

Bounds are Python ints, with ``math.inf`` / ``-math.inf`` for the
unbounded ends.  The empty interval (bottom: "no execution reaches
this") is canonically ``Interval(1, 0)``.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

INF = math.inf

_LADDER = tuple(
    sorted(
        set(range(-256, 257))
        | {1 << k for k in range(9, 41)}
        | {-(1 << k) for k in range(9, 41)}
    )
)


def snap_lo(value):
    """Largest ladder element <= ``value`` (or ``-inf``)."""
    if value == -INF:
        return -INF
    if value == INF:  # pragma: no cover - lo bounds never reach +inf
        return _LADDER[-1]
    i = bisect_right(_LADDER, value)
    return -INF if i == 0 else _LADDER[i - 1]


def snap_hi(value):
    """Smallest ladder element >= ``value`` (or ``+inf``)."""
    if value == INF:
        return INF
    if value == -INF:  # pragma: no cover - hi bounds never reach -inf
        return _LADDER[0]
    i = bisect_left(_LADDER, value)
    return INF if i == len(_LADDER) else _LADDER[i]


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``lo > hi`` means empty."""

    lo: object
    hi: object

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi and not isinstance(self.lo, float)

    def contains(self, value) -> bool:
        return self.lo <= value <= self.hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty:
            return "Interval(empty)"
        return f"Interval({self.lo}, {self.hi})"


EMPTY = Interval(1, 0)
TOP = Interval(-INF, INF)
_BOOL = Interval(0, 1)


def const(value: int) -> Interval:
    """The exact singleton interval for a program literal."""
    return Interval(value, value)


def join(a: Interval, b: Interval) -> Interval:
    """Least upper bound: the convex hull (empty is the identity)."""
    if a.is_empty:
        return b
    if b.is_empty:
        return a
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi))


def meet(a: Interval, b: Interval) -> Interval:
    """Intersection; used by branch refinement (kept exact, not snapped)."""
    lo = max(a.lo, b.lo)
    hi = min(a.hi, b.hi)
    return EMPTY if lo > hi else Interval(lo, hi)


def snap(iv: Interval) -> Interval:
    """Snap both bounds outward to the ladder (monotone, idempotent)."""
    if iv.is_empty:
        return EMPTY
    return Interval(snap_lo(iv.lo), snap_hi(iv.hi))


def truth(iv: Interval):
    """Three-valued truthiness: True, False, or None (unknown)."""
    if iv.is_empty:
        return None
    if iv.lo == 0 and iv.hi == 0:
        return False
    if not iv.contains(0):
        return True
    return None


def _from_truth(t) -> Interval:
    if t is True:
        return Interval(1, 1)
    if t is False:
        return Interval(0, 0)
    return _BOOL


def _mul_corner(a, b):
    if a == 0 or b == 0:
        return 0
    if a in (INF, -INF) or b in (INF, -INF):
        return INF if (a > 0) == (b > 0) else -INF
    return a * b


def _mul(a: Interval, b: Interval) -> Interval:
    corners = [
        _mul_corner(a.lo, b.lo),
        _mul_corner(a.lo, b.hi),
        _mul_corner(a.hi, b.lo),
        _mul_corner(a.hi, b.hi),
    ]
    return Interval(min(corners), max(corners))


def _floordiv(a: Interval, b: Interval) -> Interval:
    # Conservative: only finite operands with a zero-free divisor get a
    # bounded answer (division by zero traps in the interpreter, so any
    # result is sound for those executions).
    finite = not any(
        isinstance(v, float) for v in (a.lo, a.hi, b.lo, b.hi)
    )
    if not finite or b.contains(0):
        return TOP
    corners = [a.lo // b.lo, a.lo // b.hi, a.hi // b.lo, a.hi // b.hi]
    return Interval(min(corners), max(corners))


def _mod(a: Interval, b: Interval) -> Interval:
    # Python modulo takes the divisor's sign.
    if isinstance(b.lo, float) or isinstance(b.hi, float):
        return TOP
    if b.lo > 0:
        return Interval(0, b.hi - 1)
    if b.hi < 0:
        return Interval(b.lo + 1, 0)
    return TOP


def _compare(op: str, a: Interval, b: Interval) -> Interval:
    if op == "==":
        if meet(a, b).is_empty:
            return Interval(0, 0)
        if a.is_constant and b.is_constant and a.lo == b.lo:
            return Interval(1, 1)
        return _BOOL
    if op == "!=":
        inner = _compare("==", a, b)
        return unop("!", inner)
    if op == "<":
        if a.hi < b.lo:
            return Interval(1, 1)
        if a.lo >= b.hi:
            return Interval(0, 0)
        return _BOOL
    if op == "<=":
        if a.hi <= b.lo:
            return Interval(1, 1)
        if a.lo > b.hi:
            return Interval(0, 0)
        return _BOOL
    if op == ">":
        return _compare("<", b, a)
    if op == ">=":
        return _compare("<=", b, a)
    raise ValueError(f"not a comparison: {op!r}")


def binop(op: str, a: Interval, b: Interval) -> Interval:
    """Sound abstract transfer for the interpreter's binary operators.

    Arithmetic results (``+ - * / %``) snap outward to the ladder;
    comparisons and logical connectives land in ``[0, 1]`` already.
    """
    if a.is_empty or b.is_empty:
        return EMPTY
    if op == "+":
        return snap(Interval(a.lo + b.lo, a.hi + b.hi))
    if op == "-":
        return snap(Interval(a.lo - b.hi, a.hi - b.lo))
    if op == "*":
        return snap(_mul(a, b))
    if op == "/":
        return snap(_floordiv(a, b))
    if op == "%":
        return snap(_mod(a, b))
    if op == "&&":
        ta, tb = truth(a), truth(b)
        if ta is False or tb is False:
            return Interval(0, 0)
        if ta is True and tb is True:
            return Interval(1, 1)
        return _BOOL
    if op == "||":
        ta, tb = truth(a), truth(b)
        if ta is True or tb is True:
            return Interval(1, 1)
        if ta is False and tb is False:
            return Interval(0, 0)
        return _BOOL
    return _compare(op, a, b)


def unop(op: str, a: Interval) -> Interval:
    """Sound abstract transfer for unary ``-`` and ``!``."""
    if a.is_empty:
        return EMPTY
    if op == "-":
        return snap(Interval(-a.hi, -a.lo))
    if op == "!":
        t = truth(a)
        return _from_truth(None if t is None else not t)
    raise ValueError(f"unknown unary operator: {op!r}")


class IntervalLattice:
    """Namespace handle bundling the lattice ops for client code."""

    Interval = Interval
    EMPTY = EMPTY
    TOP = TOP
    const = staticmethod(const)
    join = staticmethod(join)
    meet = staticmethod(meet)
    snap = staticmethod(snap)
    truth = staticmethod(truth)
    binop = staticmethod(binop)
    unop = staticmethod(unop)
