"""Interval range analysis: the engine's *splitting* client.

This is the client the sigma half of the engine exists for: every
variable mentioned in a switch predicate gains information along each
branch edge (``x <= 4`` on the false edge of ``x > 4``), so the
splitting strategy names those (edge, variable) pairs and the engine
gives each refined live range its own sparse name.

The lattice is the finite ladder-interval lattice of
:mod:`repro.sparse.interval` -- deterministic least fixpoints, no
widening -- so the sparse result is *equal* to the dense per-edge
reference (:func:`range_analysis_reference`) at every use site, switch
predicate, and infeasible-edge verdict, which
``tests/test_sparse_framework.py`` and the ``sparse-vs-dense`` fuzz
oracle pin across the corpus.

Products: per-use intervals, per-switch predicate intervals, and the
set of *range-dead* edges (branch arms provably never taken) that lint
rules R012 and R013 report on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cfg.graph import CFG, NodeKind
from repro.lang.ast_nodes import BinOp, Expr, IntLit, UnOp, Var
from repro.sparse import interval as iv
from repro.sparse.engine import (
    SparseForm,
    SplittingStrategy,
    build_sparse_form,
    solve,
)
from repro.sparse.interval import Interval
from repro.util.counters import WorkCounter

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
_COMPARISONS = frozenset(_FLIP)


def eval_interval(expr: Expr, env) -> Interval:
    """Sound interval for ``expr`` under variable intervals ``env``."""
    if isinstance(expr, IntLit):
        return iv.const(expr.value)
    if isinstance(expr, Var):
        return env.get(expr.name, iv.TOP)
    if isinstance(expr, UnOp):
        return iv.unop(expr.op, eval_interval(expr.operand, env))
    if isinstance(expr, BinOp):
        return iv.binop(
            expr.op,
            eval_interval(expr.left, env),
            eval_interval(expr.right, env),
        )
    # Index / Update: array cells are untracked, but an empty operand
    # still means "unreachable here".
    for var in sorted(expr_vars_of(expr)):
        if env.get(var, iv.TOP).is_empty:
            return iv.EMPTY
    return iv.TOP


def expr_vars_of(expr: Expr):
    from repro.lang.ast_nodes import expr_vars

    return expr_vars(expr)


def _exclude_zero(value: Interval) -> Interval:
    """Trim a zero endpoint (``v != 0``); interior zeros are untrimmable."""
    if value.is_empty:
        return value
    lo, hi = value.lo, value.hi
    if lo == 0 == hi:
        return iv.EMPTY
    if lo == 0:
        lo = 1
    if hi == 0:
        hi = -1
    return Interval(lo, hi)


def _exclude_const(value: Interval, c: int) -> Interval:
    """Trim endpoint ``c`` (``v != c``)."""
    if value.is_empty:
        return value
    lo, hi = value.lo, value.hi
    if lo == c == hi:
        return iv.EMPTY
    if lo == c:
        lo = c + 1
    if hi == c:
        hi = c - 1
    return Interval(lo, hi)


def _compare_constraint(op: str, other: Interval) -> Interval | None:
    """The interval ``v`` must lie in for ``v op other`` to hold."""
    if other.is_empty:
        return iv.EMPTY
    if op == "<":
        return Interval(-iv.INF, other.hi - 1)
    if op == "<=":
        return Interval(-iv.INF, other.hi)
    if op == ">":
        return Interval(other.lo + 1, iv.INF)
    if op == ">=":
        return Interval(other.lo, iv.INF)
    if op == "==":
        return Interval(other.lo, other.hi)
    return None  # != carries no interval constraint (handled separately)


def refine_env(pred: Expr, taken: bool, env) -> dict[str, Interval]:
    """Refined intervals for variables constrained by branching on
    ``pred`` with outcome ``taken`` (monotone in ``env``)."""
    out: dict[str, Interval] = {}

    def current(var: str) -> Interval:
        return out.get(var, env.get(var, iv.TOP))

    def narrow(var: str, constraint: Interval) -> None:
        out[var] = iv.meet(current(var), constraint)

    def walk(expr: Expr, holds: bool) -> None:
        if isinstance(expr, Var):
            if holds:
                out[expr.name] = _exclude_zero(current(expr.name))
            else:
                narrow(expr.name, Interval(0, 0))
            return
        if isinstance(expr, UnOp) and expr.op == "!":
            walk(expr.operand, not holds)
            return
        if not isinstance(expr, BinOp):
            return
        if expr.op == "&&" and holds:
            walk(expr.left, True)
            walk(expr.right, True)
            return
        if expr.op == "||" and not holds:
            walk(expr.left, False)
            walk(expr.right, False)
            return
        if expr.op not in _COMPARISONS:
            return
        op = expr.op
        if not holds:
            # !(a < b) == a >= b; !(a == b) == a != b; etc.
            op = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                  "==": "!=", "!=": "=="}[op]
        for var_side, other_side, vop in (
            (expr.left, expr.right, op),
            (expr.right, expr.left, _FLIP[op]),
        ):
            if not isinstance(var_side, Var):
                continue
            other = eval_interval(other_side, env)
            if vop == "!=":
                if other.is_constant:
                    out[var_side.name] = _exclude_const(
                        current(var_side.name), other.lo
                    )
                continue
            constraint = _compare_constraint(vop, other)
            if constraint is not None:
                narrow(var_side.name, constraint)

    walk(pred, taken)
    return out


class RangeStrategy(SplittingStrategy):
    """Split every predicate variable along each switch out-edge."""

    def splits_on(self, graph: CFG, edge):
        node = graph.node(edge.src)
        if node.kind is NodeKind.SWITCH:
            assert node.expr is not None
            return sorted(expr_vars_of(node.expr))
        return ()


class _RangeClient:
    bottom = iv.EMPTY

    def entry_value(self, graph: CFG, var: str) -> Interval:
        return iv.TOP

    def join(self, a: Interval, b: Interval) -> Interval:
        return iv.join(a, b)

    def transfer_def(self, graph: CFG, node, var: str, inputs) -> Interval:
        assert node.expr is not None
        return eval_interval(node.expr, inputs)

    def transfer_sigma(self, graph: CFG, edge, var, value, inputs) -> Interval:
        node = graph.node(edge.src)
        assert node.expr is not None
        refined = refine_env(node.expr, edge.label == "T", inputs)
        constraint = refined.get(var)
        if constraint is None:
            return value
        return iv.meet(value, constraint)


@dataclass
class RangeResult:
    """Solved ranges plus the branch facts the lint rules consume.

    * ``use_values[(node, var)]`` -- interval observed by a use site;
    * ``switch_values[node]`` -- predicate interval at each reachable
      switch;
    * ``dead_edges`` -- out-edges of switches provably never taken
      (constant predicate, or a refinement that is empty).
    """

    graph: CFG
    use_values: dict[tuple[int, str], Interval] = field(default_factory=dict)
    switch_values: dict[int, Interval] = field(default_factory=dict)
    dead_edges: frozenset[int] = frozenset()
    form: SparseForm | None = None

    def facts(self):
        """The order-insensitive comparison surface (reference twin and
        fallback comparator both compare this)."""
        return (
            sorted(self.use_values.items()),
            sorted(self.switch_values.items()),
            tuple(sorted(self.dead_edges)),
        )


def _dead_switch_edges(graph, switch_values, sigma_empty) -> frozenset[int]:
    dead: set[int] = set()
    for nid, pred in sorted(switch_values.items()):
        verdict = iv.truth(pred)
        for edge in graph.out_edges(nid):
            taken = edge.label == "T"
            if pred.is_empty:
                dead.add(edge.id)
            elif verdict is not None and verdict != taken:
                dead.add(edge.id)
            elif sigma_empty(edge):
                dead.add(edge.id)
    return frozenset(dead)


def range_analysis(
    graph: CFG, counter: WorkCounter | None = None
) -> RangeResult:
    """Sparse interval analysis with branch refinement."""
    counter = counter if counter is not None else WorkCounter()
    form = build_sparse_form(graph, RangeStrategy(), counter=counter)
    values = solve(form, _RangeClient(), counter=counter)

    use_values = {key: values[name] for key, name in form.use_names.items()}
    switch_values: dict[int, Interval] = {}
    reachable = graph.reachable_from_start()
    for nid in sorted(reachable):
        node = graph.node(nid)
        if node.kind is NodeKind.SWITCH:
            env = {
                var: use_values[(nid, var)] for var in sorted(node.uses())
            }
            switch_values[nid] = eval_interval(node.expr, env)

    def sigma_empty(edge) -> bool:
        return any(
            values[fresh].is_empty and not values[src].is_empty
            for (eid, _var), (fresh, src) in form.sigmas.items()
            if eid == edge.id
        )

    dead = _dead_switch_edges(graph, switch_values, sigma_empty)
    return RangeResult(graph, use_values, switch_values, dead, form)


def range_analysis_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> RangeResult:
    """Dense per-edge reference twin: one full variable environment per
    CFG edge, joined pointwise at nodes, refined on switch out-edges.
    Same lattice, same transfer functions, dense iteration -- the oracle
    the sparse client must equal."""
    counter = counter if counter is not None else WorkCounter()
    variables = sorted(graph.variables())
    empty_env = {var: iv.EMPTY for var in variables}
    entry_env = {var: iv.TOP for var in variables}
    edge_env: dict[int, dict[str, Interval]] = {
        eid: dict(empty_env) for eid in graph.edges
    }

    def in_env(nid: int) -> dict[str, Interval]:
        if nid == graph.start:
            return dict(entry_env)
        env = dict(empty_env)
        for edge in graph.in_edges(nid):
            incoming = edge_env[edge.id]
            for var in variables:
                env[var] = iv.join(env[var], incoming[var])
        return env

    work = deque(sorted(graph.nodes))
    pending = set(work)
    while work:
        nid = work.popleft()
        pending.discard(nid)
        counter.tick("dense_visits", max(1, len(variables)))
        node = graph.node(nid)
        env = in_env(nid)
        if node.kind is NodeKind.ASSIGN:
            env[node.target] = eval_interval(node.expr, env)
        for edge in graph.out_edges(nid):
            out = env
            if node.kind is NodeKind.SWITCH:
                refined = refine_env(node.expr, edge.label == "T", env)
                if refined:
                    out = dict(env)
                    out.update(refined)
            if out != edge_env[edge.id]:
                edge_env[edge.id] = dict(out)
                if edge.dst not in pending:
                    pending.add(edge.dst)
                    work.append(edge.dst)

    reachable = graph.reachable_from_start()
    use_values: dict[tuple[int, str], Interval] = {}
    switch_values: dict[int, Interval] = {}
    for nid in sorted(reachable):
        node = graph.node(nid)
        env = in_env(nid)
        for var in sorted(node.uses()):
            use_values[(nid, var)] = env[var]
        if node.kind is NodeKind.SWITCH:
            switch_values[nid] = eval_interval(node.expr, env)

    def sigma_empty(edge) -> bool:
        node = graph.node(edge.src)
        env = in_env(edge.src)
        refined = refine_env(node.expr, edge.label == "T", env)
        return any(
            value.is_empty and not env[var].is_empty
            for var, value in sorted(refined.items())
        )

    dead = _dead_switch_edges(graph, switch_values, sigma_empty)
    return RangeResult(graph, use_values, switch_values, dead, None)
