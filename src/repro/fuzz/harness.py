"""The seeded, byte-deterministic fuzzing sweep behind ``repro fuzz``.

The trial schedule is program-major: for each program of the suite, each
registered mutator runs once, with a per-trial RNG seed derived by
SHA-256 from ``(run seed, program label, mutator name)`` -- never from
Python's randomized hash or the wall clock.  ``--budget N`` keeps the
first ``N`` trials of that schedule, so a budgeted run is a prefix of
the full sweep, not a sample of it.

The ``repro.fuzz/1`` payload carries no timing fields: the same seed
produces the same bytes on every run and under every ``PYTHONHASHSEED``.
Its ``ok`` gate is the PR's acceptance contract:

* zero errors (no trial crashed outside its oracles);
* every preserving-mutant divergence minimized to a reproducer whose
  fingerprint is already checked in under the repro directory (novel or
  unminimized divergences fail);
* planted-miscompile recall exactly 1.0.
"""

from __future__ import annotations

import hashlib
import random
from typing import Mapping

from repro.fuzz.mutators import MUTATORS
from repro.fuzz.oracles import (
    DEFAULT_MAX_STEPS,
    DEFAULT_VALUE_LIMIT,
    ORACLES,
    run_oracles,
)
from repro.fuzz.triage import (
    divergence_fingerprint,
    load_known_fingerprints,
    triage_divergence,
    write_reproducer,
)

FUZZ_SCHEMA = "repro.fuzz/1"

#: Program families whose members may loop forever (structural analyses
#: only); the I/O oracle and the plant mutator skip them.
NON_EXECUTABLE_FAMILIES = frozenset(("jump",))

#: Default directory both for loading known fingerprints and for writing
#: new reproducers.
DEFAULT_REPRO_DIR = "tests/repros"


def derive_seed(seed: int, label: str) -> int:
    """A stable 64-bit trial seed, independent of hash randomization."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def probe_envs(
    fuzz_seed: int, variables: list[str], count: int = 3
) -> list[dict[str, int]]:
    """The empty environment plus ``count`` seeded ones (values -3..9)
    over ``variables`` -- mirrors the tier-1 differential suites, but
    derives from the trial seed so replay is exact."""
    rng = random.Random(derive_seed(fuzz_seed, "envs"))
    envs: list[dict[str, int]] = [{}]
    for _ in range(count):
        envs.append({name: rng.randint(-3, 9) for name in sorted(variables)})
    return envs


def trial_context(
    program, base_graph, fuzz_seed: int, mutator: str, family: str | None = None
) -> dict:
    """Everything a mutator and the oracles share for one trial."""
    return {
        "mutator": mutator,
        "family": family,
        "executable": family not in NON_EXECUTABLE_FAMILIES,
        "envs": probe_envs(fuzz_seed, sorted(base_graph.variables())),
        "max_steps": DEFAULT_MAX_STEPS,
        "value_limit": DEFAULT_VALUE_LIMIT,
    }


# -- suites -------------------------------------------------------------------


def fuzz_suite(smoke: bool = False) -> list[dict]:
    """The equivalence-corpus population plus array workloads ([BJP91]
    update encoding), as batch specs."""
    from repro.perf.batch import equivalence_suite

    suite = equivalence_suite(smoke=smoke)
    arrays = 2 if smoke else 8
    suite += [
        {"label": f"array-{seed}", "family": "array", "args": [seed]}
        for seed in range(arrays)
    ]
    return suite


def fuzz_suites() -> dict[str, list[dict]]:
    """Named suite registry (mirrors ``repro batch``'s suites)."""
    return {
        "default": fuzz_suite(smoke=False),
        "smoke": fuzz_suite(smoke=True),
    }


def resolve_fuzz_suite(name: str) -> list[dict]:
    suites = fuzz_suites()
    try:
        return suites[name]
    except KeyError:
        from repro.robust.errors import InputError

        known = ", ".join(sorted(suites))
        raise InputError(
            f"unknown fuzz suite {name!r}; available suites: {known}",
            phase="fuzz-suite",
        ) from None


def trial_specs(seed: int, suite: list[dict]) -> list[dict]:
    """The full trial schedule: program-major, mutator order fixed."""
    specs: list[dict] = []
    for spec in suite:
        for name in MUTATORS:
            specs.append({
                "label": spec["label"],
                "family": spec["family"],
                "args": list(spec["args"]),
                "fuzz": {
                    "mutator": name,
                    "seed": derive_seed(seed, f"{spec['label']}:{name}"),
                },
            })
    return specs


# -- one trial ----------------------------------------------------------------


def run_trial(spec: dict) -> dict:
    """Run one mutation trial; never raises.  Spawn-safe: takes a plain
    dict spec and resolves everything inside (this is what
    ``repro.perf.batch._analyze_one`` dispatches to for pooled runs)."""
    from repro.cfg.builder import build_cfg
    from repro.perf.batch import resolve_family
    from repro.robust.errors import error_record

    fuzz = spec["fuzz"]
    name = fuzz["mutator"]
    row: dict = {"label": spec["label"], "mutator": name}
    try:
        program = resolve_family(spec["family"])(*spec["args"])
        base_graph = build_cfg(program)
        context = trial_context(
            program, base_graph, fuzz["seed"], name, family=spec["family"]
        )
        mutation = MUTATORS[name](program, random.Random(fuzz["seed"]), context)
        row["kind"] = mutation.kind
        row["applied"] = mutation.applied
        if not mutation.applied:
            return row
        mutant_graph = mutation.graph
        if mutant_graph is None:
            mutant_graph = build_cfg(mutation.program)
        context = dict(context, expectations=mutation.expectations)
        verdicts = run_oracles(base_graph, mutant_graph, context)
        row["checks"] = {v.oracle: v.checks for v in verdicts}
        failures = [v for v in verdicts if not v.ok]
        if mutation.kind == "planted":
            # An I/O failure on a planted mutant is the *detector
            # working*; consistency-oracle failures on it are still real
            # divergences (the plant is a valid program).
            row["detected"] = any(v.oracle == "io" for v in failures)
            failures = [v for v in failures if v.oracle != "io"]
        if failures:
            row["divergences"] = [
                {"oracle": v.oracle, "detail": v.detail} for v in failures
            ]
        return row
    except Exception as exc:
        row["error"] = error_record(exc)
        return row


# -- the sweep ----------------------------------------------------------------


def _aggregate(rows: list[dict]) -> dict:
    """Deterministic aggregation of trial rows into the payload body."""
    mutators: dict[str, dict] = {
        name: {"attempted": 0, "applied": 0, "divergent": 0, "detected": 0}
        for name in MUTATORS
    }
    oracles: dict[str, dict] = {
        name: {"checks": 0, "failures": 0} for name in ORACLES
    }
    coverage: dict[str, dict[str, int]] = {
        name: {oracle: 0 for oracle in ORACLES} for name in MUTATORS
    }
    for row in rows:
        if "error" in row:
            continue
        stats = mutators[row["mutator"]]
        stats["attempted"] += 1
        if not row.get("applied"):
            continue
        stats["applied"] += 1
        if row.get("detected"):
            stats["detected"] += 1
        if row.get("divergences"):
            stats["divergent"] += 1
        for oracle, checks in row.get("checks", {}).items():
            oracles[oracle]["checks"] += checks
            coverage[row["mutator"]][oracle] += 1
        for divergence in row.get("divergences", []):
            oracles[divergence["oracle"]]["failures"] += 1
    return {"mutators": mutators, "oracles": oracles, "coverage": coverage}


def run_fuzz(
    seed: int = 0,
    budget: int | None = None,
    suite: str = "default",
    jobs: int = 0,
    repro_dir: str = DEFAULT_REPRO_DIR,
    write_repros: bool = False,
    minimize_budget: int = 200,
) -> dict:
    """Run the sweep; return the ``repro.fuzz/1`` payload.

    ``budget`` is a *trial count* (a prefix of the deterministic
    schedule), not wall time -- the payload must be byte-identical
    across machines.  ``jobs > 0`` runs trials across a
    :class:`~repro.robust.pool.SupervisedPool`; rows come back in
    schedule order either way.  Divergence triage (ddmin, fingerprints,
    reproducers) always runs in-process.
    """
    suite_specs = resolve_fuzz_suite(suite)
    specs = trial_specs(seed, suite_specs)
    if budget is not None:
        specs = specs[:max(0, budget)]

    if jobs and jobs > 0:
        from repro.robust.pool import SupervisedPool

        rows = SupervisedPool(jobs).run(specs)
    else:
        rows = [run_trial(spec) for spec in specs]

    body = _aggregate(rows)
    error_rows = [row for row in rows if "error" in row]

    planted = body["mutators"]["plant-miscompile"]["applied"]
    detected = body["mutators"]["plant-miscompile"]["detected"]
    recall = (detected / planted) if planted else 1.0

    # Triage: one reproducer per divergence *class* (fingerprint).
    known = load_known_fingerprints(repro_dir)
    records: dict[str, dict] = {}
    for spec, row in zip(specs, rows):
        for divergence in row.get("divergences", []):
            fingerprint = divergence_fingerprint(
                row["mutator"], divergence["oracle"], divergence["detail"]
            )
            if fingerprint in records:
                continue
            records[fingerprint] = triage_divergence(
                spec, divergence, minimize_budget=minimize_budget
            )
    if write_repros:
        for record in records.values():
            write_reproducer(record, repro_dir)

    divergences = [
        {
            "fingerprint": record["fingerprint"],
            "label": record["label"],
            "mutator": record["mutator"],
            "oracle": record["oracle"],
            "detail": record["detail"],
            "minimized": record["minimized"],
            "minimized_stmts": record["minimized_stmts"],
            "novel": record["fingerprint"] not in known,
        }
        for record in sorted(
            records.values(), key=lambda r: r["fingerprint"]
        )
    ]
    novel = sorted(d["fingerprint"] for d in divergences if d["novel"])
    unminimized = sorted(
        d["fingerprint"] for d in divergences if not d["minimized"]
    )
    ok = (
        not error_rows
        and not novel
        and not unminimized
        and recall == 1.0
    )

    applied = sum(m["applied"] for m in body["mutators"].values())
    return {
        "schema": FUZZ_SCHEMA,
        "seed": seed,
        "suite": suite,
        "budget": budget,
        "jobs": jobs,
        "programs": len({spec["label"] for spec in specs}),
        "trials": len(rows),
        "applied": applied,
        "mutators": body["mutators"],
        "oracles": body["oracles"],
        "coverage": body["coverage"],
        "planted": {
            "planted": planted,
            "detected": detected,
            "recall": round(recall, 4),
        },
        "divergences": divergences,
        "novel": novel,
        "unminimized": unminimized,
        "errors": len(error_rows),
        "rows": rows,
        "ok": ok,
    }
