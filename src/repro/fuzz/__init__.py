"""Metamorphic differential fuzzing of the analysis stack.

The paper's central results are *equivalence theorems* -- SESE regions
from cycle equivalence (Theorem 1), dependence-preserving region
bypassing, DFG constant propagation agreeing with CFG propagation -- and
equivalence theorems are exactly what a metamorphic fuzzer can check
mechanically at scale:

* :mod:`repro.fuzz.mutators` applies semantics-preserving program
  transforms (plus deliberately semantics-*changing* planted miscompiles
  for recall scoring);
* :mod:`repro.fuzz.oracles` holds every mutant to the theorem-derived
  equivalences (four constant propagators, reference-vs-CSR kernels,
  interpreter I/O, structural invariants);
* :mod:`repro.fuzz.triage` shrinks and fingerprints any divergence into
  a checked-in reproducer;
* :mod:`repro.fuzz.harness` drives the seeded, byte-deterministic sweep
  behind ``repro fuzz``.
"""

from repro.fuzz.harness import FUZZ_SCHEMA, fuzz_suites, run_fuzz, run_trial
from repro.fuzz.mutators import MUTATORS, Mutation
from repro.fuzz.oracles import ORACLES, Verdict, run_oracles
from repro.fuzz.triage import (
    FUZZ_REPRO_SCHEMA,
    divergence_fingerprint,
    load_known_fingerprints,
    triage_divergence,
)

__all__ = [
    "FUZZ_SCHEMA",
    "FUZZ_REPRO_SCHEMA",
    "MUTATORS",
    "ORACLES",
    "Mutation",
    "Verdict",
    "divergence_fingerprint",
    "fuzz_suites",
    "load_known_fingerprints",
    "run_fuzz",
    "run_oracles",
    "run_trial",
    "triage_divergence",
]
