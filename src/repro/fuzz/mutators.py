"""Seeded program mutators for the metamorphic fuzzer.

Five *semantics-preserving* transforms grounded in the paper, plus one
deliberately semantics-*changing* planted miscompile used to score the
detector's recall:

``region-wrap``
    SESE region extraction: a contiguous statement range is wrapped in
    ``if (1) { ... }``, introducing a fresh switch/merge pair and hence
    new canonical SESE regions (Theorem 1 territory).
``loop-peel``
    SESE region inlining: one loop iteration's region is inlined into
    the enclosing region (``while c { b }`` becomes
    ``if c { b; while c { b } }``; ``repeat`` peels its guaranteed first
    iteration).
``dead-branch``
    Inserts ``if (v * v < 0) { <poison> }``: the opaque predicate is
    false on every integer, so the poison body -- wild constant stores
    and a print -- can never execute, but every dataflow analysis must
    still reason about the branch.
``reorder``
    Swaps two adjacent simple statements that the dependence relation
    (def-def, def-use, use-def, observability) proves independent.
``opt-roundtrip``
    Runs the staged optimizer (:func:`repro.opt.pipeline.optimize`);
    the mutant is the optimized *graph*, held to I/O equivalence with
    the original.
``plant-miscompile``
    Applies one observable semantic edit (flipped operator, perturbed
    literal, swapped branch arms), verified observable on the trial's
    probe environments *at plant time* -- so a working I/O oracle must
    detect every successful plant (recall 1.0 by construction).

Every mutator takes ``(program, rng, context)`` with an explicit
:class:`random.Random`, never global randomness, and returns a
:class:`Mutation`; inapplicable trials return ``applied=False`` instead
of guessing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    Goto,
    If,
    IntLit,
    Label,
    Print,
    Program,
    Repeat,
    Skip,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
    expr_vars,
    program_vars,
)

#: Binary operators a planted miscompile may flip between.
_FLIPPABLE_OPS = ("+", "-", "*")


@dataclass
class Mutation:
    """The outcome of one mutator application.

    ``program`` is the mutated AST for source-level mutators; the
    optimizer round-trip instead carries the transformed ``graph``
    (there is no CFG-to-source unparser, and none is needed -- every
    oracle works on graphs).  ``expectations`` names extra metamorphic
    invariants the structural oracle must check for this mutant.
    """

    mutator: str
    kind: str  # "preserving" | "planted"
    applied: bool
    program: Program | None = None
    graph: object | None = None
    detail: dict = field(default_factory=dict)
    expectations: tuple[str, ...] = ()


# -- AST copying --------------------------------------------------------------
#
# Statements are mutable dataclasses; expressions are frozen and shared.
# Mutators therefore deep-copy the statement spine and leave expression
# subtrees aliased.


def copy_stmt(stmt: Stmt) -> Stmt:
    if isinstance(stmt, Assign):
        return Assign(stmt.target, stmt.expr)
    if isinstance(stmt, Store):
        return Store(stmt.array, stmt.index, stmt.expr)
    if isinstance(stmt, Print):
        return Print(stmt.expr)
    if isinstance(stmt, Skip):
        return Skip()
    if isinstance(stmt, If):
        return If(
            stmt.cond, copy_stmts(stmt.then_body), copy_stmts(stmt.else_body)
        )
    if isinstance(stmt, While):
        return While(stmt.cond, copy_stmts(stmt.body))
    if isinstance(stmt, Repeat):
        return Repeat(copy_stmts(stmt.body), stmt.cond)
    if isinstance(stmt, Goto):
        return Goto(stmt.label)
    if isinstance(stmt, Label):
        return Label(stmt.name)
    raise TypeError(f"not a statement: {stmt!r}")


def copy_stmts(stmts: list[Stmt]) -> list[Stmt]:
    return [copy_stmt(stmt) for stmt in stmts]


def copy_program(program: Program) -> Program:
    return Program(copy_stmts(program.body))


def _stmt_lists(program: Program) -> list[list[Stmt]]:
    """Every statement list in the program, preorder: the top level plus
    each compound body.  Mutators pick insertion/extraction sites here."""
    lists = [program.body]
    stack = list(program.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, If):
            lists.extend([stmt.then_body, stmt.else_body])
            stack.extend(stmt.then_body + stmt.else_body)
        elif isinstance(stmt, (While, Repeat)):
            lists.append(stmt.body)
            stack.extend(stmt.body)
    return lists


def _mentions_jump(stmts: list[Stmt]) -> bool:
    """Labels or gotos anywhere in the subtree -- duplicating those would
    redeclare labels, so loop peeling skips them."""
    probe = Program(copy_stmts(stmts))
    return any(isinstance(s, (Goto, Label)) for s in probe.walk())


# -- semantics-preserving mutators --------------------------------------------


def region_wrap(
    program: Program, rng: random.Random, context: Mapping
) -> Mutation:
    """Wrap a random contiguous statement range in ``if (1) { ... }``."""
    mutated = copy_program(program)
    lists = [stmts for stmts in _stmt_lists(mutated) if stmts]
    if not lists:
        return Mutation("region-wrap", "preserving", applied=False)
    stmts = rng.choice(lists)
    start = rng.randrange(len(stmts))
    end = rng.randint(start + 1, len(stmts))
    wrapped = If(IntLit(1), stmts[start:end], [])
    stmts[start:end] = [wrapped]
    # The wrap bounds a fresh single-entry/single-exit region, so the
    # canonical SESE region count must not shrink -- unless a goto can
    # jump into the wrapped slice from outside, in which case the slice
    # is not single-entry and the new branch/join edges may legally
    # merge previously distinct cycle-equivalence classes.
    expectations = (
        () if _mentions_jump(list(program.body)) else ("regions_nondecrease",)
    )
    return Mutation(
        "region-wrap",
        "preserving",
        applied=True,
        program=mutated,
        detail={"wrapped_stmts": end - start},
        expectations=expectations,
    )


def loop_peel(
    program: Program, rng: random.Random, context: Mapping
) -> Mutation:
    """Peel one iteration of a random loop into its enclosing region."""
    mutated = copy_program(program)
    sites = [
        (stmts, i)
        for stmts in _stmt_lists(mutated)
        for i, stmt in enumerate(stmts)
        if isinstance(stmt, (While, Repeat))
        and not _mentions_jump(stmt.body)
    ]
    if not sites:
        return Mutation("loop-peel", "preserving", applied=False)
    stmts, i = rng.choice(sites)
    loop = stmts[i]
    if isinstance(loop, While):
        # while c { b }  ==  if c { b; while c { b } }
        peeled = If(loop.cond, copy_stmts(loop.body) + [loop], [])
        stmts[i] = peeled
        shape = "while"
    else:
        # repeat { b } until c  ==  b; if !c { repeat { b } until c }
        assert isinstance(loop, Repeat)
        stmts[i:i + 1] = copy_stmts(loop.body) + [
            If(UnOp("!", loop.cond), [loop], [])
        ]
        shape = "repeat"
    return Mutation(
        "loop-peel",
        "preserving",
        applied=True,
        program=mutated,
        detail={"loop": shape},
    )


def _opaque_false(rng: random.Random, variables: list[str]) -> Expr:
    """A predicate that is false on every integer store but that no
    constant propagator can fold: ``v * v < 0`` (squares are
    non-negative; unbound variables read as 0)."""
    if variables and rng.random() < 0.8:
        v: Expr = Var(rng.choice(variables))
    else:
        v = BinOp("+", IntLit(rng.randint(1, 9)), IntLit(rng.randint(1, 9)))
    return BinOp("<", BinOp("*", v, v), IntLit(0))


def dead_branch(
    program: Program, rng: random.Random, context: Mapping
) -> Mutation:
    """Insert an opaquely-dead branch with a maximally observable body."""
    mutated = copy_program(program)
    variables = sorted(program_vars(mutated)) or ["poison"]
    lists = _stmt_lists(mutated)
    stmts = rng.choice(lists)
    position = rng.randint(0, len(stmts))
    poison: list[Stmt] = []
    for _ in range(rng.randint(1, 3)):
        poison.append(
            Assign(rng.choice(variables), IntLit(rng.randint(100, 999)))
        )
    poison.append(Print(Var(rng.choice(variables))))
    guard = _opaque_false(rng, variables)
    stmts.insert(position, If(guard, poison, []))
    return Mutation(
        "dead-branch",
        "preserving",
        applied=True,
        program=mutated,
        detail={"poison_stmts": len(poison)},
    )


def _defs_uses(stmt: Stmt) -> tuple[frozenset[str], frozenset[str], bool]:
    """``(defs, uses, observable)`` for a simple statement, or raises.

    A store both defines and uses its array ([BJP91]'s update encoding),
    so two stores to one array never commute.
    """
    if isinstance(stmt, Assign):
        return frozenset((stmt.target,)), expr_vars(stmt.expr), False
    if isinstance(stmt, Store):
        array = frozenset((stmt.array,))
        return array, array | expr_vars(stmt.index) | expr_vars(stmt.expr), False
    if isinstance(stmt, Print):
        return frozenset(), expr_vars(stmt.expr), True
    if isinstance(stmt, Skip):
        return frozenset(), frozenset(), False
    raise TypeError(f"not a simple statement: {stmt!r}")


def _independent(a: Stmt, b: Stmt) -> bool:
    """May ``a; b`` be reordered to ``b; a``?  True iff there is no
    def-def, def-use or use-def conflict and at most one side is
    observable (two prints never swap: output order is semantics)."""
    try:
        defs_a, uses_a, obs_a = _defs_uses(a)
        defs_b, uses_b, obs_b = _defs_uses(b)
    except TypeError:
        return False
    if obs_a and obs_b:
        return False
    return not (
        (defs_a & defs_b) or (defs_a & uses_b) or (uses_a & defs_b)
    )


def reorder(
    program: Program, rng: random.Random, context: Mapping
) -> Mutation:
    """Swap one dependence-independent adjacent statement pair."""
    mutated = copy_program(program)
    sites = [
        (stmts, i)
        for stmts in _stmt_lists(mutated)
        for i in range(len(stmts) - 1)
        if _independent(stmts[i], stmts[i + 1])
    ]
    if not sites:
        return Mutation("reorder", "preserving", applied=False)
    stmts, i = rng.choice(sites)
    stmts[i], stmts[i + 1] = stmts[i + 1], stmts[i]
    return Mutation(
        "reorder",
        "preserving",
        applied=True,
        program=mutated,
        detail={"swap_sites": len(sites)},
        expectations=("same_shape",),
    )


def opt_roundtrip(
    program: Program, rng: random.Random, context: Mapping
) -> Mutation:
    """The staged optimizer as a mutator: its output graph must behave
    identically to its input.  A non-executable program (the goto-soup
    family) still round-trips -- the structural oracles cover it."""
    from repro.cfg.builder import build_cfg
    from repro.opt.pipeline import optimize

    graph = build_cfg(copy_program(program))
    optimized, report = optimize(graph)
    return Mutation(
        "opt-roundtrip",
        "preserving",
        applied=True,
        graph=optimized,
        detail={
            "nodes_before": graph.num_nodes,
            "nodes_after": optimized.num_nodes,
            "pre_expressions": len(report.pre_expressions),
        },
    )


# -- the planted miscompile ---------------------------------------------------


def _plant_edits(
    program: Program, rng: random.Random
) -> list[tuple[str, Callable[[Program], bool]]]:
    """Candidate semantic edits, in seeded order.  Each callable applies
    its edit to a *fresh copy* passed in, returning True on success."""

    def flip_op(site: int):
        def apply(candidate: Program) -> bool:
            seen = 0
            for stmt in candidate.walk():
                if isinstance(stmt, Assign) and isinstance(stmt.expr, BinOp) \
                        and stmt.expr.op in _FLIPPABLE_OPS:
                    if seen == site:
                        ops = [o for o in _FLIPPABLE_OPS if o != stmt.expr.op]
                        stmt.expr = BinOp(
                            rng.choice(ops), stmt.expr.left, stmt.expr.right
                        )
                        return True
                    seen += 1
            return False
        return apply

    def perturb_literal(site: int):
        def apply(candidate: Program) -> bool:
            seen = 0
            for stmt in candidate.walk():
                if isinstance(stmt, Assign) and isinstance(stmt.expr, IntLit):
                    if seen == site:
                        stmt.expr = IntLit(stmt.expr.value + 1)
                        return True
                    seen += 1
            return False
        return apply

    def swap_arms(site: int):
        def apply(candidate: Program) -> bool:
            seen = 0
            for stmt in candidate.walk():
                if isinstance(stmt, If) and stmt.then_body and stmt.else_body:
                    if seen == site:
                        stmt.then_body, stmt.else_body = (
                            stmt.else_body, stmt.then_body
                        )
                        return True
                    seen += 1
            return False
        return apply

    edits: list[tuple[str, Callable[[Program], bool]]] = []
    for site in range(8):
        edits.append((f"flip-op@{site}", flip_op(site)))
        edits.append((f"perturb-literal@{site}", perturb_literal(site)))
        edits.append((f"swap-arms@{site}", swap_arms(site)))
    rng.shuffle(edits)
    return edits


def _observably_differs(
    base: Program, mutant: Program, envs: list[dict], context: Mapping
) -> bool:
    """Do the two programs differ on any probe environment?  Runs the
    *same* ``_run_outputs`` configuration the I/O oracle uses, so an
    edit passing this check is detectable by construction (recall 1.0)."""
    from repro.cfg.builder import build_cfg
    from repro.fuzz.oracles import (
        DEFAULT_MAX_STEPS,
        DEFAULT_VALUE_LIMIT,
        _run_outputs,
    )

    max_steps = context.get("max_steps", DEFAULT_MAX_STEPS)
    value_limit = context.get("value_limit", DEFAULT_VALUE_LIMIT)
    try:
        base_graph = build_cfg(base)
        mutant_graph = build_cfg(mutant)
    except Exception:
        return False
    for env in envs:
        before = _run_outputs(base_graph, env, max_steps, value_limit)
        after = _run_outputs(mutant_graph, env, max_steps, value_limit)
        if before != after:
            return True
    return False


def plant_miscompile(
    program: Program, rng: random.Random, context: Mapping
) -> Mutation:
    """Apply one semantic edit verified observable on the trial's probe
    environments.  Non-executable families (goto soup) and programs with
    no observable edit return ``applied=False``."""
    if not context.get("executable", True):
        return Mutation("plant-miscompile", "planted", applied=False)
    envs = context["envs"]
    for name, edit in _plant_edits(program, rng):
        candidate = copy_program(program)
        if not edit(candidate):
            continue
        if _observably_differs(program, candidate, envs, context):
            return Mutation(
                "plant-miscompile",
                "planted",
                applied=True,
                program=candidate,
                detail={"edit": name},
            )
    return Mutation("plant-miscompile", "planted", applied=False)


#: The mutator registry, in sweep order.  Order matters: the trial
#: schedule (and hence every seeded payload) iterates this dict.
MUTATORS: dict[str, Callable[[Program, random.Random, Mapping], Mutation]] = {
    "region-wrap": region_wrap,
    "loop-peel": loop_peel,
    "dead-branch": dead_branch,
    "reorder": reorder,
    "opt-roundtrip": opt_roundtrip,
    "plant-miscompile": plant_miscompile,
}
