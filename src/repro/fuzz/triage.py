"""Automated divergence triage: shrink, fingerprint, deduplicate.

A divergence (a preserving mutant on which an oracle failed) flows
through three steps:

1. **Minimize** -- :func:`repro.robust.minimize.minimize_program` ddmin
   over the *base* program, with a predicate that replays the exact
   trial (same mutator, same derived seed, same probe-environment
   derivation) and accepts a candidate iff the same oracle still fails.
   Candidates that fail differently count as passing, so the shrink
   cannot wander onto a different bug.
2. **Fingerprint** -- SHA-256 over ``mutator:oracle:<detail signature>``,
   truncated to 12 hex chars like ``repro.incident/1`` fingerprints.
   The signature strips volatile payload (values, labels, node ids), so
   one underlying bug hit from many seed programs deduplicates to one
   fingerprint.
3. **Reproduce** -- a ``repro.fuzzrepro/1`` record (original + minimized
   source, trial coordinates, verdict detail) written under
   ``tests/repros/`` as ``fuzz-<fingerprint>.json``.  Fingerprints
   already present there are *known*: the CI gate fails only on novel or
   unminimized divergences, so a triaged bug does not block the tree
   twice.
"""

from __future__ import annotations

import hashlib
import json
import os
import re

from repro.robust.minimize import minimize_program

FUZZ_REPRO_SCHEMA = "repro.fuzzrepro/1"

#: Filename prefix for fuzz reproducers in the repro directory.
_REPRO_PREFIX = "fuzz-"


def _detail_signature(detail: str) -> str:
    """The bug-class signature of a verdict detail: numbers, node ids
    and environment dumps are volatile across seed programs, so they are
    masked before hashing."""
    masked = re.sub(r"-?\d+", "#", detail)
    masked = re.sub(r"env=\[[^]]*\]", "env=[...]", masked)
    return masked


def divergence_fingerprint(mutator: str, oracle: str, detail: str) -> str:
    """A stable 12-hex-char fingerprint of a divergence class."""
    text = f"{mutator}:{oracle}:{_detail_signature(detail)}"
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def load_known_fingerprints(repro_dir: str) -> set[str]:
    """Fingerprints of reproducers already checked in under
    ``repro_dir`` -- these are known bugs, not novel findings."""
    known: set[str] = set()
    if not os.path.isdir(repro_dir):
        return known
    for name in sorted(os.listdir(repro_dir)):
        if not (name.startswith(_REPRO_PREFIX) and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(repro_dir, name)) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            continue
        if record.get("schema") == FUZZ_REPRO_SCHEMA and record.get(
            "fingerprint"
        ):
            known.add(record["fingerprint"])
    return known


def _replay_fails(mutator: str, oracle: str, fuzz_seed: int):
    """The minimization predicate: does replaying this trial on a
    candidate program still fail the *same* oracle?"""
    from repro.fuzz.harness import trial_context
    from repro.fuzz.mutators import MUTATORS
    from repro.fuzz.oracles import run_oracles
    import random

    from repro.cfg.builder import build_cfg

    def fails(candidate) -> bool:
        rng = random.Random(fuzz_seed)
        base_graph = build_cfg(candidate)
        context = trial_context(candidate, base_graph, fuzz_seed, mutator)
        mutation = MUTATORS[mutator](candidate, rng, context)
        if not mutation.applied:
            return False
        mutant_graph = mutation.graph or build_cfg(mutation.program)
        context = dict(context, expectations=mutation.expectations)
        for verdict in run_oracles(base_graph, mutant_graph, context):
            if verdict.oracle == oracle and not verdict.ok:
                return True
        return False

    return fails


def triage_divergence(
    spec: dict,
    divergence: dict,
    minimize_budget: int = 200,
) -> dict:
    """Minimize one divergent trial into a ``repro.fuzzrepro/1`` record.

    ``spec`` is the trial spec ({label, family, args, fuzz:{seed,
    mutator}}); ``divergence`` carries the failing oracle name and
    verdict detail.  The record always carries a fingerprint; it is
    *minimized* iff the replay predicate reproduced on the original
    source (a flaky or environment-dependent divergence stays
    unminimized -- and therefore trips the gate).
    """
    from repro.lang.parser import parse_program
    from repro.lang.pretty import pretty_program
    from repro.perf.batch import resolve_family

    mutator = spec["fuzz"]["mutator"]
    fuzz_seed = spec["fuzz"]["seed"]
    oracle = divergence["oracle"]
    program = resolve_family(spec["family"])(*spec["args"])
    source = pretty_program(program)

    fails = _replay_fails(mutator, oracle, fuzz_seed)
    try:
        reproduced = fails(parse_program(source))
    except Exception:
        reproduced = False
    if reproduced:
        minimized, evals = minimize_program(
            source, fails, budget=minimize_budget
        )
    else:
        minimized, evals = source, 0
    fingerprint = divergence_fingerprint(mutator, oracle, divergence["detail"])
    return {
        "schema": FUZZ_REPRO_SCHEMA,
        "fingerprint": fingerprint,
        "label": spec["label"],
        "family": spec["family"],
        "args": list(spec["args"]),
        "mutator": mutator,
        "oracle": oracle,
        "fuzz_seed": fuzz_seed,
        "detail": divergence["detail"],
        "source": source,
        "minimized_source": minimized,
        "original_stmts": source.count("\n"),
        "minimized_stmts": minimized.count("\n"),
        "minimized": reproduced,
        "predicate_evals": evals,
    }


def write_reproducer(record: dict, repro_dir: str) -> str:
    """Write ``record`` as ``fuzz-<fingerprint>.json``; returns the path."""
    os.makedirs(repro_dir, exist_ok=True)
    path = os.path.join(
        repro_dir, f"{_REPRO_PREFIX}{record['fingerprint']}.json"
    )
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
