"""Theorem-derived equivalence oracles for the fuzzer.

Each oracle holds a mutant graph to an equivalence the paper (or a PR's
acceptance contract) guarantees:

``io``
    Interpreter I/O equivalence between base and mutant on seeded probe
    environments -- the detector for semantics-changing miscompiles.
    Matching trap *types* (step limit, value limit, division by zero)
    count as agreement; the paper's transformations preserve behaviour,
    not termination proofs.
``constprop``
    The Section 4 result: wherever two of the four constant propagation
    engines (DFG, CFG vector, SCCP-on-SSA, def-use-chain baseline) both
    classify a use constant, the values agree -- and the all-paths
    baseline never beats a possible-paths engine outside proven-dead
    nodes.
``dataflow``
    The PR-2 contract: the six bitset dataflow kernels produce results
    identical to the reference solvers on the mutant.
``structure``
    Reference-vs-CSR agreement for DFS/dominators/cycle equivalence,
    plus per-mutator metamorphic invariants: region wrapping cannot
    *reduce* the canonical SESE region count; a dependence-legal reorder
    keeps the CFG shape and the cycle-equivalence partition size.
``determinism``
    DFG port-order determinism: building the dependence graph twice from
    fresh copies must serialize identically (the PR-1 contract the
    byte-deterministic payloads depend on).
``hierarchical-vs-flat``
    The PR-6 contract: solving the four core analyses bottom-up/top-down
    over the region-summary hierarchy yields fact masks identical to the
    flat bitset fixpoint on the mutant (distributivity of bitvector
    frameworks over the closure-verified system construction).
``sparse-vs-dense``
    The PR-9 contract: every client of the parameterized sparse engine
    (def-use chains, SSA construction, interval ranges, taint, NTSCD)
    agrees with its dense reference twin on the mutant -- chain sets
    equal, SSA overlays identical field by field, and the range/taint/
    control-dependence fact surfaces byte-equal.
``bytes-roundtrip``
    The PR-7 contract: lowering the mutant into an arena corpus,
    serializing it, deserializing and running the fused arena sweep must
    equal the direct object-graph pipeline on all five analyses -- the
    wire format the pool workers consume loses nothing.

Oracles never raise on a *divergence* -- they return a failing
:class:`Verdict` with enough detail to fingerprint.  An oracle that
raises has found a crash, which the harness records as its own
divergence class.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.cfg.interp import run_cfg
from repro.core.dfg import CTRL_VAR
from repro.pipeline.manager import AnalysisManager

#: Interpreter budget per probe run; generated programs are fuel-bounded
#: well under this.
DEFAULT_MAX_STEPS = 50_000
#: Assigned-value magnitude cap: loop-nested squaring can build numbers
#: whose mere representation dwarfs the analysis under test.
DEFAULT_VALUE_LIMIT = 10 ** 12


@dataclass
class Verdict:
    oracle: str
    ok: bool
    checks: int
    detail: str = ""


def _run_outputs(graph, env, max_steps, value_limit):
    """``("ok", outputs)`` or ``("trap", exception type name)``."""
    try:
        result = run_cfg(
            graph, env, max_steps=max_steps, value_limit=value_limit
        )
        return ("ok", tuple(result.outputs))
    except Exception as exc:
        return ("trap", type(exc).__name__)


def oracle_io(base_graph, mutant_graph, context: Mapping) -> Verdict:
    """Outputs must match on every probe environment.

    The optimizer may legitimately *remove* trapping work (DCE deletes a
    dead assignment that would have tripped the value limit), so for the
    round-trip mutator a trap on the base side makes that environment
    inconclusive rather than a divergence.
    """
    max_steps = context.get("max_steps", DEFAULT_MAX_STEPS)
    value_limit = context.get("value_limit", DEFAULT_VALUE_LIMIT)
    trap_tolerant = context.get("mutator") == "opt-roundtrip"
    checks = 0
    for env in context["envs"]:
        before = _run_outputs(base_graph, env, max_steps, value_limit)
        after = _run_outputs(mutant_graph, env, max_steps, value_limit)
        if trap_tolerant and before[0] == "trap":
            continue
        checks += 1
        if before != after:
            return Verdict(
                "io", False, checks,
                detail=f"env={sorted(env.items())} base={before} "
                       f"mutant={after}",
            )
    return Verdict("io", True, checks)


def _engine_constants(graph):
    """Per-engine ``{(node, var): value}`` plus proven-dead node sets,
    control-variable keys filtered (mirrors the tier-1 differential
    suite)."""
    manager = AnalysisManager(graph)
    dfg_result = manager.get("constprop")
    cfg_result = manager.get("constprop-cfg")
    found = {
        "dfg": dfg_result.constant_uses(),
        "cfg": cfg_result.constant_uses(),
        "defuse": manager.get("constprop-defuse").constant_uses(),
    }
    ssa = manager.get("ssa")
    sccp = manager.get("sccp")
    found["sccp"] = {
        key: value
        for key in ssa.use_names
        if isinstance(value := sccp.value_of_use(ssa, *key), int)
    }
    dead = {
        "dfg": set(dfg_result.dead_nodes),
        "cfg": set(cfg_result.dead_nodes),
    }
    return {
        name: {k: v for k, v in result.items() if k[1] != CTRL_VAR}
        for name, result in found.items()
    }, dead


def oracle_constprop(base_graph, mutant_graph, context: Mapping) -> Verdict:
    by_engine, dead = _engine_constants(mutant_graph)
    checks = 0
    names = sorted(by_engine)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            for key in sorted(by_engine[a].keys() & by_engine[b].keys()):
                checks += 1
                if by_engine[a][key] != by_engine[b][key]:
                    return Verdict(
                        "constprop", False, checks,
                        detail=f"{a}={by_engine[a][key]} vs "
                               f"{b}={by_engine[b][key]} at {key}",
                    )
    for name in ("dfg", "cfg"):
        for key, value in sorted(by_engine["defuse"].items()):
            if key[0] in dead[name]:
                continue
            checks += 1
            if by_engine[name].get(key) != value:
                return Verdict(
                    "constprop", False, checks,
                    detail=f"all-paths constant {key}={value} missed by "
                           f"{name} ({by_engine[name].get(key)})",
                )
    return Verdict("constprop", True, checks)


def oracle_dataflow(base_graph, mutant_graph, context: Mapping) -> Verdict:
    from repro.perf.batch import (
        _dataflow_fast,
        _dataflow_legacy,
        _results_identical,
    )

    legacy = _dataflow_legacy(mutant_graph)
    fast = _dataflow_fast(mutant_graph)
    mismatched = sorted(
        key for key in legacy if legacy[key] != fast[key]
    )
    if not _results_identical(legacy, fast):
        return Verdict(
            "dataflow", False, len(legacy),
            detail=f"bitset kernels diverge from reference on "
                   f"{mismatched or sorted(legacy)}",
        )
    return Verdict("dataflow", True, len(legacy))


def _region_count(graph) -> int:
    return len(AnalysisManager(graph).get("sese").regions)


def _class_count(graph) -> int:
    return len(AnalysisManager(graph).get("sese").classes)


def oracle_structure(base_graph, mutant_graph, context: Mapping) -> Verdict:
    from repro.perf.batch import (
        _results_identical,
        _structure_fast,
        _structure_legacy,
    )

    legacy = _structure_legacy(mutant_graph)
    fast = _structure_fast(mutant_graph)
    checks = len(legacy)
    if not _results_identical(legacy, fast):
        mismatched = sorted(
            key for key in legacy
            if key in ("dfs", "cycle-equiv") and legacy[key] != fast[key]
        )
        return Verdict(
            "structure", False, checks,
            detail=f"CSR kernels diverge from reference on "
                   f"{mismatched or 'dominators'}",
        )
    for expectation in context.get("expectations", ()):
        checks += 1
        if expectation == "regions_nondecrease":
            before, after = _region_count(base_graph), _region_count(mutant_graph)
            if after < before:
                return Verdict(
                    "structure", False, checks,
                    detail=f"region extraction shrank the canonical SESE "
                           f"region count {before} -> {after}",
                )
        elif expectation == "same_shape":
            same = (
                base_graph.num_nodes == mutant_graph.num_nodes
                and base_graph.num_edges == mutant_graph.num_edges
                and _class_count(base_graph) == _class_count(mutant_graph)
            )
            if not same:
                return Verdict(
                    "structure", False, checks,
                    detail="dependence-legal reorder changed the CFG shape "
                           f"({base_graph.num_nodes}n/{base_graph.num_edges}e"
                           f" -> {mutant_graph.num_nodes}n/"
                           f"{mutant_graph.num_edges}e)",
                )
    return Verdict("structure", True, checks)


def oracle_hierarchical_vs_flat(
    base_graph, mutant_graph, context: Mapping
) -> Verdict:
    """The PR-6 contract: the hierarchical region-summary solve of the
    four core analyses is mask-identical to the flat bitset solve on the
    mutant.  Bitvector frameworks are distributive, so a summarized
    fixpoint applied to the real boundary must equal the flat fixpoint
    (paper Theorem 1 + the closure-verified system construction)."""
    from repro.perf.bitset import solve_bitset
    from repro.perf.csr import build_csr
    from repro.regions.hierarchical import (
        build_region_systems,
        core_problems,
        solve_hierarchical,
    )

    csr = build_csr(mutant_graph)
    regions = build_region_systems(mutant_graph)
    problems = core_problems(mutant_graph, csr)
    checks = 0
    for name in sorted(problems):
        flat = solve_bitset(csr, problems[name])
        hier = solve_hierarchical(csr, regions, problems[name])
        checks += 1
        if flat != hier:
            bad = [
                csr.edge_ids[e] for e in range(csr.m) if flat[e] != hier[e]
            ]
            return Verdict(
                "hierarchical-vs-flat", False, checks,
                detail=f"{name}: hierarchical solve diverges from flat "
                       f"bitset solve on edges {bad[:8]} "
                       f"({regions.dissolved} dissolved regions)",
            )
    return Verdict("hierarchical-vs-flat", True, checks)


def oracle_bytes_roundtrip(
    base_graph, mutant_graph, context: Mapping
) -> Verdict:
    """The PR-7 contract: lower -> serialize -> deserialize -> fused
    arena solve equals the direct object-graph pipeline on the mutant
    for all five analyses the sweep fuses."""
    from repro.arena import ArenaCorpus, ExpressionPool, analyze_corpus
    from repro.dataflow.bitsets import (
        anticipatable_bitsets,
        available_bitsets,
        liveness_bitsets,
        reaching_bitsets,
    )
    from repro.opt.cfg_constprop import cfg_constant_propagation

    direct = {
        "available": available_bitsets(mutant_graph),
        "anticipatable": anticipatable_bitsets(mutant_graph),
        "liveness": liveness_bitsets(mutant_graph),
        "reaching": reaching_bitsets(mutant_graph),
        "constprop": cfg_constant_propagation(mutant_graph),
    }
    corpus = ArenaCorpus(ExpressionPool())
    corpus.add(mutant_graph, label="mutant")
    decoded = ArenaCorpus.from_bytes(corpus.to_bytes())
    results = analyze_corpus(decoded)["mutant"]
    checks = 0
    for name in sorted(direct):
        checks += 1
        if results[name] != direct[name]:
            return Verdict(
                "bytes-roundtrip", False, checks,
                detail=f"{name}: arena byte roundtrip diverges from the "
                       f"object-graph pipeline",
            )
    return Verdict("bytes-roundtrip", True, checks)


def _ssa_snapshot(ssa):
    """The full comparison surface of an SSA overlay: names at every
    def/use/entry site plus each phi's result and per-edge arguments."""
    return (
        sorted(ssa.def_names.items()),
        sorted(ssa.use_names.items()),
        sorted(ssa.entry_names.items()),
        sorted(
            (nid, var, phi.result, tuple(sorted(phi.args.items())))
            for nid, by_var in ssa.phis.items()
            for var, phi in by_var.items()
        ),
    )


def oracle_sparse_vs_dense(
    base_graph, mutant_graph, context: Mapping
) -> Verdict:
    """The PR-9 contract: sparse-engine clients equal their dense
    reference twins on the mutant."""
    from repro.controldep.ntscd import ntscd, ntscd_reference
    from repro.defuse.chains import (
        build_def_use_chains,
        build_def_use_chains_reference,
    )
    from repro.sparse.range_analysis import (
        range_analysis,
        range_analysis_reference,
    )
    from repro.sparse.taint import taint_analysis, taint_analysis_reference
    from repro.ssa.cytron import build_ssa_cytron, build_ssa_cytron_reference

    def chain_set(chains):
        return {(c.var, c.def_node, c.use_node) for c in chains.chains}

    pairs = {
        "chains": lambda g: chain_set(build_def_use_chains(g)),
        "chains-ref": lambda g: chain_set(build_def_use_chains_reference(g)),
        "ssa": lambda g: _ssa_snapshot(build_ssa_cytron(g)),
        "ssa-ref": lambda g: _ssa_snapshot(build_ssa_cytron_reference(g)),
        "ssa-pruned": lambda g: _ssa_snapshot(
            build_ssa_cytron(g, pruned=True)
        ),
        "ssa-pruned-ref": lambda g: _ssa_snapshot(
            build_ssa_cytron_reference(g, pruned=True)
        ),
        "range": lambda g: range_analysis(g).facts(),
        "range-ref": lambda g: range_analysis_reference(g).facts(),
        "taint": lambda g: taint_analysis(g).facts(),
        "taint-ref": lambda g: taint_analysis_reference(g).facts(),
        "ntscd": lambda g: ntscd(g).facts(),
        "ntscd-ref": lambda g: ntscd_reference(g).facts(),
    }
    checks = 0
    for client in ("chains", "ssa", "ssa-pruned", "range", "taint", "ntscd"):
        fast = pairs[client](mutant_graph)
        dense = pairs[f"{client}-ref"](mutant_graph)
        checks += 1
        if fast != dense:
            return Verdict(
                "sparse-vs-dense", False, checks,
                detail=f"{client}: sparse client diverges from its dense "
                       f"reference twin",
            )
    return Verdict("sparse-vs-dense", True, checks)


def dfg_digest(graph) -> str:
    """A stable digest of the DFG's ports, port order and head order."""
    manager = AnalysisManager(graph)
    dfg = manager.get("dfg")
    parts = []
    for port in dfg.ports():
        parts.append(repr(port))
        parts.extend(repr(head) for head in dfg.heads_of(port))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]


def oracle_determinism(base_graph, mutant_graph, context: Mapping) -> Verdict:
    """Two fresh DFG builds over copies of the mutant must serialize
    identically -- the port-order determinism contract."""
    first = dfg_digest(mutant_graph.copy())
    second = dfg_digest(mutant_graph.copy())
    if first != second:
        return Verdict(
            "determinism", False, 1,
            detail=f"DFG builds differ: {first} vs {second}",
        )
    return Verdict("determinism", True, 1)


#: The oracle registry, in check order.  ``io`` needs an executable
#: base program; the harness skips it (and only it) for the goto-soup
#: family, whose programs may loop forever by design.
ORACLES: dict[str, Callable] = {
    "io": oracle_io,
    "constprop": oracle_constprop,
    "dataflow": oracle_dataflow,
    "structure": oracle_structure,
    "determinism": oracle_determinism,
    "hierarchical-vs-flat": oracle_hierarchical_vs_flat,
    "bytes-roundtrip": oracle_bytes_roundtrip,
    "sparse-vs-dense": oracle_sparse_vs_dense,
}

#: Oracles that execute the program.
EXECUTION_ORACLES = frozenset(("io",))


def run_oracles(
    base_graph, mutant_graph, context: Mapping
) -> list[Verdict]:
    """Run every applicable oracle; a raising oracle becomes a failing
    ``crash`` verdict rather than taking down the trial."""
    verdicts: list[Verdict] = []
    for name, oracle in ORACLES.items():
        if name in EXECUTION_ORACLES and not context.get("executable", True):
            continue
        try:
            verdicts.append(oracle(base_graph, mutant_graph, context))
        except Exception as exc:
            verdicts.append(
                Verdict(
                    name, False, 1,
                    detail=f"oracle crashed: {type(exc).__name__}: {exc}",
                )
            )
    return verdicts
