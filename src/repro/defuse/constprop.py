"""Constant propagation over def-use chains (the ASU86 algorithm the
paper discusses in Sections 2.2 and 4).

A use is replaced by a constant when the right-hand sides of *all*
definitions reaching it evaluate to that constant.  Information flows
sparsely along chains -- the algorithm never touches unrelated statements
-- but it cannot ignore definitions in dead branches, so it finds only
*all-paths* constants: on Figure 3(b) it misses ``x = 1`` at the final
use, which both the CFG and DFG algorithms find.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.lattice import (
    BOTTOM,
    TOP,
    ConstValue,
    eval_abstract,
    join_all,
)
from repro.defuse.chains import DefUseChains, build_def_use_chains
from repro.util.counters import WorkCounter


@dataclass
class DefUseConstants:
    """Result of chain-based constant propagation.

    ``use_values[(node, var)]`` is the lattice value of each use;
    ``rhs_values[node]`` the folded value of each assignment's right-hand
    side (and of switch predicates / print arguments, keyed the same way).
    """

    use_values: dict[tuple[int, str], ConstValue] = field(default_factory=dict)
    rhs_values: dict[int, ConstValue] = field(default_factory=dict)

    def constant_uses(self) -> dict[tuple[int, str], int]:
        return {
            k: v
            for k, v in self.use_values.items()
            if v is not TOP and v is not BOTTOM
        }

    def constant_rhs(self) -> dict[int, int]:
        return {
            k: v
            for k, v in self.rhs_values.items()
            if v is not TOP and v is not BOTTOM
        }


def defuse_constant_propagation(
    graph: CFG,
    chains: DefUseChains | None = None,
    counter: WorkCounter | None = None,
) -> DefUseConstants:
    """Propagate constants along def-use chains to a fixpoint.

    Every use starts at BOTTOM; entry definitions (from ``start``) carry
    TOP.  When a definition's RHS value rises, the new value joins into
    every use its chains reach.  Work is proportional to chain traffic,
    not to program points -- but precision is all-paths only.
    """
    counter = counter if counter is not None else WorkCounter()
    chains = chains or build_def_use_chains(graph, counter)
    use_values: dict[tuple[int, str], ConstValue] = {}
    def_values: dict[int, ConstValue] = {}  # assignment node -> RHS value
    for node in graph.nodes.values():
        for var in node.uses():
            use_values[(node.id, var)] = BOTTOM

    def rhs_value(node_id: int) -> ConstValue:
        node = graph.node(node_id)
        assert node.expr is not None
        counter.tick("rhs_evaluations")
        return eval_abstract(
            node.expr, lambda v: use_values.get((node_id, v), TOP)
        )

    # Seed: every definition's current value flows to its uses.
    worklist: deque[tuple[str, int]] = deque()
    queued: set[tuple[str, int]] = set()
    for node in graph.assign_nodes():
        def_values[node.id] = rhs_value(node.id)
        key = (node.target, node.id)
        worklist.append(key)
        queued.add(key)
    entry_key: set[tuple[str, int]] = set()
    for var in sorted(graph.variables()):
        key = (var, graph.start)
        entry_key.add(key)
        worklist.append(key)
        queued.add(key)

    while worklist:
        var, def_node = worklist.popleft()
        queued.discard((var, def_node))
        counter.tick("chain_propagations")
        value = TOP if def_node == graph.start else def_values[def_node]
        for use_node in chains.uses_reached_by_def(def_node, var):
            counter.tick("use_updates")
            current = use_values[(use_node, var)]
            incoming = join_all(
                [current, value]
            )
            if incoming == current:
                continue
            use_values[(use_node, var)] = incoming
            use_kind = graph.node(use_node).kind
            if use_kind is NodeKind.ASSIGN:
                new_rhs = rhs_value(use_node)
                if new_rhs != def_values.get(use_node):
                    def_values[use_node] = new_rhs
                    target = graph.node(use_node).target
                    assert target is not None
                    key = (target, use_node)
                    if key not in queued:
                        queued.add(key)
                        worklist.append(key)

    result = DefUseConstants(use_values=use_values)
    for node in graph.nodes.values():
        if node.expr is not None:
            result.rhs_values[node.id] = eval_abstract(
                node.expr, lambda v, n=node.id: use_values.get((n, v), TOP)
            )
    return result
