"""Def-use chains via reaching definitions.

Definition 3: a chain connects a definition of ``x`` to a use of ``x``
reachable from it along a path free of other definitions of ``x``.  The
defining site may be ``start`` (the variable's entry value).

``size()`` counts chains, the quantity with the O(E^2 V) worst case that
motivates SSA's and the DFG's factored representations (experiment F1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.cfg.graph import CFG
from repro.dataflow.reaching import reaching_definitions
from repro.util.counters import WorkCounter


@dataclass(frozen=True)
class Chain:
    """One def-use chain: ``var`` flows from ``def_node`` to ``use_node``."""

    var: str
    def_node: int
    use_node: int


class DefUseChains:
    """All def-use chains of a CFG, indexed both ways."""

    def __init__(self, graph: CFG, chains: list[Chain]) -> None:
        self.graph = graph
        self.chains = chains
        self.by_use: dict[tuple[int, str], list[Chain]] = defaultdict(list)
        self.by_def: dict[tuple[int, str], list[Chain]] = defaultdict(list)
        for chain in chains:
            self.by_use[(chain.use_node, chain.var)].append(chain)
            self.by_def[(chain.def_node, chain.var)].append(chain)

    def defs_reaching_use(self, use_node: int, var: str) -> list[int]:
        return [c.def_node for c in self.by_use[(use_node, var)]]

    def uses_reached_by_def(self, def_node: int, var: str) -> list[int]:
        return [c.use_node for c in self.by_def[(def_node, var)]]

    def size(self) -> int:
        """Number of chains -- the representation-size measure of F1."""
        return len(self.chains)


def build_def_use_chains(
    graph: CFG, counter: WorkCounter | None = None
) -> DefUseChains:
    """Compute every def-use chain, sparsely.

    Since the sparse framework landed, this is a projection of the
    live-range-split form built by the parameterized engine with the
    no-split :class:`~repro.sparse.engine.DefUseStrategy`: the origins
    of the name each use consumes are exactly its reaching definitions.
    Chains come out canonically sorted by ``(use_node, var, def_node)``
    -- a strictly more deterministic order than the reference's
    hash-dependent frozenset iteration.  The dense construction from
    reaching definitions survives as
    :func:`build_def_use_chains_reference`; the chain *sets* are
    identical across the corpus (``tests/test_sparse_framework.py``).
    """
    from repro.sparse.engine import (
        DefUseStrategy,
        build_sparse_form,
        sparse_chain_items,
    )

    counter = counter if counter is not None else WorkCounter()
    form = build_sparse_form(graph, DefUseStrategy(), counter=counter)
    chains = [
        Chain(var, def_node, use_node)
        for var, def_node, use_node in sparse_chain_items(form)
    ]
    counter.tick("chains_built", len(chains))
    return DefUseChains(graph, chains)


def build_def_use_chains_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> DefUseChains:
    """The dense construction from the reaching-definitions solution,
    kept as the oracle for the sparse projection."""
    reach = reaching_definitions(graph, counter)
    chains: list[Chain] = []
    for node in graph.nodes.values():
        uses = node.uses()
        if not uses:
            continue
        incoming = graph.in_edges(node.id)
        seen: set[tuple[str, int]] = set()
        for edge in incoming:
            for var, def_node in reach[edge.id]:
                if var in uses and (var, def_node) not in seen:
                    seen.add((var, def_node))
                    chains.append(Chain(var, def_node, node.id))
    return DefUseChains(graph, chains)
