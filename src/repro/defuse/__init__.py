"""Def-use chains (Definitions 3-4) and chain-based constant propagation.

This is the first of the paper's three compared representations: precise
for forward propagation along chains, quadratic in the worst case
(O(E^2 V), Reif & Tarjan), unusable for backward problems, and blind to
dead branches (it finds *all-paths* constants only -- Section 4's
motivating deficiency)."""

from repro.defuse.chains import (
    DefUseChains,
    build_def_use_chains,
    build_def_use_chains_reference,
)
from repro.defuse.constprop import DefUseConstants, defuse_constant_propagation

__all__ = [
    "DefUseChains",
    "DefUseConstants",
    "build_def_use_chains",
    "build_def_use_chains_reference",
    "defuse_constant_propagation",
]
