"""Recursive-descent parser producing :mod:`repro.lang.ast_nodes` trees.

Grammar (EBNF)::

    program  ::= stmt*
    stmt     ::= IDENT ":=" expr ";"
               | IDENT "[" expr "]" ":=" expr ";"
               | "if" "(" expr ")" block ("else" block)?
               | "while" "(" expr ")" block
               | "repeat" block "until" "(" expr ")" ";"
               | "goto" IDENT ";"
               | "label" IDENT ":"
               | "skip" ";"
               | "print" expr ";"
    block    ::= "{" stmt* "}"
    expr     ::= or_expr
    or_expr  ::= and_expr ("||" and_expr)*
    and_expr ::= cmp_expr ("&&" cmp_expr)*
    cmp_expr ::= add_expr (("=="|"!="|"<"|"<="|">"|">=") add_expr)?
    add_expr ::= mul_expr (("+"|"-") mul_expr)*
    mul_expr ::= unary (("*"|"/"|"%") unary)*
    unary    ::= ("-"|"!") unary | atom
    atom     ::= INT | IDENT | IDENT "[" expr "]" | "(" expr ")"
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    Goto,
    If,
    Index,
    IntLit,
    Label,
    Print,
    Program,
    Repeat,
    Skip,
    Span,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {tok.text or 'end of input'!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def span_from(self, start: Token) -> Span:
        """The source region from ``start`` through the last consumed token."""
        end = self.tokens[self.pos - 1] if self.pos > 0 else start
        return Span.cover(start.span(), end.span())  # type: ignore[return-value]

    # -- statements --------------------------------------------------------

    def parse_program(self) -> Program:
        body = self.parse_stmts_until_eof()
        program = Program(body)
        if body:
            program.span = Span.cover(*(stmt.span for stmt in body))
        return program

    def parse_stmts_until_eof(self) -> list[Stmt]:
        stmts: list[Stmt] = []
        while not self.at("eof"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_block(self) -> list[Stmt]:
        self.expect("op", "{")
        stmts: list[Stmt] = []
        while not self.at("op", "}"):
            if self.at("eof"):
                tok = self.peek()
                raise ParseError("unterminated block", tok.line, tok.column)
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return stmts

    def parse_stmt(self) -> Stmt:
        start = self.peek()
        stmt = self._parse_stmt_body()
        stmt.span = self.span_from(start)
        return stmt

    def _parse_stmt_body(self) -> Stmt:
        tok = self.peek()
        if tok.kind == "keyword":
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                return self.parse_while()
            if tok.text == "repeat":
                return self.parse_repeat()
            if tok.text == "goto":
                self.advance()
                name = self.expect("ident").text
                self.expect("op", ";")
                return Goto(name)
            if tok.text == "label":
                self.advance()
                name = self.expect("ident").text
                self.expect("op", ":")
                return Label(name)
            if tok.text == "skip":
                self.advance()
                self.expect("op", ";")
                return Skip()
            if tok.text == "print":
                self.advance()
                expr = self.parse_expr()
                self.expect("op", ";")
                return Print(expr)
            raise ParseError(
                f"unexpected keyword {tok.text!r}", tok.line, tok.column
            )
        if tok.kind == "ident":
            name = self.advance().text
            if self.at("op", "["):
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                self.expect("op", ":=")
                expr = self.parse_expr()
                self.expect("op", ";")
                return Store(name, index, expr)
            self.expect("op", ":=")
            expr = self.parse_expr()
            self.expect("op", ";")
            return Assign(name, expr)
        raise ParseError(
            f"unexpected token {tok.text or 'end of input'!r}",
            tok.line,
            tok.column,
        )

    def parse_if(self) -> If:
        self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then_body = self.parse_block()
        else_body: list[Stmt] = []
        if self.at("keyword", "else"):
            self.advance()
            else_body = self.parse_block()
        return If(cond, then_body, else_body)

    def parse_while(self) -> While:
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_block()
        return While(cond, body)

    def parse_repeat(self) -> Repeat:
        self.expect("keyword", "repeat")
        body = self.parse_block()
        self.expect("keyword", "until")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return Repeat(body, cond)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.at("op", "||"):
            self.advance()
            right = self.parse_and()
            left = BinOp("||", left, right, span=Span.cover(left.span, right.span))
        return left

    def parse_and(self) -> Expr:
        left = self.parse_cmp()
        while self.at("op", "&&"):
            self.advance()
            right = self.parse_cmp()
            left = BinOp("&&", left, right, span=Span.cover(left.span, right.span))
        return left

    def parse_cmp(self) -> Expr:
        left = self.parse_add()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.at("op", op):
                self.advance()
                right = self.parse_add()
                return BinOp(op, left, right, span=Span.cover(left.span, right.span))
        return left

    def parse_add(self) -> Expr:
        left = self.parse_mul()
        while self.at("op", "+") or self.at("op", "-"):
            op = self.advance().text
            right = self.parse_mul()
            left = BinOp(op, left, right, span=Span.cover(left.span, right.span))
        return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        while self.at("op", "*") or self.at("op", "/") or self.at("op", "%"):
            op = self.advance().text
            right = self.parse_unary()
            left = BinOp(op, left, right, span=Span.cover(left.span, right.span))
        return left

    def parse_unary(self) -> Expr:
        if self.at("op", "-") or self.at("op", "!"):
            op_tok = self.advance()
            operand = self.parse_unary()
            return UnOp(
                op_tok.text, operand, span=Span.cover(op_tok.span(), operand.span)
            )
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return IntLit(int(tok.text), span=tok.span())
        if tok.kind == "ident":
            self.advance()
            if self.at("op", "["):
                self.advance()
                index = self.parse_expr()
                close = self.expect("op", "]")
                return Index(
                    tok.text, index, span=Span.cover(tok.span(), close.span())
                )
            return Var(tok.text, span=tok.span())
        if self.at("op", "("):
            self.advance()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(
            f"expected an expression, found {tok.text or 'end of input'!r}",
            tok.line,
            tok.column,
        )


def parse_program(source: str) -> Program:
    """Parse a whole program from source text.

    >>> prog = parse_program("x := 1; if (x) { y := x + 1; }")
    >>> len(prog.body)
    2
    """
    return _Parser(tokenize(source)).parse_program()


def parse_expr(source: str) -> Expr:
    """Parse a single expression from source text.

    >>> parse_expr("a + b * 2")
    BinOp(op='+', left=Var(name='a'), right=BinOp(op='*', left=Var(name='b'), right=IntLit(value=2)))
    """
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind != "eof":
        raise ParseError(
            f"trailing input after expression: {tok.text!r}", tok.line, tok.column
        )
    return expr
