"""Hand-written lexer for the small imperative language.

The token stream carries line/column positions so parse errors point at
the source.  Comments run from ``#`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast_nodes import Span
from repro.lang.errors import LexError

KEYWORDS = frozenset(
    ["if", "else", "while", "repeat", "until", "goto", "label", "skip", "print"]
)

#: Multi-character operators, longest first so maximal munch works.
_TWO_CHAR = (":=", "==", "!=", "<=", ">=", "&&", "||")
_ONE_CHAR = "+-*/%<>!(){};:,[]"


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``"int"``, ``"ident"``, ``"keyword"``, ``"op"``, or
    ``"eof"``; ``text`` is the matched source text.
    """

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @{self.line}:{self.column})"

    def span(self) -> Span:
        """The source region covered by this token (single line by
        construction -- no token spans a newline)."""
        return Span(self.line, self.column, self.line, self.column + len(self.text))


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into a token list ending with an ``eof`` token.

    >>> [t.text for t in tokenize("x := 1;")[:-1]]
    ['x', ':=', '1', ';']
    """
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            tokens.append(Token("int", text, line, col))
            col += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("op", two, line, col))
            i += 2
            col += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token("op", ch, line, col))
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
