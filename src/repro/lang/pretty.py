"""Unparser: render AST back to concrete syntax.

``parse_program(pretty_program(p))`` round-trips (tested property-based),
which makes generated workloads and transformed programs inspectable.
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    Goto,
    If,
    Index,
    IntLit,
    Label,
    Print,
    Program,
    Repeat,
    Skip,
    Stmt,
    Store,
    UnOp,
    Update,
    Var,
    While,
)

#: Operator precedence levels, matching the parser (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
}
_UNARY_LEVEL = 6


def pretty_expr(expr: Expr) -> str:
    """Render an expression with minimal parentheses.

    >>> from repro.lang.parser import parse_expr
    >>> pretty_expr(parse_expr("(a + b) * c"))
    '(a + b) * c'
    >>> pretty_expr(parse_expr("a + (b * c)"))
    'a + b * c'
    """
    return _render(expr, 0)


def _render(expr: Expr, parent_level: int) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Index):
        return f"{expr.array}[{_render(expr.index, 0)}]"
    if isinstance(expr, Update):
        # No concrete syntax: updates only appear in lowered CFG nodes.
        return (
            f"update({expr.array}, {_render(expr.index, 0)}, "
            f"{_render(expr.value, 0)})"
        )
    if isinstance(expr, UnOp):
        inner = _render(expr.operand, _UNARY_LEVEL)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_level > _UNARY_LEVEL else text
    if isinstance(expr, BinOp):
        level = _PRECEDENCE[expr.op]
        # Left-associative grammar: the right child needs parens at equal
        # precedence; comparisons are non-associative so both sides do.
        non_assoc = level == 3
        left = _render(expr.left, level + 1 if non_assoc else level)
        right = _render(expr.right, level + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_level > level else text
    raise TypeError(f"not an expression: {expr!r}")


def pretty_program(program: Program, indent: str = "    ") -> str:
    """Render a whole program, one statement per line."""
    lines: list[str] = []
    _render_stmts(program.body, lines, 0, indent)
    return "\n".join(lines) + ("\n" if lines else "")


def _render_stmts(
    stmts: list[Stmt], lines: list[str], depth: int, indent: str
) -> None:
    pad = indent * depth
    for stmt in stmts:
        if isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.target} := {pretty_expr(stmt.expr)};")
        elif isinstance(stmt, Store):
            lines.append(
                f"{pad}{stmt.array}[{pretty_expr(stmt.index)}] := "
                f"{pretty_expr(stmt.expr)};"
            )
        elif isinstance(stmt, Print):
            lines.append(f"{pad}print {pretty_expr(stmt.expr)};")
        elif isinstance(stmt, Skip):
            lines.append(f"{pad}skip;")
        elif isinstance(stmt, Goto):
            lines.append(f"{pad}goto {stmt.label};")
        elif isinstance(stmt, Label):
            lines.append(f"{pad}label {stmt.name}:")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if ({pretty_expr(stmt.cond)}) {{")
            _render_stmts(stmt.then_body, lines, depth + 1, indent)
            if stmt.else_body:
                lines.append(f"{pad}}} else {{")
                _render_stmts(stmt.else_body, lines, depth + 1, indent)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, While):
            lines.append(f"{pad}while ({pretty_expr(stmt.cond)}) {{")
            _render_stmts(stmt.body, lines, depth + 1, indent)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, Repeat):
            lines.append(f"{pad}repeat {{")
            _render_stmts(stmt.body, lines, depth + 1, indent)
            lines.append(f"{pad}}} until ({pretty_expr(stmt.cond)});")
        else:
            raise TypeError(f"not a statement: {stmt!r}")
