"""Exception hierarchy for the language frontend and interpreter."""

from __future__ import annotations


class LangError(Exception):
    """Base class for all frontend/interpreter errors."""


class LexError(LangError):
    """Raised on an unrecognizable character sequence.

    Carries the offending position so tooling can point at the source.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class ParseError(LangError):
    """Raised when the token stream does not form a valid program."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class InterpError(LangError):
    """Raised on a runtime error (division by zero, missing label, ...)."""


class StepLimitExceeded(InterpError):
    """Raised when an execution exceeds its step budget (likely a loop)."""
