"""Abstract syntax for the small imperative language.

Expressions are immutable (frozen dataclasses) so they can serve directly
as the *lexical expressions* of the redundancy-elimination analyses: two
occurrences of ``a + b`` are equal and hash alike, which is exactly the
notion of "the same expression" used by available-expressions,
anticipatability (Section 5 of the paper) and partial redundancy
elimination.

Statements form a conventional tree.  ``goto``/``label`` exist so that
arbitrary control flow -- including the irreducible graphs that defeat
purely structural analyses -- can be expressed; everything in the paper is
defined on general CFGs and our implementation must be too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

# --------------------------------------------------------------------------
# Source spans
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """A half-open source region: (line, column) .. (end_line, end_column).

    Lines and columns are 1-based, matching the lexer's token positions.
    Spans ride along on every AST node (and from there on CFG nodes), so
    analyses can report findings against real source locations.  They are
    deliberately excluded from node equality and hashing: two occurrences
    of ``a + b`` at different positions must still be *the same lexical
    expression* for the redundancy analyses.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    @staticmethod
    def cover(*spans: "Span | None") -> "Span | None":
        """The smallest span containing every given span (None-tolerant:
        programmatically built subtrees without positions yield None)."""
        present = [s for s in spans if s is not None]
        if len(present) != len(spans) or not present:
            return None
        start = min((s.line, s.column) for s in present)
        end = max((s.end_line, s.end_column) for s in present)
        return Span(start[0], start[1], end[0], end[1])

    def as_dict(self) -> dict[str, int]:
        return {
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


#: The span field shared by every AST node: never part of equality,
#: hashing or the repr, so positional metadata cannot perturb the value
#: semantics the analyses rely on.
def _span_field():
    return field(default=None, compare=False, repr=False)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

#: Binary operators, in the concrete syntax spelling.
BINARY_OPS = ("+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||")

#: Unary operators.
UNARY_OPS = ("-", "!")


@dataclass(frozen=True)
class IntLit:
    """An integer literal."""

    value: int
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class Var:
    """A variable reference."""

    name: str
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class BinOp:
    """A binary operation ``left op right``."""

    op: str
    left: "Expr"
    right: "Expr"
    span: Optional[Span] = _span_field()

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class UnOp:
    """A unary operation ``op operand``."""

    op: str
    operand: "Expr"
    span: Optional[Span] = _span_field()

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class Index:
    """An array load ``array[index]``.

    Arrays are the Section 6 extension ("aliasing, data structures ...").
    Following the authors' treatment in [BJP91], the array name is an
    ordinary variable holding the whole aggregate, so a load *uses* the
    array variable and every analysis handles it with the scalar
    machinery.
    """

    array: str
    index: "Expr"
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class Update:
    """A whole-array functional update ``update(array, index, value)``.

    An array store ``a[i] := v`` is represented in the CFG as the
    assignment ``a := update(a, i, v)``: the store *uses* the old array
    and *defines* the new one.  Anti- and output dependences between
    stores, and the interception of array dependences at switches and
    merges, then fall out of the unmodified scalar dependence rules --
    exactly the simplification the paper credits to this encoding.
    """

    array: str
    index: "Expr"
    value: "Expr"
    span: Optional[Span] = _span_field()


Expr = Union[IntLit, Var, BinOp, UnOp, Index, Update]


def expr_vars(expr: Expr) -> frozenset[str]:
    """The set of variable names occurring in ``expr``.

    This is the ``Vars(e)`` function used throughout the dataflow analyses:
    an assignment to any member kills availability/anticipatability of the
    expression.  Array loads and updates mention the array variable, so a
    store to the array kills every expression reading it -- the sound
    conservative treatment of [BJP91].
    """
    if isinstance(expr, IntLit):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, UnOp):
        return expr_vars(expr.operand)
    if isinstance(expr, BinOp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    if isinstance(expr, Index):
        return frozenset((expr.array,)) | expr_vars(expr.index)
    if isinstance(expr, Update):
        return (
            frozenset((expr.array,))
            | expr_vars(expr.index)
            | expr_vars(expr.value)
        )
    raise TypeError(f"not an expression: {expr!r}")


def subexpressions(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every nested subexpression, outermost first."""
    yield expr
    if isinstance(expr, UnOp):
        yield from subexpressions(expr.operand)
    elif isinstance(expr, BinOp):
        yield from subexpressions(expr.left)
        yield from subexpressions(expr.right)
    elif isinstance(expr, Index):
        yield from subexpressions(expr.index)
    elif isinstance(expr, Update):
        yield from subexpressions(expr.index)
        yield from subexpressions(expr.value)


def is_trivial(expr: Expr) -> bool:
    """True for expressions with no operator (literals and bare variables).

    Trivial expressions are never candidates for redundancy elimination --
    re-evaluating them costs nothing.
    """
    return isinstance(expr, (IntLit, Var))


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Assign:
    """``target := expr;``"""

    target: str
    expr: Expr
    span: Optional[Span] = _span_field()


@dataclass
class Store:
    """``array[index] := expr;`` -- an array store.

    The CFG builder lowers it to ``array := update(array, index, expr)``
    (see :class:`Update`).
    """

    array: str
    index: Expr
    expr: Expr
    span: Optional[Span] = _span_field()


@dataclass
class Print:
    """``print expr;`` -- the language's only observable output."""

    expr: Expr
    span: Optional[Span] = _span_field()


@dataclass
class Skip:
    """``skip;`` -- no effect."""

    span: Optional[Span] = _span_field()


@dataclass
class If:
    """``if (cond) { then } else { els }``; ``els`` may be empty."""

    cond: Expr
    then_body: list["Stmt"] = field(default_factory=list)
    else_body: list["Stmt"] = field(default_factory=list)
    span: Optional[Span] = _span_field()


@dataclass
class While:
    """``while (cond) { body }``"""

    cond: Expr
    body: list["Stmt"] = field(default_factory=list)
    span: Optional[Span] = _span_field()


@dataclass
class Repeat:
    """``repeat { body } until (cond);`` -- body runs at least once.

    Included because the paper calls out ``repeat-until`` back edges
    (switch-source to merge-target edges) as the classic complication for
    node-based PRE that the edge-based DFG formulation avoids.
    """

    body: list["Stmt"] = field(default_factory=list)
    cond: Expr = IntLit(1)
    span: Optional[Span] = _span_field()


@dataclass
class Goto:
    """``goto L;``"""

    label: str
    span: Optional[Span] = _span_field()


@dataclass
class Label:
    """``label L:`` -- a jump target."""

    name: str
    span: Optional[Span] = _span_field()


Stmt = Union[Assign, Store, Print, Skip, If, While, Repeat, Goto, Label]


@dataclass
class Program:
    """A whole program: a statement list."""

    body: list[Stmt] = field(default_factory=list)
    span: Optional[Span] = _span_field()

    def walk(self) -> Iterator[Stmt]:
        """Yield every statement in the program, pre-order."""
        yield from _walk_stmts(self.body)


def _walk_stmts(stmts: list[Stmt]) -> Iterator[Stmt]:
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk_stmts(stmt.then_body)
            yield from _walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from _walk_stmts(stmt.body)
        elif isinstance(stmt, Repeat):
            yield from _walk_stmts(stmt.body)


def program_vars(program: Program) -> frozenset[str]:
    """All variable names mentioned anywhere in the program."""
    names: set[str] = set()
    for stmt in program.walk():
        if isinstance(stmt, Assign):
            names.add(stmt.target)
            names |= expr_vars(stmt.expr)
        elif isinstance(stmt, Store):
            names.add(stmt.array)
            names |= expr_vars(stmt.index) | expr_vars(stmt.expr)
        elif isinstance(stmt, Print):
            names |= expr_vars(stmt.expr)
        elif isinstance(stmt, If):
            names |= expr_vars(stmt.cond)
        elif isinstance(stmt, (While, Repeat)):
            names |= expr_vars(stmt.cond)
    return frozenset(names)


def program_labels(program: Program) -> frozenset[str]:
    """All label names declared in the program."""
    return frozenset(
        stmt.name for stmt in program.walk() if isinstance(stmt, Label)
    )
