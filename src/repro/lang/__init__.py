"""A small imperative language: the programs the analyses operate on.

The paper's analyses are defined over control flow graphs, but every real
compiler starts from source text.  This package provides:

* :mod:`repro.lang.ast_nodes` -- expression and statement AST,
* :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` -- concrete syntax,
* :mod:`repro.lang.pretty` -- an unparser,
* :mod:`repro.lang.interp` -- a counting reference interpreter used to
  verify that optimizations preserve observable behaviour and do not add
  expression evaluations to any path (the Morel-Renvoise safety criterion).

The language is deliberately minimal (integer variables, structured control
flow, plus ``goto``/``label`` so that arbitrary -- including irreducible --
control flow graphs can be written down).
"""

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Goto,
    If,
    IntLit,
    Label,
    Print,
    Program,
    Repeat,
    Skip,
    UnOp,
    Var,
    While,
)
from repro.lang.errors import LangError, LexError, ParseError
from repro.lang.interp import ExecutionResult, Interpreter, run_program
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import pretty_expr, pretty_program

__all__ = [
    "Assign",
    "BinOp",
    "ExecutionResult",
    "Goto",
    "If",
    "IntLit",
    "Interpreter",
    "Label",
    "LangError",
    "LexError",
    "ParseError",
    "Print",
    "Program",
    "Repeat",
    "Skip",
    "Token",
    "UnOp",
    "Var",
    "While",
    "parse_expr",
    "parse_program",
    "pretty_expr",
    "pretty_program",
    "run_program",
    "tokenize",
]
