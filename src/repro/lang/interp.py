"""Counting reference interpreter.

The interpreter is the ground truth for every program transformation in
this project: an optimization is correct when, for every input, the
optimized program prints the same outputs as the original.  For partial
redundancy elimination the interpreter also provides the Morel-Renvoise
safety/profitability measure -- it counts how many times each *lexical
expression* (e.g. ``a + b``) is evaluated during a run, so tests can check
that no execution evaluates an expression more often after optimization.

Because the language has ``goto``, direct tree-walking is awkward (a jump
may land inside a nested loop body).  Execution therefore proceeds in two
stages: :func:`flatten` compiles the statement tree to a flat list of
:class:`Instruction` records with resolved jump targets, and
:class:`Interpreter` executes that list.  This keeps the interpreter
independent of the CFG builder, so agreement between AST execution and CFG
execution is a meaningful differential test.

Semantics
---------
* All values are Python integers (arbitrary precision).
* Zero is false, anything else is true; comparisons and logical operators
  yield 0/1.  ``&&``/``||`` are *strict* (both operands evaluated), which
  keeps expression-evaluation counting simple and matches the treatment of
  expressions as pure values in the analyses.
* ``/`` is floor division and ``%`` its matching remainder; dividing by
  zero raises :class:`~repro.lang.errors.InterpError`.
* Reading a never-assigned variable yields its value from the initial
  environment, or 0 when absent.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    Goto,
    If,
    Index,
    IntLit,
    Label,
    Print,
    Program,
    Repeat,
    Skip,
    Span,
    Stmt,
    Store,
    UnOp,
    Update,
    Var,
    While,
    is_trivial,
)
from repro.lang.errors import InterpError, StepLimitExceeded

# --------------------------------------------------------------------------
# Expression evaluation
# --------------------------------------------------------------------------


def eval_expr(
    expr: Expr,
    env: Mapping[str, int],
    counts: Counter | None = None,
) -> int:
    """Evaluate ``expr`` in ``env``.

    When ``counts`` is given, every *non-trivial* (sub)expression evaluated
    is tallied under its AST value, so ``counts[parse_expr("a + b")]`` is
    the number of times ``a + b`` was computed.

    Array values are immutable mappings from integer indices to integers;
    ``Index`` reads one (missing elements are 0) and ``Update`` builds a
    new mapping -- the functional-update encoding of array stores.
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Var):
        return env.get(expr.name, 0)
    if isinstance(expr, UnOp):
        value = _scalar(eval_expr(expr.operand, env, counts))
        if counts is not None:
            counts[expr] += 1
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return 0 if value else 1
        raise InterpError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, env, counts)
        right = eval_expr(expr.right, env, counts)
        if counts is not None:
            counts[expr] += 1
        return apply_binop(expr.op, left, right)
    if isinstance(expr, Index):
        array = _array(env.get(expr.array, {}), expr.array)
        position = _scalar(eval_expr(expr.index, env, counts))
        if counts is not None:
            counts[expr] += 1
        return array.get(position, 0)
    if isinstance(expr, Update):
        array = _array(env.get(expr.array, {}), expr.array)
        position = _scalar(eval_expr(expr.index, env, counts))
        value = _scalar(eval_expr(expr.value, env, counts))
        if counts is not None:
            counts[expr] += 1
        updated = dict(array)
        updated[position] = value
        return updated
    raise InterpError(f"not an expression: {expr!r}")


def _scalar(value) -> int:
    if isinstance(value, dict):
        raise InterpError("array value used where a scalar is required")
    return value


def _array(value, name: str) -> dict:
    if isinstance(value, dict):
        return value
    if value == 0:
        return {}  # an unbound variable defaults to the empty array
    raise InterpError(f"scalar value of {name!r} used as an array")


def apply_binop(op: str, left: int, right: int) -> int:
    """Apply a binary operator to two integer values."""
    _scalar(left)
    _scalar(right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise InterpError("division by zero")
        return left // right
    if op == "%":
        if right == 0:
            raise InterpError("modulo by zero")
        return left % right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise InterpError(f"unknown binary operator {op!r}")


# --------------------------------------------------------------------------
# Flattening to jump code
# --------------------------------------------------------------------------


@dataclass
class AssignInstr:
    target: str
    expr: Expr
    span: "Span | None" = None


@dataclass
class PrintInstr:
    expr: Expr
    span: "Span | None" = None


@dataclass
class BranchInstr:
    """Fall through to the next instruction when ``cond`` is true;
    jump to ``target`` when it is false."""

    cond: Expr
    target: int = -1
    span: "Span | None" = None


@dataclass
class JumpInstr:
    target: int = -1


Instruction = Union[AssignInstr, PrintInstr, BranchInstr, JumpInstr]


def flatten(program: Program) -> list[Instruction]:
    """Compile the statement tree into a flat jump-code instruction list."""
    instrs: list[Instruction] = []
    label_at: dict[str, int] = {}
    pending_gotos: list[tuple[JumpInstr, str]] = []

    def emit(stmts: list[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                instrs.append(AssignInstr(stmt.target, stmt.expr, span=stmt.span))
            elif isinstance(stmt, Store):
                # a[i] := v lowers to a := update(a, i, v): the store uses
                # the old array and defines the new one ([BJP91]).
                instrs.append(
                    AssignInstr(
                        stmt.array,
                        Update(stmt.array, stmt.index, stmt.expr, span=stmt.span),
                        span=stmt.span,
                    )
                )
            elif isinstance(stmt, Print):
                instrs.append(PrintInstr(stmt.expr, span=stmt.span))
            elif isinstance(stmt, Skip):
                pass
            elif isinstance(stmt, Label):
                if stmt.name in label_at:
                    raise InterpError(f"duplicate label {stmt.name!r}")
                label_at[stmt.name] = len(instrs)
            elif isinstance(stmt, Goto):
                jump = JumpInstr()
                pending_gotos.append((jump, stmt.label))
                instrs.append(jump)
            elif isinstance(stmt, If):
                branch = BranchInstr(stmt.cond, span=stmt.cond.span or stmt.span)
                instrs.append(branch)
                emit(stmt.then_body)
                if stmt.else_body:
                    exit_jump = JumpInstr()
                    instrs.append(exit_jump)
                    branch.target = len(instrs)
                    emit(stmt.else_body)
                    exit_jump.target = len(instrs)
                else:
                    branch.target = len(instrs)
            elif isinstance(stmt, While):
                top = len(instrs)
                branch = BranchInstr(stmt.cond, span=stmt.cond.span or stmt.span)
                instrs.append(branch)
                emit(stmt.body)
                instrs.append(JumpInstr(top))
                branch.target = len(instrs)
            elif isinstance(stmt, Repeat):
                top = len(instrs)
                emit(stmt.body)
                # Fall through (exit) when the until-condition holds;
                # otherwise jump back to the top of the body.
                instrs.append(
                    BranchInstr(stmt.cond, top, span=stmt.cond.span or stmt.span)
                )
            else:
                raise InterpError(f"not a statement: {stmt!r}")

    emit(program.body)
    for jump, name in pending_gotos:
        if name not in label_at:
            raise InterpError(f"goto to undeclared label {name!r}")
        jump.target = label_at[name]
    return instrs


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------


@dataclass
class ExecutionResult:
    """Everything observable about one run.

    ``trace`` is populated by the CFG interpreter only: the sequence of
    node ids visited, which the test suite uses to validate path-sensitive
    dataflow claims against real executions.
    """

    outputs: list[int]
    env: dict[str, int]
    steps: int
    eval_counts: Counter = field(default_factory=Counter)
    trace: list[int] = field(default_factory=list)

    def evaluations_of(self, expr: Expr) -> int:
        """How many times the lexical expression ``expr`` was computed."""
        if is_trivial(expr):
            raise ValueError("evaluation counting covers non-trivial expressions")
        return self.eval_counts[expr]


class Interpreter:
    """Execute a program under a step budget.

    >>> from repro.lang.parser import parse_program
    >>> prog = parse_program("x := 2; while (x > 0) { x := x - 1; } print x;")
    >>> Interpreter(prog).run().outputs
    [0]
    """

    def __init__(self, program: Program, max_steps: int = 100_000) -> None:
        self.instrs = flatten(program)
        self.max_steps = max_steps

    def run(self, env: Mapping[str, int] | None = None) -> ExecutionResult:
        state: dict[str, int] = dict(env or {})
        counts: Counter = Counter()
        outputs: list[int] = []
        pc = 0
        steps = 0
        n = len(self.instrs)
        while pc < n:
            steps += 1
            if steps > self.max_steps:
                raise StepLimitExceeded(
                    f"exceeded {self.max_steps} steps (infinite loop?)"
                )
            instr = self.instrs[pc]
            if isinstance(instr, AssignInstr):
                state[instr.target] = eval_expr(instr.expr, state, counts)
                pc += 1
            elif isinstance(instr, PrintInstr):
                value = eval_expr(instr.expr, state, counts)
                if isinstance(value, dict):
                    raise InterpError("cannot print an array value")
                outputs.append(value)
                pc += 1
            elif isinstance(instr, BranchInstr):
                taken = _scalar(eval_expr(instr.cond, state, counts))
                pc = pc + 1 if taken else instr.target
            elif isinstance(instr, JumpInstr):
                pc = instr.target
            else:
                raise InterpError(f"bad instruction {instr!r}")
        return ExecutionResult(outputs, state, steps, counts)


def run_program(
    program: Program,
    env: Mapping[str, int] | None = None,
    max_steps: int = 100_000,
) -> ExecutionResult:
    """Convenience wrapper: flatten and run in one call."""
    return Interpreter(program, max_steps=max_steps).run(env)
