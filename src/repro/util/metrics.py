"""The metrics layer: work counters + wall-clock timers + trace spans.

The paper's complexity claims are about machine-independent *work*
(:class:`repro.util.counters.WorkCounter`); the ROADMAP's "fast as the
hardware allows" goal is about wall-clock time.  :class:`Metrics` binds
the two: every instrumented phase runs inside a :meth:`Metrics.span`,
which records its duration and -- via ``snapshot``/``diff`` on the shared
counter -- exactly the work units ticked while it was open.  Chalupa et
al. (*Fast Computation of Strong Control Dependencies*) report both for
the same reason: operation counts survive hardware changes, wall-clock
keeps the constant factors honest.

Spans nest (the ``depth`` field records how deeply) and serialize to the
JSON consumed by ``repro trace``; :meth:`Metrics.as_dict` is the schema
pinned by the golden CLI tests.  The clock is injectable so tests can
make durations deterministic.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.util.counters import WorkCounter


@dataclass
class Span:
    """One timed phase: name, nesting depth, when, how long, what work.

    ``cached`` distinguishes a pass served from the
    :class:`~repro.pipeline.manager.AnalysisManager` cache (``True``)
    from a real computation (``False``); plain timing spans leave it
    ``None``.
    """

    name: str
    depth: int
    start: float
    duration: float = 0.0
    work: dict[str, int] = field(default_factory=dict)
    cached: bool | None = None

    def as_dict(self) -> dict:
        entry = {
            "name": self.name,
            "depth": self.depth,
            "start_ms": round(self.start * 1e3, 3),
            "dur_ms": round(self.duration * 1e3, 3),
            "work": dict(sorted(self.work.items())),
        }
        if self.cached is not None:
            entry["cached"] = self.cached
        return entry


class Metrics:
    """Shared work counter, per-name wall-clock totals, and a span trace.

    >>> m = Metrics(clock=iter(range(100)).__next__)
    >>> with m.span("outer"):
    ...     m.counter.tick("steps", 5)
    ...     with m.span("inner"):
    ...         m.counter.tick("steps", 2)
    >>> [(s.name, s.depth, s.work) for s in m.spans]
    [('inner', 1, {'steps': 2}), ('outer', 0, {'steps': 7})]
    >>> m.wall_of("outer") > m.wall_of("inner")
    True
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        counter: WorkCounter | None = None,
    ) -> None:
        #: ``counter`` lets a caller that already owns a WorkCounter (the
        #: optimizer's report, a benchmark) have all span work land there.
        self.counter = counter if counter is not None else WorkCounter()
        self._clock = clock
        self._epoch = clock()
        self.spans: list[Span] = []
        self._depth = 0
        self._wall: dict[str, float] = {}
        #: Structured ``repro.incident/1`` records (dicts) mirrored here
        #: by :class:`repro.robust.incidents.IncidentLog` so one trace
        #: document carries both timings and degradations.
        self.incidents: list[dict] = []

    def record_incident(self, record: dict) -> None:
        """Append a structured incident record and tick its kind counter."""
        self.incidents.append(record)
        self.counter.tick(f"incident:{record.get('kind', 'unknown')}")

    @contextmanager
    def span(self, name: str, cached: bool | None = None) -> Iterator[Span]:
        """Time a phase; attributes counter ticks made while it is open.

        Nested spans overlap: a parent's work includes its children's
        (per-pass attribution in the pipeline manager avoids the overlap
        by resolving dependencies *before* opening the parent's span).
        """
        start = self._clock()
        before = self.counter.snapshot()
        span = Span(name, self._depth, start - self._epoch, cached=cached)
        self._depth += 1
        try:
            yield span
        finally:
            self._depth -= 1
            span.duration = self._clock() - start
            span.work = self.counter.diff(before)
            self._wall[name] = self._wall.get(name, 0.0) + span.duration
            self.spans.append(span)

    def wall_of(self, name: str) -> float:
        """Total seconds spent in spans named ``name``."""
        return self._wall.get(name, 0.0)

    def as_dict(self) -> dict:
        """The trace document: spans in start order plus work totals.

        ``incidents`` appears only when degradations occurred, keeping
        clean-run documents byte-identical to the pre-robustness schema.
        """
        doc = {
            "spans": [
                s.as_dict()
                for s in sorted(self.spans, key=lambda s: (s.start, s.depth))
            ],
            "work": self.counter.as_dict(),
            "work_total": self.counter.total(),
        }
        if self.incidents:
            doc["incidents"] = list(self.incidents)
        return doc

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)
