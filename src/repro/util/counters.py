"""Instrumentation counters for machine-independent work measurements.

The complexity claims of the paper (Sections 3-5) are about *work*: the
CFG constant-propagation algorithm performs O(V) work each time a node is
processed, while the DFG algorithm performs work only for the relevant
dependences.  Wall-clock time on a modern machine is dominated by constant
factors, so every fixpoint solver in this project also counts abstract work
units through a :class:`WorkCounter`.  Benchmarks report both.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Iterator


class WorkCounter:
    """A named multi-counter with a tiny convenience API.

    >>> w = WorkCounter()
    >>> w.tick("node_visits")
    >>> w.tick("lattice_ops", 3)
    >>> w["node_visits"], w["lattice_ops"]
    (1, 3)
    >>> w["missing"]
    0

    ``snapshot``/``diff`` attribute work to a phase of a larger
    computation that ticks into one shared counter:

    >>> before = w.snapshot()
    >>> w.tick("node_visits", 2)
    >>> w.diff(before)
    {'node_visits': 2}

    ``scoped`` hands a nested solver its own counter and folds it in
    exactly once on exit -- the safe alternative to passing the shared
    counter down *and* calling :meth:`merge` afterwards, which counts the
    nested work twice:

    >>> with w.scoped() as local:
    ...     local.tick("node_visits")
    >>> w["node_visits"]
    4
    """

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def tick(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` units of work under ``name``."""
        self._counts[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counts[name]

    def total(self) -> int:
        """Sum of all work units across every counter name."""
        return sum(self._counts.values())

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters as a plain dict."""
        return dict(self._counts)

    def merge(self, other: "WorkCounter") -> None:
        """Fold another counter's totals into this one."""
        self._counts.update(other._counts)

    def snapshot(self) -> dict[str, int]:
        """A frozen view of the current totals, for later :meth:`diff`."""
        return dict(self._counts)

    def diff(self, since: dict[str, int]) -> dict[str, int]:
        """Work done since ``since`` (a :meth:`snapshot`); zero-delta
        names are omitted, so no work at all diffs to ``{}``."""
        return {
            name: count - since.get(name, 0)
            for name, count in self._counts.items()
            if count != since.get(name, 0)
        }

    @contextmanager
    def scoped(self) -> Iterator["WorkCounter"]:
        """A child counter that merges into this one exactly once on exit."""
        child = WorkCounter()
        try:
            yield child
        finally:
            self.merge(child)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"WorkCounter({inner})"
