"""Small shared utilities: instrumentation counters and ordering helpers."""

from repro.util.counters import WorkCounter

__all__ = ["WorkCounter"]
