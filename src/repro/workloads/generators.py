"""Seeded random program generators.

All generators take either a seed or a :class:`random.Random` so every
workload is reproducible.  Generated ``while``/``repeat`` loops carry a
fuel counter, making every generated program terminate on every input --
a property the differential-execution tests rely on.
"""

from __future__ import annotations

import random

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    Expr,
    Goto,
    If,
    IntLit,
    Label,
    Print,
    Program,
    Repeat,
    Stmt,
    Var,
    While,
)

_ARITH_OPS = ("+", "-", "*", "/", "%")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_expr(
    seed: int | random.Random,
    variables: list[str],
    depth: int = 2,
    comparison: bool = False,
) -> Expr:
    """A random arithmetic (or, with ``comparison=True``, boolean)
    expression over ``variables``.

    Division and modulo right operands are shifted away from zero so the
    expression never traps, keeping generated programs total.
    """
    rng = _rng(seed)

    def arith(d: int) -> Expr:
        if d <= 0 or rng.random() < 0.3:
            if variables and rng.random() < 0.7:
                return Var(rng.choice(variables))
            return IntLit(rng.randint(0, 9))
        op = rng.choice(_ARITH_OPS)
        left = arith(d - 1)
        right = arith(d - 1)
        if op in ("/", "%"):
            # `r*r + 1` is always positive: no division by zero.
            right = BinOp("+", BinOp("*", right, right), IntLit(1))
        return BinOp(op, left, right)

    if comparison:
        return BinOp(rng.choice(_CMP_OPS), arith(depth - 1), arith(depth - 1))
    return arith(depth)


def random_program(
    seed: int | random.Random,
    size: int = 20,
    num_vars: int = 4,
    max_depth: int = 3,
    loop_fuel: int = 8,
    print_prob: float = 0.15,
) -> Program:
    """A random structured program with ~``size`` statements.

    Loops are bounded by fuel counters (fresh variables), so the program
    terminates on all inputs.  The final statements print every variable,
    making the whole store observable.
    """
    rng = _rng(seed)
    variables = [f"v{i}" for i in range(num_vars)]
    fuel_counter = [0]

    def gen_stmts(budget: int, depth: int) -> list[Stmt]:
        stmts: list[Stmt] = []
        while budget > 0:
            roll = rng.random()
            if depth >= max_depth or roll < 0.55 or budget < 4:
                target = rng.choice(variables)
                stmts.append(
                    Assign(target, random_expr(rng, variables, depth=2))
                )
                budget -= 1
                if rng.random() < print_prob:
                    stmts.append(Print(Var(rng.choice(variables))))
            elif roll < 0.8:
                cond = random_expr(rng, variables, comparison=True)
                inner = max(1, budget // 2)
                then_body = gen_stmts(rng.randint(1, inner), depth + 1)
                else_body = (
                    gen_stmts(rng.randint(1, inner), depth + 1)
                    if rng.random() < 0.6
                    else []
                )
                stmts.append(If(cond, then_body, else_body))
                budget -= 2 + len(then_body) + len(else_body)
            else:
                fuel = f"fuel{fuel_counter[0]}"
                fuel_counter[0] += 1
                inner = max(1, budget // 2)
                body = gen_stmts(rng.randint(1, inner), depth + 1)
                body.append(Assign(fuel, BinOp("-", Var(fuel), IntLit(1))))
                guard = BinOp(
                    "&&",
                    random_expr(rng, variables, comparison=True),
                    BinOp(">", Var(fuel), IntLit(0)),
                )
                init = Assign(fuel, IntLit(rng.randint(1, loop_fuel)))
                if rng.random() < 0.5:
                    stmts.extend([init, While(guard, body)])
                else:
                    until = BinOp(
                        "||",
                        random_expr(rng, variables, comparison=True),
                        BinOp("<=", Var(fuel), IntLit(0)),
                    )
                    stmts.extend([init, Repeat(body, until)])
                budget -= 3 + len(body)
        return stmts

    body = gen_stmts(size, 0)
    for name in variables:
        body.append(Print(Var(name)))
    return Program(body)


def inline_expansion_program(
    seed: int | random.Random,
    calls: int = 5,
    num_vars: int = 3,
) -> Program:
    """Code shaped like inlined procedure bodies (Section 4, Figure 3b).

    Each "inlined call" tests a flag that was just set to a constant, so
    one arm of every conditional is dead.  Constants flowing through the
    live arms are *possible-paths* constants: def-use-chain constant
    propagation misses them (two reaching definitions), while the CFG and
    DFG algorithms -- which track dead regions -- find them.
    """
    rng = _rng(seed)
    variables = [f"r{i}" for i in range(num_vars)]
    body: list[Stmt] = [Assign(v, IntLit(0)) for v in variables]
    for site in range(calls):
        flag = rng.choice((0, 1))
        body.append(Assign("p", IntLit(flag)))
        target = variables[site % num_vars]
        live_const = rng.randint(1, 50)
        dead_const = live_const + rng.randint(1, 50)
        then_val = live_const if flag else dead_const
        else_val = dead_const if flag else live_const
        body.append(
            If(
                Var("p"),
                [Assign(target, IntLit(then_val))],
                [Assign(target, IntLit(else_val))],
            )
        )
        body.append(Print(Var(target)))
    return Program(body)


def irreducible_program(seed: int | random.Random, blocks: int = 4) -> Program:
    """A goto-heavy program whose CFG is (usually) irreducible.

    Two entries into a shared loop body -- the canonical irreducible shape
    -- plus extra random cross-jumps.  All analyses in the project are
    defined on arbitrary graphs, so they must survive this.
    """
    rng = _rng(seed)
    body: list[Stmt] = [Assign("n", IntLit(rng.randint(3, 9)))]
    body.append(If(BinOp(">", Var("n"), IntLit(5)), [Goto("second")], []))
    body.append(Label("first"))
    body.append(Assign("n", BinOp("-", Var("n"), IntLit(1))))
    body.append(Label("second"))
    body.append(Assign("n", BinOp("-", Var("n"), IntLit(1))))
    body.append(If(BinOp(">", Var("n"), IntLit(0)), [Goto("first")], []))
    for i in range(blocks):
        body.append(Label(f"blk{i}"))
        body.append(Assign(f"b{i}", BinOp("+", Var("n"), IntLit(i))))
        if rng.random() < 0.4 and i > 0:
            body.append(
                If(
                    BinOp("==", Var("n"), IntLit(i)),
                    [Goto(f"blk{rng.randrange(i)}")],
                    [],
                )
            )
            # Guard against looping forever through the back-jump.
            body.insert(-1, Assign("n", BinOp("-", Var("n"), IntLit(1))))
    body.append(Print(Var("n")))
    return Program(body)


def array_program(
    seed: int | random.Random,
    stores: int = 8,
    loads: int = 8,
    size: int = 6,
) -> Program:
    """A random array workload: stores and loads with small computed
    indices, plus a reduction loop.  Exercises the [BJP91] update
    encoding: every store is a def-and-use of the array, so version
    chains, interception at control structure, and redundant-load
    opportunities all appear."""
    from repro.lang.ast_nodes import Index, Store

    rng = _rng(seed)
    body: list[Stmt] = []
    for i in range(stores):
        index = IntLit(rng.randrange(size))
        value = random_expr(rng, ["s"], depth=1)
        if rng.random() < 0.3:
            body.append(
                If(
                    BinOp(">", Var("p"), IntLit(rng.randrange(3))),
                    [Store("arr", index, value)],
                    [],
                )
            )
        else:
            body.append(Store("arr", index, value))
        if rng.random() < 0.5:
            body.append(
                Assign("s", BinOp("+", Var("s"), Index("arr", index)))
            )
    for _ in range(loads):
        index = IntLit(rng.randrange(size))
        body.append(Assign("s", BinOp("+", Var("s"), Index("arr", index))))
    body.append(Print(Var("s")))
    return Program(body)


def random_jump_program(
    seed: int | random.Random,
    blocks: int = 8,
    extra_jumps: int = 4,
) -> Program:
    """Arbitrary -- usually irreducible -- control flow via random gotos.

    Each block carries a labelled statement and a conditional jump to a
    random block; extra unconditional jumps are sprinkled in.  These
    programs frequently loop forever, so they are for *structural*
    analyses (dominance, cycle equivalence, SESE, DFG construction), not
    for execution; the CFG normalizer's synthetic exits keep them valid.
    """
    rng = _rng(seed)
    body: list[Stmt] = []
    for i in range(blocks):
        body.append(Label(f"L{i}"))
        body.append(
            Assign(f"v{i % 3}", random_expr(rng, ["v0", "v1", "v2"], depth=1))
        )
        if rng.random() < 0.7:
            target = rng.randrange(blocks)
            body.append(
                If(
                    random_expr(rng, ["v0", "v1"], comparison=True),
                    [Goto(f"L{target}")],
                    [],
                )
            )
    for _ in range(extra_jumps):
        position = rng.randrange(len(body))
        body.insert(position, Goto(f"L{rng.randrange(blocks)}"))
    body.append(Print(Var("v0")))
    return Program(body)
