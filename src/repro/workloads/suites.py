"""The paper's worked examples, reconstructed from the text.

The PLDI'93 scan is partly garbled, so each function's docstring records
which sentences of the paper pin the example down; EXPERIMENTS.md notes
where a detail had to be reconstructed.  Each function returns a freshly
parsed :class:`~repro.lang.ast_nodes.Program`.
"""

from __future__ import annotations

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program


def section1_example() -> Program:
    """The staged-redundancy example of Section 1.

    "To deduce that the computation of y is redundant, we must first
    deduce that the computation of w is redundant."  ``w := a+b`` is
    redundant with ``z := a+b``; once ``w`` is replaced by ``z``,
    ``y := w+1`` becomes redundant with ``x := z+1``.
    """
    return parse_program(
        """
        a := 3; b := 4;
        z := a + b;
        w := a + b;
        x := z + 1;
        y := w + 1;
        print x; print y;
        """
    )


def figure1() -> Program:
    """The running example of Figure 1 (def-use vs SSA vs DFG).

    The text requires: a definition of ``x`` whose use in the conditional
    branch is the constant 1; a region between that definition and use
    containing an assignment to ``y`` (so ``y``'s dependences are
    intercepted at the switch but ``x``'s bypass it); ``y := y + 1`` whose
    right-hand side becomes the constant 3; a second definition of ``y``
    on the branch the constant predicate kills; and a final use of ``y``
    reached by two def-use edges carrying different constants, which only
    the dead-code-aware algorithms resolve to 3.
    """
    return parse_program(
        """
        x := 1;
        y := 2;
        if (x == 1) {
            y := y + 1;
        } else {
            y := 5;
        }
        print y;
        """
    )


def figure2() -> Program:
    """The DFG construction example of Figure 2.

    Features named by the text: each assignment statement is a SESE
    region, the if-then-else is a SESE region defining ``y``, and after
    region bypassing "two dependence edges start at the assignment
    ``x := 1``" -- a multiedge.  Here the two heads are the branch
    predicate's use of ``x`` and the use after the conditional (which the
    dependence reaches directly, bypassing the region that only defines
    ``y``).
    """
    return parse_program(
        """
        x := 1;
        if (x > 0) {
            y := 2;
        } else {
            y := 3;
        }
        print x;
        print y;
        """
    )


def figure3a() -> Program:
    """Figure 3(a): all-paths constants.

    The first use of ``z`` can be replaced by 1, the second by 2; both
    right-hand sides of ``x`` simplify to 3; the final use of ``x`` is 3.
    """
    return parse_program(
        """
        if (p > 0) {
            z := 1;
            x := z + 2;
        } else {
            z := 2;
            x := z + 1;
        }
        y := x;
        print y;
        """
    )


def figure3b() -> Program:
    """Figure 3(b): possible-paths constants.

    ``p := true`` makes the false arm dead; ignoring the definition on the
    unexecuted branch, the use of ``x`` in the last statement has value 1.
    Def-use-chain constant propagation misses this; the CFG and DFG
    algorithms find it.
    """
    return parse_program(
        """
        p := 1;
        if (p) {
            x := 1;
        } else {
            x := 2;
        }
        y := x;
        print y;
        """
    )


def figure6() -> Program:
    """Figure 6: single-variable anticipatability of ``x + 1``.

    The dependence web described in the text: ``d1`` leaves the definition
    of ``x`` and splits at a switch into ``d2`` (a branch whose first use
    of ``x`` is an expression *other* than ``x+1`` -- ANT false at ``d4``
    -- followed by a computation of ``x+1`` -- ANT true at ``d5``) and
    ``d3`` leading to another computation of ``x+1`` (``d6``).  The
    multiedge rule combines ``d4``/``d5`` to make ANT true at ``d2``;
    projection marks every CFG point between the definition of ``x`` and
    the two computations of ``x+1``.
    """
    return parse_program(
        """
        x := a;
        if (c > 0) {
            y := x * 3;
            z := x + 1;
        } else {
            w := x + 1;
        }
        print z + w + y;
        """
    )


def figure7() -> Program:
    """Figure 7: multivariable anticipatability of ``x + y``.

    ANT relative to ``x`` holds from the definition of ``x`` onward except
    across the early use of ``x`` in another expression; ANT relative to
    ``y`` only holds from the (later) definition of ``y``; the
    intersection makes ``x + y`` anticipatable exactly on the suffix
    between ``y``'s definition and the computation (the paper's e5-e7).
    """
    return parse_program(
        """
        x := a;
        w := x * 2;
        y := b;
        z := x + y;
        print z + w;
        """
    )
