"""Workload generators and the paper's worked examples.

* :mod:`repro.workloads.generators` -- seeded random structured programs,
  inline-expansion-shaped programs (the source of *possible-paths*
  constants, Section 4), and irreducible goto graphs.
* :mod:`repro.workloads.ladders` -- parametric families exhibiting the
  asymptotic separations the paper claims (def-use chain blowup, nested
  loop towers, wide variable sweeps).
* :mod:`repro.workloads.suites` -- the exact programs of Figures 1-3, 6, 7
  and the Section 1 staged-redundancy example, reconstructed from the text.

These families are the substrate of every driver in the repo: the
equivalence corpus (``repro.perf.batch``), the fuzz schedules, the lint
sweep, and the serve daemon's seeded load generator
(``repro.serve.loadgen``), which pretty-prints the corpus so the daemon
and its one-shot twin analyze byte-identical source.
"""

from repro.workloads.generators import (
    array_program,
    inline_expansion_program,
    irreducible_program,
    random_expr,
    random_program,
)
from repro.workloads.lint_defects import (
    PLANTED_RULES,
    PlantedDefect,
    lint_defect_case,
    lint_defect_program,
)
from repro.workloads.ladders import (
    defuse_worst_case,
    diamond_chain,
    loop_nest,
    sparse_use_program,
    wide_variable_program,
)
from repro.workloads.suites import (
    figure1,
    figure2,
    figure3a,
    figure3b,
    figure6,
    figure7,
    section1_example,
)

__all__ = [
    "PLANTED_RULES",
    "PlantedDefect",
    "array_program",
    "defuse_worst_case",
    "diamond_chain",
    "figure1",
    "figure2",
    "figure3a",
    "figure3b",
    "figure6",
    "figure7",
    "inline_expansion_program",
    "irreducible_program",
    "lint_defect_case",
    "lint_defect_program",
    "loop_nest",
    "random_expr",
    "random_program",
    "section1_example",
    "sparse_use_program",
    "wide_variable_program",
]
