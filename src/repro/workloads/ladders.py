"""Parametric program families for the scaling experiments.

Each family isolates one structural parameter so the benchmarks can show
the asymptotic separations the paper claims:

* :func:`defuse_worst_case` -- def-use chains grow quadratically while SSA
  and DFG edges stay linear (Section 2.2 vs 2.3/2.4);
* :func:`diamond_chain` -- E grows linearly: the O(E) cycle-equivalence /
  SESE algorithm and the O(EV) DFG construction scale along it;
* :func:`loop_nest` -- nested loops exercise the cycle-equivalence
  machinery (bracket lists) rather than straight-line dominance;
* :func:`wide_variable_program` -- V grows with E fixed per statement:
  the CFG constant-propagation algorithm does O(EV^2) work, the DFG
  algorithm O(EV) (Section 4);
* :func:`straight_line` -- one maximally deep chain: the recursion-audit
  stress test (every traversal must be iterative);
* :func:`sparse_use_program` -- many variables, each used in a tiny
  region: the "propagate only where needed" claim (Section 6).
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    If,
    IntLit,
    Print,
    Program,
    Stmt,
    Var,
    While,
)


def defuse_worst_case(n: int, num_vars: int = 1) -> Program:
    """``n`` conditional definitions followed by ``n`` uses, per variable.

    No definition kills another (each sits in a then-arm), so every one of
    the ``n+1`` definitions of each variable reaches every one of the ``n``
    uses: Theta(n^2) def-use chains per variable.  SSA factors the fan
    through a phi per merge, and the DFG through a merge operator, so both
    stay Theta(n) per variable.
    """
    body: list[Stmt] = []
    names = [f"x{i}" for i in range(num_vars)]
    for name in names:
        body.append(Assign(name, IntLit(0)))
    for i in range(n):
        cond = BinOp("==", Var("c"), IntLit(i))
        body.append(
            If(cond, [Assign(name, IntLit(i + 1)) for name in names], [])
        )
    for _ in range(n):
        for name in names:
            body.append(Print(BinOp("+", Var(name), IntLit(1))))
    return Program(body)


def diamond_chain(n: int, num_vars: int = 2) -> Program:
    """``n`` sequential if-then-else diamonds touching ``num_vars``
    variables round-robin.  E grows linearly in ``n``; every diamond is a
    SESE region, so the program structure tree is a long sequence."""
    body: list[Stmt] = [
        Assign(f"x{i}", IntLit(i)) for i in range(num_vars)
    ]
    for i in range(n):
        name = f"x{i % num_vars}"
        cond = BinOp("<", Var(name), IntLit(i))
        body.append(
            If(
                cond,
                [Assign(name, BinOp("+", Var(name), IntLit(1)))],
                [Assign(name, BinOp("-", Var(name), IntLit(1)))],
            )
        )
    body.append(Print(Var("x0")))
    return Program(body)


def loop_nest(depth: int, width: int = 1) -> Program:
    """``width`` side-by-side towers of ``depth`` nested while loops.

    Deep nesting makes long bracket lists in the cycle-equivalence DFS and
    a deep program structure tree.  Fuel counters bound every loop.
    """

    def tower(level: int, tag: str) -> list[Stmt]:
        fuel = f"f_{tag}_{level}"
        inner: list[Stmt]
        if level == 0:
            inner = [Assign(f"acc{tag}", BinOp("+", Var(f"acc{tag}"), IntLit(1)))]
        else:
            inner = tower(level - 1, tag)
        guard = BinOp(">", Var(fuel), IntLit(0))
        dec = Assign(fuel, BinOp("-", Var(fuel), IntLit(1)))
        return [Assign(fuel, IntLit(2)), While(guard, inner + [dec])]

    body: list[Stmt] = []
    for w in range(width):
        body.append(Assign(f"acc{w}", IntLit(0)))
        body.extend(tower(depth - 1, str(w)))
        body.append(Print(Var(f"acc{w}")))
    return Program(body)


def wide_variable_program(num_vars: int, uses_per_var: int = 1) -> Program:
    """One straight-line definition and ``uses_per_var`` uses per variable.

    The number of CFG nodes grows linearly with ``num_vars``, and so does
    E -- but the *vector* algorithms of Figure 4(a) still carry all
    ``num_vars`` lattice entries through every node, giving the O(EV^2)
    vs O(EV) separation measured in experiment F4.
    """
    body: list[Stmt] = []
    for i in range(num_vars):
        body.append(Assign(f"w{i}", IntLit(i % 7)))
    for i in range(num_vars):
        for _ in range(uses_per_var):
            body.append(Print(BinOp("+", Var(f"w{i}"), IntLit(1))))
    return Program(body)


def straight_line(n: int, num_vars: int = 2) -> Program:
    """``n`` sequential assignments with no branches at all.

    The degenerate chain CFG: maximal graph *depth* per node.  Any
    recursive traversal (DFS, bracket propagation, SSA renaming down the
    dominator tree -- which is the chain itself here) recurses ``n`` deep,
    so this family is the recursion-audit stress test: every analysis
    must survive ``n`` in the thousands without touching
    ``sys.setrecursionlimit``.
    """
    body: list[Stmt] = []
    names = [f"x{i}" for i in range(num_vars)]
    for name in names:
        body.append(Assign(name, IntLit(0)))
    for i in range(n):
        name = names[i % num_vars]
        body.append(Assign(name, BinOp("+", Var(name), IntLit(1))))
    for name in names:
        body.append(Print(Var(name)))
    return Program(body)


def sparse_use_program(num_regions: int, vars_per_region: int = 3) -> Program:
    """Disjoint variable neighbourhoods separated by conditionals.

    Each region defines and uses its own variables; dependences never
    cross regions, so a sparse representation does O(1) work per region
    per variable while a dense vector representation pays for all
    ``num_regions * vars_per_region`` variables everywhere.
    """
    body: list[Stmt] = []
    for r in range(num_regions):
        names = [f"s{r}_{i}" for i in range(vars_per_region)]
        for i, name in enumerate(names):
            body.append(Assign(name, IntLit(i)))
        cond = BinOp(">", Var(names[0]), IntLit(0))
        body.append(
            If(
                cond,
                [Assign(names[-1], BinOp("+", Var(names[0]), IntLit(1)))],
                [Assign(names[-1], IntLit(0))],
            )
        )
        body.append(Print(Var(names[-1])))
    return Program(body)
