"""Seeded programs with planted, ground-truth-labelled defects.

Each case is generated as *source text*, line by line, so every planted
defect carries the exact 1-based line the linter must point at --
``repro lintsweep`` parses the text back and scores precision and recall
of the diagnostics against these labels.

The planted patterns cover every definite rule plus the possible-paths
ones (R002, R011); the info rules (R007/R008/R010) fire
opportunistically on any program and are not scored.  The sparse-client
rules get dedicated templates: a transitive entry-value flow into a
print (R011), a branch decided by interval reasoning but opaque to
constant propagation (R012 with a range-dead arm, R013 inside it), and
code after a provably non-terminating loop (R013 via NTSCD).  Benign machinery is built to be
analysis-opaque: a mixing loop makes the filler variables non-constant
(so planted constant branches are the *only* constant branches), filler
writes always read their own previous value (so planted dead stores are
the only dead stores), and an epilogue prints every filler variable (so
planted dead chains are the only unobservable code).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program

#: The rule codes the generator plants (and the sweep scores).
PLANTED_RULES = (
    "R001", "R002", "R003", "R004", "R005", "R006", "R009",
    "R011", "R012", "R013",
)


@dataclass(frozen=True)
class PlantedDefect:
    """Ground truth for one planted finding: the rule that must fire and
    the 1-based source line its primary span must sit on."""

    rule: str
    line: int
    var: str | None = None


class _Case:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.lines: list[str] = []
        self.labels: list[PlantedDefect] = []
        self.fresh = 0

    def emit(self, text: str) -> int:
        """Append a source line; returns its 1-based line number."""
        self.lines.append(text)
        return len(self.lines)

    def plant(self, rule: str, line: int, var: str | None = None) -> None:
        self.labels.append(PlantedDefect(rule, line, var))

    def name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    def mixed(self) -> str:
        """A filler variable: initialized, non-constant, printed at the
        end -- safe to read anywhere without tripping any rule."""
        return self.rng.choice(("s0", "s1"))


def _prologue(case: _Case) -> None:
    # The mixing loop launders the constants out of s0/s1: at the loop
    # exit both are merges of several values, so no downstream guard on
    # them is a constant branch.
    rng = case.rng
    case.emit(f"n0 := {rng.randint(5, 9)};")
    case.emit(f"s0 := {rng.randint(1, 9)};")
    case.emit(f"s1 := {rng.randint(1, 9)};")
    case.emit("while (n0 > 0) {")
    case.emit("    s0 := s0 + n0;")
    case.emit("    s1 := s1 + s0;")
    case.emit("    n0 := n0 - 1;")
    case.emit("}")
    # Launder the *ranges* too: subtracting the unbounded accumulators
    # from each other drives both intervals to [-inf, +inf], so no
    # downstream guard on a filler variable is ever range-decided --
    # planted R012 branches are the only range-decided branches.
    case.emit("s0 := s0 - s1;")
    case.emit("s1 := s1 - s0;")


def _filler(case: _Case) -> None:
    # Self-reading updates: the previous value is always consumed, so
    # filler never creates a dead store; the epilogue print keeps the
    # last write live.
    var = case.mixed()
    op = case.rng.choice(("+", "-", "*"))
    case.emit(f"{var} := {var} {op} {case.rng.randint(1, 5)};")


def _epilogue(case: _Case) -> None:
    case.emit("print s0;")
    case.emit("print s1;")


def _plant_use_before_def(case: _Case) -> None:
    var = case.name("u")
    line = case.emit(f"print {var} + {case.rng.randint(1, 5)};")
    case.plant("R001", line, var)


def _plant_maybe_uninit(case: _Case) -> None:
    var = case.name("c")
    case.emit(f"if ({case.mixed()} > {case.rng.randint(10, 30)}) {{")
    case.emit(f"    {var} := {case.mixed()} + {case.rng.randint(1, 5)};")
    case.emit("}")
    line = case.emit(f"print {var};")
    case.plant("R002", line, var)


def _plant_dead_store(case: _Case) -> None:
    var = case.name("d")
    line = case.emit(
        f"{var} := {case.mixed()} * {case.rng.randint(2, 5)};"
    )
    case.emit(f"{var} := {case.mixed()} + {case.rng.randint(1, 5)};")
    case.emit(f"print {var};")
    case.plant("R003", line, var)


def _plant_never_branch(case: _Case) -> None:
    var = case.name("e")
    branch = case.emit("if (0) {")
    body = case.emit(f"    {var} := {case.mixed()} + 1;")
    case.emit("}")
    case.plant("R005", branch)
    case.plant("R004", body)


def _plant_always_branch(case: _Case) -> None:
    var = case.name("f")
    branch = case.emit("if (1) {")
    case.emit(f"    {var} := {case.mixed()} + {case.rng.randint(1, 5)};")
    case.emit("} else {")
    dead = case.emit(f"    {var} := {case.mixed()} - 1;")
    case.emit("}")
    case.emit(f"print {var};")
    case.plant("R005", branch)
    case.plant("R004", dead)


def _plant_dead_chain(case: _Case) -> None:
    # A cyclic dead chain: the counter feeds only itself, so liveness
    # keeps it live around the loop but ADCE sees no observation.
    var = case.name("k")
    bound = case.name("t")
    init = case.emit(f"{var} := 0;")
    case.emit(f"{bound} := {case.rng.randint(2, 4)};")
    case.emit(f"while ({bound} > 0) {{")
    step = case.emit(f"    {var} := {var} + 1;")
    case.emit(f"    {bound} := {bound} - 1;")
    case.emit("}")
    case.plant("R006", init, var)
    case.plant("R006", step, var)


def _plant_self_assign(case: _Case) -> None:
    var = case.name("g")
    case.emit(f"{var} := {case.mixed()} + {case.rng.randint(1, 5)};")
    line = case.emit(f"{var} := {var};")
    case.emit(f"print {var};")
    case.plant("R009", line, var)


def _plant_tainted_print(case: _Case) -> None:
    # The entry value flows through two assignments before the print, so
    # R001/R002 do not claim the sink and only taint tracking sees it.
    src = case.name("u")
    mid = case.name("t")
    out = case.name("t")
    first = case.emit(f"{mid} := {src} + {case.rng.randint(1, 5)};")
    case.emit(f"{out} := {mid} * {case.rng.randint(2, 4)};")
    line = case.emit(f"print {out};")
    case.plant("R001", first, src)
    case.plant("R011", line, out)


def _plant_empty_range_branch(case: _Case) -> None:
    # The guard variable is a merge of two positive constants -- never a
    # compile-time constant (so R005 stays silent) but its interval is
    # decided, so the false arm is range-dead (R012) and the statement
    # inside it is range-dead code (R013).
    var = case.name("r")
    lo = case.rng.randint(2, 5)
    case.emit(f"{var} := {lo};")
    case.emit(f"if ({case.mixed()} > {case.rng.randint(10, 30)}) {{")
    case.emit(f"    {var} := {lo + case.rng.randint(1, 4)};")
    case.emit("}")
    branch = case.emit(f"if ({var} > 0) {{")
    case.emit(f"    s0 := s0 + {var};")
    case.emit("} else {")
    dead = case.emit(f"    s1 := s1 - {var};")
    case.emit("}")
    case.plant("R012", branch)
    case.plant("R013", dead)


def _plant_ntscd_dead(case: _Case) -> None:
    # Code after a provably non-terminating loop: the loop's exit edge is
    # range-dead, so the print is unreachable (R013) -- but only
    # *non-termination-sensitive* control dependence attributes it to the
    # loop predicate.  The outer guard is never true at runtime (the
    # mixed variables stay far below the threshold), so probe runs stay
    # conclusive.
    var = case.name("w")
    case.emit(f"if ({case.mixed()} > {case.rng.randint(500, 900)}) {{")
    case.emit(f"    {var} := {case.rng.randint(3, 9)};")
    loop = case.emit(f"    while ({var} > 0) {{")
    case.emit(f"        {var} := {var} + {case.rng.randint(1, 3)};")
    case.emit("    }")
    dead = case.emit(f"    print {var};")
    case.emit("}")
    case.plant("R012", loop)
    case.plant("R013", dead)


_TEMPLATES = (
    _plant_use_before_def,
    _plant_maybe_uninit,
    _plant_dead_store,
    _plant_never_branch,
    _plant_always_branch,
    _plant_dead_chain,
    _plant_self_assign,
    _plant_tainted_print,
    _plant_empty_range_branch,
    _plant_ntscd_dead,
)


def lint_defect_case(
    seed: int, copies: int = 1
) -> tuple[str, tuple[PlantedDefect, ...]]:
    """One planted-defect program: ``(source_text, labels)``.

    ``copies`` repeats the whole template set that many times (fresh
    variables each round), scaling the program without changing the
    defect mix.
    """
    case = _Case(seed)
    _prologue(case)
    for _ in range(max(1, copies)):
        templates = list(_TEMPLATES)
        case.rng.shuffle(templates)
        for template in templates:
            for _ in range(case.rng.randint(0, 2)):
                _filler(case)
            template(case)
    _epilogue(case)
    source = "\n".join(case.lines) + "\n"
    return source, tuple(case.labels)


def lint_defect_program(seed: int, copies: int = 1) -> Program:
    """The parsed AST of :func:`lint_defect_case` -- the batch-family
    entry point (spans come from the real parse, so diagnostics carry
    genuine source positions)."""
    source, _labels = lint_defect_case(seed, copies)
    return parse_program(source)
