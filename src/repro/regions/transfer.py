"""The transfer-function algebra behind region summaries.

A separable gen/kill transfer acts on each bit of a fact mask
independently, and per bit there are only three possible behaviours:

* ``const1`` -- the bit is generated (set regardless of input);
* ``const0`` -- the bit is killed (cleared regardless of input);
* ``id``     -- the bit passes through.

A whole-mask transfer is therefore a pair of int masks ``(gen, kill)``
with ``apply(x) = (x & ~kill) | gen``.  We keep pairs *canonical* --
``gen & kill == 0`` -- so the pair is a unique name for the function and
``==`` on pairs is function equality.  The three-valued per-bit domain
is closed under composition and under both meets (union and
intersection), which is exactly why a SESE region's effect on a dataflow
fact can be summarized as one ``(gen, kill)`` pair: bitvector frameworks
are distributive, so the meet-over-paths function through a subgraph is
again a gen/kill pair.

Composition laws (per bit; ``f`` runs first, then the node transfer with
masks ``G``/``K``):

* kill-then-gen (``out = (in & ~K) | G``):
  ``gen' = (gen & ~K) | G``; ``kill' = (kill | K) & ~gen'``.
* gen-then-kill (``out = (in | G) & ~K``, available expressions):
  ``gen' = (gen | G) & ~K``; ``kill' = (kill | K) & ~gen'``.

Meet laws (combining the functions of two converging paths):

* union meet: a bit is generated if either generates, killed only if
  both kill -- ``(g1 | g2, k1 & k2)``;
* intersection meet: generated only if both generate, killed if either
  kills -- ``(g1 & g2, (k1 | k2) & ~(g1 & g2))``.

Canonicality is preserved by all four laws (a bit cannot be in both
masks of a canonical operand), so no renormalization pass is needed.

>>> f = compose_kg(*IDENTITY, 0b001, 0b010)   # node: gen bit0, kill bit1
>>> apply(f, 0b111)
5
>>> g = compose_kg(*f, 0b010, 0b001)          # then: gen bit1, kill bit0
>>> apply(g, 0b111) == apply((0b010, 0b001), apply(f, 0b111))
True
"""

from __future__ import annotations

#: The identity transfer: every bit passes through.
IDENTITY: tuple[int, int] = (0, 0)


def constant(mask: int, full: int) -> tuple[int, int]:
    """The constant function returning ``mask`` over a ``full``-bit
    universe -- the initial value of a fixpoint in the function domain
    (``constant(0, full)`` for may-problems, ``constant(full, full)``
    for must-problems).

    >>> constant(0b10, 0b11)
    (2, 1)
    """
    return (mask, full & ~mask)


def apply(fn: tuple[int, int], x: int) -> int:
    """Apply a canonical ``(gen, kill)`` pair to a fact mask."""
    gen, kill = fn
    return (x & ~kill) | gen


def compose_kg(gen: int, kill: int, node_gen: int, node_kill: int) -> tuple[int, int]:
    """``(gen, kill)`` followed by a kill-then-gen node transfer.

    Also composes a child-region *summary* after a parent-frame
    function: canonical summaries apply as kill-then-gen (the masks are
    disjoint, so the order is immaterial for the summary itself).
    """
    out_gen = (gen & ~node_kill) | node_gen
    return (out_gen, (kill | node_kill) & ~out_gen)


def compose_gk(gen: int, kill: int, node_gen: int, node_kill: int) -> tuple[int, int]:
    """``(gen, kill)`` followed by a gen-then-kill node transfer
    (available expressions: a self-referential assignment's own gens are
    killed)."""
    out_gen = (gen | node_gen) & ~node_kill
    return (out_gen, (kill | node_kill) & ~out_gen)


def meet_union(f: tuple[int, int], g: tuple[int, int]) -> tuple[int, int]:
    """Pointwise union meet of two transfer functions."""
    return (f[0] | g[0], f[1] & g[1])


def meet_intersect(f: tuple[int, int], g: tuple[int, int]) -> tuple[int, int]:
    """Pointwise intersection meet of two transfer functions."""
    out_gen = f[0] & g[0]
    return (out_gen, (f[1] | g[1]) & ~out_gen)
