"""Bottom-up/top-down hierarchical solving of bitset dataflow problems.

:func:`solve_hierarchical` is a drop-in twin of
:func:`repro.perf.bitset.solve_bitset`: same :class:`BitsetProblem` in,
same per-dense-edge fact masks out.  Instead of one flat fixpoint over
the whole graph it runs three phases over the region systems:

1. **Summarize** (bottom-up): each region system is solved in the
   *function domain* -- every computed edge gets a canonical
   ``(gen, kill)`` transfer pair expressing its fact as a function of
   the region's input fact, with already-summarized children entering
   as single super-equations.  The value at the region's own boundary
   is its summary.
2. **Root solve**: the virtual root system (plus the summaries of the
   top-level regions) is solved concretely -- the boundary mask is a
   known constant, so no function domain is needed.
3. **Evaluate** (top-down): once a region's input fact is known, every
   computed edge is one ``apply`` of its cached phase-1 function -- no
   second fixpoint -- and the children's input facts fall out.

Bitvector frameworks are distributive, so the summarized fixpoint
applied to the actual boundary equals the flat solver's (unique)
fixpoint: the differential suite asserts mask-level equality over the
whole corpus, and the ``hierarchical-vs-flat`` fuzz oracle re-checks it
on every fuzz trial.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.perf.bitset import BitsetProblem
from repro.regions.systems import (
    CHAIN,
    CHILD_UNIT,
    INPUT,
    NODE_UNIT,
    RegionSystems,
    System,
    build_systems,
)
from repro.regions.transfer import (
    IDENTITY,
    apply,
    compose_gk,
    compose_kg,
    meet_intersect,
    meet_union,
)
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph


def node_masks(
    csr: "CSRGraph", problem: BitsetProblem
) -> tuple[dict[int, int], dict[int, int]]:
    """The problem's dense gen/kill arrays re-keyed by node id (systems
    reference nodes and edges by id, never by dense index)."""
    gen = {nid: problem.gen[v] for v, nid in enumerate(csr.node_ids)}
    kill = {nid: problem.kill[v] for v, nid in enumerate(csr.node_ids)}
    return gen, kill


def solve_system_functions(
    system: System,
    systems: list[System],
    problem: BitsetProblem,
    node_gen: dict[int, int],
    node_kill: dict[int, int],
    summaries: dict[int, tuple[int, int]],
    boundary_node: int,
    counter: WorkCounter | None = None,
) -> dict[int, tuple[int, int]]:
    """Chaotic iteration of one region system in the function domain.

    Returns ``{edge id: (gen, kill)}`` for every edge the system
    computes, as functions of the system's input fact.  ``summaries``
    maps already-solved child *system indices* to their boundary
    functions.  ``boundary_node`` is the problem's root node (start
    forward / end backward): its meet input is the constant boundary
    mask wherever it lives, mirroring the flat solver's replacement.
    """
    units = (system.fwd_units if problem.direction == "forward"
             else system.bwd_units)
    compose = compose_kg if problem.kill_then_gen else compose_gk
    fmeet = meet_union if problem.meet_is_union else meet_intersect
    boundary_fn = (problem.boundary_mask, ~problem.boundary_mask)
    init = (problem.initial_mask, ~problem.initial_mask)
    empty_fn = (0, ~0)

    values: dict[int, tuple[int, int]] = {}
    for unit in units:
        if unit[0] == NODE_UNIT:
            for out in unit[3]:
                values[out] = init
        else:
            values[unit[3]] = init

    evals = 0
    changed = True
    while changed:
        changed = False
        for unit in units:
            evals += 1
            if unit[0] == NODE_UNIT:
                _, nid, refs, outs = unit
                if nid == boundary_node:
                    combined = boundary_fn
                elif not refs:
                    combined = empty_fn
                else:
                    ref = refs[0]
                    combined = IDENTITY if ref == INPUT else values[ref]
                    for ref in refs[1:]:
                        other = IDENTITY if ref == INPUT else values[ref]
                        combined = fmeet(combined, other)
                out = compose(
                    combined[0], combined[1], node_gen[nid], node_kill[nid]
                )
                for eid in outs:
                    if values[eid] != out:
                        values[eid] = out
                        changed = True
            else:
                _, pos, ref, out_edge = unit
                inval = IDENTITY if ref == INPUT else values[ref]
                child_summary = summaries[system.children[pos]]
                out = compose_kg(inval[0], inval[1], *child_summary)
                if values[out_edge] != out:
                    values[out_edge] = out
                    changed = True
    if counter is not None:
        counter.tick("hier_unit_evals", evals)
    return values


def solve_system_concrete(
    system: System,
    systems: list[System],
    problem: BitsetProblem,
    node_gen: dict[int, int],
    node_kill: dict[int, int],
    summaries: dict[int, tuple[int, int]],
    boundary_node: int,
    counter: WorkCounter | None = None,
) -> dict[int, int]:
    """Chaotic iteration of the root system in the concrete domain
    (its input -- the boundary mask -- is known, so functions would be
    overhead).  Returns ``{edge id: fact mask}``."""
    units = (system.fwd_units if problem.direction == "forward"
             else system.bwd_units)
    union = problem.meet_is_union
    kill_then_gen = problem.kill_then_gen

    facts: dict[int, int] = {}
    for unit in units:
        if unit[0] == NODE_UNIT:
            for out in unit[3]:
                facts[out] = problem.initial_mask
        else:
            facts[unit[3]] = problem.initial_mask

    evals = 0
    changed = True
    while changed:
        changed = False
        for unit in units:
            evals += 1
            if unit[0] == NODE_UNIT:
                _, nid, refs, outs = unit
                if nid == boundary_node:
                    combined = problem.boundary_mask
                elif not refs:
                    combined = 0
                else:
                    combined = facts[refs[0]]
                    if union:
                        for ref in refs[1:]:
                            combined |= facts[ref]
                    else:
                        for ref in refs[1:]:
                            combined &= facts[ref]
                if kill_then_gen:
                    out = (combined & ~node_kill[nid]) | node_gen[nid]
                else:
                    out = (combined | node_gen[nid]) & ~node_kill[nid]
                for eid in outs:
                    if facts[eid] != out:
                        facts[eid] = out
                        changed = True
            else:
                _, pos, ref, out_edge = unit
                out = apply(summaries[system.children[pos]], facts[ref])
                if facts[out_edge] != out:
                    facts[out_edge] = out
                    changed = True
    if counter is not None:
        counter.tick("hier_unit_evals", evals)
    return facts


def solve_hierarchical(
    csr: "CSRGraph",
    regions: RegionSystems,
    problem: BitsetProblem,
    counter: WorkCounter | None = None,
) -> list[int]:
    """Solve ``problem`` over the region hierarchy; returns the fact
    mask per dense edge, byte-identical to
    :func:`repro.perf.bitset.solve_bitset` on the same snapshot."""
    csr.check()
    if len(problem.gen) != csr.n or len(problem.kill) != csr.n:
        from repro.robust.errors import AnalysisError

        raise AnalysisError(
            f"hierarchical problem arity mismatch: gen/kill cover "
            f"{len(problem.gen)}/{len(problem.kill)} nodes, snapshot has "
            f"{csr.n}",
            phase="solve-hierarchical",
        )
    forward = problem.direction == "forward"
    root_dense = csr.start if forward else csr.end
    if root_dense < 0:
        from repro.robust.errors import AnalysisError

        raise AnalysisError(
            "hierarchical solve on a snapshot with no "
            + ("start" if forward else "end") + " node",
            phase="solve-hierarchical",
        )
    boundary_node = csr.node_ids[root_dense]
    node_gen, node_kill = node_masks(csr, problem)
    systems = regions.systems

    # Phase 1: bottom-up summaries.
    summaries: dict[int, tuple[int, int]] = {}
    values: dict[int, dict[int, tuple[int, int]]] = {}
    for system in reversed(systems):
        if system.region is None:
            continue
        solved = solve_system_functions(
            system, systems, problem, node_gen, node_kill,
            summaries, boundary_node, counter,
        )
        values[system.index] = solved
        summaries[system.index] = solved[
            system.exit if forward else system.entry
        ]
        if counter is not None:
            counter.tick("hier_summaries")

    # Phase 2: concrete root solve.
    facts = solve_system_concrete(
        systems[0], systems, problem, node_gen, node_kill,
        summaries, boundary_node, counter,
    )

    # Phase 3: top-down evaluation -- one apply per edge, no fixpoint.
    stack = [
        (index, facts[systems[index].entry if forward
                      else systems[index].exit])
        for index in reversed(systems[0].children)
    ]
    while stack:
        index, inval = stack.pop()
        system = systems[index]
        for eid, fn in values[index].items():
            facts[eid] = apply(fn, inval)
        if counter is not None:
            counter.tick("hier_region_evals")
        for child in reversed(system.children):
            child_sys = systems[child]
            boundary = child_sys.entry if forward else child_sys.exit
            stack.append((child, facts[boundary]))

    out = [0] * csr.m
    edge_ids = csr.edge_ids
    for e in range(csr.m):
        out[e] = facts[edge_ids[e]]
    return out


def hierarchical_summaries(
    csr: "CSRGraph",
    regions: RegionSystems,
    problem: BitsetProblem,
    counter: WorkCounter | None = None,
    only: set[int] | None = None,
) -> dict[tuple[int, int], tuple[int, int]]:
    """Phase 1 alone: ``{(entry, exit): (gen, kill)}`` region summaries.

    ``only`` restricts the sweep to the named system indices *plus all
    their descendants* (a subtree's summaries are self-contained, which
    is what lets sibling subtrees be summarized in parallel workers).
    Synthetic chain systems are skipped: they are re-associations of
    the root solve, not regions, and a real region's summary never
    depends on one -- so the result is the same key set whether the
    assembly was balanced or not, and parallel workers summarizing real
    subtrees merge to exactly this map.
    """
    forward = problem.direction == "forward"
    root_dense = csr.start if forward else csr.end
    boundary_node = csr.node_ids[root_dense]
    node_gen, node_kill = node_masks(csr, problem)
    systems = regions.systems

    wanted: set[int] | None = None
    if only is not None:
        wanted = set()
        stack = list(only)
        while stack:
            index = stack.pop()
            if index not in wanted:
                wanted.add(index)
                stack.extend(systems[index].children)

    summaries: dict[int, tuple[int, int]] = {}
    out: dict[tuple[int, int], tuple[int, int]] = {}
    for system in reversed(systems):
        if system.region is None or system.region is CHAIN:
            continue
        if wanted is not None and system.index not in wanted:
            continue
        solved = solve_system_functions(
            system, systems, problem, node_gen, node_kill,
            summaries, boundary_node, counter,
        )
        summaries[system.index] = solved[
            system.exit if forward else system.entry
        ]
        out[system.key] = summaries[system.index]
    return out


def core_problems(
    graph, csr: "CSRGraph | None" = None
) -> dict[str, BitsetProblem]:
    """The four core analyses compiled as :class:`BitsetProblem`\\ s over
    one shared CSR snapshot, ``{name: problem}`` -- the common input for
    running :func:`repro.perf.bitset.solve_bitset` and
    :func:`solve_hierarchical` side by side (differential tests, the
    ``hierarchical-vs-flat`` fuzz oracle, parallel summary workers)."""
    from repro.dataflow.bitsets import (
        expression_problem,
        expression_space,
        liveness_problem,
        reaching_problem,
    )

    if csr is None:
        from repro.perf.csr import build_csr

        csr = build_csr(graph)
    space = expression_space(graph, csr)
    available, _ = expression_problem(graph, csr, "forward", True, space)
    anticipatable, _ = expression_problem(graph, csr, "backward", True, space)
    liveness, _ = liveness_problem(graph, csr)
    reaching, _ = reaching_problem(graph, csr)
    return {
        "available": available,
        "anticipatable": anticipatable,
        "liveness": liveness,
        "reaching": reaching,
    }


def build_region_systems(graph, structure=None, counter=None) -> RegionSystems:
    """Convenience: systems for ``graph`` (building the structure too
    when the caller does not hold one)."""
    if structure is None:
        from repro.controldep.sese import ProgramStructure

        structure = ProgramStructure(graph, counter=counter)
    return build_systems(graph, structure, counter)
