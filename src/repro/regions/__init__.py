"""Hierarchical region-summary dataflow over the program structure tree.

The modules layer bottom-up:

* :mod:`repro.regions.transfer`     -- the (gen, kill) function algebra;
* :mod:`repro.regions.systems`      -- per-region equation systems with
  closure verification and dissolution;
* :mod:`repro.regions.hierarchical` -- the three-phase from-scratch
  hierarchical solver (drop-in twin of ``solve_bitset``);
* :mod:`repro.regions.incremental`  -- the continuously-solved engine
  with signature-keyed per-region caches;
* :mod:`repro.regions.edits`        -- the statement-level edit API;
* :mod:`repro.regions.parallel`     -- sibling-subtree summarization
  through the supervised worker pool;
* :mod:`repro.regions.replay`       -- the deterministic edit-replay
  benchmark workload.
"""

from repro.regions.edits import EditSession
from repro.regions.hierarchical import (
    build_region_systems,
    core_problems,
    hierarchical_summaries,
    solve_hierarchical,
)
from repro.regions.incremental import ANALYSES, RegionDataflow
from repro.regions.parallel import parallel_summaries
from repro.regions.replay import bench_edit_replay, replay_row
from repro.regions.systems import RegionSystems, build_systems

__all__ = [
    "ANALYSES",
    "EditSession",
    "RegionDataflow",
    "RegionSystems",
    "bench_edit_replay",
    "build_region_systems",
    "build_systems",
    "core_problems",
    "hierarchical_summaries",
    "parallel_summaries",
    "replay_row",
    "solve_hierarchical",
]
