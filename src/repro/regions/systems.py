"""Per-region local equation systems over the program structure tree.

Each canonical SESE region becomes a :class:`System`: the nodes it owns
(smallest enclosing region), the edges those nodes compute, and one
*super-equation* per direct child -- ``fact(child.exit) =
summary_child(fact(child.entry))`` for forward problems, the dual for
backward ones.  A virtual root system owns every node outside all
regions, so the systems partition the graph and the hierarchy of
systems mirrors the PST.

The solver relies on a *closure* property: every edge a system's
equations read must resolve to the system's own input (the region's
entry edge forward / exit edge backward), an edge computed by one of
its owned nodes, or the summarized boundary of a direct child.  The
property holds for canonical regions on the graphs the builder emits,
but rather than trusting a structural proof over every irreducible /
``goto``-soup graph the generators can produce, :func:`build_systems`
*verifies* closure while assembling and **dissolves** any region that
violates it -- the region's nodes and children are merged into its
parent and assembly retries.  Dissolving every region degenerates to a
single flat root system, so the construction always succeeds and the
hierarchical solve stays byte-identical to the flat one (a dissolved
tree just summarizes less).

Sequential composition is associative -- ``summary(A; B) =
summary(B) . summary(A)`` -- so a *flat chain* of sibling systems at
the virtual root (each sibling's exit edge feeding the next sibling's
entry) can be re-associated freely.  :meth:`RegionSystems._balance_root`
exploits this: maximal sequential runs among the root's children are
wrapped into a balanced binary tree of synthetic *chain systems* (pure
composition nodes, marked with :data:`CHAIN`, owning no nodes of their
own).  A statement edit then re-summarizes an O(log chain) spine
instead of re-solving an O(chain) root system, which is what makes
per-edit latency on chain-shaped programs scale.  Chain systems are
solved and cached exactly like region systems; only the *shape* of the
tree changes, never the fixpoint, so flat/hierarchical byte-identity is
preserved.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.cfg.graph import CFG
    from repro.controldep.sese import ProgramStructure, Region

#: Sentinel reference: "the system's own input value".
INPUT = -1

#: Unit tags (first element of a unit tuple).
NODE_UNIT = 0
CHILD_UNIT = 1


class ChainRegion:
    """Marker standing in for a structure ``Region`` on synthetic chain
    systems: the system exists only to re-associate sequential
    composition, it owns no nodes and has no counterpart in the PST."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<chain>"


#: The shared marker instance (chain systems are interchangeable; their
#: identity lives in the ``(entry, exit)`` key like any other system's).
CHAIN = ChainRegion()


class System:
    """One region's (or the virtual root's) local equation system.

    ``fwd_units`` / ``bwd_units`` are tuples of unit tuples:

    * ``(NODE_UNIT, nid, refs, outs)`` -- apply the node transfer to the
      meet of ``refs`` and write the result to every edge in ``outs``;
    * ``(CHILD_UNIT, pos, ref, out)`` -- apply child ``pos``'s summary
      to ``ref`` and write the result to ``out``.

    A ref is an edge id, or :data:`INPUT` for the system's input edge.
    The unit tuples double as the system's *signature*: two builds of
    the same region with equal units (and equal child keys) have
    identical equations, which is what the incremental engine's cache
    keys on.
    """

    __slots__ = (
        "index", "region", "parent", "entry", "exit", "nodes",
        "children", "depth", "fwd_units", "bwd_units",
    )

    def __init__(self, index: int, region: "Region | None") -> None:
        self.index = index
        self.region = region
        self.parent: int | None = None
        self.entry: int | None = None if region is None else region.entry
        self.exit: int | None = None if region is None else region.exit
        self.nodes: tuple[int, ...] = ()
        self.children: tuple[int, ...] = ()
        self.depth = 0
        self.fwd_units: tuple = ()
        self.bwd_units: tuple = ()

    @property
    def key(self) -> tuple[int, int] | None:
        """``(entry, exit)`` for region systems, ``None`` for the root."""
        return None if self.region is None else (self.entry, self.exit)

    def signature(self, child_keys: tuple) -> tuple:
        """Everything the system's solution depends on besides node
        masks and child summaries."""
        return (self.entry, self.exit, self.fwd_units, self.bwd_units,
                child_keys)

    def __repr__(self) -> str:
        tag = "root" if self.region is None else f"e{self.entry}..e{self.exit}"
        return f"System({self.index}: {tag}, {len(self.nodes)} nodes)"


class _Violation(Exception):
    """Internal: closure failed; carries the region to dissolve."""

    def __init__(self, region: "Region") -> None:
        self.region = region


class RegionSystems:
    """The assembled system hierarchy for one graph + structure.

    ``systems[0]`` is the virtual root; the rest are ordered by
    ``(depth, entry edge id)``, so iterating ``systems`` is a top-down
    sweep and ``reversed(systems)`` a bottom-up one.  ``dissolved``
    counts regions merged away by closure violations (zero on every
    graph the corpus generators produce -- asserted by the differential
    suite, but never *assumed* by the solver).
    """

    __slots__ = (
        "graph", "structure", "systems", "sys_of_node", "dissolved",
        "reused", "_prev", "_touched", "_balance",
    )

    def __init__(
        self,
        graph: "CFG",
        structure: "ProgramStructure",
        counter: WorkCounter | None = None,
        prev: "RegionSystems | None" = None,
        touched: "set | None" = None,
        balance: bool = True,
    ) -> None:
        self.graph = graph
        self.structure = structure
        self.dissolved = 0
        self.reused = 0
        self._balance = balance
        # Unit reuse: ``prev`` is the assembly from just before a single
        # structure edit and ``touched`` that edit's affected regions
        # (``ProgramStructure.consume_touched``).  An untouched region
        # with unchanged boundary, node ownership and child boundaries
        # resolves every reference exactly as before, so its unit tuples
        # carry over without re-deriving them.
        self._prev = prev
        self._touched = touched
        dead: set = set()
        while True:
            try:
                self._assemble(dead)
                break
            except _Violation as violation:
                dead.add(violation.region)
                self.dissolved += 1
                if counter is not None:
                    counter.tick("region_dissolved")
        self._prev = None
        self._touched = None
        if counter is not None:
            counter.tick("region_systems_built", len(self.systems))
            if self.reused:
                counter.tick("region_units_reused", self.reused)

    # -- assembly ------------------------------------------------------------

    def _active_region(self, region: "Region | None", dead: set):
        while region is not None and region in dead:
            region = region.parent
        return region

    def _assemble(self, dead: set) -> None:
        graph, structure = self.graph, self.structure

        active = [r for r in structure.regions if r not in dead]
        # Depth within the *active* tree (dissolution can skip levels).
        depth_of: dict = {}
        for region in sorted(active, key=lambda r: r.depth):
            parent = self._active_region(region.parent, dead)
            depth_of[region] = depth_of[parent] + 1 if parent else 1
        active.sort(key=lambda r: (depth_of[r], r.entry))

        root = System(0, None)
        systems: list[System] = [root]
        sys_of_region: dict = {}
        for region in active:
            system = System(len(systems), region)
            system.depth = depth_of[region]
            systems.append(system)
            sys_of_region[region] = system

        children: dict[int, list[int]] = {s.index: [] for s in systems}
        for region in active:
            system = sys_of_region[region]
            parent = self._active_region(region.parent, dead)
            parent_sys = sys_of_region[parent] if parent else root
            system.parent = parent_sys.index
            children[parent_sys.index].append(system.index)
        for system in systems:
            system.children = tuple(
                sorted(children[system.index], key=lambda i: systems[i].entry)
            )

        sys_of_node: dict[int, int] = {}
        owned: dict[int, list[int]] = {s.index: [] for s in systems}
        for nid in graph.nodes:
            region = self._active_region(structure.region_of_node[nid], dead)
            system = sys_of_region[region] if region else root
            sys_of_node[nid] = system.index
            owned[system.index].append(nid)
        for system in systems:
            system.nodes = tuple(sorted(owned[system.index]))

        prev, touched = self._prev, self._touched
        reusable: dict = {}
        if prev is not None and touched is not None and not dead:
            for old in prev.systems:
                if old.region not in touched:
                    reusable[old.region] = old

        for system in systems:
            old = reusable.get(system.region) if reusable else None
            if (
                old is not None
                and old.entry == system.entry
                and old.exit == system.exit
                and old.nodes == system.nodes
                and tuple(prev.systems[i].key for i in old.children)
                == tuple(systems[i].key for i in system.children)
            ):
                system.fwd_units = old.fwd_units
                system.bwd_units = old.bwd_units
                self.reused += 1
                continue
            self._build_units(system, systems, sys_of_node, dead)

        if self._balance:
            self._balance_root(systems, sys_of_node, dead)

        self.systems = systems
        self.sys_of_node = sys_of_node

    def _balance_root(
        self, systems: list[System], sys_of_node: dict[int, int], dead: set,
    ) -> None:
        """Wrap maximal sequential runs of the root's children into a
        balanced binary tree of :data:`CHAIN` systems.

        Runs on the *verified* assembly: every root unit already
        resolved, so a run link ``A.exit == B.entry`` is by construction
        an edge no root node reads, and the synthetic systems' pure
        child-unit equations satisfy closure trivially.  Node ownership
        never moves -- chain systems exist only to re-associate the
        composition -- so ``sys_of_node`` and every real system's own
        equations are untouched; only parents, depths and the root's
        units change.
        """
        root = systems[0]
        children = root.children
        if len(children) < 2:
            return

        by_entry = {systems[i].entry: i for i in children}
        exits = {systems[i].exit for i in children}

        # Maximal paths of the (injective) exit->entry successor map.
        # Closed cycles of siblings have no start and stay unwrapped.
        runs: list[list[int]] = []
        wrapped: set[int] = set()
        for index in children:
            if systems[index].entry in exits:
                continue
            run = [index]
            nxt = by_entry.get(systems[index].exit)
            while nxt is not None and nxt not in wrapped and nxt != index:
                run.append(nxt)
                nxt = by_entry.get(systems[nxt].exit)
            if len(run) >= 2:
                wrapped.update(run)
                runs.append(run)
        if not runs:
            return

        prev, touched = self._prev, self._touched
        prev_chain: dict = {}
        old_root = None
        if prev is not None and touched is not None and not dead:
            for old in prev.systems:
                if old.region is CHAIN:
                    prev_chain[(old.entry, old.exit)] = old
            old_root = prev.systems[0]

        def wrap(seq: list[int]) -> int:
            """Balanced re-association of one run; returns the top."""
            if len(seq) == 1:
                return seq[0]
            mid = len(seq) // 2
            left, right = wrap(seq[:mid]), wrap(seq[mid:])
            lsys, rsys = systems[left], systems[right]
            node = System(len(systems), None)
            node.region = CHAIN
            node.entry, node.exit = lsys.entry, rsys.exit
            node.children = (left, right)
            systems.append(node)
            lsys.parent = rsys.parent = node.index
            old = prev_chain.get((node.entry, node.exit))
            if (
                old is not None
                and tuple(prev.systems[i].key for i in old.children)
                == (lsys.key, rsys.key)
            ):
                node.fwd_units = old.fwd_units
                node.bwd_units = old.bwd_units
                self.reused += 1
            else:
                node.fwd_units = (
                    (CHILD_UNIT, 0, INPUT, lsys.exit),
                    (CHILD_UNIT, 1, lsys.exit, rsys.exit),
                )
                node.bwd_units = (
                    (CHILD_UNIT, 1, INPUT, rsys.entry),
                    (CHILD_UNIT, 0, rsys.entry, lsys.entry),
                )
            return node.index

        top_of_head = {run[0]: wrap(run) for run in runs}
        new_children = []
        for index in children:
            if index in wrapped:
                if index in top_of_head:
                    new_children.append(top_of_head[index])
            else:
                new_children.append(index)
        root.children = tuple(new_children)
        for index in new_children:
            systems[index].parent = 0

        # A chain top's entry equals its head's, so the root's equations
        # re-derive cleanly against the new children; reuse the previous
        # balanced root's units when nothing it reads moved (same
        # soundness condition as the per-region reuse above).
        if (
            old_root is not None
            and old_root.nodes == root.nodes
            and tuple(prev.systems[i].key for i in old_root.children)
            == tuple(systems[i].key for i in root.children)
        ):
            root.fwd_units = old_root.fwd_units
            root.bwd_units = old_root.bwd_units
            self.reused += 1
        else:
            self._build_units(root, systems, sys_of_node, dead)

        # Re-establish the ordering invariant (parents strictly before
        # children; ``reversed(systems)`` is bottom-up) over the new
        # depths, then renumber.  CHILD_UNIT positions are positional
        # within each ``children`` tuple, which the remap preserves.
        stack = [0]
        while stack:
            index = stack.pop()
            for child in systems[index].children:
                systems[child].depth = systems[index].depth + 1
                stack.append(child)
        order = [systems[0]] + sorted(
            systems[1:], key=lambda s: (s.depth, s.entry)
        )
        remap = {system.index: new for new, system in enumerate(order)}
        for system in order:
            system.index = remap[system.index]
            if system.parent is not None:
                system.parent = remap[system.parent]
            system.children = tuple(remap[c] for c in system.children)
        systems[:] = order
        for nid, index in sys_of_node.items():
            sys_of_node[nid] = remap[index]

    def _build_units(
        self, system: System, systems: list[System],
        sys_of_node: dict[int, int], dead: set,
    ) -> None:
        graph = self.graph
        child_exit = {systems[i].exit: pos
                      for pos, i in enumerate(system.children)}
        child_entry = {systems[i].entry: pos
                       for pos, i in enumerate(system.children)}

        def resolve(eid: int, endpoint: int, boundary: int | None,
                    via_child: dict) -> int:
            if boundary is not None and eid == boundary:
                return INPUT
            if sys_of_node[endpoint] == system.index or eid in via_child:
                return eid
            raise _Violation(self._culprit(endpoint, system, dead))

        fwd: list[tuple] = []
        bwd: list[tuple] = []
        for nid in system.nodes:
            in_edges = graph.in_edges(nid)
            out_edges = graph.out_edges(nid)
            fwd.append((
                NODE_UNIT, nid,
                tuple(resolve(e.id, e.src, system.entry, child_exit)
                      for e in in_edges),
                tuple(e.id for e in out_edges),
            ))
            bwd.append((
                NODE_UNIT, nid,
                tuple(resolve(e.id, e.dst, system.exit, child_entry)
                      for e in out_edges),
                tuple(e.id for e in in_edges),
            ))
        for pos, child_index in enumerate(system.children):
            child = systems[child_index]
            entry_edge = graph.edge(child.entry)
            exit_edge = graph.edge(child.exit)
            fwd.append((
                CHILD_UNIT, pos,
                resolve(child.entry, entry_edge.src, system.entry, child_exit),
                child.exit,
            ))
            bwd.append((
                CHILD_UNIT, pos,
                resolve(child.exit, exit_edge.dst, system.exit, child_entry),
                child.entry,
            ))
        # The summary is read off the region's own boundary, so the
        # boundary must be computed locally.
        if system.region is not None:
            exit_src = graph.edge(system.exit).src
            if (sys_of_node[exit_src] != system.index
                    and system.exit not in child_exit):
                raise _Violation(system.region)
            entry_dst = graph.edge(system.entry).dst
            if (sys_of_node[entry_dst] != system.index
                    and system.entry not in child_entry):
                raise _Violation(system.region)
        system.fwd_units = tuple(fwd)
        system.bwd_units = tuple(bwd)

    def _culprit(self, nid: int, system: System, dead: set) -> "Region":
        """The region to dissolve for an unresolvable reference to an
        edge at node ``nid``: the direct child of ``system`` whose
        subtree owns the node, else the offender's topmost active
        ancestor, else ``system``'s own region."""
        region = self._active_region(
            self.structure.region_of_node.get(nid), dead
        )
        chain = []
        while region is not None:
            chain.append(region)
            region = self._active_region(region.parent, dead)
            if region is system.region:
                return chain[-1]
        if system.region is not None:
            return system.region
        if chain:
            return chain[-1]  # root system, offender under another root
        raise AssertionError(
            f"unresolvable edge at node {nid} with no region to dissolve"
        )

    # -- queries -------------------------------------------------------------

    def child_keys(self, system: System) -> tuple:
        """The ``(entry, exit)`` keys of a system's children, in child
        order -- the remainder of the system's cache signature."""
        return tuple(self.systems[i].key for i in system.children)


def build_systems(
    graph: "CFG",
    structure: "ProgramStructure",
    counter: WorkCounter | None = None,
    prev: RegionSystems | None = None,
    touched: "set | None" = None,
    balance: bool = True,
) -> RegionSystems:
    """Assemble (and closure-verify) the region equation systems.

    ``prev``/``touched`` enable unit reuse across a single structure
    edit: pass the previous assembly and the edit's
    :meth:`~repro.controldep.sese.ProgramStructure.consume_touched` set.
    ``balance=False`` skips the root-chain re-association (the flat
    root is kept for differential benchmarking only).
    """
    return RegionSystems(graph, structure, counter, prev, touched, balance)
