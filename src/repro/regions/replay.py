"""The deterministic edit-replay benchmark workload.

The workload models an editor session over a diamond-chain program: a
scripted sequence of statement-level edits, each followed by a full
query of the four core analyses.  The *fast* side keeps one
:class:`~repro.regions.edits.EditSession` alive -- every edit
re-summarizes only the dirty region's spine to the root (plus a cheap
system reassembly on shape edits).  The *legacy* side does what the
repo could do before this subsystem existed: rebuild the CSR snapshot
and re-run the four flat bitset solvers from scratch after every edit.

The edit script is deterministic (fixed PRNG seed, sorted node/edge
enumeration) so replayed runs are comparable across machines and hash
seeds.  Two edit kinds:

* ``swap``   -- exchange the ``x + 1`` / ``x - 1`` right-hand sides of a
  diamond's then/else arms.  Pure expression rewrites: structure-warm,
  and both expressions stay inside the built universes.
* ``spike``  -- splice a fresh copy assignment onto an edge, query, then
  unsplice it and query again.  Exercises the incremental SESE update
  and the signature-retaining system reassembly.  Spikes address edges
  by ``(src, dst, label)`` so the script survives edge-id churn across
  repeats (a splice/unsplice pair restores the shape but renames the
  edge).

Both sides run the same script on independently built twins of the same
program; the resulting decoded facts are compared for equality, which
makes every bench row a differential test as well.

A second workload, ``edit-replay-balance`` (:func:`balance_row`),
replays the same script through two *live* sessions that differ only in
the virtual root's shape -- flat O(N) chain vs the balanced composition
tree -- isolating exactly what the root re-association buys per edit.
"""

from __future__ import annotations

import random
from typing import Any

from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFG
from repro.dataflow.bitsets import (
    anticipatable_bitsets,
    available_bitsets,
    liveness_bitsets,
    reaching_bitsets,
)
from repro.lang.ast_nodes import BinOp, Var
from repro.perf.csr import build_csr
from repro.regions.edits import EditSession
from repro.util.counters import WorkCounter
from repro.workloads.ladders import diamond_chain

#: Script shape of the default workload (per replay run).
SWAP_EDITS = 40
SPIKE_EDITS = 5
SCRIPT_SEED = 7


def build_replay_graph(size: int) -> CFG:
    """A fresh CFG twin for replay ``size`` (deterministic, so two calls
    produce graphs with identical node and edge ids)."""
    return build_cfg(diamond_chain(size))


def edit_script(
    graph: CFG,
    swaps: int = SWAP_EDITS,
    spikes: int = SPIKE_EDITS,
    seed: int = SCRIPT_SEED,
) -> list[tuple]:
    """The deterministic edit script for one replay run.

    Entries are ``("swap", a_node, b_node)`` and
    ``("spike", src, dst, label, var)``; spikes are interleaved through
    the swaps so shape edits land between expression edits, not bunched
    at the end.
    """
    rng = random.Random(seed)
    plus: dict[str, list[int]] = {}
    minus: dict[str, list[int]] = {}
    for node in sorted(graph.assign_nodes(), key=lambda n: n.id):
        expr = node.expr
        if isinstance(expr, BinOp) and isinstance(expr.left, Var):
            if expr.op == "+":
                plus.setdefault(expr.left.name, []).append(node.id)
            elif expr.op == "-":
                minus.setdefault(expr.left.name, []).append(node.id)
    variables = sorted(set(plus) & set(minus))
    if not variables:
        raise ValueError("replay graph has no swappable diamond arms")

    script: list[tuple] = []
    for i in range(swaps):
        var = variables[i % len(variables)]
        script.append(
            ("swap", rng.choice(plus[var]), rng.choice(minus[var]))
        )
    edges = sorted(
        (edge.src, edge.dst, edge.label, eid)
        for eid, edge in graph.edges.items()
    )
    every = max(1, len(script) // max(1, spikes))
    for i in range(spikes):
        src, dst, label, _ = edges[
            rng.randrange(len(edges))
        ]
        var = variables[i % len(variables)]
        script.insert(
            min(len(script), (i + 1) * every), ("spike", src, dst, label, var)
        )
    return script


def _edge_by_endpoints(graph: CFG, src: int, dst: int, label) -> int:
    for eid, edge in sorted(graph.edges.items()):
        if edge.src == src and edge.dst == dst and edge.label == label:
            return eid
    raise KeyError(f"no edge {src}->{dst} ({label!r}) in replay graph")


def replay_fast(
    graph: CFG,
    script: list[tuple],
    session: EditSession,
) -> dict[str, dict[int, frozenset]]:
    """Run the script through the live edit session, querying all four
    analyses after every edit; returns the final decoded facts."""
    facts: dict[str, dict[int, frozenset]] = {}
    for step in script:
        if step[0] == "swap":
            _, a, b = step
            expr_a, expr_b = graph.node(a).expr, graph.node(b).expr
            session.rewrite_rhs(a, expr_b)
            session.rewrite_rhs(b, expr_a)
            facts = session.solve_all()
        else:
            _, src, dst, label, var = step
            eid = _edge_by_endpoints(graph, src, dst, label)
            nid, _, _ = session.splice_assign(eid, var, Var(var))
            session.solve_all()
            session.unsplice(nid)
            facts = session.solve_all()
    return facts


def _flat_all(graph: CFG) -> dict[str, dict[int, frozenset]]:
    csr = build_csr(graph)
    return {
        "available": available_bitsets(graph, csr=csr),
        "anticipatable": anticipatable_bitsets(graph, csr=csr),
        "liveness": liveness_bitsets(graph, csr=csr),
        "reaching": reaching_bitsets(graph, csr=csr),
    }


def replay_legacy(
    graph: CFG, script: list[tuple]
) -> dict[str, dict[int, frozenset]]:
    """The from-scratch baseline: apply the same script with plain graph
    mutations, rebuilding the CSR snapshot and re-running all four flat
    bitset solvers after every edit."""
    from repro.cfg.graph import NodeKind

    facts: dict[str, dict[int, frozenset]] = {}
    for step in script:
        if step[0] == "swap":
            _, a, b = step
            node_a, node_b = graph.node(a), graph.node(b)
            node_a.expr, node_b.expr = node_b.expr, node_a.expr
            graph.note_rewrite()
            facts = _flat_all(graph)
        else:
            _, src, dst, label, var = step
            eid = _edge_by_endpoints(graph, src, dst, label)
            edge_label = graph.edges[eid].label
            graph.remove_edge(eid)
            nid = graph.add_node(NodeKind.ASSIGN, target=var, expr=Var(var))
            graph.add_edge(src, nid, edge_label)
            graph.add_edge(nid, dst)
            _flat_all(graph)
            graph.remove_node(nid)
            graph.add_edge(src, dst, edge_label)
            facts = _flat_all(graph)
    return facts


def replay_row(
    size: int,
    repeat: int = 3,
    swaps: int = SWAP_EDITS,
    spikes: int = SPIKE_EDITS,
) -> dict[str, Any]:
    """One ``repro.bench/1`` row comparing incremental replay against
    the from-scratch baseline on twin graphs.

    Timings are best-of-``repeat`` whole-script runs; both twins replay
    the script the same number of times, so their final states -- and
    therefore the ``identical`` comparison -- line up exactly.
    """
    import time

    fast_graph = build_replay_graph(size)
    legacy_graph = build_replay_graph(size)
    script = edit_script(fast_graph, swaps=swaps, spikes=spikes)

    counter = WorkCounter()
    session = EditSession(fast_graph, counter=counter)
    session.solve_all()  # warm: the from-scratch hierarchical baseline

    best_fast = float("inf")
    fast_facts: dict = {}
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        fast_facts = replay_fast(fast_graph, script, session)
        best_fast = min(best_fast, time.perf_counter() - t0)

    best_legacy = float("inf")
    legacy_facts: dict = {}
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        legacy_facts = replay_legacy(legacy_graph, script)
        best_legacy = min(best_legacy, time.perf_counter() - t0)

    fast_ms = best_fast * 1000.0
    legacy_ms = best_legacy * 1000.0
    snapshot = counter.snapshot()
    return {
        "size": str(size),
        "nodes": fast_graph.num_nodes,
        "edges": fast_graph.num_edges,
        "edits": len(script),
        "legacy_ms": round(legacy_ms, 3),
        "fast_ms": round(fast_ms, 3),
        "speedup": round(legacy_ms / fast_ms, 2) if fast_ms else 0.0,
        "identical": fast_facts == legacy_facts,
        "regions_resummarized": snapshot.get("inc_regions_resummarized", 0),
        "full_rebuilds": snapshot.get("inc_full_rebuilds", 0),
    }


def bench_edit_replay(
    sizes: tuple[int, ...], repeat: int = 3
) -> dict[str, Any]:
    """The edit-replay workload in ``repro.bench/1`` shape."""
    rows = [replay_row(size, repeat=repeat) for size in sizes]
    return {
        "name": "edit-replay",
        "family": "diamond_chain",
        "rows": rows,
        "largest": rows[-1],
    }


def balance_row(
    size: int,
    repeat: int = 3,
    swaps: int = SWAP_EDITS,
    spikes: int = 0,
) -> dict[str, Any]:
    """One ``repro.bench/1`` row isolating the balanced virtual root.

    Both sides replay the same script through *live* incremental
    sessions, so the summary caches, the incremental decode, and the
    per-edit dirty-spine machinery are identical; the only difference
    is the root's shape.  *Legacy* pins the flat root chain
    (``balance=False``): every summary-changing edit re-solves an O(N)
    root system and seeds the top-down walk with all N children.
    *Fast* re-associates the chain into the balanced composition tree,
    cutting both to O(log N) plus the edited spine.

    The script is expression edits only (``spikes=0``): a shape edit
    reassembles the equation systems and full-sweeps on *both* sides,
    which the mixed-script ``edit-replay`` workload already measures --
    this row isolates the steady-state per-edit cost that the root
    shape governs.  The system re-evaluation counters are carried in
    the row for audit; note they tick per *system*, so the balanced
    side reads higher -- it trades one O(N)-edge root evaluation per
    edit for a logarithmic spine of two-edge chain evaluations.
    """
    import time

    flat_graph = build_replay_graph(size)
    bal_graph = build_replay_graph(size)
    script = edit_script(flat_graph, swaps=swaps, spikes=spikes)

    flat_counter = WorkCounter()
    flat_session = EditSession(
        flat_graph, counter=flat_counter, balance=False
    )
    flat_session.solve_all()
    bal_counter = WorkCounter()
    bal_session = EditSession(bal_graph, counter=bal_counter)
    bal_session.solve_all()

    best_flat = float("inf")
    flat_facts: dict = {}
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        flat_facts = replay_fast(flat_graph, script, flat_session)
        best_flat = min(best_flat, time.perf_counter() - t0)

    best_bal = float("inf")
    bal_facts: dict = {}
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        bal_facts = replay_fast(bal_graph, script, bal_session)
        best_bal = min(best_bal, time.perf_counter() - t0)

    flat_ms = best_flat * 1000.0
    bal_ms = best_bal * 1000.0
    return {
        "size": str(size),
        "nodes": bal_graph.num_nodes,
        "edges": bal_graph.num_edges,
        "edits": len(script),
        "legacy_ms": round(flat_ms, 3),
        "fast_ms": round(bal_ms, 3),
        "speedup": round(flat_ms / bal_ms, 2) if bal_ms else 0.0,
        "identical": flat_facts == bal_facts,
        "legacy_reevaluated": flat_counter.snapshot().get(
            "inc_regions_reevaluated", 0
        ),
        "fast_reevaluated": bal_counter.snapshot().get(
            "inc_regions_reevaluated", 0
        ),
    }


def bench_root_balance(
    sizes: tuple[int, ...], repeat: int = 3
) -> dict[str, Any]:
    """The flat-root vs balanced-root workload in ``repro.bench/1``
    shape (same edit script as ``edit-replay``; only the root differs).
    """
    rows = [balance_row(size, repeat=repeat) for size in sizes]
    return {
        "name": "edit-replay-balance",
        "family": "diamond_chain",
        "rows": rows,
        "largest": rows[-1],
    }
