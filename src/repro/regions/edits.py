"""Statement-level edit API over a continuously-analyzed CFG.

:class:`EditSession` owns the triple (graph, program structure,
:class:`~repro.regions.incremental.RegionDataflow`) and keeps all three
consistent through the supported statement edits:

* :meth:`rewrite_rhs`    -- change a node's expression in place (no
  shape change; the reaching caches stay entirely warm);
* :meth:`splice_assign`  -- insert an assignment onto an edge (one new
  canonical region; neighbours retarget; caches keep every untouched
  region);
* :meth:`unsplice`       -- remove a pass-through node and merge its
  edges (the inverse).

Each edit is O(dirty region spine), not O(program): the next
``solve_all()`` re-summarizes only the regions whose equations or node
masks changed, which the ``inc_regions_resummarized`` counter makes
auditable.  When an :class:`~repro.pipeline.manager.AnalysisManager` is
attached, each shape edit refreshes it and re-adopts the incrementally
maintained structure so downstream cached passes (DFG, lint, ...) reuse
it instead of rebuilding their own.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cfg.graph import CFG, CFGError, NodeKind
from repro.regions.incremental import RegionDataflow
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.lang.ast_nodes import Expr
    from repro.pipeline.manager import AnalysisManager


class EditSession:
    """Apply statement-level edits while keeping analyses hot."""

    def __init__(
        self,
        graph: CFG,
        counter: WorkCounter | None = None,
        live_out: frozenset[str] = frozenset(),
        manager: "AnalysisManager | None" = None,
        balance: bool = True,
    ) -> None:
        self.graph = graph
        self.counter = counter if counter is not None else WorkCounter()
        self.manager = manager
        from repro.controldep.sese import ProgramStructure

        self.structure = ProgramStructure(graph, counter=self.counter)
        self.engine = RegionDataflow(
            graph, self.structure, self.counter, live_out, balance=balance
        )
        self.edits = 0

    # -- edits ---------------------------------------------------------------

    def rewrite_rhs(self, nid: int, expr: "Expr") -> None:
        """Replace the expression of node ``nid`` (assignment right-hand
        side, print argument, or switch condition) in place."""
        node = self.graph.node(nid)
        if node.kind not in (NodeKind.ASSIGN, NodeKind.PRINT, NodeKind.SWITCH):
            raise CFGError(f"node {nid} ({node.kind.name}) has no expression")
        old_vars = node.defs() | node.uses()
        node.expr = expr
        self.graph.note_rewrite()
        self.engine.note_rewrite(nid, old_vars)
        self.edits += 1
        self._sync_manager(shape=False)

    def splice_assign(
        self, eid: int, target: str, expr: "Expr"
    ) -> tuple[int, int, int]:
        """Insert ``target := expr`` onto edge ``eid``; returns the new
        ``(node id, entry edge id, exit edge id)``."""
        edge = self.graph.edge(eid)
        src, dst, label = edge.src, edge.dst, edge.label
        self.graph.remove_edge(eid)
        nid = self.graph.add_node(NodeKind.ASSIGN, target=target, expr=expr)
        e1 = self.graph.add_edge(src, nid, label)
        e2 = self.graph.add_edge(nid, dst)
        self.structure.apply_splice(eid, nid, e1, e2, self.counter)
        self.engine.note_splice(nid)
        self.edits += 1
        self._sync_manager(shape=True)
        return nid, e1, e2

    def unsplice(self, nid: int) -> int:
        """Remove straight-line node ``nid``, merging its boundary edges
        into one new edge (returned)."""
        node = self.graph.node(nid)
        in_edges = self.graph.in_edges(nid)
        out_edges = self.graph.out_edges(nid)
        if len(in_edges) != 1 or len(out_edges) != 1:
            raise CFGError(f"node {nid} is not straight-line")
        (entry,), (exit,) = in_edges, out_edges
        if entry.src == nid or exit.dst == nid:
            raise CFGError(f"node {nid} is self-looping")
        node_vars = node.defs() | node.uses()
        e1, e2 = entry.id, exit.id
        src, dst, label = entry.src, exit.dst, entry.label
        self.graph.remove_node(nid)
        merged = self.graph.add_edge(src, dst, label)
        self.structure.apply_unsplice(nid, e1, e2, merged, self.counter)
        self.engine.note_unsplice(nid, node_vars)
        self.edits += 1
        self._sync_manager(shape=True)
        return merged

    # -- results -------------------------------------------------------------

    def statement_rows(self) -> list[dict]:
        """The editable statements, in node-id order, as plain dicts --
        the shape the serve daemon's ``edit open`` response puts on the
        wire, and what an editor needs to target ``rewrite_rhs``."""
        from repro.lang.pretty import pretty_expr

        return [
            {
                "id": nid,
                "kind": node.kind.name,
                "target": node.target,
                "expr": pretty_expr(node.expr)
                if node.expr is not None else None,
            }
            for nid, node in sorted(self.graph.nodes.items())
            if node.kind in (NodeKind.ASSIGN, NodeKind.PRINT, NodeKind.SWITCH)
        ]

    def solve_all(self) -> dict[str, dict[int, frozenset]]:
        """Decoded facts for all four analyses at the current state."""
        return self.engine.solve_all()

    def solve_masks(self, name: str) -> dict[int, int]:
        return self.engine.solve_masks(name)

    def _sync_manager(self, shape: bool) -> None:
        """Propagate the edit into an attached analysis manager: version
        bumps invalidate its caches, then the incrementally maintained
        structure is re-adopted so the ``sese`` pass costs nothing."""
        if self.manager is None:
            return
        self.manager.refresh()
        self.manager.adopt("sese", self.structure)
