"""Incremental region-summary dataflow: O(dirty spine) re-solving.

:class:`RegionDataflow` keeps the four core analyses (available and
anticipatable expressions, liveness, reaching definitions) continuously
solved over a mutating CFG.  The flat solver re-iterates the whole graph
after every change; here each region's phase-1 summary is cached under a
*signature* -- its equation units plus its children's boundary keys --
so a statement edit invalidates exactly the regions whose equations or
node masks moved:

* the region owning the edited node re-summarizes;
* a parent re-summarizes only if a child's *summary* (not merely its
  internals) changed -- unchanged summaries cut the spine off early;
* everything else is a cache hit, and the top-down evaluation skips any
  subtree whose input fact and equations both held still.

The caches survive shape edits too: a splice/unsplice rebuilds the
region systems (cheap dict assembly, no fixpoints), and the signature
check retains every untouched region's summary.

Universes are *sticky*: bit numberings are fixed at build time and only
appended to (reaching-definition sites), never re-sorted, so cached
masks stay comparable across edits.  A bit whose fact can no longer be
generated (an unspliced definition site) simply never appears in a
solution, which keeps decoded answers equal to a from-scratch solve.
Two edits break stickiness and trigger a full rebuild instead: a
variable or expression outside the built universe (no bit to assign
without re-sorting), and a variable vanishing entirely (reaching seeds
``(v, start)`` for every *current* variable, so a stale variable would
diverge from a fresh solve).  The differential suite asserts
decoded-equality against from-scratch flat solves after every edit.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, NamedTuple

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.available import gen_expressions
from repro.lang.ast_nodes import expr_vars
from repro.regions.hierarchical import (
    solve_system_concrete,
    solve_system_functions,
)
from repro.regions.systems import RegionSystems, build_systems
from repro.regions.transfer import apply
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.controldep.sese import ProgramStructure

#: The analyses the engine keeps solved, in report order.
ANALYSES = ("available", "anticipatable", "liveness", "reaching")


class _Spec(NamedTuple):
    """The solver-facing shape of one analysis (the node masks live in
    the engine's per-analysis tables, keyed by node id)."""

    direction: str
    meet_is_union: bool
    kill_then_gen: bool
    boundary_mask: int
    initial_mask: int


class _CachedSummaries(dict):
    """Child-summary lookup that falls back to the per-region cache for
    systems the selective sweep never visited (their summaries are
    known-valid by the epoch check)."""

    def __init__(self, systems, cache) -> None:
        super().__init__()
        self._systems = systems
        self._cache = cache

    def __missing__(self, index: int) -> tuple[int, int]:
        summary = self._cache[self._systems[index].key][2]
        self[index] = summary
        return summary


class RegionDataflow:
    """Continuously-solved hierarchical dataflow over one CFG.

    ``solve_all()`` returns the decoded facts for every analysis;
    between calls, feed edits through :meth:`note_rewrite`,
    :meth:`note_splice` and :meth:`note_unsplice` (the
    :class:`~repro.regions.edits.EditSession` wrapper drives the graph
    and :class:`~repro.controldep.sese.ProgramStructure` mutations and
    these notifications together).
    """

    def __init__(
        self,
        graph: CFG,
        structure: "ProgramStructure | None" = None,
        counter: WorkCounter | None = None,
        live_out: frozenset[str] = frozenset(),
        balance: bool = True,
    ) -> None:
        if structure is None:
            from repro.controldep.sese import ProgramStructure

            structure = ProgramStructure(graph)
        self.graph = graph
        self.structure = structure
        self.counter = counter if counter is not None else WorkCounter()
        self.live_out = live_out
        self.balance = balance
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        graph = self.graph
        self.systems: RegionSystems = build_systems(
            graph, self.structure, self.counter, balance=self.balance
        )

        # Variable universe (liveness bits + the reaching seed set) and
        # per-variable reference counts for vanish detection.
        self.vars: list[str] = sorted(graph.variables() | self.live_out)
        self.var_index = {v: i for i, v in enumerate(self.vars)}
        self.var_refs: Counter = Counter()
        for node in graph.nodes.values():
            for var in node.defs() | node.uses():
                self.var_refs[var] += 1

        # Expression universe, as in ExpressionSpace.
        self.exprs = sorted(graph.expressions(), key=repr)
        self.expr_index = {e: i for i, e in enumerate(self.exprs)}
        self.expr_kill_by_var: dict[str, int] = {}
        for i, expr in enumerate(self.exprs):
            bit = 1 << i
            for var in expr_vars(expr):
                self.expr_kill_by_var[var] = (
                    self.expr_kill_by_var.get(var, 0) | bit
                )
        full = (1 << len(self.exprs)) - 1

        # Reaching-definition sites: sorted at build, appended on splice.
        sites = {(v, graph.start) for v in graph.variables()}
        for node in graph.assign_nodes():
            assert node.target is not None
            sites.add((node.target, node.id))
        self.sites: list[tuple[str, int]] = sorted(sites)
        self.site_index = {s: i for i, s in enumerate(self.sites)}
        self.site_by_var: dict[str, int] = {}
        for var, nid in self.sites:
            self.site_by_var[var] = (
                self.site_by_var.get(var, 0)
                | (1 << self.site_index[(var, nid)])
            )

        live_boundary = 0
        for var in self.live_out:
            live_boundary |= 1 << self.var_index[var]
        self.specs: dict[str, _Spec] = {
            "available": _Spec("forward", False, False, 0, full),
            "anticipatable": _Spec("backward", False, True, 0, full),
            "liveness": _Spec("backward", True, True, live_boundary, 0),
            "reaching": _Spec("forward", True, True, 0, 0),
        }

        # Node-keyed gen/kill tables per analysis.
        self.node_gen: dict[str, dict[int, int]] = {a: {} for a in ANALYSES}
        self.node_kill: dict[str, dict[int, int]] = {a: {} for a in ANALYSES}
        for nid in graph.nodes:
            self._compile_node(nid)

        # Per-analysis caches:  key -> (signature, values, summary) for
        # regions, plus the root entry under key None holding concrete
        # facts.  ``_facts``/``_prev_input`` persist phase-2/3 results.
        # ``_epoch`` stamps the current system assembly: signatures can
        # only move when the systems are rebuilt, so an analysis whose
        # cache epoch matches skips signature checks entirely and visits
        # only the dirty nodes' ancestor spines.
        self._cache: dict[str, dict] = {a: {} for a in ANALYSES}
        self._facts: dict[str, dict[int, int]] = {a: {} for a in ANALYSES}
        self._prev_input: dict[str, dict] = {a: {} for a in ANALYSES}
        self._dirty: dict[str, set[int]] = {a: set() for a in ANALYSES}
        self._decode_memo: dict[str, dict[int, frozenset]] = {
            a: {} for a in ANALYSES
        }
        self._epoch = getattr(self, "_epoch", 0) + 1
        self._cache_epoch: dict[str, int] = {a: -1 for a in ANALYSES}
        self._decoded: dict[str, dict[int, frozenset] | None] = {
            a: None for a in ANALYSES
        }
        # Persistent decoded tables, updated edge-by-edge: the fresh
        # solve path records exactly which edges' masks moved in
        # ``_stale``, so a quiescent-ish edit decodes O(changed edges)
        # instead of O(E).  ``None`` forces a full rebuild (first query,
        # shape edits -- edge ids appear/vanish there).
        self._decoded_base: dict[str, dict[int, frozenset] | None] = {
            a: None for a in ANALYSES
        }
        self._stale: dict[str, set[int]] = {a: set() for a in ANALYSES}
        # Signatures depend only on the systems, not the analysis, so
        # the four solvers share one per-epoch signature table.
        self._sig_cache: tuple[int, list] | None = None

    def _compile_node(self, nid: int) -> None:
        """(Re)derive every analysis's gen/kill masks for one node."""
        node = self.graph.node(nid)
        uses = 0
        for var in node.uses():
            uses |= 1 << self.var_index[var]
        defs = 0
        for var in node.defs():
            defs |= 1 << self.var_index[var]
        self.node_gen["liveness"][nid] = uses
        self.node_kill["liveness"][nid] = defs

        egen = 0
        for expr in gen_expressions(node):
            egen |= 1 << self.expr_index[expr]
        ekill = 0
        if node.kind is NodeKind.ASSIGN:
            assert node.target is not None
            ekill = self.expr_kill_by_var.get(node.target, 0)
        for name in ("available", "anticipatable"):
            self.node_gen[name][nid] = egen
            self.node_kill[name][nid] = ekill

        rgen = 0
        rkill = 0
        if node.kind is NodeKind.START:
            for var in self.graph.variables():
                rgen |= 1 << self.site_index[(var, nid)]
        elif node.kind is NodeKind.ASSIGN:
            assert node.target is not None
            rgen = 1 << self.site_index[(node.target, nid)]
            rkill = self.site_by_var[node.target]
        self.node_gen["reaching"][nid] = rgen
        self.node_kill["reaching"][nid] = rkill

    def rebuild(self, reason: str = "rebuild") -> None:
        """Drop everything and recompile from the current graph state
        (universe misses, vanished variables)."""
        self.counter.tick("inc_full_rebuilds")
        self.counter.tick(f"inc_rebuild_{reason}")
        self._build()

    # -- edit notifications --------------------------------------------------

    def _track_vars(self, added, removed) -> bool:
        """Adjust reference counts; returns True when the edit stays
        inside the built universe (False => caller must rebuild)."""
        ok = True
        for var in added:
            self.var_refs[var] += 1
            if var not in self.var_index:
                self.counter.tick("inc_universe_miss")
                ok = False
        for var in removed:
            self.var_refs[var] -= 1
            if self.var_refs[var] <= 0:
                del self.var_refs[var]
                self.counter.tick("inc_var_vanished")
                ok = False
        return ok

    def note_rewrite(self, nid: int, old_vars: frozenset[str]) -> None:
        """Node ``nid``'s expression text changed (same shape, same
        assignment target).  ``old_vars`` is ``defs() | uses()`` from
        before the rewrite."""
        node = self.graph.node(nid)
        new_vars = node.defs() | node.uses()
        if not self._track_vars(new_vars - old_vars, old_vars - new_vars):
            self.rebuild("universe")
            return
        for expr in gen_expressions(node):
            if expr not in self.expr_index:
                self.counter.tick("inc_universe_miss")
                self.rebuild("universe")
                return
        self._compile_node(nid)
        # Reaching gen/kill depend only on the target, which a rewrite
        # keeps -- the reaching caches stay entirely warm.
        self._dirty["available"].add(nid)
        self._dirty["anticipatable"].add(nid)
        self._dirty["liveness"].add(nid)

    def note_splice(self, nid: int) -> None:
        """A new straight-line node ``nid`` was spliced onto an edge
        (graph and structure already updated)."""
        node = self.graph.node(nid)
        if not self._track_vars(node.defs() | node.uses(), ()):
            self.rebuild("universe")
            return
        for expr in gen_expressions(node):
            if expr not in self.expr_index:
                self.counter.tick("inc_universe_miss")
                self.rebuild("universe")
                return
        if node.kind is NodeKind.ASSIGN:
            assert node.target is not None
            site = (node.target, nid)
            bit = 1 << len(self.sites)
            self.sites.append(site)
            self.site_index[site] = len(self.sites) - 1
            self.site_by_var[node.target] = (
                self.site_by_var.get(node.target, 0) | bit
            )
            self._decode_memo["reaching"].clear()
            # Every definition of the same variable now also kills the
            # new site's bit.
            for other in self.graph.assign_nodes():
                if other.target == node.target and other.id != nid:
                    self.node_kill["reaching"][other.id] |= bit
                    self._dirty["reaching"].add(other.id)
        self._compile_node(nid)
        for name in ANALYSES:
            self._dirty[name].add(nid)
        self._reshape()

    def note_unsplice(self, nid: int, node_vars: frozenset[str]) -> None:
        """Straight-line node ``nid`` was removed and its edges merged
        (graph and structure already updated).  ``node_vars`` is the
        removed node's ``defs() | uses()``."""
        if not self._track_vars((), node_vars):
            self.rebuild("universe")
            return
        for name in ANALYSES:
            self.node_gen[name].pop(nid, None)
            self.node_kill[name].pop(nid, None)
            self._dirty[name].discard(nid)
        # The removed definition site's bit goes stale: no node
        # generates it any more, so it can never enter a solution, and
        # killing a never-set bit is a no-op -- decoded facts match a
        # fresh universe without it.
        self._reshape()

    def _reshape(self) -> None:
        """Rebuild the equation systems after a shape edit.  Untouched
        regions keep their unit tuples from the previous assembly, and
        the signature check against the per-region caches then keeps
        every untouched summary too."""
        self.systems = build_systems(
            self.graph, self.structure, self.counter,
            prev=self.systems, touched=self.structure.consume_touched(),
            balance=self.balance,
        )
        self._epoch += 1
        self.counter.tick("inc_reshapes")

    # -- solving -------------------------------------------------------------

    def _signatures(self) -> list:
        """The per-system signature table for the current epoch (index 0
        is the virtual root's), computed once and shared by all four
        analyses' full sweeps."""
        if self._sig_cache is None or self._sig_cache[0] != self._epoch:
            systems = self.systems.systems
            keys = [s.key for s in systems]
            sigs: list = [None] * len(systems)
            for system in systems:
                child_keys = tuple(keys[i] for i in system.children)
                sigs[system.index] = system.signature(child_keys)
            self._sig_cache = (self._epoch, sigs)
        return self._sig_cache[1]

    def _solve(self, name: str) -> tuple[dict[int, int], bool]:
        """Bring ``name``'s facts up to date; returns ``(facts, moved)``
        where ``moved`` is False only when the cached facts (and the live
        edge set) are known unchanged since the previous solve."""
        spec = self.specs[name]
        systems = self.systems.systems
        node_gen = self.node_gen[name]
        node_kill = self.node_kill[name]
        cache = self._cache[name]
        dirty = self._dirty[name]
        facts = self._facts[name]
        prev_input = self._prev_input[name]
        forward = spec.direction == "forward"
        boundary_node = self.graph.start if forward else self.graph.end
        fresh = self._cache_epoch[name] == self._epoch

        if fresh and not dirty:
            return facts, False

        summaries = _CachedSummaries(systems, cache)
        recomputed: set[int] = set()
        root = systems[0]
        root_recomputed = False

        if fresh:
            # The systems are the same objects the cache was built from,
            # so every signature is known-valid: visit only the dirty
            # nodes' owning systems and their ancestor spines, pulling
            # skipped children's summaries straight from the cache.
            sys_of_node = self.systems.sys_of_node
            changed: set[int] = set()
            dirty_systems = {
                sys_of_node[n] for n in dirty if n in sys_of_node
            }
            spine: set[int] = set()
            for index in dirty_systems:
                walk: int | None = index
                while walk is not None and walk not in spine:
                    spine.add(walk)
                    walk = systems[walk].parent
            for index in sorted(spine - {0}, reverse=True):
                system = systems[index]
                if index not in dirty_systems and not any(
                    c in changed for c in system.children
                ):
                    continue  # children re-summarized to equal functions
                values = solve_system_functions(
                    system, systems, spec, node_gen, node_kill,
                    summaries, boundary_node, self.counter,
                )
                summary = values[system.exit if forward else system.entry]
                self.counter.tick("inc_regions_resummarized")
                recomputed.add(index)
                sig, _, old_summary = cache[system.key]
                if summary != old_summary:
                    changed.add(index)
                cache[system.key] = (sig, values, summary)
                summaries[index] = summary
            if 0 in dirty_systems or any(c in changed for c in root.children):
                root_facts = solve_system_concrete(
                    root, systems, spec, node_gen, node_kill,
                    summaries, boundary_node, self.counter,
                )
                stale = self._stale[name]
                for eid, val in root_facts.items():
                    if facts.get(eid) != val:
                        facts[eid] = val
                        stale.add(eid)
                self.counter.tick("inc_regions_resummarized")
                cache[None] = (cache[None][0], root_facts, None)
                root_recomputed = True
        else:
            # Systems were reassembled (shape edit or first solve): full
            # bottom-up sweep with signature checks, retaining every
            # region whose equations and children held still.
            sigs = self._signatures()
            sys_of_node = self.systems.sys_of_node
            dirty_systems = {
                sys_of_node[n] for n in dirty if n in sys_of_node
            }
            new_cache: dict = {}
            changed_keys: set = set()
            for system in reversed(systems):
                if system.region is None:
                    continue
                sig = sigs[system.index]
                cached = cache.get(system.key)
                needs = (
                    cached is None
                    or cached[0] != sig
                    or system.index in dirty_systems
                    or any(k in changed_keys for k in sig[4])
                )
                if needs:
                    values = solve_system_functions(
                        system, systems, spec, node_gen, node_kill,
                        summaries, boundary_node, self.counter,
                    )
                    summary = values[
                        system.exit if forward else system.entry
                    ]
                    self.counter.tick("inc_regions_resummarized")
                    recomputed.add(system.index)
                    if cached is None or summary != cached[2]:
                        changed_keys.add(system.key)
                    new_cache[system.key] = (sig, values, summary)
                else:
                    summary = cached[2]
                    new_cache[system.key] = cached
                summaries[system.index] = summary

            root_sig = sigs[0]
            root_cached = cache.get(None)
            root_needs = (
                root_cached is None
                or root_cached[0] != root_sig
                or 0 in dirty_systems
                or any(k in changed_keys for k in root_sig[4])
            )
            if root_needs:
                root_facts = solve_system_concrete(
                    root, systems, spec, node_gen, node_kill,
                    summaries, boundary_node, self.counter,
                )
                facts.update(root_facts)
                self.counter.tick("inc_regions_resummarized")
                new_cache[None] = (root_sig, root_facts, None)
                root_recomputed = True
            else:
                new_cache[None] = root_cached
            cache = self._cache[name] = new_cache
            self._cache_epoch[name] = self._epoch

        dirty.clear()
        if not recomputed and not root_recomputed and fresh:
            return facts, False

        # Early summary cutoffs leave recomputed regions below untouched
        # ancestors, so the walk must descend through clean levels that
        # have dirty subtrees (without re-applying their functions).
        dirty_below: set[int] = set()
        for index in recomputed:
            walk: int | None = index
            while walk is not None and walk != 0 and walk not in dirty_below:
                dirty_below.add(walk)
                walk = systems[walk].parent

        if root_recomputed or not fresh:
            seeds = list(root.children)
        else:
            # Root facts held still, so only subtrees containing a
            # recomputed region can see a new input or new functions.
            seeds = [c for c in root.children if c in dirty_below]
        stale = self._stale[name]
        stack = [
            (i, facts[systems[i].entry if forward else systems[i].exit])
            for i in reversed(seeds)
        ]
        while stack:
            index, inval = stack.pop()
            system = systems[index]
            input_changed = prev_input.get(system.key) != inval
            if not input_changed and index not in dirty_below:
                continue
            if input_changed or index in recomputed:
                prev_input[system.key] = inval
                for eid, fn in cache[system.key][1].items():
                    new = apply(fn, inval)
                    if facts.get(eid) != new:
                        facts[eid] = new
                        stale.add(eid)
                self.counter.tick("inc_regions_reevaluated")
            for child in reversed(system.children):
                child_sys = systems[child]
                boundary = child_sys.entry if forward else child_sys.exit
                stack.append((child, facts[boundary]))
        if not fresh:
            # Shape edits (and first solves) can add or drop edge ids,
            # so the persistent decoded table starts over.
            self._decoded_base[name] = None
        self._decoded[name] = None
        return facts, True

    def solve_masks(self, name: str) -> dict[int, int]:
        """The analysis's fact mask per live edge id."""
        facts, _ = self._solve(name)
        return {eid: facts[eid] for eid in self.graph.edges}

    def solve_all(self) -> dict[str, dict[int, frozenset]]:
        """Decoded facts for every analysis, keyed by edge id --
        comparable with the flat bitset twins and reference oracles."""
        return {name: self.decode(name) for name in ANALYSES}

    def decode(self, name: str) -> dict[int, frozenset]:
        facts, _ = self._solve(name)
        cached = self._decoded[name]
        if cached is not None:
            return cached
        universe: list = {
            "available": self.exprs,
            "anticipatable": self.exprs,
            "liveness": self.vars,
            "reaching": self.sites,
        }[name]
        memo = self._decode_memo[name]
        base = self._decoded_base[name]
        if base is None:
            base = self._decoded_base[name] = {}
            todo: "set[int] | object" = self.graph.edges
        else:
            todo = self._stale[name]
        for eid in todo:
            mask = facts[eid]
            got = memo.get(mask)
            if got is None:
                items = []
                rest = mask
                while rest:
                    low = rest & -rest
                    items.append(universe[low.bit_length() - 1])
                    rest ^= low
                got = frozenset(items)
                memo[mask] = got
            base[eid] = got
        self._stale[name].clear()
        # Hand out a snapshot so callers holding an earlier result never
        # see it mutate under a later edit; the copy is a C-level dict
        # copy, not a per-edge re-decode.
        out = dict(base)
        self._decoded[name] = out
        return out
