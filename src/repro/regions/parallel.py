"""Region-parallel summarization across the supervised worker pool.

Phase 1 of the hierarchical solve (bottom-up region summaries) is
embarrassingly parallel across *sibling subtrees*: a subtree's
summaries depend only on its own nodes and descendants, never on a
sibling (:func:`repro.regions.hierarchical.hierarchical_summaries`
with ``only=...``).  This module partitions the root's children into
balanced buckets and fans each ``(bucket, analysis)`` pair out as one
spec through :class:`repro.robust.pool.SupervisedPool` -- the same
hardened pool the batch driver uses, so stragglers are timed out,
crashes are isolated and retried, and a poison subtree is quarantined
instead of killing the run.

Workers receive plain dict specs (spawn-safe: a program is named by
``family``/``args`` and rebuilt inside the worker, exactly like batch
specs) and return JSON-safe rows; the driver merges the rows and, by
default, verifies the merged summaries byte-for-byte against an
in-process sequential sweep -- the parallel path is an optimization,
never a second source of truth.
"""

from __future__ import annotations

from typing import Any

from repro.regions.incremental import ANALYSES

#: JSON-safe summary encoding: ``{"entry:exit": [gen, kill], ...}``.


def encode_summaries(
    summaries: dict[tuple[int, int], tuple[int, int]]
) -> dict[str, list[int]]:
    """Canonical JSON-safe form of a phase-1 summary map (used by the
    worker rows and by the hash-determinism digests)."""
    return {
        f"{entry}:{exit_}": [fn[0], fn[1]]
        for (entry, exit_), fn in sorted(summaries.items())
    }


def decode_summaries(
    encoded: dict[str, list[int]]
) -> dict[tuple[int, int], tuple[int, int]]:
    out: dict[tuple[int, int], tuple[int, int]] = {}
    for key, (gen, kill) in encoded.items():
        entry, exit_ = key.split(":")
        out[(int(entry), int(exit_))] = (gen, kill)
    return out


def partition_subtrees(regions, buckets: int) -> list[list[int]]:
    """Greedy balanced partition of the root's child system indices.

    Synthetic chain systems (the balanced root re-association) are
    transparent here: they carry no summarization work of their own, so
    the partition descends through them to the real top-level region
    subtrees -- otherwise a chain-shaped program would collapse into a
    single bucket.  Weights are subtree node counts (summarization work
    is roughly linear in owned nodes); the heaviest subtree goes to the
    lightest bucket, ties broken by index so the partition is
    deterministic.  Returns at most ``buckets`` non-empty lists.
    """
    from repro.regions.systems import CHAIN

    systems = regions.systems
    weights: dict[int, int] = {}

    def subtree_weight(index: int) -> int:
        if index not in weights:
            system = systems[index]
            weights[index] = len(system.nodes) + sum(
                subtree_weight(child) for child in system.children
            )
        return weights[index]

    frontier: list[int] = []
    stack = list(systems[0].children)
    while stack:
        index = stack.pop()
        if systems[index].region is CHAIN:
            stack.extend(systems[index].children)
        else:
            frontier.append(index)
    children = sorted(frontier, key=lambda i: (-subtree_weight(i), i))
    buckets = max(1, buckets)
    loads = [0] * buckets
    out: list[list[int]] = [[] for _ in range(buckets)]
    for index in children:
        slot = loads.index(min(loads))
        out[slot].append(index)
        loads[slot] += weights[index]
    return [bucket for bucket in out if bucket]


def summary_specs(
    family: str,
    args: tuple,
    regions,
    workers: int,
    analyses: tuple[str, ...] = ANALYSES,
) -> list[dict]:
    """One pool spec per ``(subtree bucket, analysis)`` pair."""
    parts = partition_subtrees(regions, workers)
    return [
        {
            "regions": True,
            "label": f"{family}-part{p}-{name}",
            "family": family,
            "args": list(args),
            "analysis": name,
            "subtree": list(bucket),
        }
        for p, bucket in enumerate(parts)
        for name in analyses
    ]


def summarize_subtree(spec: dict) -> dict:
    """Worker body for a ``"regions"`` spec: rebuild the program, solve
    the named analysis's summaries over the spec's subtree (plus
    descendants), and return them JSON-safe.  Runs under
    :func:`repro.perf.batch._analyze_one`, so raising is fine -- the
    caller converts exceptions into error rows."""
    from repro.cfg.builder import build_cfg
    from repro.perf.batch import resolve_family
    from repro.perf.csr import build_csr
    from repro.regions.hierarchical import (
        build_region_systems,
        core_problems,
        hierarchical_summaries,
    )

    program = resolve_family(spec["family"])(*spec["args"])
    graph = build_cfg(program)
    csr = build_csr(graph)
    regions = build_region_systems(graph)
    problem = core_problems(graph, csr)[spec["analysis"]]
    summaries = hierarchical_summaries(
        csr, regions, problem, only=set(spec["subtree"])
    )
    return {
        "label": spec["label"],
        "analysis": spec["analysis"],
        "subtree": list(spec["subtree"]),
        "systems": len(summaries),
        "dissolved": regions.dissolved,
        "summaries": encode_summaries(summaries),
    }


def merge_rows(
    rows: list[dict],
) -> dict[str, dict[tuple[int, int], tuple[int, int]]]:
    """Merge worker rows into ``{analysis: {region key: summary}}``.

    Buckets are disjoint subtrees, so the per-analysis maps never
    collide; a row with an ``error`` record raises -- partial summary
    sets must not masquerade as complete ones.
    """
    merged: dict[str, dict[tuple[int, int], tuple[int, int]]] = {
        name: {} for name in ANALYSES
    }
    for row in rows:
        if row.get("error"):
            from repro.robust.errors import AnalysisError

            raise AnalysisError(
                f"parallel summary worker failed: {row['error'].get('type')}"
                f": {row['error'].get('message')}",
                phase="regions-parallel",
            )
        merged[row["analysis"]].update(decode_summaries(row["summaries"]))
    return merged


def parallel_summaries(
    family: str,
    args: tuple,
    workers: int = 0,
    timeout_s: float | None = None,
    verify: bool = True,
) -> dict[str, Any]:
    """Summarize every region of ``family(*args)`` with sibling subtrees
    fanned out across the supervised pool.

    ``workers=0`` runs the same specs in-process (deterministic -- the
    CI and test default).  With ``verify`` (default) the merged result
    is checked byte-for-byte against the sequential in-process sweep.
    """
    from repro.cfg.builder import build_cfg
    from repro.perf.batch import resolve_family
    from repro.perf.csr import build_csr
    from repro.regions.hierarchical import (
        build_region_systems,
        core_problems,
        hierarchical_summaries,
    )

    program = resolve_family(family)(*args)
    graph = build_cfg(program)
    regions = build_region_systems(graph)
    specs = summary_specs(family, tuple(args), regions, workers or 1)

    if workers and workers > 0:
        from repro.robust.incidents import IncidentLog
        from repro.robust.pool import SupervisedPool

        pool = SupervisedPool(
            workers, timeout_s=timeout_s, incidents=IncidentLog()
        )
        rows = pool.run(specs)
    else:
        from repro.perf.batch import _analyze_one

        rows = [_analyze_one(spec) for spec in specs]
    merged = merge_rows(rows)

    verified = None
    if verify:
        csr = build_csr(graph)
        problems = core_problems(graph, csr)
        for name in ANALYSES:
            expected = hierarchical_summaries(csr, regions, problems[name])
            if merged[name] != expected:
                from repro.robust.errors import AnalysisError

                raise AnalysisError(
                    f"parallel {name} summaries diverge from the "
                    f"sequential sweep",
                    phase="regions-parallel",
                )
        verified = True

    return {
        "family": family,
        "args": list(args),
        "workers": workers,
        "specs": len(specs),
        "subtrees": len(regions.systems[0].children),
        "systems": len(regions.systems) - 1,
        "dissolved": regions.dissolved,
        "verified": verified,
        "summaries": {
            name: encode_summaries(merged[name]) for name in ANALYSES
        },
    }
