"""Command-line interface: run, analyze, optimize and profile programs.

::

    python -m repro run program.dfg --env n=5
    python -m repro analyze program.dfg
    python -m repro optimize program.dfg --dot optimized.dot --env n=5
    python -m repro profile program.dfg
    python -m repro trace program.dfg --optimize
    python -m repro lint program.dfg --format sarif
    python -m repro serve --socket /tmp/repro.sock
    python -m repro request analyze program.dfg --socket /tmp/repro.sock

The source language is the small imperative language of
:mod:`repro.lang` (see README).  ``analyze`` prints the control
structure (cycle-equivalence classes, SESE regions), the dependence
counts, constants and dead code; ``optimize`` runs the staged pipeline
and reports dynamic evaluation counts before and after on the given
environment.  ``profile`` runs every registered analysis pass through
the pipeline manager and emits per-pass JSON (work units, wall-clock
time, cache hits/misses); ``trace`` emits the span-level timeline the
same run produced.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.cfg.builder import build_cfg
from repro.cfg.dot import cfg_to_dot
from repro.cfg.interp import run_cfg
from repro.core.dfg import CTRL_VAR
from repro.lang.errors import LangError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_expr
from repro.opt.pipeline import optimize
from repro.pipeline.manager import AnalysisManager
from repro.robust.errors import ReproError
from repro.util.metrics import Metrics

#: Schema identifiers pinned by the golden CLI tests; bump on any
#: structural change to the emitted JSON.
PROFILE_SCHEMA = "repro.profile/1"
TRACE_SCHEMA = "repro.trace/1"
BENCH_SCHEMA = "repro.bench/1"
LINT_SCHEMA = "repro.lint/1"


def _parse_env(pairs: list[str]) -> dict[str, int]:
    env: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value.lstrip("-").isdigit():
            raise SystemExit(f"bad --env entry {pair!r}; expected name=int")
        env[name] = int(value)
    return env


def _load(path: str):
    with open(path) as fh:
        return parse_program(fh.read())


def cmd_run(args: argparse.Namespace) -> int:
    graph = build_cfg(_load(args.file))
    result = run_cfg(graph, _parse_env(args.env), max_steps=args.max_steps)
    for value in result.outputs:
        print(value)
    if args.verbose:
        print(f"-- {result.steps} steps", file=sys.stderr)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    graph = build_cfg(_load(args.file))
    manager = AnalysisManager(graph)
    structure = manager.get("sese")
    dfg = manager.get("dfg")
    constants = manager.get("constprop")

    print(f"CFG: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{len(graph.variables())} variables")
    print(f"control structure: {len(structure.classes)} cycle-equivalence "
          f"classes, {len(structure.regions)} canonical SESE regions "
          f"(max nesting {max((r.depth for r in structure.regions), default=0)})")
    print(f"DFG: {dfg.size()} dependence edges "
          f"({dfg.size(include_control=False)} data), "
          f"{len(dfg.multiedges())} multiedges")
    found = {
        key: value
        for key, value in constants.constant_uses().items()
        if key[1] != CTRL_VAR
    }
    print(f"constants: {len(found)} uses are compile-time constants")
    if args.verbose:
        for (node, var), value in sorted(found.items()):
            print(f"  node {node}: {var} = {value}")
    if constants.dead_nodes:
        print(f"dead code: statements {sorted(constants.dead_nodes)} can "
              f"never execute")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(cfg_to_dot(graph))
        print(f"wrote {args.dot}")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    graph = build_cfg(_load(args.file))
    optimized, report = optimize(graph, stages=args.stages)
    print(f"nodes: {graph.num_nodes} -> {optimized.num_nodes}")
    print(f"folded: {report.constprop.folded_rhs + report.cleanup.folded_rhs} "
          f"expressions, "
          f"{report.constprop.folded_branches + report.cleanup.folded_branches}"
          f" branches; removed "
          f"{report.constprop.removed_assignments + report.cleanup.removed_assignments}"
          f" dead assignments")
    if report.pre_expressions:
        names = ", ".join(pretty_expr(e) for e in report.pre_expressions)
        print(f"redundancies eliminated: {names} "
              f"({report.copies_propagated} copies propagated, "
              f"{report.stages_run} stages)")
    env = _parse_env(args.env)
    before = run_cfg(graph, env, max_steps=args.max_steps)
    after = run_cfg(optimized, env, max_steps=args.max_steps)
    if before.outputs != after.outputs:
        print("BUG: outputs differ!", file=sys.stderr)
        return 1
    total_before = sum(before.eval_counts.values())
    total_after = sum(after.eval_counts.values())
    print(f"dynamic expression evaluations on this input: "
          f"{total_before} -> {total_after}")
    print(f"outputs (unchanged): {after.outputs}")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(cfg_to_dot(optimized, name="optimized"))
        print(f"wrote {args.dot}")
    return 0


def _program_summary(path: str, graph) -> dict:
    return {
        "file": os.path.basename(path),
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "variables": len(graph.variables()),
    }


def _profiled_manager(args: argparse.Namespace) -> tuple[AnalysisManager, dict]:
    """Build the program's CFG, sweep it through the pipeline manager
    (optionally via the full optimizer), and return (manager, program row)."""
    graph = build_cfg(_load(args.file))
    registry = None
    if getattr(args, "lint", False):
        from repro.lint.rules import lint_registry

        registry = lint_registry()
    manager = AnalysisManager(graph, registry=registry, metrics=Metrics())
    program = _program_summary(args.file, graph)
    if getattr(args, "optimize", False):
        optimize(graph, manager=manager)
        manager.run_all()
    else:
        manager.run_all()
        # A second sweep makes the cache traffic visible: every pass is
        # warm, so hits == misses on an unchanged graph.
        manager.run_all()
    return manager, program


def cmd_profile(args: argparse.Namespace) -> int:
    manager, program = _profiled_manager(args)
    rows = manager.report()
    totals = {
        "passes": len(rows),
        "cache": {
            key: sum(row["cache"][key] for row in rows)
            for key in ("hits", "misses", "invalidations")
        },
        "work_total": sum(row["work_total"] for row in rows),
        "wall_ms": round(sum(row["wall_ms"] for row in rows), 3),
    }
    payload = {
        "schema": PROFILE_SCHEMA,
        "program": program,
        "passes": rows,
        "totals": totals,
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    manager, program = _profiled_manager(args)
    payload = {
        "schema": TRACE_SCHEMA,
        "program": program,
        **manager.metrics.as_dict(),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


#: Fill colors for ``repro lint --dot``: findings by severity.
_LINT_COLORS = {
    "definite": "#f4cccc",
    "possible": "#fce5cd",
    "info": "#d9ead3",
}


def _lint_dot(graph, diagnostics) -> str:
    """The CFG with lint-flagged nodes filled by strongest severity."""
    from repro.lint.model import SEVERITIES

    strongest: dict[int, str] = {}
    for diag in diagnostics:
        if diag.node < 0:
            continue
        current = strongest.get(diag.node)
        if current is None or (
            SEVERITIES.index(diag.severity) < SEVERITIES.index(current)
        ):
            strongest[diag.node] = diag.severity
    node_attrs = {
        nid: f'style=filled, fillcolor="{_LINT_COLORS[severity]}"'
        for nid, severity in strongest.items()
    }
    return cfg_to_dot(graph, name="lint", node_attrs=node_attrs)


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.engine import LintEngine, LintResult
    from repro.lint.model import SEVERITIES
    from repro.lint.output import (
        baseline_fingerprints,
        baseline_payload,
        filter_baseline,
        lint_payload,
        render_text,
        sarif_payload,
    )

    graph = build_cfg(_load(args.file))
    result = LintEngine(graph).run(
        verify=not args.no_verify, max_steps=args.max_steps
    )

    if args.write_baseline:
        payload = baseline_payload(result.diagnostics)
        with open(args.write_baseline, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.write_baseline} "
              f"({len(payload['suppressions'])} suppressions)")
        return 0

    diagnostics, suppressed = result.diagnostics, 0
    if args.baseline:
        with open(args.baseline) as fh:
            suppressions = baseline_fingerprints(json.load(fh))
        diagnostics, suppressed = filter_baseline(diagnostics, suppressions)
    shown = LintResult(
        diagnostics=diagnostics,
        verified=result.verified,
        manager=result.manager,
    )

    if args.format == "json":
        text = json.dumps(
            lint_payload(args.file, shown, suppressed),
            indent=2, sort_keys=True,
        ) + "\n"
    elif args.format == "sarif":
        text = json.dumps(
            sarif_payload(args.file, diagnostics), indent=2, sort_keys=True
        ) + "\n"
    else:
        counts = shown.by_severity()
        text = render_text(args.file, diagnostics)
        text += (f"{len(diagnostics)} findings "
                 f"({counts['definite']} definite, "
                 f"{counts['possible']} possible, {counts['info']} info)")
        if suppressed:
            text += f"; {suppressed} suppressed by baseline"
        text += "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)

    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(_lint_dot(graph, diagnostics))
        print(f"wrote {args.dot}")

    if result.oracle_failures:
        # A rule's oracle checker raised: the findings above are still
        # sound (the affected ones were conservatively demoted), but the
        # zero-false-positive guarantee was not fully measured.  Exit 2
        # with one structured line -- the documented contract.
        from repro.robust.errors import AnalysisError

        first = result.oracle_failures[0]
        raise AnalysisError(
            f"{len(result.oracle_failures)} lint oracle check(s) raised; "
            f"first: {first['type']}: {first['message']}",
            phase="lint-verify",
            pass_name=first.get("pass"),
        )

    if args.fail_on != "never":
        threshold = SEVERITIES.index(args.fail_on)
        if any(
            SEVERITIES.index(d.severity) <= threshold for d in diagnostics
        ):
            return 1
    return 0


def cmd_lintsweep(args: argparse.Namespace) -> int:
    from repro.lint.sweep import run_lint_sweep
    from repro.perf.batch import write_payload

    payload = run_lint_sweep(tag=args.tag, smoke=args.smoke)
    out = args.output or f"LINT_{args.tag}.json"
    write_payload(payload, out)
    corpus, planted = payload["corpus"], payload["planted"]
    print(f"lint sweep ({payload['mode']}): {corpus['programs']} corpus "
          f"programs, {corpus['findings']} findings, "
          f"{corpus['unverified_definite']} unverified definite, "
          f"{corpus['refuted']} refuted, "
          f"{corpus['oracle_failures'] + planted['oracle_failures']} oracle "
          f"failures; planted recall "
          f"{planted['recall']:.1%}, precision {planted['precision']:.1%}")
    print(f"wrote {out}")
    if not payload["ok"]:
        print("lint sweep contract violated: an unverified definite "
              "finding, a refuted finding, an oracle-checker failure, "
              f"or recall below {payload['recall_floor']:.0%}",
              file=sys.stderr)
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.batch import check_regression, run_bench, write_payload

    payload = run_bench(
        tag=args.tag,
        smoke=args.smoke,
        repeat=args.repeat,
        batch_workers=args.workers,
        serve=args.serve,
    )
    out = args.output or f"BENCH_{args.tag}.json"
    write_payload(payload, out)
    for workload in payload["workloads"]:
        largest = workload["largest"]
        flag = "ok" if all(r["identical"] for r in workload["rows"]) else \
            "RESULTS DIFFER"
        print(f"{workload['name']:14s} largest={largest['size']:>10} "
              f"legacy={largest['legacy_ms']:9.2f}ms "
              f"fast={largest['fast_ms']:8.2f}ms "
              f"speedup={largest['speedup']:5.2f}x  [{flag}]")
    batch = payload["batch"]
    print(f"batch          {batch['programs']} programs, "
          f"{batch['workers']} workers, {batch['chunks']} chunks, "
          f"pool {batch['pool_wall_ms']:.1f}ms "
          f"(analysis {batch['analysis_wall_ms']:.1f}ms)")
    print(f"wrote {out}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(payload, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no regression vs {args.check}")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.perf.batch import resolve_suite, run_batch, write_payload

    suite = resolve_suite(
        args.suite, smoke=args.smoke, programs=args.programs, size=args.size
    )
    result = run_batch(
        suite=suite,
        workers=args.workers,
        timeout_s=args.timeout,
        retries=args.retries,
        quarantine_dir=args.quarantine_dir,
        payload_mode=args.payload,
    )
    payload = {"schema": BENCH_SCHEMA, "tag": args.tag, "batch": result}
    if args.output:
        write_payload(payload, args.output)
        print(f"analyzed {result['programs']} programs on "
              f"{result['workers']} workers ({result['payload_mode']} "
              f"payloads, ipc {result['ipc_serialize_ms']:.1f}ms / "
              f"{result['ipc_payload_bytes']} bytes); wrote {args.output}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    if result.get("lint"):
        lint = result["lint"]
        print(f"lint: {lint['findings']} findings over "
              f"{lint['programs']} programs, {lint['verified']} verified, "
              f"{lint['unverified_definite']} unverified definite",
              file=sys.stderr)
        if lint["unverified_definite"]:
            return 1
    if result.get("errors"):
        print(f"{result['errors']} programs failed "
              f"({result.get('quarantined', 0)} quarantined)",
              file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import ReproServer

    server = ReproServer(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        warm=args.warm,
        pool_workers=args.pool_workers,
        pool_timeout_s=args.timeout,
    )
    address = server.address
    if address[0] == "unix":
        print(f"repro daemon listening on unix socket {address[1]} "
              f"(cache {server.broker.cache.root})", file=sys.stderr)
    else:
        print(f"repro daemon listening on {address[1]}:{address[2]} "
              f"(cache {server.broker.cache.root})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()
    stats = server.broker.stats
    print(f"repro daemon stopped: {stats['requests']} requests, "
          f"{stats['warm_hits']} warm, {stats['disk_hits']} disk, "
          f"{stats['misses']} miss", file=sys.stderr)
    return 0


def cmd_request(args: argparse.Namespace) -> int:
    from repro.robust.errors import InputError
    from repro.serve.client import ServeClient, one_shot, raise_for_error
    from repro.serve.ops import SOURCE_OPS

    source = None
    if args.op in SOURCE_OPS:
        if not args.file:
            raise InputError(
                f"op {args.op!r} needs a source file argument",
                phase="serve-client",
            )
        with open(args.file) as fh:
            source = fh.read()
    offline = args.socket is None and args.port is None
    if offline:
        # The daemon-free twin: byte-identical to a warm daemon answer.
        if args.op not in SOURCE_OPS:
            raise InputError(
                f"op {args.op!r} needs a daemon; pass --socket or --port",
                phase="serve-client",
            )
        result = one_shot(args.op, source, label=args.file)
    else:
        with ServeClient(
            socket_path=args.socket,
            host=args.host,
            port=args.port or 0,
            timeout_s=args.timeout,
        ) as client:
            params = {}
            if source is not None:
                params = {"source": source, "file": args.file}
            result = raise_for_error(client.request(args.op, **params))
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz.harness import run_fuzz
    from repro.perf.batch import write_payload

    payload = run_fuzz(
        seed=args.seed,
        budget=args.budget,
        suite=args.suite,
        jobs=args.jobs,
        repro_dir=args.repro_dir,
        write_repros=args.write_repros,
        minimize_budget=args.minimize_budget,
    )
    if args.output:
        write_payload(payload, args.output)
        print(f"wrote {args.output}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    planted = payload["planted"]
    print(
        f"fuzz seed={payload['seed']} suite={payload['suite']}: "
        f"{payload['trials']} trials over {payload['programs']} programs, "
        f"{payload['applied']} applied, "
        f"{len(payload['divergences'])} divergence classes "
        f"({len(payload['novel'])} novel, "
        f"{len(payload['unminimized'])} unminimized), "
        f"planted recall {planted['recall']:.1%}",
        file=sys.stderr,
    )
    if not payload["ok"]:
        print(
            "fuzz contract violated: a trial errored, a divergence is "
            "novel or unminimized, or planted recall is below 100%",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.perf.batch import write_payload
    from repro.robust.chaos import run_chaos

    payload = run_chaos(
        seed=args.seed,
        smoke=args.smoke,
        budget_s=args.budget,
        quarantine_dir=args.quarantine_dir,
    )
    totals = payload["totals"]
    if args.output:
        write_payload(payload, args.output)
        print(f"wrote {args.output}")
    print(f"chaos seed={payload['seed']} mode={payload['mode']}: "
          f"{totals['programs']} programs, "
          f"{totals['faults_injected']} faults injected, "
          f"{totals['recovered_identical']}/{totals['recovered']} recovered "
          f"byte-identical, {totals['quarantined']} quarantined, "
          f"{len(totals['passes_covered'])}/{totals['passes_registered']} "
          f"passes covered")
    if not payload["ok"]:
        print("chaos contract violated: a fault was neither recovered "
              "identically nor quarantined with a minimized repro",
              file=sys.stderr)
        return 1
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="dependence-flow-graph program analysis "
        "(Johnson & Pingali, PLDI 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="source file")
        p.add_argument(
            "--env", action="append", default=[], metavar="VAR=INT",
            help="initial variable binding (repeatable)",
        )
        p.add_argument("--max-steps", type=int, default=1_000_000)
        p.add_argument("-v", "--verbose", action="store_true")

    run_p = sub.add_parser("run", help="execute a program")
    common(run_p)
    run_p.set_defaults(handler=cmd_run)

    an_p = sub.add_parser("analyze", help="structure + constants report")
    common(an_p)
    an_p.add_argument("--dot", help="write the CFG as Graphviz")
    an_p.set_defaults(handler=cmd_analyze)

    opt_p = sub.add_parser("optimize", help="run the staged optimizer")
    common(opt_p)
    opt_p.add_argument("--stages", type=int, default=3)
    opt_p.add_argument("--dot", help="write the optimized CFG as Graphviz")
    opt_p.set_defaults(handler=cmd_optimize)

    prof_p = sub.add_parser(
        "profile",
        help="per-pass work/time/cache JSON from the pipeline manager",
    )
    common(prof_p)
    prof_p.add_argument(
        "--optimize", action="store_true",
        help="profile a full optimizer run instead of a cold+warm sweep",
    )
    prof_p.add_argument(
        "--lint", action="store_true",
        help="profile the lint registry (rule passes included)",
    )
    prof_p.set_defaults(handler=cmd_profile)

    trace_p = sub.add_parser(
        "trace", help="span-level timeline JSON of the same sweep"
    )
    common(trace_p)
    trace_p.add_argument(
        "--optimize", action="store_true",
        help="trace a full optimizer run instead of a cold+warm sweep",
    )
    trace_p.set_defaults(handler=cmd_trace)

    lint_p = sub.add_parser(
        "lint",
        help="dependence-based diagnostics with oracle-verified findings",
    )
    lint_p.add_argument("file", help="source file")
    lint_p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="text (default), repro.lint/1 JSON, or SARIF 2.1.0",
    )
    lint_p.add_argument("--output", help="write the report here, not stdout")
    lint_p.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings fingerprinted in this repro.lintbaseline/1",
    )
    lint_p.add_argument(
        "--write-baseline", metavar="FILE",
        help="accept all current findings into a new baseline and exit",
    )
    lint_p.add_argument(
        "--no-verify", action="store_true",
        help="skip the oracle (definite findings stay unverified)",
    )
    lint_p.add_argument(
        "--dot", metavar="FILE",
        help="write the CFG with findings colored by severity",
    )
    lint_p.add_argument(
        "--fail-on", choices=("definite", "possible", "info", "never"),
        default="definite",
        help="exit 1 when an unsuppressed finding is at least this severe",
    )
    lint_p.add_argument(
        "--max-steps", type=int, default=20_000,
        help="step budget per oracle refutation probe",
    )
    lint_p.set_defaults(handler=cmd_lint)

    sweep_p = sub.add_parser(
        "lintsweep",
        help="lint the generated corpus + planted defects; write "
        "LINT_<tag>.json with the zero-false-positive measurement",
    )
    sweep_p.add_argument("--tag", default="dev")
    sweep_p.add_argument(
        "--smoke", action="store_true",
        help="trimmed populations (the CI profile)",
    )
    sweep_p.add_argument(
        "--output", help="payload path (default LINT_<tag>.json)"
    )
    sweep_p.set_defaults(handler=cmd_lintsweep)

    bench_p = sub.add_parser(
        "bench",
        help="time fast paths vs legacy on the paper workloads; write "
        "BENCH_<tag>.json",
    )
    bench_p.add_argument("--tag", default="dev")
    bench_p.add_argument(
        "--smoke", action="store_true",
        help="small sizes / fewer repeats (the CI profile)",
    )
    bench_p.add_argument(
        "--repeat", type=int, default=None,
        help="timing samples per row (best-of; default 5, smoke 3)",
    )
    bench_p.add_argument(
        "--workers", type=int, default=0,
        help="pool size for the batch section (0 = in-process)",
    )
    bench_p.add_argument("--output", help="payload path (default BENCH_<tag>.json)")
    bench_p.add_argument(
        "--check", metavar="BASELINE",
        help="fail on >25%% speedup regression vs this baseline JSON",
    )
    bench_p.add_argument(
        "--serve", action="store_true",
        help="include the serve-loadgen workload (live daemon, warm-vs-"
        "one-shot timing and byte-equality, seeded request mix)",
    )
    bench_p.set_defaults(handler=cmd_bench)

    serve_p = sub.add_parser(
        "serve",
        help="run the analysis daemon (repro.serve/1 over a unix or "
        "localhost TCP socket, content-addressed cross-run cache)",
    )
    serve_p.add_argument(
        "--socket", metavar="PATH",
        help="bind a unix-domain socket here (default: localhost TCP)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port, printed on stderr)",
    )
    serve_p.add_argument(
        "--cache-dir", metavar="DIR",
        help="result cache root (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    serve_p.add_argument(
        "--warm", type=int, default=32,
        help="LRU capacity of warm analysis managers",
    )
    serve_p.add_argument(
        "--pool-workers", type=int, default=0,
        help="supervised worker processes for batch-sarif misses "
        "(0 = inline)",
    )
    serve_p.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-document budget in the batch pool",
    )
    serve_p.set_defaults(handler=cmd_serve)

    req_p = sub.add_parser(
        "request",
        help="send one request to a running daemon (or answer offline "
        "when no address is given -- byte-identical either way)",
    )
    req_p.add_argument(
        "op", choices=("analyze", "constprop", "lint", "ping", "stats",
                       "shutdown"),
    )
    req_p.add_argument("file", nargs="?", help="source file (source ops)")
    req_p.add_argument("--socket", metavar="PATH", help="daemon unix socket")
    req_p.add_argument("--host", default="127.0.0.1")
    req_p.add_argument("--port", type=int, help="daemon TCP port")
    req_p.add_argument("--timeout", type=float, default=30.0)
    req_p.set_defaults(handler=cmd_request)

    batch_p = sub.add_parser(
        "batch",
        help="analyze a generated program suite across a process pool",
    )
    batch_p.add_argument("--tag", default="dev")
    batch_p.add_argument(
        "--workers", type=int, default=None,
        help="pool size (default: CPU count; 0 = in-process)",
    )
    batch_p.add_argument("--programs", type=int, default=8)
    batch_p.add_argument("--size", type=int, default=80)
    batch_p.add_argument(
        "--suite", default="default", metavar="NAME",
        help="'default', 'equivalence' (the 204-program perf-equivalence "
        "population), 'lint' (the diagnostics engine over "
        "planted-defect and corpus programs) or 'sparse' (the sparse "
        "engine's client passes cross-checked against their dense "
        "reference twins); unknown names list the available suites",
    )
    batch_p.add_argument(
        "--smoke", action="store_true",
        help="with --suite equivalence: the trimmed 24-program population",
    )
    batch_p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-program wall-clock budget (pooled runs only)",
    )
    batch_p.add_argument(
        "--retries", type=int, default=1,
        help="attempts after the first failure before quarantine",
    )
    batch_p.add_argument(
        "--quarantine-dir", metavar="DIR",
        help="write one repro.quarantine/1 JSON per poison program here",
    )
    batch_p.add_argument(
        "--payload", default="specs", choices=("specs", "arena"),
        help="worker payload: per-program specs (object pipeline) or "
        "one serialized arena corpus per chunk (fused sweep)",
    )
    batch_p.add_argument("--output", help="write JSON here instead of stdout")
    batch_p.set_defaults(handler=cmd_batch)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="metamorphic differential fuzzing with theorem-derived "
        "oracles; write the byte-deterministic repro.fuzz/1 JSON",
    )
    fuzz_p.add_argument("--seed", type=int, default=0)
    fuzz_p.add_argument(
        "--budget", type=int, default=None, metavar="TRIALS",
        help="run only the first N trials of the deterministic schedule "
        "(default: the whole suite x mutator sweep)",
    )
    fuzz_p.add_argument(
        "--suite", default="default", metavar="NAME",
        help="'default' (the 204-program equivalence corpus plus array "
        "workloads) or 'smoke'; unknown names list the available suites",
    )
    fuzz_p.add_argument(
        "--jobs", type=int, default=0,
        help="supervised-pool size for the trials (0 = in-process)",
    )
    fuzz_p.add_argument(
        "--repro-dir", default="tests/repros", metavar="DIR",
        help="directory of known fuzz-<fingerprint>.json reproducers "
        "(novel fingerprints fail the gate)",
    )
    fuzz_p.add_argument(
        "--write-repros", action="store_true",
        help="write a reproducer for each divergence class to --repro-dir",
    )
    fuzz_p.add_argument(
        "--minimize-budget", type=int, default=200,
        help="ddmin predicate evaluations per divergence",
    )
    fuzz_p.add_argument("--output", help="write JSON here instead of stdout")
    fuzz_p.set_defaults(handler=cmd_fuzz)

    chaos_p = sub.add_parser(
        "chaos",
        help="deterministic fault injection across every registered pass; "
        "asserts recovered-or-quarantined",
    )
    chaos_p.add_argument("--seed", type=int, default=0)
    chaos_p.add_argument(
        "--smoke", action="store_true",
        help="24-program sweep (the CI profile) instead of all 204",
    )
    chaos_p.add_argument(
        "--budget", type=float, default=1.0, metavar="SECONDS",
        help="virtual per-pass deadline (fake clock; no real sleeps)",
    )
    chaos_p.add_argument(
        "--quarantine-dir", metavar="DIR",
        help="write one repro.quarantine/1 JSON per unrecovered program",
    )
    chaos_p.add_argument("--output", help="write the repro.chaos/1 JSON here")
    chaos_p.set_defaults(handler=cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        # One structured diagnostic line, not a stack trace: the taxonomy
        # already names the pass, phase and graph.
        print(f"repro: {exc.kind} error: {exc}", file=sys.stderr)
        return 2
    except LangError as exc:
        print(f"repro: language error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Missing or unreadable files get the same one-line treatment.
        print(f"repro: input error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
