"""Command-line interface: run, analyze, optimize and profile programs.

::

    python -m repro run program.dfg --env n=5
    python -m repro analyze program.dfg
    python -m repro optimize program.dfg --dot optimized.dot --env n=5
    python -m repro profile program.dfg
    python -m repro trace program.dfg --optimize

The source language is the small imperative language of
:mod:`repro.lang` (see README).  ``analyze`` prints the control
structure (cycle-equivalence classes, SESE regions), the dependence
counts, constants and dead code; ``optimize`` runs the staged pipeline
and reports dynamic evaluation counts before and after on the given
environment.  ``profile`` runs every registered analysis pass through
the pipeline manager and emits per-pass JSON (work units, wall-clock
time, cache hits/misses); ``trace`` emits the span-level timeline the
same run produced.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.cfg.builder import build_cfg
from repro.cfg.dot import cfg_to_dot
from repro.cfg.interp import run_cfg
from repro.core.dfg import CTRL_VAR
from repro.lang.errors import LangError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_expr
from repro.opt.pipeline import optimize
from repro.pipeline.manager import AnalysisManager
from repro.robust.errors import ReproError
from repro.util.metrics import Metrics

#: Schema identifiers pinned by the golden CLI tests; bump on any
#: structural change to the emitted JSON.
PROFILE_SCHEMA = "repro.profile/1"
TRACE_SCHEMA = "repro.trace/1"
BENCH_SCHEMA = "repro.bench/1"


def _parse_env(pairs: list[str]) -> dict[str, int]:
    env: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value.lstrip("-").isdigit():
            raise SystemExit(f"bad --env entry {pair!r}; expected name=int")
        env[name] = int(value)
    return env


def _load(path: str):
    with open(path) as fh:
        return parse_program(fh.read())


def cmd_run(args: argparse.Namespace) -> int:
    graph = build_cfg(_load(args.file))
    result = run_cfg(graph, _parse_env(args.env), max_steps=args.max_steps)
    for value in result.outputs:
        print(value)
    if args.verbose:
        print(f"-- {result.steps} steps", file=sys.stderr)
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    graph = build_cfg(_load(args.file))
    manager = AnalysisManager(graph)
    structure = manager.get("sese")
    dfg = manager.get("dfg")
    constants = manager.get("constprop")

    print(f"CFG: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{len(graph.variables())} variables")
    print(f"control structure: {len(structure.classes)} cycle-equivalence "
          f"classes, {len(structure.regions)} canonical SESE regions "
          f"(max nesting {max((r.depth for r in structure.regions), default=0)})")
    print(f"DFG: {dfg.size()} dependence edges "
          f"({dfg.size(include_control=False)} data), "
          f"{len(dfg.multiedges())} multiedges")
    found = {
        key: value
        for key, value in constants.constant_uses().items()
        if key[1] != CTRL_VAR
    }
    print(f"constants: {len(found)} uses are compile-time constants")
    if args.verbose:
        for (node, var), value in sorted(found.items()):
            print(f"  node {node}: {var} = {value}")
    if constants.dead_nodes:
        print(f"dead code: statements {sorted(constants.dead_nodes)} can "
              f"never execute")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(cfg_to_dot(graph))
        print(f"wrote {args.dot}")
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    graph = build_cfg(_load(args.file))
    optimized, report = optimize(graph, stages=args.stages)
    print(f"nodes: {graph.num_nodes} -> {optimized.num_nodes}")
    print(f"folded: {report.constprop.folded_rhs + report.cleanup.folded_rhs} "
          f"expressions, "
          f"{report.constprop.folded_branches + report.cleanup.folded_branches}"
          f" branches; removed "
          f"{report.constprop.removed_assignments + report.cleanup.removed_assignments}"
          f" dead assignments")
    if report.pre_expressions:
        names = ", ".join(pretty_expr(e) for e in report.pre_expressions)
        print(f"redundancies eliminated: {names} "
              f"({report.copies_propagated} copies propagated, "
              f"{report.stages_run} stages)")
    env = _parse_env(args.env)
    before = run_cfg(graph, env, max_steps=args.max_steps)
    after = run_cfg(optimized, env, max_steps=args.max_steps)
    if before.outputs != after.outputs:
        print("BUG: outputs differ!", file=sys.stderr)
        return 1
    total_before = sum(before.eval_counts.values())
    total_after = sum(after.eval_counts.values())
    print(f"dynamic expression evaluations on this input: "
          f"{total_before} -> {total_after}")
    print(f"outputs (unchanged): {after.outputs}")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(cfg_to_dot(optimized, name="optimized"))
        print(f"wrote {args.dot}")
    return 0


def _program_summary(path: str, graph) -> dict:
    return {
        "file": os.path.basename(path),
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "variables": len(graph.variables()),
    }


def _profiled_manager(args: argparse.Namespace) -> tuple[AnalysisManager, dict]:
    """Build the program's CFG, sweep it through the pipeline manager
    (optionally via the full optimizer), and return (manager, program row)."""
    graph = build_cfg(_load(args.file))
    manager = AnalysisManager(graph, metrics=Metrics())
    program = _program_summary(args.file, graph)
    if getattr(args, "optimize", False):
        optimize(graph, manager=manager)
        manager.run_all()
    else:
        manager.run_all()
        # A second sweep makes the cache traffic visible: every pass is
        # warm, so hits == misses on an unchanged graph.
        manager.run_all()
    return manager, program


def cmd_profile(args: argparse.Namespace) -> int:
    manager, program = _profiled_manager(args)
    rows = manager.report()
    totals = {
        "passes": len(rows),
        "cache": {
            key: sum(row["cache"][key] for row in rows)
            for key in ("hits", "misses", "invalidations")
        },
        "work_total": sum(row["work_total"] for row in rows),
        "wall_ms": round(sum(row["wall_ms"] for row in rows), 3),
    }
    payload = {
        "schema": PROFILE_SCHEMA,
        "program": program,
        "passes": rows,
        "totals": totals,
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    manager, program = _profiled_manager(args)
    payload = {
        "schema": TRACE_SCHEMA,
        "program": program,
        **manager.metrics.as_dict(),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.batch import check_regression, run_bench, write_payload

    payload = run_bench(
        tag=args.tag,
        smoke=args.smoke,
        repeat=args.repeat,
        batch_workers=args.workers,
    )
    out = args.output or f"BENCH_{args.tag}.json"
    write_payload(payload, out)
    for workload in payload["workloads"]:
        largest = workload["largest"]
        flag = "ok" if all(r["identical"] for r in workload["rows"]) else \
            "RESULTS DIFFER"
        print(f"{workload['name']:14s} largest={largest['size']:>10} "
              f"legacy={largest['legacy_ms']:9.2f}ms "
              f"fast={largest['fast_ms']:8.2f}ms "
              f"speedup={largest['speedup']:5.2f}x  [{flag}]")
    batch = payload["batch"]
    print(f"batch          {batch['programs']} programs, "
          f"{batch['workers']} workers, {batch['chunks']} chunks, "
          f"pool {batch['pool_wall_ms']:.1f}ms "
          f"(analysis {batch['analysis_wall_ms']:.1f}ms)")
    print(f"wrote {out}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_regression(payload, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no regression vs {args.check}")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.perf.batch import (
        default_suite,
        equivalence_suite,
        run_batch,
        write_payload,
    )

    if args.suite == "equivalence":
        suite = equivalence_suite(smoke=args.smoke)
    else:
        suite = default_suite(args.programs, size=args.size)
    result = run_batch(
        suite=suite,
        workers=args.workers,
        timeout_s=args.timeout,
        retries=args.retries,
        quarantine_dir=args.quarantine_dir,
    )
    payload = {"schema": BENCH_SCHEMA, "tag": args.tag, "batch": result}
    if args.output:
        write_payload(payload, args.output)
        print(f"analyzed {result['programs']} programs on "
              f"{result['workers']} workers; wrote {args.output}")
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    if result.get("errors"):
        print(f"{result['errors']} programs failed "
              f"({result.get('quarantined', 0)} quarantined)",
              file=sys.stderr)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.perf.batch import write_payload
    from repro.robust.chaos import run_chaos

    payload = run_chaos(
        seed=args.seed,
        smoke=args.smoke,
        budget_s=args.budget,
        quarantine_dir=args.quarantine_dir,
    )
    totals = payload["totals"]
    if args.output:
        write_payload(payload, args.output)
        print(f"wrote {args.output}")
    print(f"chaos seed={payload['seed']} mode={payload['mode']}: "
          f"{totals['programs']} programs, "
          f"{totals['faults_injected']} faults injected, "
          f"{totals['recovered_identical']}/{totals['recovered']} recovered "
          f"byte-identical, {totals['quarantined']} quarantined, "
          f"{len(totals['passes_covered'])}/{totals['passes_registered']} "
          f"passes covered")
    if not payload["ok"]:
        print("chaos contract violated: a fault was neither recovered "
              "identically nor quarantined with a minimized repro",
              file=sys.stderr)
        return 1
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="dependence-flow-graph program analysis "
        "(Johnson & Pingali, PLDI 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("file", help="source file")
        p.add_argument(
            "--env", action="append", default=[], metavar="VAR=INT",
            help="initial variable binding (repeatable)",
        )
        p.add_argument("--max-steps", type=int, default=1_000_000)
        p.add_argument("-v", "--verbose", action="store_true")

    run_p = sub.add_parser("run", help="execute a program")
    common(run_p)
    run_p.set_defaults(handler=cmd_run)

    an_p = sub.add_parser("analyze", help="structure + constants report")
    common(an_p)
    an_p.add_argument("--dot", help="write the CFG as Graphviz")
    an_p.set_defaults(handler=cmd_analyze)

    opt_p = sub.add_parser("optimize", help="run the staged optimizer")
    common(opt_p)
    opt_p.add_argument("--stages", type=int, default=3)
    opt_p.add_argument("--dot", help="write the optimized CFG as Graphviz")
    opt_p.set_defaults(handler=cmd_optimize)

    prof_p = sub.add_parser(
        "profile",
        help="per-pass work/time/cache JSON from the pipeline manager",
    )
    common(prof_p)
    prof_p.add_argument(
        "--optimize", action="store_true",
        help="profile a full optimizer run instead of a cold+warm sweep",
    )
    prof_p.set_defaults(handler=cmd_profile)

    trace_p = sub.add_parser(
        "trace", help="span-level timeline JSON of the same sweep"
    )
    common(trace_p)
    trace_p.add_argument(
        "--optimize", action="store_true",
        help="trace a full optimizer run instead of a cold+warm sweep",
    )
    trace_p.set_defaults(handler=cmd_trace)

    bench_p = sub.add_parser(
        "bench",
        help="time fast paths vs legacy on the paper workloads; write "
        "BENCH_<tag>.json",
    )
    bench_p.add_argument("--tag", default="dev")
    bench_p.add_argument(
        "--smoke", action="store_true",
        help="small sizes / fewer repeats (the CI profile)",
    )
    bench_p.add_argument(
        "--repeat", type=int, default=None,
        help="timing samples per row (best-of; default 5, smoke 3)",
    )
    bench_p.add_argument(
        "--workers", type=int, default=0,
        help="pool size for the batch section (0 = in-process)",
    )
    bench_p.add_argument("--output", help="payload path (default BENCH_<tag>.json)")
    bench_p.add_argument(
        "--check", metavar="BASELINE",
        help="fail on >25%% speedup regression vs this baseline JSON",
    )
    bench_p.set_defaults(handler=cmd_bench)

    batch_p = sub.add_parser(
        "batch",
        help="analyze a generated program suite across a process pool",
    )
    batch_p.add_argument("--tag", default="dev")
    batch_p.add_argument(
        "--workers", type=int, default=None,
        help="pool size (default: CPU count; 0 = in-process)",
    )
    batch_p.add_argument("--programs", type=int, default=8)
    batch_p.add_argument("--size", type=int, default=80)
    batch_p.add_argument(
        "--suite", choices=("default", "equivalence"), default="default",
        help="'equivalence' runs the 204-program perf-equivalence population",
    )
    batch_p.add_argument(
        "--smoke", action="store_true",
        help="with --suite equivalence: the trimmed 24-program population",
    )
    batch_p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-program wall-clock budget (pooled runs only)",
    )
    batch_p.add_argument(
        "--retries", type=int, default=1,
        help="attempts after the first failure before quarantine",
    )
    batch_p.add_argument(
        "--quarantine-dir", metavar="DIR",
        help="write one repro.quarantine/1 JSON per poison program here",
    )
    batch_p.add_argument("--output", help="write JSON here instead of stdout")
    batch_p.set_defaults(handler=cmd_batch)

    chaos_p = sub.add_parser(
        "chaos",
        help="deterministic fault injection across every registered pass; "
        "asserts recovered-or-quarantined",
    )
    chaos_p.add_argument("--seed", type=int, default=0)
    chaos_p.add_argument(
        "--smoke", action="store_true",
        help="24-program sweep (the CI profile) instead of all 204",
    )
    chaos_p.add_argument(
        "--budget", type=float, default=1.0, metavar="SECONDS",
        help="virtual per-pass deadline (fake clock; no real sleeps)",
    )
    chaos_p.add_argument(
        "--quarantine-dir", metavar="DIR",
        help="write one repro.quarantine/1 JSON per unrecovered program",
    )
    chaos_p.add_argument("--output", help="write the repro.chaos/1 JSON here")
    chaos_p.set_defaults(handler=cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        # One structured diagnostic line, not a stack trace: the taxonomy
        # already names the pass, phase and graph.
        print(f"repro: {exc.kind} error: {exc}", file=sys.stderr)
        return 2
    except LangError as exc:
        print(f"repro: language error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
