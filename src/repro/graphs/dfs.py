"""Depth-first search with edge classification.

Iterative (no recursion limits on big generated graphs), generic over a
successor function, and deterministic: successors are visited in the
order the successor function yields them.

Two entry points share the same classification semantics:

* :func:`depth_first_search` -- the generic path over any successor
  function (hashable nodes, dict bookkeeping);
* :func:`depth_first_search_csr` -- the fast path over a
  :class:`~repro.perf.csr.CSRGraph` snapshot, which runs the flat-array
  kernel and translates its output back to node/edge ids.  Identical
  results in identical order; the generic path is the oracle the
  equivalence tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, TypeVar

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph

N = TypeVar("N", bound=Hashable)


@dataclass
class DFSResult:
    """Everything a single depth-first traversal discovers."""

    preorder: list = field(default_factory=list)
    postorder: list = field(default_factory=list)
    parent: dict = field(default_factory=dict)
    #: (src, dst) pairs classified against the DFS forest.
    tree_edges: list = field(default_factory=list)
    back_edges: list = field(default_factory=list)
    forward_edges: list = field(default_factory=list)
    cross_edges: list = field(default_factory=list)
    pre_number: dict = field(default_factory=dict)
    post_number: dict = field(default_factory=dict)

    def is_retreating(self, src, dst) -> bool:
        """True when ``dst`` is visited before ``src`` finishes -- i.e. the
        edge is a back edge of this particular DFS."""
        return (src, dst) in set(self.back_edges)


def depth_first_search(
    roots: Iterable[N],
    succs: Callable[[N], Iterable[N]],
) -> DFSResult:
    """Iterative DFS from ``roots`` (in order), classifying every edge.

    Classification uses entry/exit times: an edge u->v is a *tree* edge if
    it first discovers v, a *back* edge if v is an ancestor still open on
    the stack, a *forward* edge if v is an already-finished descendant of
    u, and a *cross* edge otherwise.
    """
    result = DFSResult()
    color: dict[N, int] = {}  # 0 absent, 1 open, 2 done
    pre = result.pre_number
    post = result.post_number
    clock = [0]

    def visit(root: N) -> None:
        if color.get(root):
            return
        stack: list[tuple[N, Iterable[N]]] = [(root, iter(succs(root)))]
        color[root] = 1
        pre[root] = clock[0]
        clock[0] += 1
        result.preorder.append(root)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt, 0) == 0:
                    color[nxt] = 1
                    pre[nxt] = clock[0]
                    clock[0] += 1
                    result.preorder.append(nxt)
                    result.parent[nxt] = node
                    result.tree_edges.append((node, nxt))
                    stack.append((nxt, iter(succs(nxt))))
                    advanced = True
                    break
                if color[nxt] == 1:
                    result.back_edges.append((node, nxt))
                elif pre[nxt] > pre[node]:
                    result.forward_edges.append((node, nxt))
                else:
                    result.cross_edges.append((node, nxt))
            if not advanced:
                stack.pop()
                color[node] = 2
                post[node] = clock[0]
                clock[0] += 1
                result.postorder.append(node)

    for root in roots:
        visit(root)
    return result


def reverse_postorder(root: N, succs: Callable[[N], Iterable[N]]) -> list[N]:
    """Reverse postorder from ``root`` -- the canonical iteration order for
    forward dataflow problems."""
    result = depth_first_search([root], succs)
    return list(reversed(result.postorder))


def depth_first_search_csr(csr: "CSRGraph") -> DFSResult:
    """DFS of a CFG from ``start`` via its CSR snapshot.

    Equivalent to ``depth_first_search([graph.start], graph.succs)`` --
    same numbering, same classification, same list orders -- but run on
    the flat-array kernel.
    """
    from repro.perf.kernels import csr_dfs_classify

    csr.check()
    raw = csr_dfs_classify(
        csr.succ_off, csr.succ_node, csr.succ_edge, csr.start, csr.n
    )
    ids = csr.node_ids
    edge_src, edge_dst = csr.edge_src, csr.edge_dst
    result = DFSResult()
    result.preorder = [ids[v] for v in raw.preorder]
    result.postorder = [ids[v] for v in raw.postorder]
    result.pre_number = {ids[v]: raw.pre[v] for v in raw.preorder}
    result.post_number = {ids[v]: raw.post[v] for v in raw.postorder}
    # Tree edges in discovery order are exactly preorder[1:] paired with
    # their DFS parents; non-tree lists come out in encounter order.
    result.parent = {
        ids[v]: ids[raw.parent[v]] for v in raw.preorder[1:]
    }
    result.tree_edges = [
        (ids[raw.parent[v]], ids[v]) for v in raw.preorder[1:]
    ]
    result.back_edges = [(ids[edge_src[e]], ids[edge_dst[e]]) for e in raw.back]
    result.forward_edges = [
        (ids[edge_src[e]], ids[edge_dst[e]]) for e in raw.forward
    ]
    result.cross_edges = [(ids[edge_src[e]], ids[edge_dst[e]]) for e in raw.cross]
    return result
