"""Depth-first search with edge classification.

Iterative (no recursion limits on big generated graphs), generic over a
successor function, and deterministic: successors are visited in the
order the successor function yields them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, TypeVar

N = TypeVar("N", bound=Hashable)


@dataclass
class DFSResult:
    """Everything a single depth-first traversal discovers."""

    preorder: list = field(default_factory=list)
    postorder: list = field(default_factory=list)
    parent: dict = field(default_factory=dict)
    #: (src, dst) pairs classified against the DFS forest.
    tree_edges: list = field(default_factory=list)
    back_edges: list = field(default_factory=list)
    forward_edges: list = field(default_factory=list)
    cross_edges: list = field(default_factory=list)
    pre_number: dict = field(default_factory=dict)
    post_number: dict = field(default_factory=dict)

    def is_retreating(self, src, dst) -> bool:
        """True when ``dst`` is visited before ``src`` finishes -- i.e. the
        edge is a back edge of this particular DFS."""
        return (src, dst) in set(self.back_edges)


def depth_first_search(
    roots: Iterable[N],
    succs: Callable[[N], Iterable[N]],
) -> DFSResult:
    """Iterative DFS from ``roots`` (in order), classifying every edge.

    Classification uses entry/exit times: an edge u->v is a *tree* edge if
    it first discovers v, a *back* edge if v is an ancestor still open on
    the stack, a *forward* edge if v is an already-finished descendant of
    u, and a *cross* edge otherwise.
    """
    result = DFSResult()
    color: dict[N, int] = {}  # 0 absent, 1 open, 2 done
    pre = result.pre_number
    post = result.post_number
    clock = [0]

    def visit(root: N) -> None:
        if color.get(root):
            return
        stack: list[tuple[N, Iterable[N]]] = [(root, iter(succs(root)))]
        color[root] = 1
        pre[root] = clock[0]
        clock[0] += 1
        result.preorder.append(root)
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt, 0) == 0:
                    color[nxt] = 1
                    pre[nxt] = clock[0]
                    clock[0] += 1
                    result.preorder.append(nxt)
                    result.parent[nxt] = node
                    result.tree_edges.append((node, nxt))
                    stack.append((nxt, iter(succs(nxt))))
                    advanced = True
                    break
                if color[nxt] == 1:
                    result.back_edges.append((node, nxt))
                elif pre[nxt] > pre[node]:
                    result.forward_edges.append((node, nxt))
                else:
                    result.cross_edges.append((node, nxt))
            if not advanced:
                stack.pop()
                color[node] = 2
                post[node] = clock[0]
                clock[0] += 1
                result.postorder.append(node)

    for root in roots:
        visit(root)
    return result


def reverse_postorder(root: N, succs: Callable[[N], Iterable[N]]) -> list[N]:
    """Reverse postorder from ``root`` -- the canonical iteration order for
    forward dataflow problems."""
    result = depth_first_search([root], succs)
    return list(reversed(result.postorder))
