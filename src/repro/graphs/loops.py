"""Natural loops.

Used by workload characterization and by tests (e.g. loop-invariant
expressions for the partial-redundancy experiments).  A *back edge* here
is the dominance-based notion -- an edge whose target dominates its source
-- which exists only in reducible flow; irreducible retreating edges are
reported separately.
"""

from __future__ import annotations

from repro.cfg.graph import CFG
from repro.graphs.dfs import depth_first_search
from repro.graphs.dominance import DominatorTree, cfg_dominators


def back_edges(graph: CFG, dom: DominatorTree | None = None) -> list[tuple[int, int]]:
    """All edges ``(u, v)`` with ``v`` dominating ``u``."""
    dom = dom or cfg_dominators(graph)
    found = []
    for edge in graph.edges.values():
        if dom.dominates(edge.dst, edge.src):
            found.append((edge.src, edge.dst))
    return found


def retreating_edges(graph: CFG) -> list[tuple[int, int]]:
    """Edges that go against one depth-first order.  In a reducible graph
    these coincide with :func:`back_edges`; a strict superset witnesses
    irreducibility."""
    dfs = depth_first_search([graph.start], graph.succs)
    return list(dfs.back_edges)


def is_reducible(graph: CFG) -> bool:
    """True when every retreating edge is a dominance back edge."""
    return set(retreating_edges(graph)) <= set(back_edges(graph))


def natural_loops(graph: CFG) -> dict[int, set[int]]:
    """Map each loop header to its natural loop body (header included).

    Bodies of back edges sharing a header are merged, per the usual
    convention.
    """
    dom = cfg_dominators(graph)
    loops: dict[int, set[int]] = {}
    for src, header in back_edges(graph, dom):
        body = loops.setdefault(header, {header})
        stack = [src]
        while stack:
            node = stack.pop()
            if node not in body:
                body.add(node)
                stack.extend(graph.preds(node))
        loops[header] = body
    return loops
