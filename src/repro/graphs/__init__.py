"""Generic graph algorithms over hashable node ids.

These are the standard compiler-textbook substrates the paper assumes:
depth-first orders, dominance/postdominance (extended to *edges*, as
Definition 2 of the paper requires), dominance frontiers, and natural
loops.  Everything is generic over a successor function so the same code
runs on CFGs, reversed CFGs, and the edge-split graphs used for edge
dominance.
"""

from repro.graphs.dfs import DFSResult, depth_first_search, reverse_postorder
from repro.graphs.dominance import (
    DominatorTree,
    cfg_dominators,
    cfg_postdominators,
    dominator_tree,
    edge_dominators,
    edge_postdominators,
)
from repro.graphs.frontier import dominance_frontiers
from repro.graphs.lengauer_tarjan import (
    cfg_dominators_lt,
    cfg_postdominators_lt,
    lengauer_tarjan,
)
from repro.graphs.loops import back_edges, natural_loops

__all__ = [
    "DFSResult",
    "DominatorTree",
    "back_edges",
    "cfg_dominators",
    "cfg_dominators_lt",
    "cfg_postdominators",
    "cfg_postdominators_lt",
    "depth_first_search",
    "dominance_frontiers",
    "dominator_tree",
    "lengauer_tarjan",
    "edge_dominators",
    "edge_postdominators",
    "natural_loops",
    "reverse_postorder",
]
