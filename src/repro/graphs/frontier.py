"""Dominance frontiers (Cytron et al. 1991).

Used by the *baseline* algorithms we compare against: the standard SSA
construction places phi-functions on iterated dominance frontiers, and the
standard control dependence graph is the postdominance frontier of the
reversed CFG.  One of the paper's headline claims is that neither is
needed for the DFG-based constructions -- these baselines make that claim
testable.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, TypeVar

from repro.graphs.dominance import DominatorTree

N = TypeVar("N", bound=Hashable)


def dominance_frontiers(
    tree: DominatorTree,
    preds: Callable[[N], Iterable[N]],
) -> dict[N, set[N]]:
    """The dominance frontier of every node reachable in ``tree``.

    ``DF[x]`` is the set of nodes ``y`` such that ``x`` dominates a
    predecessor of ``y`` but does not strictly dominate ``y``.  Computed
    with Cytron's runner loop: for each join node, walk each predecessor
    up the dominator tree to the join's immediate dominator.
    """
    frontier: dict[N, set[N]] = {n: set() for n in tree.nodes()}
    for node in tree.nodes():
        pred_list = [p for p in preds(node) if p in frontier]
        if len(pred_list) < 2:
            continue
        target = tree.idom_of(node)
        for pred in pred_list:
            runner = pred
            while runner != target:
                frontier[runner].add(node)
                parent = tree.idom_of(runner)
                if parent is None:
                    break
                runner = parent
    return frontier


def iterated_frontier(
    frontier: dict[N, set[N]],
    seeds: Iterable[N],
) -> set[N]:
    """The iterated dominance frontier ``DF+`` of ``seeds`` -- the fixpoint
    of repeatedly adding frontiers of everything added so far.  This is
    the classic phi-placement set."""
    result: set[N] = set()
    worklist = [s for s in seeds if s in frontier]
    on_list = set(worklist)
    while worklist:
        node = worklist.pop()
        for f in frontier[node]:
            if f not in result:
                result.add(f)
                if f not in on_list:
                    on_list.add(f)
                    worklist.append(f)
    return result
