"""Dominators and postdominators, for nodes *and* edges.

Definition 2 of the paper extends dominance to edges: "a node or edge x is
said to dominate node or edge y if every path from start to y includes x".
The natural implementation is exactly the one the paper suggests for
control dependence ("insert a dummy node on each edge and compute the
property for nodes"): :func:`edge_dominators` runs node dominance on a
*split graph* where every CFG edge is materialized as a node.  Adding E
nodes leaves the asymptotic complexity unchanged.

The core is the Cooper-Harvey-Kennedy iterative algorithm on reverse
postorder, plus a dominator tree with Euler intervals so ``dominates`` is
an O(1) query.

Two implementations of the core fixpoint coexist:

* :func:`dominator_tree` -- generic over succ/pred functions and any
  hashable node type (the legacy path, and the oracle for the
  equivalence tests);
* the CSR fast path used by :func:`cfg_dominators`,
  :func:`cfg_postdominators`, :func:`edge_dominators` and
  :func:`edge_postdominators`, which runs
  :func:`repro.perf.kernels.csr_dominators` on a flat-array snapshot
  (building the split graph directly in CSR form for the edge
  variants).  Immediate dominators are unique, so both paths produce
  identical trees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Iterable, TypeVar

from repro.cfg.graph import CFG
from repro.graphs.dfs import depth_first_search

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph

N = TypeVar("N", bound=Hashable)

#: Split-graph key for a CFG node.
def node_key(nid: int) -> tuple[str, int]:
    return ("n", nid)


#: Split-graph key for a CFG edge.
def edge_key(eid: int) -> tuple[str, int]:
    return ("e", eid)


class DominatorTree:
    """An immediate-dominator tree with O(1) ancestor queries.

    ``idom[root] is None``; every other reachable node has an immediate
    dominator.  ``dominates(a, b)`` is reflexive, matching the convention
    used throughout the paper.
    """

    def __init__(self, root: N, idom: dict[N, N | None]) -> None:
        self.root = root
        self.idom = idom
        self.children: dict[N, list[N]] = {n: [] for n in idom}
        for node, parent in idom.items():
            if parent is not None:
                self.children[parent].append(node)
        order = depth_first_search([root], lambda n: self.children[n])
        self._pre = order.pre_number
        self._post = order.post_number
        self._depth: dict[N, int] = {root: 0}
        for node in order.preorder[1:]:
            self._depth[node] = self._depth[idom[node]] + 1  # type: ignore[index]

    def dominates(self, a: N, b: N) -> bool:
        """True when every path from the root to ``b`` passes through
        ``a`` (reflexively)."""
        return (
            self._pre[a] <= self._pre[b] and self._post[b] <= self._post[a]
        )

    def strictly_dominates(self, a: N, b: N) -> bool:
        return a != b and self.dominates(a, b)

    def depth(self, node: N) -> int:
        """Distance from the root in the dominator tree."""
        return self._depth[node]

    def idom_of(self, node: N) -> N | None:
        return self.idom[node]

    def nodes(self) -> Iterable[N]:
        return self.idom.keys()


def dominator_tree(
    root: N,
    succs: Callable[[N], Iterable[N]],
    preds: Callable[[N], Iterable[N]],
) -> DominatorTree:
    """Cooper-Harvey-Kennedy iterative dominators from ``root``.

    Nodes unreachable from ``root`` are absent from the result.
    """
    rpo = list(reversed(depth_first_search([root], succs).postorder))
    position = {node: i for i, node in enumerate(rpo)}
    idom: dict[N, N | None] = {root: root}  # temporarily self, None-ed below

    def intersect(a: N, b: N) -> N:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            candidates = [
                p for p in preds(node) if p in position and p in idom
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    idom[root] = None
    return DominatorTree(root, idom)


def _csr_of(graph: CFG, csr: "CSRGraph | None") -> "CSRGraph":
    if csr is not None:
        return csr.check()
    from repro.perf.csr import build_csr

    return build_csr(graph)


def _dense_tree_arrays(
    idom_arr: list[int], root_vertex: int, total: int
) -> tuple[list[int], list[int], list[int], list[int], list[int]]:
    """Children (CSR, ascending dense order), Euler ``pre``/``post``
    intervals and depths of a dense dominator tree, all as flat arrays.
    Entries for unreachable vertices (``idom_arr[v] < 0``) are garbage;
    callers must filter on reachability first."""
    count = [0] * total
    for v in range(total):
        p = idom_arr[v]
        if p >= 0 and v != root_vertex:
            count[p] += 1
    off = [0] * (total + 1)
    for v in range(total):
        off[v + 1] = off[v] + count[v]
    kids = [0] * off[total]
    cursor = list(off[:-1])
    for v in range(total):
        p = idom_arr[v]
        if p >= 0 and v != root_vertex:
            kids[cursor[p]] = v
            cursor[p] += 1

    pre = [0] * total
    post = [0] * total
    depth = [0] * total
    clock = 0
    stack_v: list[int] = []
    stack_c: list[int] = []
    v = root_vertex
    c = off[v]
    pre[v] = clock
    clock += 1
    while True:
        if c < off[v + 1]:
            w = kids[c]
            c += 1
            stack_v.append(v)
            stack_c.append(c)
            depth[w] = depth[v] + 1
            pre[w] = clock
            clock += 1
            v = w
            c = off[v]
        else:
            post[v] = clock
            clock += 1
            if not stack_v:
                break
            v = stack_v.pop()
            c = stack_c.pop()
    return off, kids, pre, post, depth


class _DenseDominatorTree(DominatorTree):
    """A :class:`DominatorTree` backed by dense flat arrays.

    ``dominates``/``depth`` answer straight from Euler interval arrays
    through one key->vertex dict probe; the ``children`` dict (rarely
    consulted) is materialized lazily.  The public ``idom`` mapping and
    every query answer are identical to the eager dict-based tree."""

    def __init__(
        self,
        root,
        idom,
        keys: list,
        index: dict,
        off: list[int],
        kids: list[int],
        pre: list[int],
        post: list[int],
        depth: list[int],
    ) -> None:
        self.root = root
        self.idom = idom
        self._keys = keys
        self._index = index
        self._off = off
        self._kids = kids
        self._pre_arr = pre
        self._post_arr = post
        self._depth_arr = depth
        self._children: dict | None = None

    @property
    def children(self) -> dict:  # type: ignore[override]
        if self._children is None:
            keys, off, kids = self._keys, self._off, self._kids
            kid_keys = [keys[w] for w in kids]
            index = self._index
            self._children = {
                k: kid_keys[off[index[k]]:off[index[k] + 1]]
                for k in self.idom
            }
        return self._children

    def dominates(self, a, b) -> bool:
        index = self._index
        i = index[a]
        j = index[b]
        return (
            self._pre_arr[i] <= self._pre_arr[j]
            and self._post_arr[j] <= self._post_arr[i]
        )

    def depth(self, node) -> int:
        return self._depth_arr[self._index[node]]


def _tree_from_dense(
    idom_arr: list[int],
    root_vertex: int,
    total: int,
    keys: list,
    dense: tuple | None = None,
) -> DominatorTree:
    """Assemble a dominator tree straight from a dense ``idom`` array
    (``keys[v]`` is dense vertex ``v``'s external key), skipping the
    generic dict-based DFS of ``DominatorTree.__init__``.

    Semantically equivalent to ``DominatorTree(root, idom_dict)`` -- same
    tree, same ``dominates``/``depth`` answers.  ``dense`` supplies
    precomputed :func:`_dense_tree_arrays` output when the caller
    already has it.
    """
    off, kids, pre, post, depth = (
        dense
        if dense is not None
        else _dense_tree_arrays(idom_arr, root_vertex, total)
    )
    if all(p >= 0 for p in idom_arr):
        # Everything reachable: bulk-zip the key->vertex map.
        index = dict(zip(keys, range(total)))
        idom_d = {keys[v]: keys[idom_arr[v]] for v in range(total)}
    else:
        index = {}
        idom_d = {}
        for v in range(total):
            p = idom_arr[v]
            if p < 0:
                continue
            k = keys[v]
            index[k] = v
            idom_d[k] = keys[p]
    root_key = keys[root_vertex]
    idom_d[root_key] = None
    return _DenseDominatorTree(
        root_key, idom_d, keys, index, off, kids, pre, post, depth
    )


def _node_idom_from_csr(
    csr: "CSRGraph", forward: bool
) -> tuple[list[int], int]:
    """Dense node-graph immediate dominators for one direction, memoized
    on the (immutable) snapshot: the node-tree and split-tree builders
    both need them, and the pipeline's dom/edom passes share one
    snapshot."""
    key = ("node_idom", forward)
    hit = csr.memo.get(key)
    if hit is not None:
        return hit
    from repro.perf.kernels import csr_dominators

    if forward:
        idom_arr, _ = csr_dominators(
            csr.succ_off, csr.succ_node, csr.pred_off, csr.pred_node,
            csr.start, csr.n,
        )
        root_vertex = csr.start
    else:
        idom_arr, _ = csr_dominators(
            csr.pred_off, csr.pred_node, csr.succ_off, csr.succ_node,
            csr.end, csr.n,
        )
        root_vertex = csr.end
    result = (idom_arr, root_vertex)
    csr.memo[key] = result
    return result


def _node_euler_from_csr(csr: "CSRGraph", forward: bool) -> tuple:
    """Memoized :func:`_dense_tree_arrays` of the node dominator tree."""
    key = ("node_euler", forward)
    hit = csr.memo.get(key)
    if hit is not None:
        return hit
    idom_arr, root_vertex = _node_idom_from_csr(csr, forward)
    dense = _dense_tree_arrays(idom_arr, root_vertex, csr.n)
    csr.memo[key] = dense
    return dense


def _node_tree_from_csr(csr: "CSRGraph", forward: bool) -> DominatorTree:
    idom_arr, root_vertex = _node_idom_from_csr(csr, forward)
    return _tree_from_dense(
        idom_arr, root_vertex, csr.n, csr.node_ids,
        dense=_node_euler_from_csr(csr, forward),
    )


def cfg_dominators(graph: CFG, csr: "CSRGraph | None" = None) -> DominatorTree:
    """Dominator tree over CFG node ids, rooted at ``start``."""
    return _node_tree_from_csr(_csr_of(graph, csr), forward=True)


def cfg_postdominators(
    graph: CFG, csr: "CSRGraph | None" = None
) -> DominatorTree:
    """Postdominator tree over CFG node ids: dominators of the reversed
    graph, rooted at ``end``."""
    return _node_tree_from_csr(_csr_of(graph, csr), forward=False)


def _split_succs(graph: CFG) -> Callable:
    def succs(key: tuple[str, int]):
        kind, ident = key
        if kind == "n":
            return [edge_key(e.id) for e in graph.out_edges(ident)]
        return [node_key(graph.edge(ident).dst)]

    return succs


def _split_preds(graph: CFG) -> Callable:
    def preds(key: tuple[str, int]):
        kind, ident = key
        if kind == "n":
            return [edge_key(e.id) for e in graph.in_edges(ident)]
        return [node_key(graph.edge(ident).src)]

    return preds


def _split_tree_from_csr(csr: "CSRGraph", forward: bool) -> DominatorTree:
    """Split-graph dominators derived from *node* dominators in O(V+E).

    Rather than running the fixpoint on the materialized split graph,
    use the structure Definition 2 imposes:

    * an edge vertex ``(u, v)`` has the single predecessor ``u``, so its
      immediate dominator is ``u``;
    * an in-edge ``e = (u, v)`` dominates ``v`` iff every *other*
      in-edge of ``v`` starts at a node dominated by ``v`` (any path
      must first reach ``v`` through ``e``; conversely a second
      ``v``-free entry path kills dominance).  When exactly one such
      edge exists it is ``idom(v)`` in the split graph; otherwise no
      edge dominates ``v`` and ``idom(v)`` is the node-graph immediate
      dominator.

    Immediate dominators are unique, so this tree is identical to the
    one the generic fixpoint computes on the split graph (the
    ``*_reference`` functions below; the equivalence tests compare the
    two on reducible and irreducible CFGs alike).
    """
    from repro.perf.kernels import UNVISITED

    n, m = csr.n, csr.m
    node_idom, root_vertex = _node_idom_from_csr(csr, forward)
    if forward:
        in_off, in_node, in_edge = csr.pred_off, csr.pred_node, csr.pred_edge
        edge_source = csr.edge_src
    else:
        in_off, in_node, in_edge = csr.succ_off, csr.succ_node, csr.succ_edge
        edge_source = csr.edge_dst
    _, _, pre, post, _ = _node_euler_from_csr(csr, forward)

    total = n + m
    sidom = [UNVISITED] * total
    for e in range(m):
        u = edge_source[e]
        if node_idom[u] != UNVISITED:
            sidom[n + e] = u
    sidom[root_vertex] = root_vertex
    for v in range(n):
        if v == root_vertex or node_idom[v] == UNVISITED:
            continue
        pv, qv = pre[v], post[v]
        dominating_edge = -1
        entries = 0
        for i in range(in_off[v], in_off[v + 1]):
            u = in_node[i]
            if node_idom[u] == UNVISITED:
                continue
            if pv <= pre[u] and post[u] <= qv:
                continue  # u is dominated by v (e.g. a loop latch)
            entries += 1
            if entries > 1:
                break
            dominating_edge = in_edge[i]
        if entries == 1:
            sidom[v] = n + dominating_edge
        else:
            sidom[v] = node_idom[v]

    node_ids, edge_ids = csr.node_ids, csr.edge_ids
    keys: list = [("n", node_ids[v]) for v in range(n)]
    keys += [("e", edge_ids[e]) for e in range(m)]
    return _tree_from_dense(sidom, root_vertex, total, keys)


def edge_dominators(graph: CFG, csr: "CSRGraph | None" = None) -> DominatorTree:
    """Dominance over the split graph: keys are ``("n", node_id)`` and
    ``("e", edge_id)``, so node-node, node-edge and edge-edge dominance
    are all answerable (Definition 2)."""
    return _split_tree_from_csr(_csr_of(graph, csr), forward=True)


def edge_postdominators(
    graph: CFG, csr: "CSRGraph | None" = None
) -> DominatorTree:
    """Postdominance over the split graph, rooted at ``end``."""
    return _split_tree_from_csr(_csr_of(graph, csr), forward=False)


def edge_dominators_reference(graph: CFG) -> DominatorTree:
    """The legacy generic-path split-graph dominators (equivalence oracle)."""
    return dominator_tree(
        node_key(graph.start), _split_succs(graph), _split_preds(graph)
    )


def edge_postdominators_reference(graph: CFG) -> DominatorTree:
    """The legacy generic-path split-graph postdominators."""
    return dominator_tree(
        node_key(graph.end), _split_preds(graph), _split_succs(graph)
    )
