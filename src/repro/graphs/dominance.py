"""Dominators and postdominators, for nodes *and* edges.

Definition 2 of the paper extends dominance to edges: "a node or edge x is
said to dominate node or edge y if every path from start to y includes x".
The natural implementation is exactly the one the paper suggests for
control dependence ("insert a dummy node on each edge and compute the
property for nodes"): :func:`edge_dominators` runs node dominance on a
*split graph* where every CFG edge is materialized as a node.  Adding E
nodes leaves the asymptotic complexity unchanged.

The core is the Cooper-Harvey-Kennedy iterative algorithm on reverse
postorder, plus a dominator tree with Euler intervals so ``dominates`` is
an O(1) query.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, TypeVar

from repro.cfg.graph import CFG
from repro.graphs.dfs import depth_first_search

N = TypeVar("N", bound=Hashable)

#: Split-graph key for a CFG node.
def node_key(nid: int) -> tuple[str, int]:
    return ("n", nid)


#: Split-graph key for a CFG edge.
def edge_key(eid: int) -> tuple[str, int]:
    return ("e", eid)


class DominatorTree:
    """An immediate-dominator tree with O(1) ancestor queries.

    ``idom[root] is None``; every other reachable node has an immediate
    dominator.  ``dominates(a, b)`` is reflexive, matching the convention
    used throughout the paper.
    """

    def __init__(self, root: N, idom: dict[N, N | None]) -> None:
        self.root = root
        self.idom = idom
        self.children: dict[N, list[N]] = {n: [] for n in idom}
        for node, parent in idom.items():
            if parent is not None:
                self.children[parent].append(node)
        order = depth_first_search([root], lambda n: self.children[n])
        self._pre = order.pre_number
        self._post = order.post_number
        self._depth: dict[N, int] = {root: 0}
        for node in order.preorder[1:]:
            self._depth[node] = self._depth[idom[node]] + 1  # type: ignore[index]

    def dominates(self, a: N, b: N) -> bool:
        """True when every path from the root to ``b`` passes through
        ``a`` (reflexively)."""
        return (
            self._pre[a] <= self._pre[b] and self._post[b] <= self._post[a]
        )

    def strictly_dominates(self, a: N, b: N) -> bool:
        return a != b and self.dominates(a, b)

    def depth(self, node: N) -> int:
        """Distance from the root in the dominator tree."""
        return self._depth[node]

    def idom_of(self, node: N) -> N | None:
        return self.idom[node]

    def nodes(self) -> Iterable[N]:
        return self.idom.keys()


def dominator_tree(
    root: N,
    succs: Callable[[N], Iterable[N]],
    preds: Callable[[N], Iterable[N]],
) -> DominatorTree:
    """Cooper-Harvey-Kennedy iterative dominators from ``root``.

    Nodes unreachable from ``root`` are absent from the result.
    """
    rpo = list(reversed(depth_first_search([root], succs).postorder))
    position = {node: i for i, node in enumerate(rpo)}
    idom: dict[N, N | None] = {root: root}  # temporarily self, None-ed below

    def intersect(a: N, b: N) -> N:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]  # type: ignore[assignment]
            while position[b] > position[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            candidates = [
                p for p in preds(node) if p in position and p in idom
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    idom[root] = None
    return DominatorTree(root, idom)


def cfg_dominators(graph: CFG) -> DominatorTree:
    """Dominator tree over CFG node ids, rooted at ``start``."""
    return dominator_tree(graph.start, graph.succs, graph.preds)


def cfg_postdominators(graph: CFG) -> DominatorTree:
    """Postdominator tree over CFG node ids: dominators of the reversed
    graph, rooted at ``end``."""
    return dominator_tree(graph.end, graph.preds, graph.succs)


def _split_succs(graph: CFG) -> Callable:
    def succs(key: tuple[str, int]):
        kind, ident = key
        if kind == "n":
            return [edge_key(e.id) for e in graph.out_edges(ident)]
        return [node_key(graph.edge(ident).dst)]

    return succs


def _split_preds(graph: CFG) -> Callable:
    def preds(key: tuple[str, int]):
        kind, ident = key
        if kind == "n":
            return [edge_key(e.id) for e in graph.in_edges(ident)]
        return [node_key(graph.edge(ident).src)]

    return preds


def edge_dominators(graph: CFG) -> DominatorTree:
    """Dominance over the split graph: keys are ``("n", node_id)`` and
    ``("e", edge_id)``, so node-node, node-edge and edge-edge dominance
    are all answerable (Definition 2)."""
    return dominator_tree(
        node_key(graph.start), _split_succs(graph), _split_preds(graph)
    )


def edge_postdominators(graph: CFG) -> DominatorTree:
    """Postdominance over the split graph, rooted at ``end``."""
    return dominator_tree(
        node_key(graph.end), _split_preds(graph), _split_succs(graph)
    )
