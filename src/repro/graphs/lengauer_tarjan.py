"""Lengauer-Tarjan dominators (the near-linear classic).

The project's default dominator computation is the iterative
Cooper-Harvey-Kennedy algorithm (:mod:`repro.graphs.dominance`), which is
simple and fast on real control flow.  This module provides the
Lengauer-Tarjan algorithm -- O(E alpha(E, V)) with path compression --
as an independently implemented alternative:

* a *differential oracle*: the test suite requires both algorithms to
  produce identical immediate dominators on every graph family;
* the asymptotically safer choice for adversarial graphs where the
  iterative algorithm's O(E * D) worst case bites (deep dominator trees
  with late-arriving back edges).

Implementation notes: the simple (non-balanced) LINK/EVAL with path
compression; vertices are numbered by a DFS from the root; unreachable
vertices are absent from the result, matching ``dominator_tree``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, TypeVar

from repro.cfg.graph import CFG
from repro.graphs.dominance import DominatorTree

N = TypeVar("N", bound=Hashable)


def lengauer_tarjan(
    root: N,
    succs: Callable[[N], Iterable[N]],
    preds: Callable[[N], Iterable[N]],
) -> DominatorTree:
    """Immediate dominators of every vertex reachable from ``root``."""
    # -- step 1: DFS numbering -------------------------------------------------
    parent: dict[N, N] = {}
    semi: dict[N, int] = {}  # vertex -> its (eventual) semidominator number
    vertex: list[N] = []  # number -> vertex

    stack: list[tuple[N, Iterable[N]]] = [(root, iter(succs(root)))]
    semi[root] = 0
    vertex.append(root)
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in semi:
                semi[nxt] = len(vertex)
                vertex.append(nxt)
                parent[nxt] = node
                stack.append((nxt, iter(succs(nxt))))
                advanced = True
                break
        if not advanced:
            stack.pop()

    number = {v: i for i, v in enumerate(vertex)}

    # -- forest with path compression -------------------------------------------
    ancestor: dict[N, N] = {}
    label: dict[N, N] = {v: v for v in vertex}

    def compress(v: N) -> None:
        # Iterative path compression (deep graphs overflow recursion).
        path: list[N] = []
        while ancestor.get(v) is not None and ancestor[v] in ancestor:
            path.append(v)
            v = ancestor[v]
        for u in reversed(path):
            a = ancestor[u]
            if semi[label[a]] < semi[label[u]]:
                label[u] = label[a]
            if ancestor.get(a) is not None:
                ancestor[u] = ancestor[a]

    def evaluate(v: N) -> N:
        if v not in ancestor:
            return label[v]
        compress(v)
        return label[v]

    def link(parent_vertex: N, child: N) -> None:
        ancestor[child] = parent_vertex

    # -- steps 2 and 3: semidominators, implicit idoms ----------------------------
    bucket: dict[N, list[N]] = {v: [] for v in vertex}
    idom: dict[N, N | None] = {}

    for w in reversed(vertex[1:]):
        for v in preds(w):
            if v not in number:
                continue  # unreachable predecessor
            u = evaluate(v)
            if semi[u] < semi[w]:
                semi[w] = semi[u]
        bucket[vertex[semi[w]]].append(w)
        p = parent[w]
        link(p, w)
        for v in bucket[p]:
            u = evaluate(v)
            idom[v] = u if semi[u] < semi[v] else p
        bucket[p].clear()

    # -- step 4: explicit idoms ----------------------------------------------------
    for w in vertex[1:]:
        assert idom[w] is not None
        if idom[w] != vertex[semi[w]]:
            idom[w] = idom[idom[w]]  # type: ignore[index]
    idom[root] = None
    return DominatorTree(root, idom)


def cfg_dominators_lt(graph: CFG) -> DominatorTree:
    """Lengauer-Tarjan dominator tree over CFG node ids."""
    return lengauer_tarjan(graph.start, graph.succs, graph.preds)


def cfg_postdominators_lt(graph: CFG) -> DominatorTree:
    """Lengauer-Tarjan postdominator tree (reversed graph, root=end)."""
    return lengauer_tarjan(graph.end, graph.preds, graph.succs)
