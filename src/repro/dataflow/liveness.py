"""Live-variable analysis (backward, may).

Used by the DFG construction's dead-edge-removal step (a dependence edge
is useful only where its variable is live) and by the anticipatability
boundary conditions of Section 5 ("if a variable x is live on one side of
a conditional branch but dead on the other...").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cfg.graph import CFG
from repro.dataflow.solver import solve_dataflow
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph


class _Liveness:
    direction = "backward"

    def __init__(self, live_out: frozenset[str]) -> None:
        self.live_out = live_out

    def initial(self, graph: CFG, eid: int) -> frozenset[str]:
        return frozenset()

    def transfer(self, graph: CFG, nid: int, facts_in):
        node = graph.node(nid)
        if nid == graph.end:
            combined = self.live_out
        else:
            combined = frozenset().union(*facts_in.values()) if facts_in else frozenset()
        live = (combined - node.defs()) | node.uses()
        return {e.id: live for e in graph.in_edges(nid)}


def live_variables(
    graph: CFG,
    live_out: frozenset[str] = frozenset(),
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> dict[int, frozenset[str]]:
    """The set of live variables on every edge.

    ``live_out`` declares variables observable after ``end`` (none by
    default -- ``print`` is the language's only observation).

    Solved on the bitset fast path (:mod:`repro.dataflow.bitsets`);
    callers holding a CSR snapshot of the graph can pass it to skip the
    rebuild.  :func:`live_variables_reference` is the generic-solver
    twin the equivalence tests compare against.
    """
    from repro.dataflow.bitsets import liveness_bitsets

    return liveness_bitsets(graph, live_out, counter, csr)


def live_variables_reference(
    graph: CFG,
    live_out: frozenset[str] = frozenset(),
    counter: WorkCounter | None = None,
) -> dict[int, frozenset[str]]:
    """Frozenset-based oracle on the generic worklist solver."""
    return solve_dataflow(graph, _Liveness(live_out), counter)
