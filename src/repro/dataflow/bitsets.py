"""Compilers from the concrete dataflow analyses to bitset problems.

Each ``*_bitsets`` function fixes a deterministic numbering of the fact
universe (sorted variables, sorted ``(var, node)`` definition sites,
expressions sorted by their repr), packs every node's gen/kill set into
an int mask, and hands the result to
:func:`repro.perf.bitset.solve_bitset`.  The decoded answers are
*identical* to the generic :func:`repro.dataflow.solver.solve_dataflow`
on the same problem: both iterate a monotone transfer on a finite
lattice to its (unique) fixpoint.

The four expression analyses (AV/PAV/ANT/PAN) share one
:class:`ExpressionSpace`: the universe, the per-node gen masks and the
per-variable kill masks are the same for all four -- only the meet, the
kill/gen order and the initial value differ -- so the expression-tree
walk and the repr sort are paid once per graph, not once per analysis.
The space also carries the shared :class:`~repro.perf.bitset.MaskDecoder`
so a fact mask decoded by AV is a cache hit when ANT produces it too.

The expression solvers assume the normalized CFG shape the pipeline
validates (only ``MERGE`` nodes have multiple in-edges, only ``SWITCH``
nodes have multiple out-edges -- what :func:`repro.cfg.builder.build_cfg`
produces); the generic solver remains the oracle and the fallback for
exotic graphs.  Liveness and reaching definitions meet over *all*
in-edges exactly as their generic formulations do, so they carry no such
assumption.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.available import gen_expressions
from repro.lang.ast_nodes import Expr, expr_vars
from repro.perf.bitset import (
    BitsetProblem,
    MaskDecoder,
    decode_masks,
    solve_bitset,
)
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.dataflow.reaching import Definition
    from repro.perf.csr import CSRGraph


def _csr_of(graph: CFG, csr: "CSRGraph | None") -> "CSRGraph":
    if csr is not None:
        return csr.check()
    from repro.perf.csr import build_csr

    return build_csr(graph)


def _mask(items: Iterable, index: dict) -> int:
    mask = 0
    for item in items:
        mask |= 1 << index[item]
    return mask


def liveness_problem(
    graph: CFG,
    csr: "CSRGraph",
    live_out: frozenset[str] = frozenset(),
) -> tuple[BitsetProblem, list[str]]:
    """Compile liveness to a :class:`BitsetProblem`; returns the problem
    and the universe its bit numbering is over.  Shared by the flat
    solver below and the hierarchical/incremental region solvers, so
    both sides number facts identically."""
    universe = sorted(graph.variables() | live_out)
    index = {var: i for i, var in enumerate(universe)}
    n = csr.n
    gen = [0] * n
    kill = [0] * n
    for v, nid in enumerate(csr.node_ids):
        node = graph.node(nid)
        gen[v] = _mask(node.uses(), index)
        kill[v] = _mask(node.defs(), index)
    problem = BitsetProblem(
        direction="backward",
        meet_is_union=True,
        kill_then_gen=True,
        gen=gen,
        kill=kill,
        boundary_mask=_mask(live_out, index),
        initial_mask=0,
    )
    return problem, universe


def liveness_bitsets(
    graph: CFG,
    live_out: frozenset[str] = frozenset(),
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> dict[int, frozenset[str]]:
    """Live variables per edge -- bitset twin of
    :func:`repro.dataflow.liveness.live_variables`."""
    csr = _csr_of(graph, csr)
    problem, universe = liveness_problem(graph, csr, live_out)
    facts = solve_bitset(csr, problem, counter)
    return decode_masks(facts, csr, universe)


def reaching_problem(
    graph: CFG,
    csr: "CSRGraph",
) -> tuple[BitsetProblem, list[tuple[str, int]]]:
    """Compile reaching definitions to a :class:`BitsetProblem`; returns
    the problem and its ``(var, node)`` site universe."""
    variables = graph.variables()
    sites: set[tuple[str, int]] = {(v, graph.start) for v in variables}
    for node in graph.assign_nodes():
        assert node.target is not None
        sites.add((node.target, node.id))
    universe = sorted(sites)
    index = {site: i for i, site in enumerate(universe)}
    # All definition sites of one variable, for the kill mask.
    by_var: dict[str, int] = {}
    for var, nid in universe:
        by_var[var] = by_var.get(var, 0) | (1 << index[(var, nid)])

    n = csr.n
    gen = [0] * n
    kill = [0] * n
    for v, nid in enumerate(csr.node_ids):
        node = graph.node(nid)
        if node.kind is NodeKind.START:
            gen[v] = _mask(((var, nid) for var in variables), index)
        elif node.kind is NodeKind.ASSIGN:
            assert node.target is not None
            gen[v] = 1 << index[(node.target, nid)]
            kill[v] = by_var[node.target]
    problem = BitsetProblem(
        direction="forward",
        meet_is_union=True,
        kill_then_gen=True,
        gen=gen,
        kill=kill,
        boundary_mask=0,
        initial_mask=0,
    )
    return problem, universe


def reaching_bitsets(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> "dict[int, frozenset[Definition]]":
    """Reaching definitions per edge -- bitset twin of
    :func:`repro.dataflow.reaching.reaching_definitions`."""
    csr = _csr_of(graph, csr)
    problem, universe = reaching_problem(graph, csr)
    facts = solve_bitset(csr, problem, counter)
    return decode_masks(facts, csr, universe)


class ExpressionSpace:
    """The shared compile of the four expression analyses over one graph.

    ``universe`` numbers the non-trivial expressions (sorted by repr, so
    the numbering is deterministic), ``gen[v]`` is the mask of
    expressions dense node ``v`` computes, and ``kill[v]`` the mask an
    assignment at ``v`` invalidates (every expression reading the
    target).  AV, PAV, ANT and PAN differ only in direction, meet,
    kill/gen order and the initial mask -- never in these tables.
    """

    __slots__ = ("csr", "universe", "gen", "kill", "full", "decoder")

    def __init__(self, graph: CFG, csr: "CSRGraph") -> None:
        self.csr = csr
        universe = sorted(graph.expressions(), key=repr)
        self.universe: list[Expr] = universe
        index = {expr: i for i, expr in enumerate(universe)}
        kill_by_var: dict[str, int] = {}
        for i, expr in enumerate(universe):
            bit = 1 << i
            for var in expr_vars(expr):
                kill_by_var[var] = kill_by_var.get(var, 0) | bit
        n = csr.n
        gen = [0] * n
        kill = [0] * n
        for v, nid in enumerate(csr.node_ids):
            node = graph.node(nid)
            gen[v] = _mask(gen_expressions(node), index)
            if node.kind is NodeKind.ASSIGN:
                assert node.target is not None
                kill[v] = kill_by_var.get(node.target, 0)
        self.gen = gen
        self.kill = kill
        self.full = (1 << len(universe)) - 1
        self.decoder = MaskDecoder(universe)


def expression_space(
    graph: CFG, csr: "CSRGraph | None" = None
) -> ExpressionSpace:
    """Compile ``graph``'s expression universe once for AV/PAV/ANT/PAN."""
    return ExpressionSpace(graph, _csr_of(graph, csr))


def expression_problem(
    graph: CFG,
    csr: "CSRGraph | None" = None,
    direction: str = "forward",
    must: bool = True,
    space: ExpressionSpace | None = None,
) -> tuple[BitsetProblem, ExpressionSpace]:
    """The compiled bitset problem for one expression analysis
    (``forward``+``must`` = AV, ``backward``+``must`` = ANT, ...), plus
    the shared :class:`ExpressionSpace` for decoding.  This is the same
    problem :func:`available_bitsets` et al. solve -- exposed so
    alternative solvers (the hierarchical region solver) can be run on
    byte-identical inputs."""
    if space is None:
        space = expression_space(graph, csr)
    problem = BitsetProblem(
        direction=direction,
        meet_is_union=not must,
        kill_then_gen=(direction == "backward"),
        gen=space.gen,
        kill=space.kill,
        boundary_mask=0,
        initial_mask=space.full if must else 0,
    )
    return problem, space


def _solve_expressions(
    graph: CFG,
    counter: WorkCounter | None,
    csr: "CSRGraph | None",
    space: ExpressionSpace | None,
    direction: str,
    must: bool,
) -> dict[int, frozenset[Expr]]:
    """Shared driver for the four expression analyses.

    ``kill_then_gen`` differs by direction: availability kills the gens
    of a self-referential assignment (``x := x + 1`` leaves ``x + 1``
    unavailable *after*), anticipatability keeps them (the computation
    precedes the kill, so ``x + 1`` *is* anticipatable on entry).
    """
    problem, space = expression_problem(graph, csr, direction, must, space)
    facts = solve_bitset(space.csr, problem, counter)
    return space.decoder.decode_all(facts, space.csr)


def available_bitsets(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
    must: bool = True,
    space: ExpressionSpace | None = None,
) -> dict[int, frozenset[Expr]]:
    """AV (``must=True``) / PAV per edge -- bitset twin of
    :func:`repro.dataflow.available.available_expressions`."""
    return _solve_expressions(graph, counter, csr, space, "forward", must)


def anticipatable_bitsets(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
    must: bool = True,
    space: ExpressionSpace | None = None,
) -> dict[int, frozenset[Expr]]:
    """ANT (``must=True``) / PAN per edge -- bitset twin of
    :func:`repro.dataflow.anticipatable.anticipatable_expressions`."""
    return _solve_expressions(graph, counter, csr, space, "backward", must)
