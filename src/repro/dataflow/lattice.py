"""The constant-propagation lattice (Section 4, after Kildall).

Values are ``BOTTOM`` (no information yet / dead), an integer constant, or
``TOP`` (may differ between executions).  The paper's interpretation:

    ``BOTTOM``  This use was never examined during constant propagation;
                it is dead code.
    ``c``       This use has the value c in all executions.
    ``TOP``     This use may have different values in different executions.

``join_const`` is the least upper bound; ``eval_abstract`` implements the
paper's evaluation rule ("expression e evaluates to BOTTOM (or TOP) if any
operand of e is BOTTOM (or TOP)"), with constant folding via the concrete
semantics otherwise.  A constant-foldable expression that would trap at
runtime (division by zero) evaluates to TOP: folding must not change
behaviour.
"""

from __future__ import annotations

import enum
from typing import Callable, Union

from repro.lang.ast_nodes import BinOp, Expr, Index, IntLit, UnOp, Update, Var
from repro.lang.errors import InterpError
from repro.lang.interp import apply_binop


class _Extreme(enum.Enum):
    BOTTOM = "bottom"
    TOP = "top"

    def __repr__(self) -> str:  # compact in test output
        return "⊥" if self is _Extreme.BOTTOM else "⊤"


BOTTOM = _Extreme.BOTTOM
TOP = _Extreme.TOP

ConstValue = Union[_Extreme, int]


def join_const(a: ConstValue, b: ConstValue) -> ConstValue:
    """Least upper bound: BOTTOM <= c <= TOP, distinct constants join to
    TOP."""
    if a is BOTTOM:
        return b
    if b is BOTTOM:
        return a
    if a is TOP or b is TOP:
        return TOP
    return a if a == b else TOP


def join_all(values) -> ConstValue:
    result: ConstValue = BOTTOM
    for value in values:
        result = join_const(result, value)
    return result


def leq_const(a: ConstValue, b: ConstValue) -> bool:
    """Lattice order: is ``a`` below (or equal to) ``b``?"""
    return join_const(a, b) == b


def truthiness(value: ConstValue) -> ConstValue:
    """Collapse a lattice value to its branch behaviour: BOTTOM, TOP, or
    the constants 0/1."""
    if value is BOTTOM or value is TOP:
        return value
    return int(bool(value))


def branch_implications(predicate: Expr, taken: bool) -> dict[str, int]:
    """Variable values implied by a branch outcome (Section 4's Multiflow
    extension: "if the predicate at a switch is x=1, we can propagate the
    constant 1 for x on the true side of the conditional even if we
    cannot determine the value of x for the false side").

    Recognizes equality tests between a variable and a literal:
    ``x == c`` implies ``x = c`` on the true side, ``x != c`` implies it
    on the false side.  Returns an empty dict when the predicate implies
    nothing usable.
    """
    if not isinstance(predicate, BinOp):
        return {}
    wanted = "==" if taken else "!="
    if predicate.op != wanted:
        return {}
    left, right = predicate.left, predicate.right
    if isinstance(left, Var) and isinstance(right, IntLit):
        return {left.name: right.value}
    if isinstance(left, IntLit) and isinstance(right, Var):
        return {right.name: left.value}
    return {}


def eval_abstract(
    expr: Expr, lookup: Callable[[str], ConstValue]
) -> ConstValue:
    """Abstractly evaluate ``expr`` with variable values from ``lookup``.

    BOTTOM is absorbing below TOP: any BOTTOM operand makes the result
    BOTTOM (the expression sits in unexamined code), otherwise any TOP
    operand makes it TOP, otherwise the expression folds concretely.
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Var):
        return lookup(expr.name)
    if isinstance(expr, UnOp):
        value = eval_abstract(expr.operand, lookup)
        if value is BOTTOM or value is TOP:
            return value
        return -value if expr.op == "-" else (0 if value else 1)
    if isinstance(expr, BinOp):
        left = eval_abstract(expr.left, lookup)
        right = eval_abstract(expr.right, lookup)
        if left is BOTTOM or right is BOTTOM:
            return BOTTOM
        if left is TOP or right is TOP:
            return TOP
        try:
            return apply_binop(expr.op, left, right)
        except InterpError:
            # Would trap at runtime: do not fold.
            return TOP
    if isinstance(expr, Index):
        # Array contents are not modeled by the constant lattice, but
        # BOTTOM operands (unreached code) still dominate.
        operands = [lookup(expr.array), eval_abstract(expr.index, lookup)]
        return BOTTOM if BOTTOM in operands else TOP
    if isinstance(expr, Update):
        operands = [
            lookup(expr.array),
            eval_abstract(expr.index, lookup),
            eval_abstract(expr.value, lookup),
        ]
        return BOTTOM if BOTTOM in operands else TOP
    raise TypeError(f"not an expression: {expr!r}")
