"""Available expressions (forward, must).

``AV`` in the paper's Figure 5: an expression is available at a point when
it has been computed on every path to the point with none of its operands
redefined since.  Feeds the DELETE rule of partial redundancy elimination.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.solver import solve_dataflow
from repro.lang.ast_nodes import Expr, expr_vars, is_trivial, subexpressions
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph


def gen_expressions(node) -> frozenset[Expr]:
    """Non-trivial expressions a node computes."""
    if node.expr is None:
        return frozenset()
    return frozenset(
        e for e in subexpressions(node.expr) if not is_trivial(e)
    )


def kill_map(universe: frozenset[Expr]) -> dict[str, frozenset[Expr]]:
    """variable -> expressions an assignment to it kills."""
    killed: dict[str, set[Expr]] = defaultdict(set)
    for expr in universe:
        for var in expr_vars(expr):
            killed[var].add(expr)
    return {v: frozenset(s) for v, s in killed.items()}


class _Available:
    """AV (``must=True``) or PAV -- partial availability -- (``must=False``)."""

    direction = "forward"

    def __init__(self, universe: frozenset[Expr], must: bool = True) -> None:
        self.universe = universe
        self.must = must
        self.kills = kill_map(universe)

    def initial(self, graph: CFG, eid: int) -> frozenset[Expr]:
        return self.universe if self.must else frozenset()

    def transfer(self, graph: CFG, nid: int, facts_in):
        node = graph.node(nid)
        if node.kind is NodeKind.START:
            out: frozenset[Expr] = frozenset()
        elif node.kind is NodeKind.MERGE:
            values = list(facts_in.values())
            if self.must:
                out = values[0].intersection(*values[1:])
            else:
                out = values[0].union(*values[1:])
        else:
            combined = next(iter(facts_in.values()))
            out = combined | gen_expressions(node)
            if node.kind is NodeKind.ASSIGN:
                assert node.target is not None
                out -= self.kills.get(node.target, frozenset())
        return {e.id: out for e in graph.out_edges(nid)}


def available_expressions(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> dict[int, frozenset[Expr]]:
    """AV: the expressions available on every edge (computed on all paths,
    operands untouched since).

    Solved on the bitset fast path (:mod:`repro.dataflow.bitsets`);
    :func:`available_expressions_reference` is the generic-solver twin
    the equivalence tests compare against.
    """
    from repro.dataflow.bitsets import available_bitsets

    return available_bitsets(graph, counter, csr, must=True)


def partially_available_expressions(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> dict[int, frozenset[Expr]]:
    """PAV: expressions computed on *some* path with operands untouched --
    the profitability half of the PP rules (a partially available,
    anticipatable expression is partially redundant)."""
    from repro.dataflow.bitsets import available_bitsets

    return available_bitsets(graph, counter, csr, must=False)


def available_expressions_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> dict[int, frozenset[Expr]]:
    """Frozenset-based AV oracle on the generic worklist solver."""
    return solve_dataflow(graph, _Available(graph.expressions()), counter)


def partially_available_expressions_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> dict[int, frozenset[Expr]]:
    """Frozenset-based PAV oracle on the generic worklist solver."""
    return solve_dataflow(
        graph, _Available(graph.expressions(), must=False), counter
    )
