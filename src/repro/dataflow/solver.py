"""Generic instrumented worklist solver for edge-based CFG dataflow.

A problem supplies, per node, a transfer function from the facts on one
side's edges to new facts for the other side's edges; the solver iterates
to a fixpoint.  Facts are compared with ``==``, so problems use immutable
values (frozensets, tuples, ints, lattice sentinels).
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, TypeVar

from repro.cfg.graph import CFG
from repro.graphs.dfs import reverse_postorder
from repro.util.counters import WorkCounter

V = TypeVar("V")


class DataflowProblem(Protocol[V]):
    """What a dataflow problem must provide."""

    #: ``"forward"`` or ``"backward"``.
    direction: str

    def initial(self, graph: CFG, eid: int) -> V:
        """The starting approximation for an edge's fact."""
        ...

    def transfer(
        self, graph: CFG, nid: int, facts_in: dict[int, V]
    ) -> dict[int, V]:
        """New facts for the node's output side.

        Forward: ``facts_in`` maps the node's in-edge ids to facts, and
        the result maps out-edge ids to facts.  Backward: the reverse.
        """
        ...


def solve_dataflow(
    graph: CFG,
    problem: DataflowProblem[V],
    counter: WorkCounter | None = None,
) -> dict[int, V]:
    """Solve ``problem`` on ``graph``; returns the fact on every edge.

    The worklist is seeded with every node in reverse postorder (forward
    problems) or reverse postorder of the reversed graph (backward), which
    makes the common structured cases converge in near-linear passes.
    Counters: ``node_visits``, ``fact_updates`` (edge facts that actually
    changed), and whatever the problem itself ticks.
    """
    counter = counter if counter is not None else WorkCounter()
    forward = problem.direction == "forward"
    facts: dict[int, V] = {
        eid: problem.initial(graph, eid) for eid in graph.edges
    }

    if forward:
        seed = reverse_postorder(graph.start, graph.succs)
        input_edges = graph.in_edges
        output_edges = graph.out_edges
        downstream = lambda edge: edge.dst  # noqa: E731
    else:
        seed = reverse_postorder(graph.end, graph.preds)
        input_edges = graph.out_edges
        output_edges = graph.in_edges
        downstream = lambda edge: edge.src  # noqa: E731

    worklist: deque[int] = deque(seed)
    queued = set(seed)
    while worklist:
        nid = worklist.popleft()
        queued.discard(nid)
        counter.tick("node_visits")
        incoming = {e.id: facts[e.id] for e in input_edges(nid)}
        updates = problem.transfer(graph, nid, incoming)
        for eid, value in updates.items():
            if facts[eid] != value:
                counter.tick("fact_updates")
                facts[eid] = value
                nxt = downstream(graph.edge(eid))
                if nxt not in queued:
                    queued.add(nxt)
                    worklist.append(nxt)
    return facts
