"""Reaching definitions (forward, may).

The substrate for def-use chains (Definition 3/4 of the paper).  A
definition site is an ``ASSIGN`` node id; ``start`` acts as the definition
site of every variable's entry value, so uses of never-assigned variables
still have a producer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.solver import solve_dataflow
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph

#: A definition: (variable, defining node id).
Definition = tuple[str, int]


class _Reaching:
    direction = "forward"

    def __init__(self, variables: frozenset[str]) -> None:
        self.variables = variables

    def initial(self, graph: CFG, eid: int) -> frozenset[Definition]:
        return frozenset()

    def transfer(self, graph: CFG, nid: int, facts_in):
        node = graph.node(nid)
        if node.kind is NodeKind.START:
            out = frozenset((v, nid) for v in self.variables)
        else:
            combined: frozenset[Definition] = (
                frozenset().union(*facts_in.values())
                if facts_in
                else frozenset()
            )
            if node.kind is NodeKind.ASSIGN:
                assert node.target is not None
                out = frozenset(
                    d for d in combined if d[0] != node.target
                ) | {(node.target, nid)}
            else:
                out = combined
        return {e.id: out for e in graph.out_edges(nid)}


def reaching_definitions(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> dict[int, frozenset[Definition]]:
    """The definitions reaching every edge.

    Solved on the bitset fast path (:mod:`repro.dataflow.bitsets`);
    :func:`reaching_definitions_reference` is the generic-solver twin
    the equivalence tests compare against.
    """
    from repro.dataflow.bitsets import reaching_bitsets

    return reaching_bitsets(graph, counter, csr)


def reaching_definitions_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> dict[int, frozenset[Definition]]:
    """Frozenset-based oracle on the generic worklist solver."""
    return solve_dataflow(graph, _Reaching(graph.variables()), counter)
