"""Classic CFG dataflow: the framework the paper's algorithms improve on.

Facts live on *edges* (the paper's convention -- "one vector is associated
with each point in the control flow graph") and every node is a transfer
function from its in-edge facts to its out-edge facts (forward) or the
reverse (backward).  Because the CFG is normalized, joins happen only at
``MERGE`` nodes and splits only at ``SWITCH`` nodes, so a problem is
specified by one transfer function over node kinds -- no separate
meet/join plumbing.

The worklist solver counts node visits and lattice operations through a
:class:`~repro.util.counters.WorkCounter`; the O(EV^2)-vs-O(EV) claims of
Section 4 are measured with these counters as well as wall time.

The four separable gen/kill analyses (liveness, reaching definitions,
available and anticipatable expressions) are solved on the bitset fast
path of :mod:`repro.dataflow.bitsets`; each keeps a ``*_reference``
twin on the generic frozenset solver as the differential-testing
oracle.
"""

from repro.dataflow.lattice import (
    BOTTOM,
    TOP,
    ConstValue,
    eval_abstract,
    join_const,
    truthiness,
)
from repro.dataflow.solver import solve_dataflow
from repro.dataflow.liveness import live_variables, live_variables_reference
from repro.dataflow.reaching import (
    reaching_definitions,
    reaching_definitions_reference,
)
from repro.dataflow.available import (
    available_expressions,
    available_expressions_reference,
    partially_available_expressions,
    partially_available_expressions_reference,
)
from repro.dataflow.anticipatable import (
    anticipatable_expressions,
    anticipatable_expressions_reference,
    partially_anticipatable_expressions,
    partially_anticipatable_expressions_reference,
)

__all__ = [
    "BOTTOM",
    "ConstValue",
    "TOP",
    "anticipatable_expressions",
    "anticipatable_expressions_reference",
    "available_expressions",
    "available_expressions_reference",
    "eval_abstract",
    "join_const",
    "live_variables",
    "live_variables_reference",
    "partially_anticipatable_expressions",
    "partially_anticipatable_expressions_reference",
    "partially_available_expressions",
    "partially_available_expressions_reference",
    "reaching_definitions",
    "reaching_definitions_reference",
    "solve_dataflow",
    "truthiness",
]
