"""Anticipatable expressions on the CFG (Figure 5(a) of the paper).

An expression is *totally anticipatable* (ANT) at a point when every path
from the point to ``end`` computes it before any of its operands is
reassigned, and *partially anticipatable* (PAN) when some path does.  ANT
is the safety condition for inserting a computation; ANT+PAN drive the
profitability rules of partial redundancy elimination (Section 5.2).

These are the CFG baselines; :mod:`repro.core.anticipate` solves the same
problems on the dependence flow graph, and the test suite checks that the
DFG solution projected onto CFG edges agrees with these wherever the
expression's operands are live.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.available import gen_expressions, kill_map
from repro.dataflow.solver import solve_dataflow
from repro.lang.ast_nodes import Expr
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph


class _Anticipatable:
    """ANT (``must=True``) or PAN (``must=False``), set-valued over all
    non-trivial expressions of the graph at once."""

    direction = "backward"

    def __init__(self, universe: frozenset[Expr], must: bool) -> None:
        self.universe = universe
        self.must = must
        self.kills = kill_map(universe)

    def initial(self, graph: CFG, eid: int) -> frozenset[Expr]:
        # ANT starts at the top (everything anticipatable, shrunk by the
        # end boundary); PAN starts at the bottom and grows.
        return self.universe if self.must else frozenset()

    def transfer(self, graph: CFG, nid: int, facts_in):
        node = graph.node(nid)
        if nid == graph.end:
            combined: frozenset[Expr] = frozenset()
        elif node.kind is NodeKind.SWITCH:
            values = list(facts_in.values())
            if self.must:
                combined = values[0].intersection(*values[1:])
            else:
                combined = values[0].union(*values[1:])
        else:
            combined = next(iter(facts_in.values()))
        result = combined | gen_expressions(node)
        if node.kind is NodeKind.ASSIGN:
            assert node.target is not None
            # gen-then-kill would be wrong here: x := x + 1 *does*
            # anticipate x + 1 on entry (the computation precedes the
            # kill), so kill the carried facts first, then add the gens.
            result = (
                combined - self.kills.get(node.target, frozenset())
            ) | gen_expressions(node)
        return {e.id: result for e in graph.in_edges(nid)}


def anticipatable_expressions(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> dict[int, frozenset[Expr]]:
    """ANT: totally anticipatable expressions on every edge.

    Solved on the bitset fast path (:mod:`repro.dataflow.bitsets`);
    :func:`anticipatable_expressions_reference` is the generic-solver
    twin the equivalence tests compare against.
    """
    from repro.dataflow.bitsets import anticipatable_bitsets

    return anticipatable_bitsets(graph, counter, csr, must=True)


def partially_anticipatable_expressions(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> dict[int, frozenset[Expr]]:
    """PAN: partially anticipatable expressions on every edge."""
    from repro.dataflow.bitsets import anticipatable_bitsets

    return anticipatable_bitsets(graph, counter, csr, must=False)


def anticipatable_expressions_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> dict[int, frozenset[Expr]]:
    """Frozenset-based ANT oracle on the generic worklist solver."""
    problem = _Anticipatable(graph.expressions(), must=True)
    return solve_dataflow(graph, problem, counter)


def partially_anticipatable_expressions_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> dict[int, frozenset[Expr]]:
    """Frozenset-based PAN oracle on the generic worklist solver."""
    problem = _Anticipatable(graph.expressions(), must=False)
    return solve_dataflow(graph, problem, counter)
