"""Arena-backed solvers for the core analyses.

These kernels replay the object pipeline's exact semantics over the flat
tables of a :class:`~repro.arena.arena.ProgramArena`:

* :class:`ArenaSpace` is the arena twin of
  :class:`~repro.dataflow.bitsets.ExpressionSpace` plus the liveness and
  reaching-definitions compiles -- gen/kill masks built purely from pool
  tables (``gen_ids``, ``var_ids``) and corpus-global ranks, with no
  expression-tree walks, no AST hashing and no ``repr`` sorting on the
  per-program path;
* :func:`solve_arena_bitset` is :func:`~repro.perf.bitset.solve_bitset`
  over arena adjacency (same RPO priority worklist, same transfer);
* :func:`arena_constprop` is the Kildall vector algorithm of
  :func:`~repro.opt.cfg_constprop.cfg_constant_propagation` evaluated
  over interned expression ids.

Every decoded result is ``==``-identical to its object twin: universes
sort in the same order (pool ranks are precomputed to agree with the
``repr``/string sorts), facts reach the same unique fixpoint (monotone
frameworks on finite lattices), and decoding rebuilds the same
frozensets of (canonical, equal) AST objects keyed by original CFG ids.
:func:`analyze_corpus` is the fused batch mode: one sweep over all
programs of a corpus, all five analyses each, sharing one pool -- the
WorkCounter tests assert the sweep interns nothing.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from repro.arena.arena import KIND_INDEX, ProgramArena
from repro.arena.pool import (
    ExpressionPool,
    K_BIN,
    K_INDEX,
    K_INT,
    K_UN,
    K_UPDATE,
    K_VAR,
)
from repro.cfg.graph import NodeKind
from repro.dataflow.lattice import BOTTOM, TOP
from repro.lang.ast_nodes import BINARY_OPS, UNARY_OPS
from repro.lang.errors import InterpError
from repro.lang.interp import apply_binop
from repro.opt.cfg_constprop import CFGConstants
from repro.perf.kernels import csr_rpo
from repro.util.counters import WorkCounter

N_START = KIND_INDEX[NodeKind.START]
N_END = KIND_INDEX[NodeKind.END]
N_ASSIGN = KIND_INDEX[NodeKind.ASSIGN]
N_PRINT = KIND_INDEX[NodeKind.PRINT]
N_SWITCH = KIND_INDEX[NodeKind.SWITCH]
N_MERGE = KIND_INDEX[NodeKind.MERGE]
N_NOP = KIND_INDEX[NodeKind.NOP]


class CorpusOrder:
    """Corpus-global orderings and decode singletons shared by every
    per-program compile.

    ``expr_rank[eid]`` sorts expression ids exactly as ``repr`` sorts
    their AST objects; ``name_rank[name_id]`` sorts name ids exactly as
    the strings sort.  Computed once per corpus generation, so program
    universes order by integer key.

    ``expr_single[eid]`` / ``name_single[name_id]`` are one-element
    frozensets of the canonical objects.  Frozenset union copies entries
    *with their stored hashes*, so decoding unions these instead of
    rebuilding sets from raw objects: the recursive dataclass ``__hash__``
    of each expression runs once per corpus, not once per program."""

    __slots__ = (
        "pool", "expr_rank", "name_rank", "expr_single", "name_single",
        "_plans",
    )

    def __init__(self, pool: ExpressionPool) -> None:
        self.pool = pool
        self.expr_rank = pool.ranks()
        order = sorted(range(len(pool.names)), key=pool.names.__getitem__)
        self.name_rank = [0] * len(order)
        for rank, name_id in enumerate(order):
            self.name_rank[name_id] = rank
        self.expr_single = [frozenset((obj,)) for obj in pool.objects]
        self.name_single = [frozenset((name,)) for name in pool.names]
        self._plans: list[list | None] = [None] * len(pool.kind)

    def plan(self, eid: int) -> list:
        """The abstract-evaluation plan for expression ``eid``: a
        postorder instruction list ``(kind, arg, slot1, slot2)`` over a
        value stack, with repeated subexpressions evaluated once (the
        evaluation is pure, so dedup cannot change the result).  Built
        once per corpus -- interned expressions share plans across every
        program that mentions them."""
        plan = self._plans[eid]
        if plan is None:
            pool = self.pool
            slots: dict[int, int] = {}
            plan = []

            def visit(e: int) -> int:
                got = slots.get(e)
                if got is not None:
                    return got
                kind = pool.kind[e]
                a0, a1, a2 = pool.arg0[e], pool.arg1[e], pool.arg2[e]
                if kind == K_INT:
                    entry = (K_INT, pool.literals[a0], -1, -1)
                elif kind == K_VAR:
                    entry = (K_VAR, a0, -1, -1)
                elif kind == K_UN:
                    entry = (K_UN, UNARY_OPS[a0] == "-", visit(a1), -1)
                elif kind == K_BIN:
                    entry = (K_BIN, BINARY_OPS[a0], visit(a1), visit(a2))
                elif kind == K_INDEX:
                    entry = (K_INDEX, a0, visit(a1), -1)
                else:
                    entry = (K_UPDATE, a0, visit(a1), visit(a2))
                slot = len(plan)
                plan.append(entry)
                slots[e] = slot
                return slot

            visit(eid)
            self._plans[eid] = plan
        return plan


#: byte value -> bit offsets set in it (decode helper).
_BYTE_BITS = [tuple(j for j in range(8) if b >> j & 1) for b in range(256)]


class SingletonDecoder:
    """Mask decoder over a universe of pre-hashed singleton frozensets.

    The arena twin of :class:`~repro.perf.bitset.MaskDecoder`: same
    per-mask cache (one decoder is shared by every analysis over the
    same universe, so AV masks re-produced by ANT are hits), but each
    miss unions singletons instead of hashing raw universe elements,
    which makes decoding hash-free for deep expression objects."""

    __slots__ = ("singles", "_cache")

    def __init__(self, singles: list) -> None:
        self.singles = singles
        self._cache: dict[int, frozenset] = {0: frozenset()}

    def decode(self, mask: int) -> frozenset:
        value = self._cache.get(mask)
        if value is None:
            singles = self.singles
            byte_bits = _BYTE_BITS
            parts = []
            base = 0
            rest = mask
            while rest:
                b = rest & 0xFF
                if b:
                    for j in byte_bits[b]:
                        parts.append(singles[base + j])
                rest >>= 8
                base += 8
            value = frozenset().union(*parts)
            self._cache[mask] = value
        return value

    def decode_all(
        self, facts: list[int], edge_ids: list[int]
    ) -> dict[int, frozenset]:
        cache = self._cache
        decode = self.decode
        result: dict[int, frozenset] = {}
        for e, mask in enumerate(facts):
            value = cache.get(mask)
            if value is None:
                value = decode(mask)
            result[edge_ids[e]] = value
        return result


class ArenaSpace:
    """Per-program compile of all five analyses from pool tables alone.

    The expression part mirrors
    :class:`~repro.dataflow.bitsets.ExpressionSpace` (same universe
    order, same gen/kill), the variable part mirrors
    :func:`~repro.dataflow.bitsets.liveness_problem`, and the site part
    :func:`~repro.dataflow.bitsets.reaching_problem`.
    """

    __slots__ = (
        "arena", "pool",
        "expr_universe", "expr_objects", "egen", "ekill", "efull",
        "var_names", "var_pos", "lgen", "lkill",
        "site_universe", "rgen", "rkill",
        "enotkill", "lnotkill", "rnotkill",
        "expr_dec", "var_dec", "site_dec",
        "fwd_rpo", "bwd_rpo",
    )

    def __init__(
        self, arena: ProgramArena, pool: ExpressionPool, order: CorpusOrder
    ) -> None:
        self.arena = arena
        self.pool = pool
        n = arena.n
        gen_ids = pool.gen_ids
        var_ids = pool.var_ids
        node_expr = arena.node_expr
        node_kind = arena.node_kind
        node_target = arena.node_target

        # -- expression universe (== sorted(graph.expressions(), key=repr))
        expr_seen: set[int] = set()
        var_seen: set[int] = set()
        for v in range(n):
            eid = node_expr[v]
            if eid >= 0:
                expr_seen.update(gen_ids[eid])
                var_seen.update(var_ids[eid])
            target = node_target[v]
            if target >= 0 and node_kind[v] == N_ASSIGN:
                var_seen.add(target)
        universe = sorted(expr_seen, key=order.expr_rank.__getitem__)
        self.expr_universe = universe
        self.expr_objects = [pool.objects[eid] for eid in universe]
        ebit = {eid: i for i, eid in enumerate(universe)}
        kill_by_name: dict[int, int] = {}
        for i, eid in enumerate(universe):
            bit = 1 << i
            for name_id in var_ids[eid]:
                kill_by_name[name_id] = kill_by_name.get(name_id, 0) | bit
        egen = [0] * n
        ekill = [0] * n
        emask: dict[int, int] = {}
        for v in range(n):
            eid = node_expr[v]
            if eid >= 0:
                mask = emask.get(eid)
                if mask is None:
                    mask = 0
                    for sub in gen_ids[eid]:
                        mask |= 1 << ebit[sub]
                    emask[eid] = mask
                egen[v] = mask
            if node_kind[v] == N_ASSIGN:
                ekill[v] = kill_by_name.get(node_target[v], 0)
        self.egen = egen
        self.ekill = ekill
        self.efull = (1 << len(universe)) - 1

        # -- variable universe (== sorted(graph.variables()))
        var_order = sorted(var_seen, key=order.name_rank.__getitem__)
        self.var_names = [pool.names[name_id] for name_id in var_order]
        var_pos = {name_id: i for i, name_id in enumerate(var_order)}
        self.var_pos = var_pos
        lgen = [0] * n
        lkill = [0] * n
        lmask: dict[int, int] = {}
        for v in range(n):
            eid = node_expr[v]
            if eid >= 0:
                mask = lmask.get(eid)
                if mask is None:
                    mask = 0
                    for name_id in var_ids[eid]:
                        mask |= 1 << var_pos[name_id]
                    lmask[eid] = mask
                lgen[v] = mask
            if node_kind[v] == N_ASSIGN:
                lkill[v] = 1 << var_pos[node_target[v]]
        self.lgen = lgen
        self.lkill = lkill

        # -- reaching-definition sites (== reaching_problem's universe)
        start_id = arena.node_ids[arena.start]
        sites = [(name_id, start_id) for name_id in var_order]
        for v in range(n):
            if node_kind[v] == N_ASSIGN:
                site = (node_target[v], arena.node_ids[v])
                if site[1] != start_id:
                    sites.append(site)
        name_rank = order.name_rank
        sites.sort(key=lambda s: (name_rank[s[0]], s[1]))
        self.site_universe = [
            (pool.names[name_id], nid) for name_id, nid in sites
        ]
        sbit = {site: i for i, site in enumerate(sites)}
        by_var: dict[int, int] = {}
        for site, i in sbit.items():
            by_var[site[0]] = by_var.get(site[0], 0) | (1 << i)
        rgen = [0] * n
        rkill = [0] * n
        start_mask = 0
        for name_id in var_order:
            start_mask |= 1 << sbit[(name_id, start_id)]
        for v in range(n):
            kind = node_kind[v]
            if kind == N_START:
                rgen[v] = start_mask
            elif kind == N_ASSIGN:
                rgen[v] = 1 << sbit[(node_target[v], arena.node_ids[v])]
                rkill[v] = by_var[node_target[v]]
        self.rgen = rgen
        self.rkill = rkill

        # -- complement masks (the solver transfer's ``in & ~kill``),
        # built once so the five solves don't each rebuild them
        self.enotkill = [~x for x in ekill]
        self.lnotkill = [~x for x in lkill]
        self.rnotkill = [~x for x in rkill]

        # -- shared decoders and traversal orders
        self.expr_dec = SingletonDecoder(
            [order.expr_single[eid] for eid in universe]
        )
        self.var_dec = SingletonDecoder(
            [order.name_single[name_id] for name_id in var_order]
        )
        self.site_dec = SingletonDecoder(
            [frozenset((site,)) for site in self.site_universe]
        )
        self.fwd_rpo = csr_rpo(
            arena.succ_off, arena.succ_node, arena.start, n
        )
        self.bwd_rpo = csr_rpo(
            arena.pred_off, arena.pred_node, arena.end, n
        )


def solve_arena_bitset(
    arena: ProgramArena,
    direction: str,
    meet_is_union: bool,
    kill_then_gen: bool,
    gen: list[int],
    kill: list[int],
    boundary_mask: int = 0,
    initial_mask: int = 0,
    counter: WorkCounter | None = None,
    rpo: list[int] | None = None,
    notkill: list[int] | None = None,
) -> list[int]:
    """:func:`~repro.perf.bitset.solve_bitset` over arena adjacency.

    Identical worklist (RPO-index priority heap of the problem's
    direction), identical transfer, identical boundary handling; returns
    the fact mask per dense edge.  ``rpo`` may supply the precomputed
    reverse postorder of the problem's direction (cached per program by
    :class:`ArenaSpace` so the five solves share two traversals)."""
    n = arena.n
    if direction == "forward":
        in_off, in_edge = arena.pred_off, arena.pred_edge
        out_off, out_edge = arena.succ_off, arena.succ_edge
        out_node = arena.succ_node
        root = arena.start
    else:
        in_off, in_edge = arena.succ_off, arena.succ_edge
        out_off, out_edge = arena.pred_off, arena.pred_edge
        out_node = arena.pred_node
        root = arena.end
    if root < 0:
        from repro.robust.errors import AnalysisError

        raise AnalysisError(
            "arena bitset solve without a "
            + ("start" if direction == "forward" else "end")
            + " node",
            phase="solve-arena",
        )

    if rpo is None:
        rpo = csr_rpo(out_off, out_node, root, n)
    position = [0] * n
    for i, v in enumerate(rpo):
        position[v] = i
    if notkill is None:
        notkill = [~k for k in kill]

    facts = [initial_mask] * arena.m
    heap = list(range(len(rpo)))
    in_queue = bytearray(n)
    for v in rpo:
        in_queue[v] = 1

    node_visits = 0
    fact_updates = 0
    while heap:
        v = rpo[heappop(heap)]
        in_queue[v] = 0
        node_visits += 1
        if v == root:
            combined = boundary_mask
        else:
            i0 = in_off[v]
            i1 = in_off[v + 1]
            if i0 == i1:
                combined = 0
            else:
                combined = facts[in_edge[i0]]
                if meet_is_union:
                    for i in range(i0 + 1, i1):
                        combined |= facts[in_edge[i]]
                else:
                    for i in range(i0 + 1, i1):
                        combined &= facts[in_edge[i]]
        if kill_then_gen:
            out = (combined & notkill[v]) | gen[v]
        else:
            out = (combined | gen[v]) & notkill[v]
        for i in range(out_off[v], out_off[v + 1]):
            e = out_edge[i]
            if facts[e] != out:
                facts[e] = out
                fact_updates += 1
                w = out_node[i]
                if not in_queue[w]:
                    in_queue[w] = 1
                    heappush(heap, position[w])
    if counter is not None:
        counter.tick("arena_node_visits", node_visits)
        counter.tick("arena_fact_updates", fact_updates)
    return facts


# -- constant propagation ----------------------------------------------------


def _eval_plan(plan: list, vec: tuple, var_pos: dict):
    """Run one evaluation plan against a variable vector; exactly
    :func:`~repro.dataflow.lattice.eval_abstract` on the interned
    expression (BOTTOM absorbing below TOP, concrete folds through
    ``apply_binop``, would-trap folds to TOP)."""
    vals: list = [None] * len(plan)
    i = 0
    for kind, a, i1, i2 in plan:
        if kind == K_INT:
            v = a
        elif kind == K_VAR:
            v = vec[var_pos[a]]
        elif kind == K_BIN:
            left = vals[i1]
            right = vals[i2]
            if left is BOTTOM or right is BOTTOM:
                v = BOTTOM
            elif left is TOP or right is TOP:
                v = TOP
            else:
                try:
                    v = apply_binop(a, left, right)
                except InterpError:
                    v = TOP
        elif kind == K_UN:
            v = vals[i1]
            if v is not BOTTOM and v is not TOP:
                v = -v if a else (0 if v else 1)
        elif kind == K_INDEX:
            array = vec[var_pos[a]]
            index = vals[i1]
            v = BOTTOM if (array is BOTTOM or index is BOTTOM) else TOP
        else:  # K_UPDATE
            array = vec[var_pos[a]]
            index = vals[i1]
            value = vals[i2]
            v = (
                BOTTOM
                if (array is BOTTOM or index is BOTTOM or value is BOTTOM)
                else TOP
            )
        vals[i] = v
        i += 1
    return vals[-1]


def arena_constprop(
    arena: ProgramArena,
    pool: ExpressionPool,
    space: ArenaSpace,
    order: CorpusOrder | None = None,
    counter: WorkCounter | None = None,
    refine_predicates: bool = False,
) -> CFGConstants:
    """The Kildall vector algorithm over arena tables.

    Result-identical to
    :func:`~repro.opt.cfg_constprop.cfg_constant_propagation`: same
    per-edge vectors (the fixpoint is unique), same use/rhs views, same
    dead-node set, keyed by original CFG ids."""
    if order is None:
        order = CorpusOrder(pool)
    n, m = arena.n, arena.m
    node_kind = arena.node_kind
    node_expr = arena.node_expr
    node_target = arena.node_target
    pool_kind = pool.kind
    arg0, arg1, arg2 = pool.arg0, pool.arg1, pool.arg2
    literals = pool.literals
    var_pos = space.var_pos
    variables = space.var_names
    k = len(variables)
    bottom = (BOTTOM,) * k
    top = (TOP,) * k
    plan_of = order.plan
    eval_plan = _eval_plan

    t_label = pool.name_index.get("T", -2)
    f_label = pool.name_index.get("F", -2)

    def implied_bindings(eid: int, taken: bool):
        if pool_kind[eid] != K_BIN:
            return None
        wanted = "==" if taken else "!="
        if BINARY_OPS[arg0[eid]] != wanted:
            return None
        left, right = arg1[eid], arg2[eid]
        if pool_kind[left] == K_VAR and pool_kind[right] == K_INT:
            return (arg0[left], literals[arg0[right]])
        if pool_kind[left] == K_INT and pool_kind[right] == K_VAR:
            return (arg0[right], literals[arg0[left]])
        return None

    def refine(eid: int, e: int, incoming: tuple) -> tuple:
        binding = implied_bindings(eid, arena.edge_label[e] == t_label)
        if binding is None:
            return incoming
        out = list(incoming)
        out[var_pos[binding[0]]] = binding[1]
        return tuple(out)

    succ_off, succ_edge = arena.succ_off, arena.succ_edge
    pred_off, pred_edge = arena.pred_off, arena.pred_edge
    edge_dst = arena.edge_dst

    facts: list[tuple] = [bottom] * m
    rpo = space.fwd_rpo
    worklist = deque(rpo)
    queued = bytearray(n)
    for v in rpo:
        queued[v] = 1
    vector_entries = 0
    while worklist:
        v = worklist.popleft()
        queued[v] = 0
        vector_entries += k
        kind = node_kind[v]
        o0, o1 = succ_off[v], succ_off[v + 1]
        switch_updates = None
        if kind == N_START:
            out_vec = top
        elif kind == N_MERGE:
            combined = None
            for i in range(pred_off[v], pred_off[v + 1]):
                vector = facts[pred_edge[i]]
                if vector is bottom:
                    continue  # join with bottom is the identity
                if combined is None:
                    combined = list(vector)
                    continue
                for j, value in enumerate(vector):
                    cur = combined[j]
                    if cur is value or value is BOTTOM or cur is TOP:
                        continue
                    if cur is BOTTOM:
                        combined[j] = value
                    elif value is TOP or cur != value:
                        combined[j] = TOP
            out_vec = bottom if combined is None else tuple(combined)
        else:
            incoming = facts[pred_edge[pred_off[v]]]
            if incoming == bottom:
                out_vec = bottom
            elif kind == N_ASSIGN:
                value = eval_plan(
                    plan_of(node_expr[v]), incoming, var_pos
                )
                out = list(incoming)
                out[var_pos[node_target[v]]] = value
                out_vec = tuple(out)
            elif kind == N_SWITCH:
                eid = node_expr[v]
                predicate = eval_plan(plan_of(eid), incoming, var_pos)
                if predicate is not BOTTOM and predicate is not TOP:
                    predicate = int(bool(predicate))
                switch_updates = []
                for i in range(o0, o1):
                    e = succ_edge[i]
                    if predicate is TOP:
                        out_vec = (
                            refine(eid, e, incoming)
                            if refine_predicates
                            else incoming
                        )
                    elif predicate is BOTTOM:
                        out_vec = bottom
                    else:
                        taken = t_label if predicate else f_label
                        if arena.edge_label[e] == taken:
                            out_vec = (
                                refine(eid, e, incoming)
                                if refine_predicates
                                else incoming
                            )
                        else:
                            out_vec = bottom
                    switch_updates.append((e, out_vec))
            else:  # PRINT / NOP / END pass through
                out_vec = incoming
        if switch_updates is None:
            for i in range(o0, o1):
                e = succ_edge[i]
                if facts[e] != out_vec:
                    facts[e] = out_vec
                    w = edge_dst[e]
                    if not queued[w]:
                        queued[w] = 1
                        worklist.append(w)
        else:
            for e, out_vec in switch_updates:
                if facts[e] != out_vec:
                    facts[e] = out_vec
                    w = edge_dst[e]
                    if not queued[w]:
                        queued[w] = 1
                        worklist.append(w)
    if counter is not None:
        counter.tick("arena_vector_entries", vector_entries)

    result = CFGConstants(
        variables=list(variables),
        edge_vectors={arena.edge_ids[e]: facts[e] for e in range(m)},
    )
    pool_var_ids = pool.var_ids
    names = pool.names
    for v in range(n):
        kind = node_kind[v]
        if kind == N_START or kind == N_END or kind == N_MERGE or kind == N_NOP:
            continue
        nid = arena.node_ids[v]
        in_vector = facts[pred_edge[pred_off[v]]]
        unreached = in_vector == bottom
        if unreached:
            result.dead_nodes.add(nid)
        eid = node_expr[v]
        if eid >= 0:
            for name_id in pool_var_ids[eid]:
                result.use_values[(nid, names[name_id])] = in_vector[
                    var_pos[name_id]
                ]
            result.rhs_values[nid] = (
                BOTTOM
                if unreached
                else eval_plan(plan_of(eid), in_vector, var_pos)
            )
    return result


# -- fused drivers -----------------------------------------------------------


def analyze_arena(
    arena: ProgramArena,
    pool: ExpressionPool,
    order: CorpusOrder | None = None,
    counter: WorkCounter | None = None,
    live_out: frozenset[str] = frozenset(),
) -> dict:
    """All five core analyses of one arena program, decoded to the exact
    shapes the object pipeline produces (``{edge_id: frozenset}`` per
    bitset analysis, :class:`CFGConstants` for constprop)."""
    if order is None:
        order = CorpusOrder(pool)
    space = ArenaSpace(arena, pool, order)

    boundary = 0
    lgen = space.lgen
    var_dec = space.var_dec
    if live_out:
        # Rare path (batch analyses run with an empty boundary): extend
        # the variable universe exactly like liveness_problem does.
        extra = sorted(set(space.var_names) | set(live_out))
        pos = {var: i for i, var in enumerate(extra)}
        remap = [pos[var] for var in space.var_names]
        lgen = [_remap_mask(mask, remap) for mask in space.lgen]
        lkill = [_remap_mask(mask, remap) for mask in space.lkill]
        for var in live_out:
            boundary |= 1 << pos[var]
        var_dec = SingletonDecoder([frozenset((var,)) for var in extra])
    else:
        lkill = space.lkill

    edge_ids = arena.edge_ids
    av = solve_arena_bitset(
        arena, "forward", False, False, space.egen, space.ekill,
        initial_mask=space.efull, counter=counter, rpo=space.fwd_rpo,
        notkill=space.enotkill,
    )
    ant = solve_arena_bitset(
        arena, "backward", False, True, space.egen, space.ekill,
        initial_mask=space.efull, counter=counter, rpo=space.bwd_rpo,
        notkill=space.enotkill,
    )
    live = solve_arena_bitset(
        arena, "backward", True, True, lgen, lkill,
        boundary_mask=boundary, counter=counter, rpo=space.bwd_rpo,
        notkill=space.lnotkill if not live_out else None,
    )
    reach = solve_arena_bitset(
        arena, "forward", True, True, space.rgen, space.rkill,
        counter=counter, rpo=space.fwd_rpo, notkill=space.rnotkill,
    )
    return {
        "available": space.expr_dec.decode_all(av, edge_ids),
        "anticipatable": space.expr_dec.decode_all(ant, edge_ids),
        "liveness": var_dec.decode_all(live, edge_ids),
        "reaching": space.site_dec.decode_all(reach, edge_ids),
        "constprop": arena_constprop(
            arena, pool, space, order=order, counter=counter
        ),
    }


def _remap_mask(mask: int, remap: list[int]) -> int:
    out = 0
    i = 0
    while mask:
        if mask & 1:
            out |= 1 << remap[i]
        mask >>= 1
        i += 1
    return out


def analyze_corpus(
    corpus,
    counter: WorkCounter | None = None,
) -> dict[str, dict]:
    """The fused batch mode: one sweep over every program of the corpus,
    all five analyses each, sharing the corpus pool and its precomputed
    orders.  Does no interning (asserted by the WorkCounter tests)."""
    order = CorpusOrder(corpus.pool)
    results: dict[str, dict] = {}
    for i, arena in enumerate(corpus.programs):
        label = arena.label or f"program-{i}"
        results[label] = analyze_arena(
            arena, corpus.pool, order=order, counter=counter
        )
        if counter is not None:
            counter.tick("arena_programs_solved")
    return results
