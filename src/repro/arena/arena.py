"""Struct-of-arrays program arenas and their binary wire format.

A :class:`ProgramArena` is a lowered CFG: parallel int lists for nodes
(kind tag, target name id, expression pool id) and edges (src, dst,
label id), plus CSR successor/predecessor adjacency in the *same order*
as the object graph's ``_out``/``_in`` lists -- so every array kernel
that consumes :class:`~repro.perf.csr.CSRGraph` layout runs unmodified
on an arena, and iteration order (hence any order-sensitive tie-break)
matches the object pipeline bit for bit.

An :class:`ArenaCorpus` bundles many arenas over one shared
:class:`~repro.arena.pool.ExpressionPool` and serializes to a compact
tagged varint stream (``to_bytes``/``from_bytes``).  That stream is what
:class:`~repro.robust.pool.SupervisedPool` workers receive in arena
batch mode, replacing per-spec pickles of AST/CFG object graphs: the
pool tables ship once per chunk and amortize across every program in
it.  The serve daemon's content-addressed cache reuses the same stream
as the ``arena`` pass's export codec (a one-program corpus per entry):
decoding rebuilds the pool's derived tables from scratch, so a cached
arena blob is detached from any live graph by construction.

Wire format (version 1): the magic ``b"RPA1"``, then varint-framed
sections in fixed order (pool names, pool literals, expression rows,
then each program's node/edge/adjacency arrays).  All integers are
LEB128 varints; signed values (literals, ``-1`` sentinels) are zigzag
encoded; strings are length-prefixed UTF-8.  Any magic/version mismatch
or truncation raises :class:`~repro.robust.errors.InputError` -- never a
bare struct error -- so the robust layer can quarantine a corrupt
payload with context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arena.pool import ExpressionPool
from repro.cfg.graph import CFG, NodeKind
from repro.lang.ast_nodes import Program
from repro.robust.errors import InputError
from repro.util.counters import WorkCounter

MAGIC = b"RPA1"
VERSION = 1

#: Node kind tags, in the enum's declaration order.
KIND_TAGS: tuple[NodeKind, ...] = tuple(NodeKind)
KIND_INDEX: dict[NodeKind, int] = {kind: i for i, kind in enumerate(KIND_TAGS)}


@dataclass
class ProgramArena:
    """One lowered program: flat node/edge/adjacency tables.

    ``node_ids``/``edge_ids`` carry the *original* CFG ids so decoded
    analysis results key exactly like the object pipeline's.  All other
    tables are dense (indexed 0..n-1 / 0..m-1) in CFG insertion order,
    mirroring :class:`~repro.perf.csr.CSRGraph`.
    """

    label: str
    node_ids: list[int] = field(default_factory=list)
    node_kind: list[int] = field(default_factory=list)
    #: target variable name id for ASSIGN nodes, else -1
    node_target: list[int] = field(default_factory=list)
    #: expression pool id for ASSIGN/PRINT/SWITCH nodes, else -1
    node_expr: list[int] = field(default_factory=list)
    edge_ids: list[int] = field(default_factory=list)
    edge_src: list[int] = field(default_factory=list)
    edge_dst: list[int] = field(default_factory=list)
    #: switch-arm label as a pool name id, else -1
    edge_label: list[int] = field(default_factory=list)
    succ_off: list[int] = field(default_factory=list)
    succ_node: list[int] = field(default_factory=list)
    succ_edge: list[int] = field(default_factory=list)
    pred_off: list[int] = field(default_factory=list)
    pred_node: list[int] = field(default_factory=list)
    pred_edge: list[int] = field(default_factory=list)
    start: int = -1
    end: int = -1

    @property
    def n(self) -> int:
        return len(self.node_ids)

    @property
    def m(self) -> int:
        return len(self.edge_ids)


def lower_cfg(
    graph: CFG,
    pool: ExpressionPool,
    label: str = "",
    counter: WorkCounter | None = None,
) -> ProgramArena:
    """Flatten ``graph`` into a :class:`ProgramArena` over ``pool``.

    Node and edge enumeration follow CFG insertion order (the
    :class:`~repro.perf.csr.CSRGraph` convention), and the CSR adjacency
    preserves the ``_out``/``_in`` list order, so arena RPO/worklist
    traversals visit exactly the sequence the object kernels do.
    """
    arena = ProgramArena(label=label)
    dense: dict[int, int] = {}
    for i, nid in enumerate(graph.nodes):
        dense[nid] = i
    for nid, node in graph.nodes.items():
        arena.node_ids.append(nid)
        arena.node_kind.append(KIND_INDEX[node.kind])
        arena.node_target.append(
            pool.intern_name(node.target) if node.target is not None else -1
        )
        arena.node_expr.append(
            pool.intern(node.expr) if node.expr is not None else -1
        )
        if counter is not None:
            counter.tick("arena_nodes_lowered")
    edge_dense: dict[int, int] = {}
    for j, (eid, edge) in enumerate(graph.edges.items()):
        edge_dense[eid] = j
        arena.edge_ids.append(eid)
        arena.edge_src.append(dense[edge.src])
        arena.edge_dst.append(dense[edge.dst])
        arena.edge_label.append(
            pool.intern_name(edge.label) if edge.label is not None else -1
        )
    off = 0
    for nid in graph.nodes:
        arena.succ_off.append(off)
        for eid in graph._out[nid]:
            edge = graph.edges[eid]
            arena.succ_node.append(dense[edge.dst])
            arena.succ_edge.append(edge_dense[eid])
            off += 1
    arena.succ_off.append(off)
    off = 0
    for nid in graph.nodes:
        arena.pred_off.append(off)
        for eid in graph._in[nid]:
            edge = graph.edges[eid]
            arena.pred_node.append(dense[edge.src])
            arena.pred_edge.append(edge_dense[eid])
            off += 1
    arena.pred_off.append(off)
    arena.start = dense[graph.start]
    arena.end = dense[graph.end]
    return arena


def lower_program(
    program: Program,
    pool: ExpressionPool,
    label: str = "",
    counter: WorkCounter | None = None,
) -> ProgramArena:
    """Parse-tree entry point: build the CFG, then lower it."""
    from repro.cfg.builder import build_cfg

    return lower_cfg(build_cfg(program), pool, label=label, counter=counter)


@dataclass
class ArenaCorpus:
    """Many :class:`ProgramArena`\\ s sharing one expression pool."""

    pool: ExpressionPool
    programs: list[ProgramArena] = field(default_factory=list)

    def add(
        self,
        graph: CFG,
        label: str = "",
        counter: WorkCounter | None = None,
    ) -> ProgramArena:
        arena = lower_cfg(graph, self.pool, label=label, counter=counter)
        self.programs.append(arena)
        return arena

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(MAGIC)
        _uv(out, VERSION)
        pool = self.pool
        _uv(out, len(pool.names))
        for name in pool.names:
            _string(out, name)
        _uv(out, len(pool.literals))
        for value in pool.literals:
            _sv(out, value)
        _uv(out, len(pool.kind))
        for i in range(len(pool.kind)):
            _uv(out, pool.kind[i])
            _sv(out, pool.arg0[i])
            _sv(out, pool.arg1[i])
            _sv(out, pool.arg2[i])
        _uv(out, len(self.programs))
        for arena in self.programs:
            _string(out, arena.label)
            _uv(out, arena.n)
            _uv(out, arena.m)
            for table in (arena.node_ids, arena.node_kind):
                for value in table:
                    _uv(out, value)
            for table in (arena.node_target, arena.node_expr):
                for value in table:
                    _sv(out, value)
            for value in arena.edge_ids:
                _uv(out, value)
            for value in arena.edge_src:
                _uv(out, value)
            for value in arena.edge_dst:
                _uv(out, value)
            for value in arena.edge_label:
                _sv(out, value)
            # Offsets are monotone; adjacency targets are dense indices.
            for table in (
                arena.succ_off, arena.succ_node, arena.succ_edge,
                arena.pred_off, arena.pred_node, arena.pred_edge,
            ):
                for value in table:
                    _uv(out, value)
            _uv(out, arena.start)
            _uv(out, arena.end)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArenaCorpus":
        if data[: len(MAGIC)] != MAGIC:
            raise InputError(
                "arena payload has bad magic (not an RPA stream)",
                phase="arena-decode",
            )
        reader = _Reader(data, len(MAGIC))
        version = reader.uv()
        if version != VERSION:
            raise InputError(
                f"arena payload version {version} unsupported "
                f"(expected {VERSION})",
                phase="arena-decode",
            )
        pool = ExpressionPool()
        pool.names = [reader.string() for _ in range(reader.uv())]
        pool.literals = [reader.sv() for _ in range(reader.uv())]
        n_exprs = reader.uv()
        for _ in range(n_exprs):
            pool.kind.append(reader.uv())
            pool.arg0.append(reader.sv())
            pool.arg1.append(reader.sv())
            pool.arg2.append(reader.sv())
        pool._rebuild_derived()
        corpus = cls(pool)
        for _ in range(reader.uv()):
            arena = ProgramArena(label=reader.string())
            n = reader.uv()
            m = reader.uv()
            arena.node_ids = [reader.uv() for _ in range(n)]
            arena.node_kind = [reader.uv() for _ in range(n)]
            arena.node_target = [reader.sv() for _ in range(n)]
            arena.node_expr = [reader.sv() for _ in range(n)]
            arena.edge_ids = [reader.uv() for _ in range(m)]
            arena.edge_src = [reader.uv() for _ in range(m)]
            arena.edge_dst = [reader.uv() for _ in range(m)]
            arena.edge_label = [reader.sv() for _ in range(m)]
            arena.succ_off = [reader.uv() for _ in range(n + 1)]
            arena.succ_node = [reader.uv() for _ in range(m)]
            arena.succ_edge = [reader.uv() for _ in range(m)]
            arena.pred_off = [reader.uv() for _ in range(n + 1)]
            arena.pred_node = [reader.uv() for _ in range(m)]
            arena.pred_edge = [reader.uv() for _ in range(m)]
            arena.start = reader.uv()
            arena.end = reader.uv()
            corpus.programs.append(arena)
        reader.expect_end()
        return corpus


# -- varint primitives -------------------------------------------------------


def _uv(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise InputError(
            f"unsigned varint cannot encode {value}", phase="arena-encode"
        )
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _sv(out: bytearray, value: int) -> None:
    """Append a zigzag-encoded signed varint (unbounded-int safe)."""
    _uv(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _string(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _uv(out, len(raw))
    out.extend(raw)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def uv(self) -> int:
        data, pos = self.data, self.pos
        shift = 0
        value = 0
        while True:
            if pos >= len(data):
                raise InputError(
                    "truncated arena payload (varint ran off the end)",
                    phase="arena-decode",
                )
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        self.pos = pos
        return value

    def sv(self) -> int:
        raw = self.uv()
        return (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)

    def string(self) -> str:
        length = self.uv()
        end = self.pos + length
        if end > len(self.data):
            raise InputError(
                "truncated arena payload (string ran off the end)",
                phase="arena-decode",
            )
        text = self.data[self.pos : end].decode("utf-8")
        self.pos = end
        return text

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise InputError(
                f"arena payload has {len(self.data) - self.pos} trailing "
                "bytes",
                phase="arena-decode",
            )
