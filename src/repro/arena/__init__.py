"""Arena IR: struct-of-arrays programs, interned expressions, fused
corpus-level solving (DESIGN.md §13).

Public surface:

* :class:`~repro.arena.pool.ExpressionPool` -- corpus-wide expression
  interning with precomputed per-id analysis tables;
* :func:`~repro.arena.arena.lower_cfg` /
  :func:`~repro.arena.arena.lower_program` -- flatten a CFG into a
  :class:`~repro.arena.arena.ProgramArena`;
* :class:`~repro.arena.arena.ArenaCorpus` -- many arenas over one pool,
  with ``to_bytes``/``from_bytes`` wire format for pool workers;
* :func:`~repro.arena.kernels.analyze_arena` /
  :func:`~repro.arena.kernels.analyze_corpus` -- the fused solvers,
  result-identical to the object pipeline.
"""

from repro.arena.arena import (
    ArenaCorpus,
    ProgramArena,
    lower_cfg,
    lower_program,
)
from repro.arena.kernels import (
    ArenaSpace,
    CorpusOrder,
    analyze_arena,
    analyze_corpus,
    arena_constprop,
    solve_arena_bitset,
)
from repro.arena.pool import ExpressionPool

__all__ = [
    "ArenaCorpus",
    "ArenaSpace",
    "CorpusOrder",
    "ExpressionPool",
    "ProgramArena",
    "analyze_arena",
    "analyze_corpus",
    "arena_constprop",
    "lower_cfg",
    "lower_program",
    "solve_arena_bitset",
]
