"""Corpus-wide expression interning for the arena IR.

The object-graph pipeline pays for expression identity over and over:
every :class:`~repro.dataflow.bitsets.ExpressionSpace` hashes whole AST
subtrees to key its gen/kill dicts, ``repr``-sorts its universe from
scratch, and re-walks ``subexpressions`` per node -- per program, per
run.  The :class:`ExpressionPool` pays each of those costs **once per
distinct expression across the whole corpus**: interning assigns every
structurally-distinct expression a small integer id (hash-consing), and
the pool precomputes, per id,

* the canonical span-free AST object (equal to -- and hashing like --
  every occurrence, since spans are excluded from equality),
* the ``repr`` sort key and a corpus-global rank consistent with it
  (so per-program universes sort by integer rank, never by string),
* the referenced variable-name ids (``Vars(e)`` for kill masks), and
* the non-trivial subexpression ids (``gen_expressions`` as an id
  tuple).

After lowering, every per-program compile (gen/kill masks, universes,
constant-propagation evaluation) runs on these integer tables alone --
the :class:`~repro.util.counters.WorkCounter` tests assert the fused
batch sweep does no re-interning at all.

Interning is insertion-ordered and structure-driven, so pool ids are
deterministic for a fixed lowering order and independent of
``PYTHONHASHSEED`` (the memo dict's iteration order is never consulted;
ids are handed out by arrival).
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast_nodes import (
    BINARY_OPS,
    UNARY_OPS,
    BinOp,
    Expr,
    Index,
    IntLit,
    UnOp,
    Update,
    Var,
)
from repro.util.counters import WorkCounter

#: Expression kind tags (the ``kind`` table vocabulary).
K_INT = 0
K_VAR = 1
K_BIN = 2
K_UN = 3
K_INDEX = 4
K_UPDATE = 5


class ExpressionPool:
    """Struct-of-arrays interning table for expressions and names.

    Per expression id ``e``:

    * ``kind[e]`` -- one of the ``K_*`` tags;
    * ``arg0[e]`` -- literal-table index (``K_INT``), name id (``K_VAR``,
      ``K_INDEX``, ``K_UPDATE``), or operator index (``K_BIN`` into
      ``BINARY_OPS``, ``K_UN`` into ``UNARY_OPS``);
    * ``arg1[e]`` / ``arg2[e]`` -- operand expression ids (or ``-1``).

    Derived tables (rebuilt deterministically after deserialization, so
    they are never shipped): ``objects`` (canonical AST node), ``reprs``
    (the sort key), ``trivial``, ``var_ids`` and ``gen_ids``.
    """

    __slots__ = (
        "names", "name_index", "literals", "literal_index",
        "kind", "arg0", "arg1", "arg2",
        "objects", "reprs", "trivial", "var_ids", "gen_ids",
        "_memo", "_ranks", "counter",
    )

    def __init__(self, counter: WorkCounter | None = None) -> None:
        self.names: list[str] = []
        self.name_index: dict[str, int] = {}
        self.literals: list[int] = []
        self.literal_index: dict[int, int] = {}
        self.kind: list[int] = []
        self.arg0: list[int] = []
        self.arg1: list[int] = []
        self.arg2: list[int] = []
        self.objects: list[Expr] = []
        self.reprs: list[str] = []
        self.trivial: list[bool] = []
        self.var_ids: list[tuple[int, ...]] = []
        self.gen_ids: list[tuple[int, ...]] = []
        self._memo: dict[Expr, int] = {}
        self._ranks: tuple[int, list[int]] | None = None
        self.counter = counter

    def __len__(self) -> int:
        return len(self.kind)

    # -- name / literal interning -------------------------------------------

    def intern_name(self, name: str) -> int:
        got = self.name_index.get(name)
        if got is None:
            got = len(self.names)
            self.names.append(name)
            self.name_index[name] = got
        return got

    def _intern_literal(self, value: int) -> int:
        got = self.literal_index.get(value)
        if got is None:
            got = len(self.literals)
            self.literals.append(value)
            self.literal_index[value] = got
        return got

    # -- expression interning ------------------------------------------------

    def intern(self, expr: Expr) -> int:
        """The pool id of ``expr`` (hash-consed; spans are ignored)."""
        got = self._memo.get(expr)
        if got is not None:
            if self.counter is not None:
                self.counter.tick("arena_intern_hits")
            return got
        if self.counter is not None:
            self.counter.tick("arena_interned")
        if isinstance(expr, IntLit):
            row = (K_INT, self._intern_literal(expr.value), -1, -1)
            canon: Expr = IntLit(expr.value)
            var_ids: tuple[int, ...] = ()
            triv = True
            kids: tuple[int, ...] = ()
        elif isinstance(expr, Var):
            nid = self.intern_name(expr.name)
            row = (K_VAR, nid, -1, -1)
            canon = Var(expr.name)
            var_ids = (nid,)
            triv = True
            kids = ()
        elif isinstance(expr, BinOp):
            left = self.intern(expr.left)
            right = self.intern(expr.right)
            row = (K_BIN, BINARY_OPS.index(expr.op), left, right)
            canon = BinOp(expr.op, self.objects[left], self.objects[right])
            var_ids = self._union_vars(left, right)
            triv = False
            kids = (left, right)
        elif isinstance(expr, UnOp):
            operand = self.intern(expr.operand)
            row = (K_UN, UNARY_OPS.index(expr.op), operand, -1)
            canon = UnOp(expr.op, self.objects[operand])
            var_ids = self.var_ids[operand]
            triv = False
            kids = (operand,)
        elif isinstance(expr, Index):
            index = self.intern(expr.index)
            nid = self.intern_name(expr.array)
            row = (K_INDEX, nid, index, -1)
            canon = Index(expr.array, self.objects[index])
            var_ids = self._union_vars(index, extra=nid)
            triv = False
            kids = (index,)
        elif isinstance(expr, Update):
            index = self.intern(expr.index)
            value = self.intern(expr.value)
            nid = self.intern_name(expr.array)
            row = (K_UPDATE, nid, index, value)
            canon = Update(expr.array, self.objects[index], self.objects[value])
            var_ids = self._union_vars(index, value, extra=nid)
            triv = False
            kids = (index, value)
        else:
            raise TypeError(f"not an expression: {expr!r}")

        eid = len(self.kind)
        self.kind.append(row[0])
        self.arg0.append(row[1])
        self.arg1.append(row[2])
        self.arg2.append(row[3])
        self.objects.append(canon)
        self.reprs.append(repr(canon))
        self.trivial.append(triv)
        self.var_ids.append(var_ids)
        # gen_expressions(node) == the non-trivial subexpressions of the
        # node's expr, self included; as ids, that is self (when
        # non-trivial) plus the children's gen tuples.
        gen: tuple[int, ...] = () if triv else (eid,)
        for kid in kids:
            gen += self.gen_ids[kid]
        self.gen_ids.append(gen)
        # Both the original (possibly span-carrying) node and the
        # canonical one memoize to the id: they are equal and hash alike.
        self._memo[expr] = eid
        self._memo[canon] = eid
        self._ranks = None
        return eid

    def _union_vars(self, *eids: int, extra: int | None = None) -> tuple[int, ...]:
        seen: set[int] = set() if extra is None else {extra}
        for eid in eids:
            seen.update(self.var_ids[eid])
        return tuple(sorted(seen))

    # -- derived orderings ---------------------------------------------------

    def ranks(self) -> list[int]:
        """``ranks()[eid]`` orders expression ids exactly as sorting their
        AST objects by ``repr`` would (the :class:`ExpressionSpace`
        universe order).  Computed once per pool generation; per-program
        universes then sort by integer rank."""
        if self._ranks is None or self._ranks[0] != len(self.kind):
            order = sorted(range(len(self.kind)), key=self.reprs.__getitem__)
            ranks = [0] * len(order)
            for rank, eid in enumerate(order):
                ranks[eid] = rank
            self._ranks = (len(self.kind), ranks)
        return self._ranks[1]

    # -- reconstruction (deserialization) ------------------------------------

    def _rebuild_derived(self) -> None:
        """Recompute every derived table from the shipped core tables
        (kinds, args, names, literals) -- bottom-up over ids, which is a
        topological order by construction."""
        self.objects = []
        self.reprs = []
        self.trivial = []
        self.var_ids = []
        self.gen_ids = []
        self._memo = {}
        self._ranks = None
        self.name_index = {name: i for i, name in enumerate(self.names)}
        self.literal_index = {v: i for i, v in enumerate(self.literals)}
        for eid in range(len(self.kind)):
            kind = self.kind[eid]
            a0, a1, a2 = self.arg0[eid], self.arg1[eid], self.arg2[eid]
            if kind == K_INT:
                canon: Expr = IntLit(self.literals[a0])
                var_ids: tuple[int, ...] = ()
                triv = True
                kids: tuple[int, ...] = ()
            elif kind == K_VAR:
                canon = Var(self.names[a0])
                var_ids = (a0,)
                triv = True
                kids = ()
            elif kind == K_BIN:
                canon = BinOp(
                    BINARY_OPS[a0], self.objects[a1], self.objects[a2]
                )
                var_ids = self._merge(self.var_ids[a1], self.var_ids[a2])
                triv = False
                kids = (a1, a2)
            elif kind == K_UN:
                canon = UnOp(UNARY_OPS[a0], self.objects[a1])
                var_ids = self.var_ids[a1]
                triv = False
                kids = (a1,)
            elif kind == K_INDEX:
                canon = Index(self.names[a0], self.objects[a1])
                var_ids = self._merge((a0,), self.var_ids[a1])
                triv = False
                kids = (a1,)
            elif kind == K_UPDATE:
                canon = Update(
                    self.names[a0], self.objects[a1], self.objects[a2]
                )
                var_ids = self._merge(
                    (a0,), self.var_ids[a1], self.var_ids[a2]
                )
                triv = False
                kids = (a1, a2)
            else:
                from repro.robust.errors import InputError

                raise InputError(
                    f"corrupt expression pool: unknown kind tag {kind}",
                    phase="arena-decode",
                )
            self.objects.append(canon)
            self.reprs.append(repr(canon))
            self.trivial.append(triv)
            self.var_ids.append(var_ids)
            gen: tuple[int, ...] = () if triv else (eid,)
            for kid in kids:
                gen += self.gen_ids[kid]
            self.gen_ids.append(gen)
            self._memo[canon] = eid

    @staticmethod
    def _merge(*groups: tuple[int, ...]) -> tuple[int, ...]:
        seen: set[int] = set()
        for group in groups:
            seen.update(group)
        return tuple(sorted(seen))
