"""The dependence flow graph: the paper's primary contribution.

* :mod:`repro.core.dfg` -- the data structure: producer ports (entry
  values, definitions, switch and merge operators), consumers (uses,
  switch inputs, merge inputs), and multiedges;
* :mod:`repro.core.build` -- construction via SESE regions and region
  bypassing (Section 3.2);
* :mod:`repro.core.verify` -- a structural checker for Definition 6,
  applied edge-by-edge in the tests;
* :mod:`repro.core.constprop` -- forward dataflow: constant propagation
  with dead-code detection (Section 4, Figure 4(b));
* :mod:`repro.core.anticipate` -- backward dataflow: ANT/PAN, single- and
  multivariable (Section 5.1, Figures 5(b), 6, 7);
* :mod:`repro.core.epr` -- elimination of partial redundancies
  (Section 5.2);
* :mod:`repro.core.project` -- projecting dependence-edge facts back onto
  CFG edges.
"""

from repro.core.build import build_dfg
from repro.core.dfg import CTRL_VAR, DFG, DepEdge, Head, HeadKind, Port, PortKind
from repro.core.constprop import DFGConstants, dfg_constant_propagation
from repro.core.dce import ADCEStats, dfg_dead_code_elimination
from repro.core.loopdeps import (
    ArrayAccess,
    InductionVariable,
    LoopDependence,
    analyze_loop_dependences,
    parallelizable_loops,
)
from repro.core.anticipate import AnticipatabilityResult, dfg_anticipatability
from repro.core.epr import EPRResult, eliminate_partial_redundancies
from repro.core.project import project_to_cfg_edges
from repro.core.verify import verify_dfg

__all__ = [
    "ADCEStats",
    "AnticipatabilityResult",
    "ArrayAccess",
    "InductionVariable",
    "LoopDependence",
    "CTRL_VAR",
    "DFG",
    "DFGConstants",
    "DepEdge",
    "EPRResult",
    "Head",
    "HeadKind",
    "Port",
    "PortKind",
    "analyze_loop_dependences",
    "build_dfg",
    "dfg_anticipatability",
    "dfg_constant_propagation",
    "dfg_dead_code_elimination",
    "eliminate_partial_redundancies",
    "parallelizable_loops",
    "project_to_cfg_edges",
    "verify_dfg",
]
