"""Projecting dependence-edge facts back onto CFG edges (Section 5.1).

"Once the DFG propagation is done, the values of ANT at points in the CFG
can be found by projecting from the DFG into the CFG: simply set ANT to
true at every point in the single-entry single-exit region between the
head and tail of every dependence edge for which ANT is true at the
head."

A dependence edge spans the CFG edge pair ``(e1, e2)`` of Definition 6.
The CFG edges *between* them are the edges on paths from ``e1`` to ``e2``
that do not re-cross either boundary -- re-crossing belongs to a different
token: a later loop iteration's production or consumption.  (Pure
dominance/postdominance membership is wrong in cycles: a zero-length
dependence edge at a loop header -- merge output feeding the header
switch -- would otherwise "span" the entire loop body.)
"""

from __future__ import annotations

from typing import Iterable

from repro.cfg.graph import CFG
from repro.controldep.sese import ProgramStructure
from repro.core.dfg import DepEdge
from repro.core.verify import head_location, tail_location


def span_of(graph: CFG, ps: ProgramStructure, dep_edge: DepEdge) -> set[int]:
    """All CFG edges between a dependence edge's tail and head
    (both boundary edges included)."""
    e1 = tail_location(graph, dep_edge.source)
    e2 = head_location(graph, dep_edge.head)
    if e1 == e2:
        return {e1}
    blocked = {e1, e2}

    def collect(start_node: int, forward: bool) -> set[int]:
        edges: set[int] = set()
        seen_nodes = {start_node}
        stack = [start_node]
        while stack:
            nid = stack.pop()
            incident = (
                graph.out_edges(nid) if forward else graph.in_edges(nid)
            )
            for edge in incident:
                if edge.id in blocked:
                    continue
                edges.add(edge.id)
                nxt = edge.dst if forward else edge.src
                if nxt not in seen_nodes:
                    seen_nodes.add(nxt)
                    stack.append(nxt)
        return edges

    forward_reach = collect(graph.edge(e1).dst, forward=True)
    backward_reach = collect(graph.edge(e2).src, forward=False)
    return {e1, e2} | (forward_reach & backward_reach)


def project_to_cfg_edges(
    graph: CFG,
    ps: ProgramStructure,
    true_dep_edges: Iterable[DepEdge],
) -> set[int]:
    """The CFG edges covered by the spans of the given dependence edges."""
    covered: set[int] = set()
    for dep_edge in true_dep_edges:
        covered |= span_of(graph, ps, dep_edge)
    return covered
