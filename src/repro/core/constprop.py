"""Constant propagation on the DFG (Section 4, Figure 4(b)).

Forward dataflow over dependence edges.  Lattice values live on producer
ports; the multiedge rule "propagates the value at the tail of a DFG
multiedge to its heads", so a consumer's value is its producer's value.
The operator equations:

* assignment ``x := e``: the definition port carries ``e`` evaluated over
  the node's operand dependences (``Vo = e{Vi}``);
* switch: each arm port carries the input value when the predicate allows
  that arm (``Vt = V if Vp = true or Vp = TOP, BOTTOM otherwise``), so
  dead branches keep BOTTOM flowing into them;
* merge: the least upper bound of the input values.

Because control edges thread every variable-free statement through its
governing switch operators, an unreachable statement sees BOTTOM on *all*
its inputs -- that is the paper's dead-code criterion ("this use was never
examined during constant propagation; it is dead code").  The algorithm
finds the same *possible-paths* constants as the CFG algorithm of Figure
4(a) and as SCCP, in O(EV) rather than O(EV^2) time; the equivalence is
checked by the test suite and the speed separation by experiment F4.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.cfg.graph import CFG, NodeKind
from repro.core.build import build_dfg
from repro.core.dfg import CTRL_VAR, DFG, HeadKind, Port, PortKind
from repro.dataflow.lattice import (
    BOTTOM,
    TOP,
    ConstValue,
    branch_implications,
    eval_abstract,
    join_all,
    join_const,
    truthiness,
)


from repro.util.counters import WorkCounter


def _maybe_refine(
    graph: CFG, port: Port, incoming: ConstValue, enabled: bool
) -> ConstValue:
    """Sharpen a switch arm port's value with what the predicate implies
    about its variable on this arm (Section 4's Multiflow extension)."""
    if not enabled or incoming is BOTTOM:
        return incoming
    predicate = graph.node(port.node).expr
    assert predicate is not None
    implied = branch_implications(predicate, taken=port.label == "T")
    if port.var in implied:
        return implied[port.var]
    return incoming


@dataclass
class DFGConstants:
    """Result of DFG constant propagation.

    ``use_values[(node, var)]`` mirrors the def-use and SCCP result
    shapes so the three algorithms are directly comparable;
    ``dead_nodes`` are statements whose every input dependence stayed
    BOTTOM (never executed on any possible path).
    """

    port_values: dict[Port, ConstValue] = field(default_factory=dict)
    use_values: dict[tuple[int, str], ConstValue] = field(default_factory=dict)
    rhs_values: dict[int, ConstValue] = field(default_factory=dict)
    dead_nodes: set[int] = field(default_factory=set)

    def constant_uses(self) -> dict[tuple[int, str], int]:
        return {
            k: v
            for k, v in self.use_values.items()
            if isinstance(v, int) and k[1] != CTRL_VAR
        }

    def constant_rhs(self) -> dict[int, int]:
        return {k: v for k, v in self.rhs_values.items() if isinstance(v, int)}


def dfg_constant_propagation(
    graph: CFG,
    dfg: DFG | None = None,
    counter: WorkCounter | None = None,
    refine_predicates: bool = False,
) -> DFGConstants:
    """Solve the Figure 4(b) equations with a worklist over ports.

    ``refine_predicates`` enables the Section 4 Multiflow extension: a
    switch arm port for ``x`` carries the constant implied by an
    equality predicate (``x == c`` true side / ``x != c`` false side)
    even when the incoming value is unknown.  The paper notes this "is
    easy to extend both the DFG and CFG algorithms" but hard for
    SSA-based algorithms, whose edges bypass the switches -- our SCCP
    accordingly has no such flag.
    """
    counter = counter if counter is not None else WorkCounter()
    dfg = dfg if dfg is not None else build_dfg(graph, counter=counter)

    values: dict[Port, ConstValue] = defaultdict(lambda: BOTTOM)

    def use_value(nid: int, var: str) -> ConstValue:
        src = dfg.use_sources.get((nid, var))
        return BOTTOM if src is None else values[src]

    def node_gate(nid: int) -> ConstValue:
        """BOTTOM while the statement is unreached: the join of all its
        input dependences (operands plus the control edge)."""
        node = graph.node(nid)
        deps = list(node.uses())
        if (nid, CTRL_VAR) in dfg.use_sources:
            deps.append(CTRL_VAR)
        return join_all(use_value(nid, v) for v in deps)

    def eval_node(nid: int) -> ConstValue:
        """``e{Vi}``: the node's expression over its operand dependences,
        gated by reachability."""
        node = graph.node(nid)
        assert node.expr is not None
        counter.tick("dfg_evaluations")
        if node_gate(nid) is BOTTOM:
            return BOTTOM
        return eval_abstract(node.expr, lambda v: use_value(nid, v))

    def recompute(port: Port) -> ConstValue:
        counter.tick("port_recomputations")
        if port.kind is PortKind.ENTRY:
            return TOP
        if port.kind is PortKind.DEF:
            return eval_node(port.node)
        if port.kind is PortKind.MERGE:
            inputs = dfg.merge_inputs[port]
            return join_all(values[src] for src in inputs.values())
        # SWITCH arm: gate the input value by the predicate.
        incoming = values[dfg.switch_input(port)]
        predicate = truthiness(eval_node(port.node))
        if predicate is BOTTOM:
            return BOTTOM
        if predicate is TOP:
            return _maybe_refine(graph, port, incoming, refine_predicates)
        taken = "T" if predicate else "F"
        if port.label != taken:
            return BOTTOM
        return _maybe_refine(graph, port, incoming, refine_predicates)

    # Dependents: which ports must be recomputed when a port's value rises.
    dependents: dict[Port, list[Port]] = defaultdict(list)
    all_ports = dfg.ports()
    def_ports = {
        p.node: p for p in all_ports if p.kind is PortKind.DEF
    }
    for port in all_ports:
        for head in dfg.heads_of(port):
            if head.kind is HeadKind.MERGE_IN:
                dependents[port].append(
                    Port(PortKind.MERGE, head.var, head.node)
                )
            elif head.kind is HeadKind.SWITCH_IN:
                dependents[port].extend(
                    dfg.switch_ports.get((head.node, head.var), ())
                )
            else:  # USE
                node = graph.node(head.node)
                if node.kind is NodeKind.ASSIGN and head.node in def_ports:
                    dependents[port].append(def_ports[head.node])
                elif node.kind is NodeKind.SWITCH:
                    # Predicate operand: every variable's arm ports at this
                    # switch depend on it.
                    for (snid, _var), ports in dfg.switch_ports.items():
                        if snid == head.node:
                            dependents[port].extend(ports)

    worklist: deque[Port] = deque(p for p in all_ports)
    queued = set(worklist)
    while worklist:
        port = worklist.popleft()
        queued.discard(port)
        counter.tick("worklist_pops")
        new_value = join_const(values[port], recompute(port))
        if new_value != values[port]:
            values[port] = new_value
            for dep in dependents[port]:
                if dep not in queued:
                    queued.add(dep)
                    worklist.append(dep)

    result = DFGConstants(port_values=dict(values))
    for (nid, var) in dfg.use_sources:
        result.use_values[(nid, var)] = use_value(nid, var)
    for node in graph.nodes.values():
        if node.expr is not None:
            result.rhs_values[node.id] = eval_node(node.id)
        if node.kind in (NodeKind.ASSIGN, NodeKind.PRINT, NodeKind.SWITCH):
            if node_gate(node.id) is BOTTOM:
                result.dead_nodes.add(node.id)
    return result
