"""Loop-carried dependences with distance/direction (Section 6).

"For parallelization, the simple picture of the DFG in this paper can be
extended to include aliasing, data structures, anti- and output
dependences, loop recognition, and distance/direction information for
loop-carried dependences."  This module implements that extension for
the affine single-induction-variable case:

* **loop recognition** comes from :mod:`repro.graphs.loops`;
* a **basic induction variable** is a variable with exactly one
  definition in the loop, of the form ``i := i + c`` (or ``- c``), that
  executes exactly once per iteration (it dominates every latch);
* an array access is **affine** when its index is ``i + k`` for a basic
  induction variable ``i`` and literal ``k`` (accesses ordered after the
  increment see ``i`` already advanced, so their offset is shifted by
  the step);
* for two affine accesses to the same array, ``i + k1`` at iteration
  ``t1`` touches the element ``i + k2`` touches at ``t2`` iff
  ``t2 - t1 = (k1 - k2) / step``: an integer solution is a dependence
  with that **distance** (direction ``<``, ``=`` or ``>``), no solution
  means independence;
* non-affine accesses and accesses to the same array from different
  induction spaces yield ``distance None`` -- the conservative
  "unknown" dependence.

``analyze_loop_dependences`` reports every store-involved pair (flow,
anti, output), and ``parallelizable_loops`` lists loops whose only
dependences have distance 0 -- the DOALL test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cfg.graph import CFG, NodeKind
from repro.graphs.dominance import cfg_dominators
from repro.graphs.loops import back_edges, natural_loops
from repro.lang.ast_nodes import (
    BinOp,
    Expr,
    Index,
    IntLit,
    Update,
    Var,
    subexpressions,
)


@dataclass(frozen=True)
class InductionVariable:
    """A basic induction variable: one ``var := var +/- step`` per
    iteration, at ``node``."""

    var: str
    step: int
    node: int


@dataclass(frozen=True)
class ArrayAccess:
    """One array read or write inside a loop body.

    ``offset`` is the literal summand of an affine index ``iv + offset``
    (already adjusted when the access executes after the increment);
    ``iv`` is None for non-affine indices.
    """

    array: str
    node: int
    is_write: bool
    iv: Optional[str] = None
    offset: Optional[int] = None

    @property
    def affine(self) -> bool:
        return self.iv is not None


@dataclass(frozen=True)
class LoopDependence:
    """A dependence between two accesses of one loop.

    ``kind`` is ``"flow"`` (write then read), ``"anti"`` (read then
    write), or ``"output"`` (write then write); ``distance`` is in
    iterations (None = unknown); ``direction`` is ``"="`` for
    loop-independent, ``"<"`` for carried forward, ``"*"`` for unknown.
    """

    kind: str
    array: str
    src: int
    dst: int
    distance: Optional[int]
    direction: str


def _affine_offset(index: Expr, iv: str) -> Optional[int]:
    """``k`` such that ``index == iv + k``, else None."""
    if index == Var(iv):
        return 0
    if isinstance(index, BinOp) and index.op == "+":
        if index.left == Var(iv) and isinstance(index.right, IntLit):
            return index.right.value
        if index.right == Var(iv) and isinstance(index.left, IntLit):
            return index.left.value
    if (
        isinstance(index, BinOp)
        and index.op == "-"
        and index.left == Var(iv)
        and isinstance(index.right, IntLit)
    ):
        return -index.right.value
    return None


def find_induction_variables(
    graph: CFG, header: int, body: set[int]
) -> list[InductionVariable]:
    """Basic induction variables of one natural loop."""
    dom = cfg_dominators(graph)
    latches = [src for src, dst in back_edges(graph, dom) if dst == header]
    found: list[InductionVariable] = []
    defs_in_body: dict[str, list] = {}
    for nid in body:
        node = graph.node(nid)
        if node.kind is NodeKind.ASSIGN:
            assert node.target is not None
            defs_in_body.setdefault(node.target, []).append(node)
    for var, defs in defs_in_body.items():
        if len(defs) != 1:
            continue
        node = defs[0]
        expr = node.expr
        step: Optional[int] = None
        if isinstance(expr, BinOp) and isinstance(expr.right, IntLit):
            if expr.op == "+" and expr.left == Var(var):
                step = expr.right.value
            elif expr.op == "-" and expr.left == Var(var):
                step = -expr.right.value
        if (
            step is None
            and isinstance(expr, BinOp)
            and expr.op == "+"
            and isinstance(expr.left, IntLit)
            and expr.right == Var(var)
        ):
            step = expr.left.value
        if step is None or step == 0:
            continue
        # Must run exactly once per iteration: the increment dominates
        # every latch (so no iteration skips it or runs it twice).
        if all(dom.dominates(node.id, latch) for latch in latches):
            found.append(InductionVariable(var, step, node.id))
    return found


def collect_accesses(
    graph: CFG,
    body: set[int],
    ivs: list[InductionVariable],
) -> list[ArrayAccess]:
    """Every array load/store in the loop body, with affine annotation."""
    dom = cfg_dominators(graph)
    iv_by_name = {iv.var: iv for iv in ivs}
    accesses: list[ArrayAccess] = []

    def classify(array: str, index: Expr, nid: int, is_write: bool) -> None:
        for iv in iv_by_name.values():
            offset = _affine_offset(index, iv.var)
            if offset is None:
                continue
            # Accesses strictly after the increment read the advanced iv.
            if nid != iv.node and dom.dominates(iv.node, nid):
                offset += iv.step
            accesses.append(
                ArrayAccess(array, nid, is_write, iv.var, offset)
            )
            return
        accesses.append(ArrayAccess(array, nid, is_write))

    for nid in body:
        node = graph.node(nid)
        if node.expr is None:
            continue
        for sub in subexpressions(node.expr):
            if isinstance(sub, Update):
                classify(sub.array, sub.index, nid, is_write=True)
            elif isinstance(sub, Index):
                classify(sub.array, sub.index, nid, is_write=False)
    return accesses


def _dependence(
    first: ArrayAccess, second: ArrayAccess, step: Optional[int]
) -> Optional[LoopDependence]:
    """Dependence from ``first`` (earlier in the pair ordering) to
    ``second``; None when the accesses are provably independent."""
    if first.array != second.array:
        return None
    if not (first.is_write or second.is_write):
        return None
    if first.is_write and second.is_write:
        kind = "output"
    elif first.is_write:
        kind = "flow"
    else:
        kind = "anti"
    if (
        first.affine
        and second.affine
        and first.iv == second.iv
        and step not in (None, 0)
    ):
        assert first.offset is not None and second.offset is not None
        delta = first.offset - second.offset
        if delta % step != 0:
            return None  # addresses never coincide across iterations
        distance = delta // step
        if distance < 0:
            return None  # reported from the other pair orientation
        direction = "=" if distance == 0 else "<"
        return LoopDependence(
            kind, first.array, first.node, second.node, distance, direction
        )
    return LoopDependence(
        kind, first.array, first.node, second.node, None, "*"
    )


def analyze_loop_dependences(
    graph: CFG, header: int, body: set[int]
) -> list[LoopDependence]:
    """All array dependences of one natural loop."""
    ivs = find_induction_variables(graph, header, body)
    step_of = {iv.var: iv.step for iv in ivs}
    accesses = collect_accesses(graph, body, ivs)
    deps: list[LoopDependence] = []
    for i, a in enumerate(accesses):
        for b in accesses[i:]:
            for first, second in ((a, b), (b, a)):
                step = step_of.get(first.iv) if first.iv else None
                dep = _dependence(first, second, step)
                if dep is not None and dep not in deps:
                    # A pair compared with itself only yields the
                    # distance-0 self case once.
                    if first is second and dep.distance == 0:
                        continue
                    deps.append(dep)
    return deps


def parallelizable_loops(graph: CFG) -> dict[int, bool]:
    """The DOALL test per natural loop: parallelizable when every array
    dependence is loop-independent (distance 0).  Scalar reductions and
    induction updates are not considered here; callers combine this with
    the scalar dependence web as needed."""
    verdicts: dict[int, bool] = {}
    for header, body in natural_loops(graph).items():
        deps = analyze_loop_dependences(graph, header, body)
        verdicts[header] = all(d.distance == 0 for d in deps)
    return verdicts
