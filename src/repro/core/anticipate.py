"""Anticipatability on the DFG (Section 5.1, Figures 5(b), 6, 7).

For an expression ``e`` and each variable ``x`` in it, total/partial
anticipatability *relative to x* (Definition 9) is a backward boolean
problem over ``x``'s dependence web:

* **boundary** -- the dependence into a statement that computes ``e`` is
  anticipatable; the dependence into a statement that uses ``x`` in some
  other expression is not ("dependences for x at these statements are set
  to false" -- the role ``end`` plays in the CFG formulation).  A branch
  with no dependences for ``x`` at all (``x`` dead there) contributes
  false the same way;
* **multiedge** -- "if the expression is totally (partially) anticipatable
  at any head, then it is also anticipatable at the tail": the heads all
  postdominate the tail with no definition of ``x`` in between, so the
  tail value is the OR of the head values;
* **switch** -- the operator input is the AND (ANT) or OR (PAN) of its arm
  ports' values: every (some) branch must anticipate;
* **merge** -- each input inherits the merge port's value.

ANT is the greatest fixpoint (start true, shrink), PAN the least (start
false, grow) -- mirroring the CFG initial approximations of Section 5.1.

Projection onto CFG edges follows the paper: a CFG edge is marked when it
lies in the span of a dependence edge whose head value is true; the
multivariable result is the intersection of the per-variable projections
("assert that ANT is true wherever it is true relative to both x and y
separately").  The projected DFG answer can be *more conservative* than
the CFG answer where a variable's dependence is consumed by an unrelated
expression deep inside a region (the paper points at two-phase and
depth-first-numbering refinements it chooses not to pursue); the test
suite checks containment everywhere and equality on the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG
from repro.controldep.sese import ProgramStructure
from repro.core.build import build_dfg
from repro.core.dfg import DFG, DepEdge, Head, HeadKind, Port, PortKind
from repro.core.project import project_to_cfg_edges
from repro.lang.ast_nodes import Expr, expr_vars, is_trivial, subexpressions
from repro.util.counters import WorkCounter


def computes(node, expr: Expr) -> bool:
    """Does this CFG node's expression compute ``expr`` (as any
    subexpression)?"""
    if node.expr is None:
        return False
    return any(sub == expr for sub in subexpressions(node.expr))


@dataclass
class VariableAnticipatability:
    """ANT/PAN relative to one variable: values per dependence edge
    (keyed by head) and per multiedge tail, plus the CFG projection."""

    var: str
    ant_heads: dict[Head, bool] = field(default_factory=dict)
    pan_heads: dict[Head, bool] = field(default_factory=dict)
    ant_tails: dict[Port, bool] = field(default_factory=dict)
    pan_tails: dict[Port, bool] = field(default_factory=dict)
    ant_edges: set[int] = field(default_factory=set)
    pan_edges: set[int] = field(default_factory=set)


@dataclass
class AnticipatabilityResult:
    """Combined ANT/PAN of one expression over all its variables.

    ``ant_edges`` is exact: an expression is totally anticipatable iff it
    is anticipatable relative to every variable (a path's first
    computation follows the last definition of each operand).  The same
    intersection for ``pan_edges`` is exact for single-variable
    expressions but an *over-approximation* for multivariable ones (each
    variable may have a different witness path); PAN only feeds the
    profitability side of EPR, where extra candidates are filtered by the
    safety pass, so the over-approximation is harmless.
    """

    expr: Expr
    per_var: dict[str, VariableAnticipatability]
    #: CFG edges where the expression is totally anticipatable.
    ant_edges: set[int]
    #: CFG edges where the expression is partially anticipatable
    #: (per-variable intersection; see class docstring).
    pan_edges: set[int]


def _solve_relative(
    graph: CFG,
    dfg: DFG,
    var: str,
    expr: Expr,
    must: bool,
    counter: WorkCounter,
) -> tuple[dict[Head, bool], dict[Port, bool]]:
    """One fixpoint: ANT (``must``) or PAN relative to ``var``."""
    web: dict[Port, list[Head]] = {
        port: heads
        for port, heads in dfg._build_heads().items()
        if port.var == var
    }
    heads: list[Head] = [h for hs in web.values() for h in hs]
    boundary: dict[Head, bool] = {}
    for head in heads:
        if head.kind is HeadKind.USE:
            boundary[head] = computes(graph.node(head.node), expr)

    head_value: dict[Head, bool] = {
        h: boundary.get(h, must) for h in heads
    }
    tail_value: dict[Port, bool] = {}

    def arm_value(snid: int, label: str | None) -> bool:
        for port in dfg.switch_ports.get((snid, var), ()):
            if port.label == label:
                return tail_value.get(port, must)
        return False  # dead side: x has no dependences there

    changed = True
    while changed:
        changed = False
        counter.tick("ant_rounds")
        for port, port_heads in web.items():
            value = any(head_value[h] for h in port_heads)
            if tail_value.get(port, must) != value:
                tail_value[port] = value
                changed = True
            else:
                tail_value[port] = value
        for head in heads:
            counter.tick("ant_head_evals")
            if head in boundary:
                continue
            if head.kind is HeadKind.SWITCH_IN:
                arms = [
                    arm_value(head.node, e.label)
                    for e in graph.out_edges(head.node)
                ]
                value = all(arms) if must else any(arms)
            else:  # MERGE_IN inherits the merge port's value
                value = tail_value.get(
                    Port(PortKind.MERGE, var, head.node), must
                )
            if head_value[head] != value:
                head_value[head] = value
                changed = True
    return head_value, tail_value


def dfg_anticipatability(
    graph: CFG,
    expr: Expr,
    dfg: DFG | None = None,
    structure: ProgramStructure | None = None,
    counter: WorkCounter | None = None,
) -> AnticipatabilityResult:
    """ANT and PAN of ``expr`` via dependence propagation + projection."""
    counter = counter if counter is not None else WorkCounter()
    if is_trivial(expr):
        raise ValueError("anticipatability is defined for compound expressions")
    variables = expr_vars(expr)
    if not variables:
        raise ValueError(
            "constant expressions have no dependence web; fold them instead"
        )
    ps = structure if structure is not None else ProgramStructure(graph)
    dfg = dfg if dfg is not None else build_dfg(graph, structure=ps, counter=counter)

    per_var: dict[str, VariableAnticipatability] = {}
    for var in sorted(variables):
        ant_heads, ant_tails = _solve_relative(
            graph, dfg, var, expr, must=True, counter=counter
        )
        pan_heads, pan_tails = _solve_relative(
            graph, dfg, var, expr, must=False, counter=counter
        )
        rel = VariableAnticipatability(
            var, ant_heads, pan_heads, ant_tails, pan_tails
        )
        web = {
            port: heads
            for port, heads in dfg._build_heads().items()
            if port.var == var
        }
        rel.ant_edges = project_to_cfg_edges(
            graph,
            ps,
            (
                DepEdge(port, h)
                for port, hs in web.items()
                for h in hs
                if ant_heads[h]
            ),
        )
        rel.pan_edges = project_to_cfg_edges(
            graph,
            ps,
            (
                DepEdge(port, h)
                for port, hs in web.items()
                for h in hs
                if pan_heads[h]
            ),
        )
        per_var[var] = rel

    rels = list(per_var.values())
    ant = set.intersection(*(r.ant_edges for r in rels))
    pan = set.intersection(*(r.pan_edges for r in rels))
    return AnticipatabilityResult(expr, per_var, ant, pan)
