"""Elimination of partial redundancies, edge-based (Section 5.2).

The paper's placement rules, on top of DFG anticipatability:

* **merge rule** -- "insert a computation into a region if it is
  anticipatable and partially available at the output of the merge":
  after insertion the expression is totally available below the merge;
* **multiedge rule** -- "it is profitable to place a computation at the
  tail of a multiedge if the expression is anticipatable at the tail and
  partially anticipatable at two or more heads" (redundancy within one
  control region);
* ``INSERT`` at a profitable point where the expression is not already
  available; ``DELETE`` (rewrite to read the temporary) where it is
  available *after* the insertions.

Being edge-based, the algorithm needs no critical-edge splitting -- the
``repeat-until`` back edge that complicates node-based formulations is
just an edge a computation can be inserted on (the CFG splice introduces
the block only when code actually moves there, which is the behaviour
Morel-Renvoise obtain by splitting everything up front and cleaning up
after).

A justification pass keeps the Morel-Renvoise guarantee "no execution
path will contain more instances of a computation than it did
originally": an insertion survives only while every path from it reaches
a *deleted* computation before any operand is redefined; dropping an
insertion can invalidate deletions, so insertions and deletions are
iterated to a (shrinking, hence terminating) fixpoint.  The test suite
re-verifies the guarantee dynamically with the counting interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG, NodeKind
from repro.controldep.sese import ProgramStructure
from repro.core.anticipate import AnticipatabilityResult, dfg_anticipatability
from repro.core.build import build_dfg
from repro.core.dfg import DFG
from repro.core.verify import head_location, tail_location
from repro.dataflow.available import (
    available_expressions,
    partially_available_expressions,
)
from repro.lang.ast_nodes import (
    BinOp,
    Expr,
    Index,
    UnOp,
    Update,
    Var,
    expr_vars,
    is_trivial,
    subexpressions,
)
from repro.util.counters import WorkCounter


@dataclass
class EPRResult:
    """Outcome of eliminating partial redundancies of one expression."""

    graph: CFG  # transformed copy
    expr: Expr
    temp: str
    #: original-graph edge ids that received an inserted computation.
    inserted_edges: list[int] = field(default_factory=list)
    #: nodes whose computation of the expression became a read of temp.
    deleted_nodes: list[int] = field(default_factory=list)
    #: surviving computation sites that now also define temp.
    defining_nodes: list[int] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.inserted_edges or self.deleted_nodes)


def replace_subexpr(expr: Expr, needle: Expr, replacement: Expr) -> Expr:
    """Rewrite every occurrence of ``needle`` inside ``expr``."""
    if expr == needle:
        return replacement
    if isinstance(expr, UnOp):
        return UnOp(expr.op, replace_subexpr(expr.operand, needle, replacement))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            replace_subexpr(expr.left, needle, replacement),
            replace_subexpr(expr.right, needle, replacement),
        )
    if isinstance(expr, Index):
        return Index(
            expr.array, replace_subexpr(expr.index, needle, replacement)
        )
    if isinstance(expr, Update):
        return Update(
            expr.array,
            replace_subexpr(expr.index, needle, replacement),
            replace_subexpr(expr.value, needle, replacement),
        )
    return expr


def fresh_temp(graph: CFG, base: str = "pre") -> str:
    taken = graph.variables()
    index = 0
    while f"{base}{index}" in taken:
        index += 1
    return f"{base}{index}"


def _splice_assign(graph: CFG, eid: int, target: str, expr: Expr) -> int:
    """Insert ``target := expr`` on edge ``eid``; returns the new node."""
    edge = graph.edge(eid)
    node = graph.add_node(NodeKind.ASSIGN, target=target, expr=expr)
    graph.add_edge(edge.src, node, label=edge.label)
    graph.add_edge(node, edge.dst)
    graph.remove_edge(eid)
    return node


def _computing_nodes(graph: CFG, expr: Expr) -> list[int]:
    return [
        node.id
        for node in graph.nodes.values()
        if node.expr is not None
        and any(sub == expr for sub in subexpressions(node.expr))
    ]


def eliminate_partial_redundancies(
    graph: CFG,
    expr: Expr,
    dfg: DFG | None = None,
    structure: ProgramStructure | None = None,
    anticipatability: AnticipatabilityResult | None = None,
    counter: WorkCounter | None = None,
    av: dict[int, frozenset[Expr]] | None = None,
    pav: dict[int, frozenset[Expr]] | None = None,
) -> EPRResult:
    """Apply the paper's EPR rules for ``expr`` and return a transformed
    copy of ``graph`` (the input graph is never mutated).

    The per-graph substrates (DFG, program structure, availability) are
    injectable so :func:`epr_all` can serve them from the analysis
    pipeline cache instead of recomputing per candidate expression."""
    counter = counter if counter is not None else WorkCounter()
    if is_trivial(expr) or not expr_vars(expr):
        raise ValueError("EPR applies to compound expressions over variables")
    ps = structure if structure is not None else ProgramStructure(graph)
    dfg = dfg if dfg is not None else build_dfg(graph, structure=ps, counter=counter)
    ant = (
        anticipatability
        if anticipatability is not None
        else dfg_anticipatability(graph, expr, dfg, ps, counter)
    )
    av = av if av is not None else available_expressions(graph, counter)
    pav = (
        pav
        if pav is not None
        else partially_available_expressions(graph, counter)
    )

    # -- profitable placement points (PP) -----------------------------------
    pp_edges: set[int] = set()
    for node in graph.nodes.values():
        if node.kind is not NodeKind.MERGE:
            continue
        out = graph.out_edge(node.id).id
        counter.tick("pp_merge_checks")
        if out in ant.ant_edges and expr in pav[out]:
            # Make the expression totally available at the merge output
            # by computing it on the in-edges that do not already supply
            # it.  (Placing on in-edges rather than the out-edge is what
            # hoists loop-invariant code to the preheader edge: the back
            # edge already carries the value.)  ANT at an in-edge equals
            # ANT at the merge output, so the placement stays safe.
            for in_edge in graph.in_edges(node.id):
                pp_edges.add(in_edge.id)
    heads_index = dfg._build_heads()
    for var, rel in ant.per_var.items():
        for port, heads in heads_index.items():
            if port.var != var or len(heads) < 2:
                continue
            counter.tick("pp_multiedge_checks")
            tail_edge = tail_location(graph, port)
            if tail_edge not in ant.ant_edges:
                continue
            pan_heads = sum(
                1
                for h in heads
                if head_location(graph, h) in ant.pan_edges
            )
            if pan_heads >= 2:
                pp_edges.add(tail_edge)

    return place_and_transform(graph, expr, pp_edges, av, counter)


def place_and_transform(
    graph: CFG,
    expr: Expr,
    pp_edges: set[int],
    av: dict[int, frozenset[Expr]],
    counter: WorkCounter | None = None,
) -> EPRResult:
    """Shared back half of EPR: filter profitable points down to safe
    insertions, compute deletions, and apply the transformation.

    Used both by the DFG algorithm (whose PP points come from the merge
    and multiedge rules) and by the dense CFG baseline (whose PP points
    come from edge-wise ANT/PAV).  ``av`` is the available-expressions
    solution of ``graph``.
    """
    counter = counter if counter is not None else WorkCounter()
    from repro.graphs.dominance import edge_dominators, edge_key

    dom = edge_dominators(graph)
    insert_edges = {f for f in pp_edges if expr not in av[f]}

    # -- justification fixpoint ----------------------------------------------
    # Keep only insertions every one of whose continuations reaches a
    # deleted computation before an operand redefinition; recompute
    # deletions whenever an insertion is dropped.
    operand_vars = expr_vars(expr)
    computing = set(_computing_nodes(graph, expr))

    def deletions_for(inserts: set[int]) -> set[int]:
        trial = graph.copy()
        for eid in inserts:
            _splice_assign(trial, eid, "@trial", expr)
        av_plus = available_expressions(trial)
        return {
            nid
            for nid in computing
            if expr in av_plus[trial.in_edge(nid).id]
        }

    def justified(eid: int, deleted: set[int], others: set[int]) -> bool:
        """Every path from edge ``eid`` must reach a deleted computation
        of the expression before an operand redefinition, before ``end``,
        and before crossing another insertion point.

        The first two make the insertion pay for itself on every path
        (net evaluations cannot rise); the third rejects *dead*
        insertions whose value is always recomputed by a later insertion
        before any deleted site reads it."""
        seen: set[int] = set()
        stack = [eid]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            nxt = graph.edge(cur).dst
            node = graph.node(nxt)
            if nxt in deleted:
                continue  # this continuation is covered
            if node.defs() & operand_vars:
                return False  # killed before any deleted computation
            if nxt == graph.end:
                return False
            for edge in graph.out_edges(nxt):
                if edge.id in others:
                    return False  # re-supplied before use: dead insertion
                stack.append(edge.id)
        return True

    def drop_redundant_inserts(inserts: set[int]) -> set[int]:
        """An insertion is unnecessary where the expression is already
        available from original computations plus the *other* insertions
        (e.g. the merge rule proposing a point just below an arm the
        multiedge rule already covered).  Upstream points are considered
        first so code hoists as far as the rules allow."""
        kept = set(inserts)
        for eid in sorted(inserts, key=lambda e: dom.depth(edge_key(e))):
            others = kept - {eid}
            trial = graph.copy()
            for other in others:
                _splice_assign(trial, other, "@trial", expr)
            if expr in available_expressions(trial)[eid]:
                kept.discard(eid)
        return kept

    while True:
        before = set(insert_edges)
        insert_edges = drop_redundant_inserts(insert_edges)
        deleted = deletions_for(insert_edges)
        insert_edges = {
            eid
            for eid in insert_edges
            if justified(eid, deleted, insert_edges - {eid})
        }
        if insert_edges == before:
            break
    deleted = deletions_for(insert_edges)

    # -- zero-profit motion filter ---------------------------------------------
    # The placement rules can propose a *pure motion*: insertions whose
    # edges are, class for class, cycle equivalent to the in-edges of the
    # computations they delete.  Cycle-equivalent edges execute equally
    # often on every complete execution (Theorem 1's substrate), so such
    # a transformation cannot reduce dynamic evaluations -- it only
    # renames computations into fresh temporaries, and repeating EPR
    # would walk each computation up its SESE chain forever.  Rejecting
    # it makes EPR idempotent.
    if insert_edges and len(insert_edges) == len(deleted):
        from repro.controldep.cycle_equiv import cycle_equivalence

        edge_class = cycle_equivalence(graph)
        insert_classes = sorted(edge_class[eid] for eid in insert_edges)
        deleted_classes = sorted(
            edge_class[graph.in_edge(nid).id] for nid in deleted
        )
        if insert_classes == deleted_classes:
            counter.tick("epr_zero_profit_motions_rejected")
            insert_edges = set()
            deleted = set()

    # -- transformation --------------------------------------------------------
    result_graph = graph.copy()
    temp = fresh_temp(graph)
    result = EPRResult(result_graph, expr, temp)
    if not insert_edges and not deleted:
        return result

    for eid in sorted(insert_edges):
        _splice_assign(result_graph, eid, temp, expr)
        result.inserted_edges.append(eid)
    for nid in sorted(computing):
        node = result_graph.node(nid)
        assert node.expr is not None
        if nid in deleted:
            node.expr = replace_subexpr(node.expr, expr, Var(temp))
            result_graph.note_rewrite()
            result.deleted_nodes.append(nid)
        else:
            # Surviving computation: also define the temporary so deleted
            # sites downstream read a fresh value.
            in_edge = result_graph.in_edge(nid).id
            _splice_assign(result_graph, in_edge, temp, expr)
            node.expr = replace_subexpr(node.expr, expr, Var(temp))
            result_graph.note_rewrite()
            result.defining_nodes.append(nid)
    result_graph.validate(normalized=True)
    return result


def candidate_expressions(graph: CFG) -> list[Expr]:
    """Non-trivial expressions over variables, largest first, that occur
    in the graph -- the worklist for :func:`epr_all`."""
    exprs = [e for e in graph.expressions() if expr_vars(e)]
    return sorted(exprs, key=lambda e: (-len(list(subexpressions(e))), repr(e)))


def epr_all(graph: CFG, counter: WorkCounter | None = None, manager=None):
    """Apply EPR to every candidate expression of ``graph``, re-deriving
    structures after each change, and repeat until no motion applies:
    hoisting one expression can expose a partial redundancy in another
    (its insertions are new evaluation sites), so a single sweep is not
    a fixpoint.  Returns (final graph, results across all rounds).

    With a :class:`repro.pipeline.manager.AnalysisManager`, the
    per-graph substrates (SESE structure, DFG, availability) come from
    the pass cache: consecutive candidates that change nothing reuse
    them instead of rebuilding, and each change rebinds the manager to
    the transformed copy.
    """
    counter = counter if counter is not None else WorkCounter()
    if manager is None:
        from repro.pipeline.manager import AnalysisManager
        from repro.util.metrics import Metrics

        manager = AnalysisManager(graph, metrics=Metrics(counter=counter))
    current = graph
    results: list[EPRResult] = []
    for _ in range(10):  # convergence bound; rounds after the 2nd are rare
        changed = False
        for expr in candidate_expressions(current):
            if expr not in current.expressions():
                continue  # rewritten away by an earlier pass
            if manager.graph is not current:
                manager.rebind(current)
            outcome = eliminate_partial_redundancies(
                current,
                expr,
                dfg=manager.get("dfg"),
                structure=manager.get("sese"),
                counter=counter,
                av=manager.get("available"),
                pav=manager.get("pavailable"),
            )
            if outcome.changed:
                results.append(outcome)
                current = outcome.graph
                changed = True
        if not changed:
            break
        counter.tick("epr_rounds")
    return current, results
