"""DFG construction (Section 3.2), demand-driven.

The paper's four steps are:

1. determine the variables defined within each SESE region (inside-out);
2. create a base-level DFG (dependence edges parallel to control edges);
3. perform *region bypassing* with a forward pass that maintains the most
   recent dependence source for each variable;
4. remove dead flow edges (backward from the cuts).

This implementation fuses steps 2-4 into one demand-driven resolution
that produces the same graph: starting from every use site (step 4's
liveness: only dependences that feed a use exist), the *source* of a
variable ``x`` on a CFG edge ``e`` is resolved as

* **bypass** -- if ``e`` has a predecessor ``p`` in its (dominance-ordered)
  cycle-equivalence class and the canonical region ``[p, e]`` contains no
  assignment to ``x``, the source at ``e`` *is* the source at ``p``: the
  dependence skips the region (step 3).  Maximal bypassing falls out of
  applying the rule transitively along the class chain;
* otherwise a **local rule** at the edge's source node: ``start`` yields
  the entry port, an assignment to ``x`` yields its definition port,
  other single-entry statements pass through, a switch yields that arm's
  switch-operator port (the operator's input resolves at the switch's
  in-edge), and a merge yields the merge-operator port whose inputs
  resolve along each in-edge.

Merges and switches produce their output port without consulting their
inputs, so loops need no fixpoint -- the same observation the paper's
step-3 forward pass relies on.  Resolution is memoized per (edge,
variable); total work is O(EV) in the worst case, and proportional to
the live dependences actually demanded in practice.

The dummy control variable (:data:`~repro.core.dfg.CTRL_VAR`) skips the
bypass rule entirely: control edges always thread through the governing
switch and merge operators, which is what makes them "control edges
indicating a node's control dependence region" (Section 3.3).
"""

from __future__ import annotations

from repro.cfg.graph import CFG, NodeKind
from repro.controldep.sese import ProgramStructure
from repro.core.dfg import CTRL_VAR, DFG, Port, PortKind
from repro.util.counters import WorkCounter


class DependenceResolver:
    """Memoized resolution of dependence sources.

    ``source(eid, var)`` answers: which producer port's value for ``var``
    flows on CFG edge ``eid``?  :func:`build_dfg` uses it to materialize
    the demanded dependences, and keeps it attached to the result
    (``DFG.resolver``) so later phases can pose new demand-driven queries
    -- copy propagation, for instance, asks whether a variable has the
    same source at two different program points.
    """

    def __init__(
        self,
        graph: CFG,
        structure: ProgramStructure,
        dfg: DFG,
        counter: WorkCounter,
        bypass: bool = True,
    ) -> None:
        self.graph = graph
        self.structure = structure
        self.dfg = dfg
        self.counter = counter
        self.bypass = bypass
        # Predecessor within the dominance-ordered cycle-equivalence class.
        self.prev_in_class: dict[int, int] = {}
        for eids in structure.classes.values():
            for prev, cur in zip(eids, eids[1:]):
                self.prev_in_class[cur] = prev
        self.memo: dict[tuple[int, str], Port] = {}

    def source(self, eid: int, var: str) -> Port:
        """The dependence source for ``var`` flowing on edge ``eid``."""
        graph, ps, dfg = self.graph, self.structure, self.dfg
        chain: list[tuple[int, str]] = []
        current = eid
        while True:
            key = (current, var)
            if key in self.memo:
                self.counter.tick("source_memo_hits")
                result = self.memo[key]
                break
            self.counter.tick("source_resolutions")
            prev = self.prev_in_class.get(current)
            if (
                self.bypass
                and var != CTRL_VAR
                and prev is not None
                and var not in ps.defs_in(ps.opens[prev])
            ):
                # Region bypassing: [prev, current] has no def of var.
                chain.append(key)
                current = prev
                continue
            node = graph.node(graph.edge(current).src)
            if node.kind is NodeKind.START:
                result = Port(PortKind.ENTRY, var)
                break
            if node.kind is NodeKind.ASSIGN and node.target == var:
                result = Port(PortKind.DEF, var, node.id)
                break
            if node.kind in (NodeKind.ASSIGN, NodeKind.PRINT, NodeKind.NOP):
                # Pass through a statement unrelated to var.
                chain.append(key)
                current = graph.in_edge(node.id).id
                continue
            if node.kind is NodeKind.SWITCH:
                label = graph.edge(current).label
                result = Port(PortKind.SWITCH, var, node.id, label)
                self.memo[key] = result
                dfg.switch_ports.setdefault((node.id, var), [])
                if result not in dfg.switch_ports[(node.id, var)]:
                    dfg.switch_ports[(node.id, var)].append(result)
                if (node.id, var) not in dfg.switch_inputs:
                    dfg.switch_inputs[(node.id, var)] = self.source(
                        graph.in_edge(node.id).id, var
                    )
                break
            if node.kind is NodeKind.MERGE:
                result = Port(PortKind.MERGE, var, node.id)
                self.memo[key] = result  # before inputs: loops resolve here
                if result not in dfg.merge_inputs:
                    dfg.merge_inputs[result] = {}
                    for in_edge in graph.in_edges(node.id):
                        dfg.merge_inputs[result][in_edge.id] = self.source(
                            in_edge.id, var
                        )
                break
            from repro.robust.errors import InputError

            raise InputError(
                f"unhandled node kind {node.kind} while resolving "
                f"dependence source for {var!r}",
                phase="build-dfg",
            )
        for key in chain:
            self.memo[key] = result
        self.memo[(eid, var)] = result
        return result

    def source_at_node(self, nid: int, var: str) -> Port:
        """The dependence source for ``var`` arriving at a statement."""
        return self.source(self.graph.in_edge(nid).id, var)


def build_dfg(
    graph: CFG,
    structure: ProgramStructure | None = None,
    counter: WorkCounter | None = None,
    control_edges: bool = True,
    variables: set[str] | None = None,
    bypass: bool = True,
) -> DFG:
    """Construct the DFG of ``graph``.

    ``variables`` restricts construction to a subset (plus control edges)
    -- the "expose only relevant dependences in any phase" capability the
    paper's Section 6 describes.  The resolver is kept on the result as
    ``dfg.resolver`` for later demand-driven queries.

    ``bypass=False`` builds the *base-level* DFG of construction step 2:
    every switch and merge intercepts every variable, no region is
    skipped.  Section 3.3: "the DFG-based optimization algorithms
    described in this paper work correctly even if some or no bypassing
    at all is performed" -- the test suite checks the analyses agree
    between the two forms; bypassing only changes how much work they do.
    """
    counter = counter if counter is not None else WorkCounter()
    ps = structure if structure is not None else ProgramStructure(graph)
    dfg = DFG(graph)
    resolver = DependenceResolver(graph, ps, dfg, counter, bypass=bypass)
    dfg.resolver = resolver

    # Demand: every use site (step 4's dead-edge removal means only
    # dependences feeding a use exist), plus control edges for
    # variable-free statements.
    statement_kinds = (NodeKind.ASSIGN, NodeKind.PRINT, NodeKind.SWITCH)
    for node in graph.nodes.values():
        if node.kind not in statement_kinds:
            continue
        uses = set(node.uses())
        if variables is not None:
            uses &= variables
        if control_edges and not node.uses():
            uses.add(CTRL_VAR)
        # Sorted so demand resolution order (and hence memo-table build
        # order and work counts) is independent of string hash seeds.
        for var in sorted(uses):
            counter.tick("use_sites")
            dfg.use_sources[(node.id, var)] = resolver.source(
                graph.in_edge(node.id).id, var
            )
    return dfg
