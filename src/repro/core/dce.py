"""Aggressive dead code elimination over the dependence flow graph.

Liveness-based DCE cannot remove a *cyclic* dead chain: in

::

    i := 0;
    while (p > 0) { i := i + 1; p := p - 1; }
    print 9;

the counter ``i`` is live around the loop (its increment uses it), yet
no observable output ever depends on it.  Mark-sweep over dependences
(Cytron-style ADCE, here phrased directly on the DFG) gets it: mark the
observation sites (``print``) and the branch predicates, chase producer
ports backwards through merge and switch operators, and every assignment
whose definition port was never reached is dead -- including mutually
recursive ones.

Switch nodes are conservatively kept (removing a branch needs control
restructuring, which :func:`repro.opt.transform.fold_constants` already
performs for *decided* branches), so marking treats every switch
predicate as observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG, NodeKind
from repro.core.build import build_dfg
from repro.core.dfg import CTRL_VAR, DFG, Port, PortKind
from repro.util.counters import WorkCounter


@dataclass
class ADCEStats:
    """What a mark-sweep pass removed."""

    marked_ports: int = 0
    removed_assignments: list[int] = field(default_factory=list)


def adce_mark(
    graph: CFG,
    dfg: DFG,
    counter: WorkCounter | None = None,
) -> set[Port]:
    """The mark phase of ADCE: every DFG port whose value can reach an
    observation (a ``print`` or a branch decision).  Pure -- mutates
    nothing -- so diagnostics can ask "which assignments are dead?"
    without editing the graph."""
    counter = counter if counter is not None else WorkCounter()
    marked: set[Port] = set()
    worklist: list[Port] = []

    def mark(port: Port) -> None:
        if port.var == CTRL_VAR or port in marked:
            return
        marked.add(port)
        worklist.append(port)

    # Roots: observable outputs and branch decisions.
    for node in graph.nodes.values():
        if node.kind in (NodeKind.PRINT, NodeKind.SWITCH):
            for var in node.uses():
                mark(dfg.use_sources[(node.id, var)])

    while worklist:
        port = worklist.pop()
        counter.tick("adce_marks")
        if port.kind is PortKind.DEF:
            producer = graph.node(port.node)
            for var in producer.uses():
                mark(dfg.use_sources[(port.node, var)])
        elif port.kind is PortKind.MERGE:
            for source in dfg.merge_inputs[port].values():
                mark(source)
        elif port.kind is PortKind.SWITCH:
            mark(dfg.switch_input(port))
        # ENTRY ports have no producers.
    return marked


def dead_assignments(
    graph: CFG,
    dfg: DFG,
    counter: WorkCounter | None = None,
) -> list[int]:
    """Assignment node ids ADCE would remove, without removing them."""
    marked = adce_mark(graph, dfg, counter)
    live_assigns = {port.node for port in marked if port.kind is PortKind.DEF}
    return sorted(
        node.id
        for node in graph.nodes.values()
        if node.kind is NodeKind.ASSIGN and node.id not in live_assigns
    )


def dfg_dead_code_elimination(
    graph: CFG,
    dfg: DFG | None = None,
    counter: WorkCounter | None = None,
) -> ADCEStats:
    """Remove assignments whose values never reach an observation, in
    place.  Returns the removed node ids."""
    counter = counter if counter is not None else WorkCounter()
    dfg = dfg if dfg is not None else build_dfg(graph, counter=counter)

    marked = adce_mark(graph, dfg, counter)
    live_assigns = {
        port.node for port in marked if port.kind is PortKind.DEF
    }
    stats = ADCEStats(marked_ports=len(marked))
    for node in list(graph.nodes.values()):
        if node.kind is not NodeKind.ASSIGN or node.id in live_assigns:
            continue
        in_edge = graph.in_edge(node.id)
        out_edge = graph.out_edge(node.id)
        graph.add_edge(in_edge.src, out_edge.dst, label=in_edge.label)
        graph.remove_node(node.id)
        stats.removed_assignments.append(node.id)
    graph.validate(normalized=True)
    return stats
