"""Structural verification of a constructed DFG against Definition 6.

Every dependence edge for a variable ``x`` corresponds to a CFG edge pair
``(e1, e2)`` with:

1. a producer of ``x`` at ``e1`` (definition, entry value, or operator),
2. a consumer of ``x`` reachable from ``e2`` (by demand-driven
   construction),
3. **no assignment to x on any control flow path from e1 to e2**,
4. ``e1`` dominates ``e2``,
5. ``e2`` postdominates ``e1``, and
6. ``e1`` and ``e2`` are cycle equivalent,

plus the multiedge property of Section 3.3: the tail and all heads of a
multiedge are totally ordered by dominance/postdominance.  The test suite
runs this checker on every graph it builds a DFG for, so the construction
is validated structurally, not just through the analyses' answers.
"""

from __future__ import annotations

from repro.cfg.graph import CFG
from repro.controldep.sese import ProgramStructure
from repro.core.dfg import CTRL_VAR, DFG, Head, HeadKind, Port, PortKind
from repro.graphs.dominance import edge_key


class DFGVerificationError(AssertionError):
    """A structural invariant of Definition 6 failed."""


def tail_location(graph: CFG, port: Port) -> int:
    """The CFG edge a producer port sits on (``e1``)."""
    if port.kind is PortKind.ENTRY:
        return graph.out_edge(graph.start).id
    if port.kind in (PortKind.DEF, PortKind.MERGE):
        return graph.out_edge(port.node).id
    assert port.label is not None
    return graph.switch_edge(port.node, port.label).id


def head_location(graph: CFG, head: Head) -> int:
    """The CFG edge a consumer head sits on (``e2``)."""
    if head.kind is HeadKind.MERGE_IN:
        return head.edge
    return graph.in_edge(head.node).id


def _interferes(graph: CFG, nid: int, e1: int, e2: int) -> bool:
    """Is there an execution on which the assignment at ``nid`` runs
    between the production of the value at edge ``e1`` and its
    consumption at edge ``e2``?

    Statically: a path from ``e1`` to ``nid`` avoiding ``e2``, and a path
    from ``nid`` to ``e2`` avoiding ``e1``.  (A path that re-crosses a
    boundary belongs to a different token: a later loop iteration's
    production or consumption.)  Dominance alone is too coarse here --
    a definition later in a loop body sits dominance-wise "between" the
    header merge and a body use, but always executes after the use it
    would supposedly corrupt.
    """

    def reaches(from_node: int, to_node: int, blocked_edge: int) -> bool:
        seen = {from_node}
        stack = [from_node]
        while stack:
            cur = stack.pop()
            if cur == to_node:
                return True
            for edge in graph.out_edges(cur):
                if edge.id == blocked_edge or edge.dst in seen:
                    continue
                seen.add(edge.dst)
                stack.append(edge.dst)
        return False

    return reaches(graph.edge(e1).dst, nid, e2) and reaches(
        nid, graph.edge(e2).src, e1
    )


def verify_dfg(
    graph: CFG, dfg: DFG, structure: ProgramStructure | None = None
) -> None:
    """Raise :class:`DFGVerificationError` on any Definition 6 violation."""
    ps = structure if structure is not None else ProgramStructure(graph)

    def fail(message: str) -> None:
        raise DFGVerificationError(message)

    def check_edge(port: Port, head: Head) -> None:
        var = port.var
        if head.var != var:
            fail(f"variable mismatch on {port} -> {head}")
        e1 = tail_location(graph, port)
        e2 = head_location(graph, head)
        k1, k2 = edge_key(e1), edge_key(e2)
        if not ps.dom.dominates(k1, k2):
            fail(f"{port} -> {head}: e{e1} does not dominate e{e2}")
        if not ps.pdom.dominates(k2, k1):
            fail(f"{port} -> {head}: e{e2} does not postdominate e{e1}")
        if ps.edge_class[e1] != ps.edge_class[e2]:
            fail(f"{port} -> {head}: e{e1}, e{e2} not cycle equivalent")
        if var == CTRL_VAR:
            return  # the dummy variable is never assigned
        if e1 == e2:
            return  # production and consumption coincide: nothing between
        for node in graph.assign_nodes():
            if node.target != var:
                continue
            if _interferes(graph, node.id, e1, e2):
                fail(
                    f"{port} -> {head}: assignment to {var} at node "
                    f"{node.id} lies between e{e1} and e{e2}"
                )

    # Condition checks on every dependence edge.
    for port, heads in dfg._build_heads().items():
        for head in heads:
            check_edge(port, head)
        # Multiedge total order (Section 3.3).
        locations = [head_location(graph, h) for h in heads]
        for i, a in enumerate(locations):
            for b in locations[i + 1 :]:
                ka, kb = edge_key(a), edge_key(b)
                ordered = (
                    ps.dom.dominates(ka, kb) and ps.pdom.dominates(kb, ka)
                ) or (ps.dom.dominates(kb, ka) and ps.pdom.dominates(ka, kb))
                if not ordered and a != b:
                    fail(
                        f"multiedge at {port}: heads on e{a} and e{b} are "
                        "not dominance ordered"
                    )

    # Operator wiring completeness.
    for (nid, var), ports in dfg.switch_ports.items():
        if (nid, var) not in dfg.switch_inputs:
            fail(f"switch operator ({nid}, {var}) has arms but no input")
        labels = {p.label for p in ports}
        valid = {e.label for e in graph.out_edges(nid)}
        if not labels <= valid:
            fail(f"switch operator ({nid}, {var}) has unknown arm {labels}")
    for port, inputs in dfg.merge_inputs.items():
        expected = {e.id for e in graph.in_edges(port.node)}
        if set(inputs) != expected:
            fail(
                f"merge operator {port} inputs {set(inputs)} != in-edges "
                f"{expected}"
            )

    # Producers resolve to definitions/entries through operators only.
    for (nid, var), src in dfg.use_sources.items():
        if var == CTRL_VAR:
            continue
        node = graph.node(nid)
        if var not in node.uses():
            fail(f"use source recorded for non-use ({nid}, {var})")
        if src.kind is PortKind.DEF:
            producer = graph.node(src.node)
            if producer.target != var:
                fail(f"def port {src} does not define {var}")
