"""The dependence flow graph data structure.

A DFG overlays *dependence edges* on a CFG.  Each dependence edge for a
variable ``x`` runs from a **producer port** to a **consumer head**:

Producers (:class:`Port`):

* ``ENTRY``  -- the value of ``x`` at ``start`` (the paper roots the DFG
  at ``start`` this way);
* ``DEF``    -- the output of an assignment node defining ``x``;
* ``SWITCH`` -- one arm of a switch operator: dependences entering a
  conditional region are split per branch (Section 2.4, "intercepted by a
  switch operator at the conditional branch");
* ``MERGE``  -- a merge operator combining the dependences arriving along
  a merge node's in-edges (the DFG's analogue of a phi-function).

Consumers (:class:`Head`):

* ``USE``       -- a node reading ``x`` in its expression;
* ``SWITCH_IN`` -- the input of a switch operator;
* ``MERGE_IN``  -- one input of a merge operator (tagged with the CFG
  in-edge it arrives along).

A producer with several consumers is a **multiedge** (Section 3.3): its
consumers all lie on every path from the producer, totally ordered by
dominance/postdominance, which is what the multiedge dataflow rules rely
on.

Control edges: statements whose expression mentions no variable still
need a dependence rooting them in their control region (Section 3.3,
"introduce a dummy variable defined at start and used in each statement
that has no other variables on its right hand side").  The dummy variable
is :data:`CTRL_VAR`; its dependences are never bypassed, so they always
thread through the governing switch and merge operators -- which is what
lets the constant-propagation algorithm observe deadness of
constant-operand statements.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.cfg.graph import CFG

#: The dummy control variable of Section 3.3.
CTRL_VAR = "@ctrl"


class PortKind(enum.Enum):
    ENTRY = "entry"
    DEF = "def"
    SWITCH = "switch"
    MERGE = "merge"


@dataclass(frozen=True)
class Port:
    """A dependence producer.  ``node`` is -1 for ``ENTRY``; ``label`` is
    the branch arm for ``SWITCH`` ports."""

    kind: PortKind
    var: str
    node: int = -1
    label: str | None = None

    def __repr__(self) -> str:
        if self.kind is PortKind.ENTRY:
            return f"entry({self.var})"
        if self.kind is PortKind.SWITCH:
            return f"switch({self.node},{self.var},{self.label})"
        return f"{self.kind.value}({self.node},{self.var})"


class HeadKind(enum.Enum):
    USE = "use"
    SWITCH_IN = "switch_in"
    MERGE_IN = "merge_in"


@dataclass(frozen=True)
class Head:
    """A dependence consumer.  ``edge`` is the merge in-edge id for
    ``MERGE_IN`` heads (-1 otherwise)."""

    kind: HeadKind
    node: int
    var: str
    edge: int = -1

    def __repr__(self) -> str:
        if self.kind is HeadKind.MERGE_IN:
            return f"merge_in({self.node},{self.var},e{self.edge})"
        return f"{self.kind.value}({self.node},{self.var})"


@dataclass(frozen=True)
class DepEdge:
    """One dependence edge: ``source`` produces the value ``head``
    consumes."""

    source: Port
    head: Head


@dataclass
class DFG:
    """A constructed dependence flow graph.

    The primary tables are consumer-to-producer (each consumer has exactly
    one producer); ``heads_of`` / ``dep_edges`` are the derived
    producer-to-consumers (multiedge) view.
    """

    graph: CFG
    #: (node id, var) -> producer feeding that use.
    use_sources: dict[tuple[int, str], Port] = field(default_factory=dict)
    #: (switch node id, var) -> producer feeding the switch operator.
    switch_inputs: dict[tuple[int, str], Port] = field(default_factory=dict)
    #: merge Port -> {in-edge id -> producer feeding that input}.
    merge_inputs: dict[Port, dict[int, Port]] = field(default_factory=dict)
    #: switch ports that exist (demanded), per (switch node, var).
    switch_ports: dict[tuple[int, str], list[Port]] = field(
        default_factory=dict
    )
    #: the memoized resolver the builder used; later phases may pose new
    #: demand-driven source queries through it (see DependenceResolver).
    resolver: object = field(default=None, repr=False, compare=False)

    # -- derived views ---------------------------------------------------------

    def __post_init__(self) -> None:
        self._heads: dict[Port, list[Head]] | None = None

    def switch_input(self, port: Port) -> Port:
        """The producer feeding the switch operator a SWITCH port belongs
        to (all arms of one operator share the input)."""
        return self.switch_inputs[(port.node, port.var)]

    def _build_heads(self) -> dict[Port, list[Head]]:
        heads: dict[Port, list[Head]] = defaultdict(list)
        for (nid, var), src in self.use_sources.items():
            heads[src].append(Head(HeadKind.USE, nid, var))
        for (nid, var), src in self.switch_inputs.items():
            heads[src].append(Head(HeadKind.SWITCH_IN, nid, var))
        for port, inputs in self.merge_inputs.items():
            for eid, src in inputs.items():
                heads[src].append(
                    Head(HeadKind.MERGE_IN, port.node, port.var, eid)
                )
        return dict(heads)

    def heads_of(self, port: Port) -> list[Head]:
        """The consumers of a producer -- the heads of its multiedge."""
        if self._heads is None:
            self._heads = self._build_heads()
        return self._heads.get(port, [])

    def ports(self) -> list[Port]:
        """Every producer port in the graph, in a deterministic order
        (clients seed worklists from this; hash order would make work
        counts vary run to run)."""
        found: set[Port] = set()
        found.update(self.use_sources.values())
        found.update(self.switch_inputs.values())
        for inputs in self.merge_inputs.values():
            found.update(inputs.values())
        found.update(self.merge_inputs.keys())
        for ports in self.switch_ports.values():
            found.update(ports)
        return sorted(
            found,
            key=lambda p: (p.node, p.kind.value, p.var, p.label or ""),
        )

    def dep_edges(self) -> list[DepEdge]:
        """All dependence edges, producer-to-consumer."""
        if self._heads is None:
            self._heads = self._build_heads()
        return [
            DepEdge(src, head)
            for src, heads in self._heads.items()
            for head in heads
        ]

    def multiedges(self) -> dict[Port, list[Head]]:
        """Producers with at least two consumers."""
        if self._heads is None:
            self._heads = self._build_heads()
        return {p: hs for p, hs in self._heads.items() if len(hs) > 1}

    def size(self, include_control: bool = True) -> int:
        """Number of dependence edges -- the F1 size measure.  With
        ``include_control=False`` the dummy-variable control edges are
        excluded, giving the pure data-dependence count comparable to
        def-use chains and SSA edges."""
        def counts(var: str) -> bool:
            return include_control or var != CTRL_VAR

        return (
            sum(1 for (_, v) in self.use_sources if counts(v))
            + sum(1 for (_, v) in self.switch_inputs if counts(v))
            + sum(
                len(inputs)
                for port, inputs in self.merge_inputs.items()
                if counts(port.var)
            )
        )

    def variables(self) -> set[str]:
        """Variables with at least one dependence edge."""
        return {v for (_, v) in self.use_sources} | {
            p.var for p in self.merge_inputs
        }
