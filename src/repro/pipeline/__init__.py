"""Analysis pipeline: registered passes, caching, invalidation, metrics.

* :class:`~repro.pipeline.manager.AnalysisManager` -- memoized access to
  every registered analysis of one CFG, with mutation-driven
  invalidation and per-pass (work, time, hit/miss) accounting;
* :func:`~repro.pipeline.passes.default_registry` -- the standard pass
  DAG (dominance, cycle equivalence, SESE, CDG, DFG, SSA, def-use
  chains, four constant propagators, classic dataflow);
* :class:`~repro.util.metrics.Metrics` is re-exported for convenience.
"""

from repro.pipeline.manager import (
    AnalysisManager,
    PassRegistry,
    PassSpec,
    PassStats,
)
from repro.pipeline.passes import default_registry
from repro.util.metrics import Metrics, Span

__all__ = [
    "AnalysisManager",
    "PassRegistry",
    "PassSpec",
    "PassStats",
    "Metrics",
    "Span",
    "default_registry",
]
