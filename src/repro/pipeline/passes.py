"""The default pass registry: every analysis in the project, as a DAG.

::

    cfg ─┬─ csr ─┬─ dfs
         │       ├─ dom ──────────┐
         │       ├─ pdom ─┬─ cdg  │
         │       └─ cycle-equiv ──┴─ sese ─┬─ dfg ─┬─ ssa ── sccp
         │                                 │       ├─ constprop
         │                                 │       └─ (copyprop, EPR too)
         │                                 └─ regions ── region-summaries
         ├─ liveness
         ├─ reaching
         ├─ available / pavailable
         ├─ defuse ── constprop-defuse
         ├─ constprop-cfg
         └─ arena ── arena-dataflow

The ``csr`` pass snapshots the CFG into flat arrays
(:class:`repro.perf.csr.CSRGraph`); the graph-structure passes all run
on it, so the snapshot is built once per CFG shape version and shared.

Shape-only passes (``uses_exprs=False``) read the graph's nodes, edges
and assignment targets but never an expression: dominance, cycle
equivalence, SESE structure and the CDG all survive copy propagation and
constant folding of right-hand sides.  Everything that reads operands --
the DFG, def-use chains, liveness, reaching definitions, and all four
constant propagators -- recomputes after an expression rewrite.

Pass bodies receive ``(graph, deps, counter)`` and must be pure
functions of the graph and their declared dependencies: the manager
caches results on that assumption.
"""

from __future__ import annotations

from repro.controldep.cdg import control_dependence_items
from repro.controldep.cycle_equiv import cycle_equivalence
from repro.controldep.sese import ProgramStructure
from repro.core.build import build_dfg
from repro.core.constprop import dfg_constant_propagation
from repro.dataflow.available import (
    available_expressions,
    partially_available_expressions,
)
from repro.dataflow.liveness import live_variables
from repro.dataflow.reaching import reaching_definitions
from repro.defuse.chains import build_def_use_chains
from repro.defuse.constprop import defuse_constant_propagation
from repro.graphs.dfs import depth_first_search_csr
from repro.graphs.dominance import edge_dominators, edge_postdominators
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.perf.csr import build_csr
from repro.pipeline.manager import PassRegistry, register_result_codec
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.ssa.sccp import sparse_conditional_constant_propagation

_REGISTRY = PassRegistry()


def default_registry() -> PassRegistry:
    """The shared registry of standard passes (do not mutate)."""
    return _REGISTRY


@_REGISTRY.register(
    "cfg", uses_exprs=False, description="validated normalized CFG"
)
def _cfg(graph, deps, counter):
    from repro.robust.validate import check_cfg

    check_cfg(graph, normalized=True)
    return graph


@_REGISTRY.register(
    "csr", deps=("cfg",), uses_exprs=False,
    description="flat-array (CSR) snapshot of the CFG shape",
)
def _csr(graph, deps, counter):
    result = build_csr(graph)
    counter.tick("csr_entries", result.n + result.m)
    return result


@_REGISTRY.register(
    "dfs", deps=("cfg", "csr"), uses_exprs=False,
    description="depth-first numbering and edge classification",
)
def _dfs(graph, deps, counter):
    result = depth_first_search_csr(deps["csr"])
    counter.tick("dfs_nodes_numbered", len(result.pre_number))
    return result


@_REGISTRY.register(
    "dom", deps=("cfg", "csr"), uses_exprs=False,
    description="edge dominator tree (split graph)",
)
def _dom(graph, deps, counter):
    result = edge_dominators(graph, csr=deps["csr"])
    counter.tick("dom_tree_entries", len(result.idom))
    return result


@_REGISTRY.register(
    "pdom", deps=("cfg", "csr"), uses_exprs=False,
    description="edge postdominator tree (split graph)",
)
def _pdom(graph, deps, counter):
    result = edge_postdominators(graph, csr=deps["csr"])
    counter.tick("pdom_tree_entries", len(result.idom))
    return result


@_REGISTRY.register(
    "cycle-equiv", deps=("cfg", "csr"), uses_exprs=False,
    description="O(E) cycle-equivalence classes of CFG edges",
)
def _cycle_equiv(graph, deps, counter):
    return cycle_equivalence(graph, counter, csr=deps["csr"])


@_REGISTRY.register(
    "sese", deps=("cfg", "dom", "pdom", "cycle-equiv"), uses_exprs=False,
    description="canonical SESE regions and the program structure tree",
)
def _sese(graph, deps, counter):
    return ProgramStructure(
        graph,
        dom=deps["dom"],
        pdom=deps["pdom"],
        edge_class=deps["cycle-equiv"],
        counter=counter,
    )


@_REGISTRY.register(
    "regions", deps=("cfg", "sese"), uses_exprs=False,
    description="closure-verified per-region equation systems (PST)",
)
def _regions(graph, deps, counter):
    from repro.regions.systems import build_systems

    return build_systems(graph, deps["sese"], counter)


@_REGISTRY.register(
    "region-summaries", deps=("cfg", "csr", "sese", "regions"),
    description="hierarchical region-summary solve of the four core "
                "analyses (decoded per-edge facts)",
)
def _region_summaries(graph, deps, counter):
    from repro.regions.hierarchical import core_problems, solve_hierarchical

    csr = deps["csr"]
    problems = core_problems(graph, csr)
    out = {}
    for name, problem in sorted(problems.items()):
        masks = solve_hierarchical(csr, deps["regions"], problem, counter)
        out[name] = {
            csr.edge_ids[e]: masks[e] for e in range(csr.m)
        }
    return out


@_REGISTRY.register(
    "cdg", deps=("cfg", "pdom"), uses_exprs=False,
    description="Ferrante-Ottenstein-Warren control dependence sets",
)
def _cdg(graph, deps, counter):
    return control_dependence_items(graph, pdom=deps["pdom"], counter=counter)


@_REGISTRY.register(
    "dfg", deps=("cfg", "sese"),
    description="dependence flow graph (demand-driven, region bypassing)",
)
def _dfg(graph, deps, counter):
    return build_dfg(graph, structure=deps["sese"], counter=counter)


@_REGISTRY.register(
    "defuse", deps=("cfg",),
    description="def-use chains from reaching definitions",
)
def _defuse(graph, deps, counter):
    return build_def_use_chains(graph, counter)


@_REGISTRY.register(
    "liveness", deps=("cfg", "csr"), description="live variables per edge"
)
def _liveness(graph, deps, counter):
    return live_variables(graph, counter=counter, csr=deps["csr"])


@_REGISTRY.register(
    "reaching", deps=("cfg", "csr"),
    description="reaching definitions per edge",
)
def _reaching(graph, deps, counter):
    return reaching_definitions(graph, counter, csr=deps["csr"])


@_REGISTRY.register(
    "available", deps=("cfg", "csr"),
    description="available expressions per edge (EPR safety substrate)",
)
def _available(graph, deps, counter):
    return available_expressions(graph, counter, csr=deps["csr"])


@_REGISTRY.register(
    "pavailable", deps=("cfg", "csr"),
    description="partially available expressions per edge (EPR profitability)",
)
def _pavailable(graph, deps, counter):
    return partially_available_expressions(graph, counter, csr=deps["csr"])


@_REGISTRY.register(
    "ssa", deps=("dfg",),
    description="pruned SSA derived from the DFG (no dominance frontier)",
)
def _ssa(graph, deps, counter):
    return build_ssa_from_dfg(graph, dfg=deps["dfg"], counter=counter)


@_REGISTRY.register(
    "constprop", deps=("dfg",),
    description="DFG constant propagation (Section 4, possible-paths)",
)
def _constprop(graph, deps, counter):
    return dfg_constant_propagation(graph, dfg=deps["dfg"], counter=counter)


@_REGISTRY.register(
    "constprop-cfg", deps=("cfg",),
    description="Kildall vector constant propagation (Figure 4a baseline)",
)
def _constprop_cfg(graph, deps, counter):
    return cfg_constant_propagation(graph, counter)


@_REGISTRY.register(
    "constprop-defuse", deps=("defuse",),
    description="def-use chain constant propagation (all-paths baseline)",
)
def _constprop_defuse(graph, deps, counter):
    return defuse_constant_propagation(graph, chains=deps["defuse"], counter=counter)


@_REGISTRY.register(
    "sccp", deps=("ssa",),
    description="sparse conditional constant propagation over SSA",
)
def _sccp(graph, deps, counter):
    return sparse_conditional_constant_propagation(deps["ssa"], counter=counter)


@_REGISTRY.register(
    "ntscd", deps=("cfg",), uses_exprs=False,
    description="non-termination-sensitive strong control dependence "
                "(Chalupa et al.)",
)
def _ntscd(graph, deps, counter):
    from repro.controldep.ntscd import ntscd

    return ntscd(graph, counter)


@_REGISTRY.register(
    "sparse-range", deps=("cfg",),
    description="sparse interval range analysis with branch refinement "
                "(live-range-splitting engine)",
)
def _sparse_range(graph, deps, counter):
    from repro.sparse.range_analysis import range_analysis

    return range_analysis(graph, counter)


@_REGISTRY.register(
    "sparse-taint", deps=("cfg",),
    description="sparse forward taint tracking (entry values to "
                "prints/stores)",
)
def _sparse_taint(graph, deps, counter):
    from repro.sparse.taint import taint_analysis

    return taint_analysis(graph, counter=counter)


@_REGISTRY.register(
    "scvn", deps=("ssa", "sccp"),
    description="sparse conditional value numbering over SCCP facts",
)
def _scvn(graph, deps, counter):
    from repro.sparse.scvn import sparse_value_numbering

    return sparse_value_numbering(deps["ssa"], deps["sccp"], counter)


@_REGISTRY.register(
    "arena", deps=("cfg",),
    description="struct-of-arrays arena lowering over an interned "
                "expression pool",
)
def _arena(graph, deps, counter):
    from repro.arena import ExpressionPool, lower_cfg

    pool = ExpressionPool(counter=counter)
    return (pool, lower_cfg(graph, pool, counter=counter))


@_REGISTRY.register(
    "arena-dataflow", deps=("arena",),
    description="fused arena solve: the four bitset analyses plus vector "
                "constant propagation in one sweep",
)
def _arena_dataflow(graph, deps, counter):
    from repro.arena import analyze_arena

    pool, arena = deps["arena"]
    return analyze_arena(arena, pool, counter=counter)


def _arena_encode(result) -> bytes:
    """Export the ``arena`` pass as its RPA1 wire payload (a one-program
    corpus) instead of a pickle: the versioned varint format is smaller,
    and decode rebuilds the pool's derived tables from scratch -- a
    detach by construction."""
    from repro.arena.arena import ArenaCorpus

    pool, arena = result
    return ArenaCorpus(pool, [arena]).to_bytes()


def _arena_decode(blob: bytes):
    from repro.arena.arena import ArenaCorpus

    corpus = ArenaCorpus.from_bytes(blob)
    return (corpus.pool, corpus.programs[0])


register_result_codec("arena", _arena_encode, _arena_decode)
