"""The analysis pipeline manager: keyed passes, memoization, invalidation.

Every analysis in the project (dominance, cycle equivalence, SESE
structure, the DFG, SSA, def-use chains, the constant propagators, ...)
is registered as a :class:`PassSpec` with declared dependencies.  An
:class:`AnalysisManager` bound to one CFG resolves passes on demand,
caches each result, and attributes (work units, wall-clock time, cache
hits/misses) per pass through a shared :class:`repro.util.metrics.Metrics`.

Invalidation is driven by the CFG's two mutation counters:

* ``shape_version`` changes (nodes or edges added/removed) drop every
  cached result -- all passes are downstream of the graph's shape;
* ``expr_version`` changes (in-place expression rewrites announced via
  :meth:`repro.cfg.graph.CFG.note_rewrite`) drop only the passes that
  declared ``uses_exprs=True``.  Copy propagation therefore keeps the
  dominator trees, cycle-equivalence classes and SESE structure warm --
  it rewrites operands, not control structure or assignment targets --
  while the DFG, def-use chains and every constant propagator recompute.

Explicit :meth:`AnalysisManager.invalidate` cascades to declared
transitive dependents, for callers that know precisely what they dirtied.

This is the scheduling substrate the ROADMAP's sharding/batching items
need: a pass that is registered, cached and invalidated here can later be
farmed out, because its inputs and outputs are explicit.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.cfg.graph import CFG
from repro.util.counters import WorkCounter
from repro.util.metrics import Metrics

#: Serialization protocol for exported pass results.  Pinned (rather
#: than ``pickle.HIGHEST_PROTOCOL``) so the bytes a cache entry holds do
#: not silently change shape under an interpreter upgrade without an
#: :data:`repro.serve.cache.ENGINE_VERSION` bump.
EXPORT_PICKLE_PROTOCOL = 4

#: Per-pass ``(encode, decode)`` overrides for result export/import.
#: Passes whose results have a better wire form than a pickle register
#: one here (the ``arena`` pass ships its RPA1 corpus payload); every
#: other pass gets the default pickle codec.  Module-level so codecs
#: survive :meth:`PassRegistry.clone`.
_RESULT_CODECS: dict[
    str, tuple[Callable[[object], bytes], Callable[[bytes], object]]
] = {}


def register_result_codec(
    name: str,
    encode: Callable[[object], bytes],
    decode: Callable[[bytes], object],
) -> None:
    """Override the export/import serialization for pass ``name``."""
    _RESULT_CODECS[name] = (encode, decode)

#: A pass body: receives the graph, its resolved dependencies (keyed by
#: pass name), and the shared work counter; returns the analysis result.
BuildFn = Callable[[CFG, Mapping[str, object], WorkCounter], object]


@dataclass(frozen=True)
class PassSpec:
    """A registered analysis pass.

    ``uses_exprs`` declares whether the result reads node *expressions*
    (operands / predicates).  Passes of pure graph shape plus assignment
    targets -- dominance, cycle equivalence, SESE regions -- set it False
    and survive expression-only rewrites.
    """

    name: str
    build: BuildFn
    deps: tuple[str, ...] = ()
    uses_exprs: bool = True
    description: str = ""


class PassRegistry:
    """Named passes with a dependency DAG (registration order = topological)."""

    def __init__(self) -> None:
        self._specs: dict[str, PassSpec] = {}

    def register(
        self,
        name: str,
        deps: tuple[str, ...] = (),
        uses_exprs: bool = True,
        description: str = "",
    ) -> Callable[[BuildFn], BuildFn]:
        """Decorator registering ``fn`` as the body of pass ``name``.

        Dependencies must already be registered, which forces acyclicity
        and makes registration order a topological order.
        """

        def decorate(fn: BuildFn) -> BuildFn:
            if name in self._specs:
                raise ValueError(f"pass {name!r} registered twice")
            for dep in deps:
                if dep not in self._specs:
                    raise ValueError(
                        f"pass {name!r} depends on unregistered {dep!r}"
                    )
            self._specs[name] = PassSpec(
                name, fn, tuple(deps), uses_exprs, description
            )
            return fn

        return decorate

    def clone(self) -> "PassRegistry":
        """An independent registry with the same specs, for callers that
        want to register extra passes without mutating the shared default
        registry (whose pass list is part of the profiling/chaos surface)."""
        dup = PassRegistry()
        dup._specs = dict(self._specs)
        return dup

    def spec(self, name: str) -> PassSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(self._specs)
            raise KeyError(f"unknown pass {name!r}; registered: {known}") from None

    def names(self) -> list[str]:
        """All pass names in registration (= topological) order."""
        return list(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[PassSpec]:
        return iter(self._specs.values())

    def downstream(self, *names: str) -> set[str]:
        """``names`` plus every pass that transitively depends on them."""
        affected = set(names)
        for name in names:
            self.spec(name)  # raise on unknown
        changed = True
        while changed:
            changed = False
            for spec in self._specs.values():
                if spec.name not in affected and affected & set(spec.deps):
                    affected.add(spec.name)
                    changed = True
        return affected


@dataclass
class PassStats:
    """Per-pass cache and cost accounting."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    work: dict[str, int] = field(default_factory=dict)
    wall: float = 0.0

    def as_dict(self) -> dict:
        return {
            "cache": {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            },
            "work": dict(sorted(self.work.items())),
            "work_total": sum(self.work.values()),
            "wall_ms": round(self.wall * 1e3, 3),
        }


class AnalysisManager:
    """Memoized, invalidation-aware access to analyses of one CFG.

    >>> from repro.cfg.builder import build_cfg
    >>> from repro.lang.parser import parse_program
    >>> g = build_cfg(parse_program("x := 1; print x;"))
    >>> m = AnalysisManager(g)
    >>> m.get("sese") is m.get("sese")   # warm query: same object
    True
    >>> m.stats["sese"].hits, m.stats["sese"].misses
    (1, 1)
    """

    def __init__(
        self,
        graph: CFG,
        registry: PassRegistry | None = None,
        metrics: Metrics | None = None,
        policy: "object | None" = None,
    ) -> None:
        if registry is None:
            from repro.pipeline.passes import default_registry

            registry = default_registry()
        self.graph = graph
        self.registry = registry
        self.metrics = metrics if metrics is not None else Metrics()
        #: Optional :class:`repro.robust.fallback.DegradationPolicy` (or
        #: anything with its ``run_pass(manager, spec, deps)`` shape).
        #: When set, every pass body runs through it, gaining oracle
        #: fallback, cross-checks, deadlines and fault injection; when
        #: None, passes run direct with zero overhead.
        self.policy = policy
        self._cache: dict[str, object] = {}
        self.stats: dict[str, PassStats] = {}
        self._seen_shape = graph.shape_version
        self._seen_exprs = graph.expr_version

    # -- cache bookkeeping -------------------------------------------------

    def _stats(self, name: str) -> PassStats:
        return self.stats.setdefault(name, PassStats())

    def _drop(self, names: set[str]) -> None:
        for name in names & self._cache.keys():
            del self._cache[name]
            self._stats(name).invalidations += 1

    def refresh(self) -> None:
        """Apply any invalidation implied by graph mutations since the
        last query.  Called automatically by every :meth:`get`."""
        if self.graph.shape_version != self._seen_shape:
            self._drop(set(self._cache))
        elif self.graph.expr_version != self._seen_exprs:
            self._drop(
                {
                    name
                    for name in self._cache
                    if self.registry.spec(name).uses_exprs
                }
            )
        self._seen_shape = self.graph.shape_version
        self._seen_exprs = self.graph.expr_version

    def invalidate(self, *names: str) -> set[str]:
        """Explicitly drop ``names`` and their transitive dependents;
        returns the set of passes that were actually cached."""
        affected = self.registry.downstream(*names)
        dropped = affected & self._cache.keys()
        self._drop(affected)
        return dropped

    def cached(self, name: str) -> bool:
        """Is ``name`` warm right now (after applying pending invalidation)?"""
        self.refresh()
        return name in self._cache

    def adopt(self, name: str, result: object) -> None:
        """Insert an externally computed result for pass ``name`` into
        the cache, as if the pass had just run.

        This is how incremental producers (the region edit session
        maintains the ``sese`` structure across statement edits) hand
        their up-to-date results to the pipeline so dependents reuse
        them instead of recomputing.  Pending version invalidation is
        applied *first*, so an adopt survives exactly until the next
        graph mutation."""
        self.registry.spec(name)  # unknown names raise, as get() would
        self.refresh()
        self._cache[name] = result
        self._stats(name).work["adopted"] = (
            self._stats(name).work.get("adopted", 0) + 1
        )

    # -- resolution --------------------------------------------------------

    def get(self, name: str) -> object:
        """The (possibly cached) result of pass ``name``."""
        self.refresh()
        return self._resolve(name)

    def _resolve(self, name: str) -> object:
        spec = self.registry.spec(name)
        stats = self._stats(name)
        if name in self._cache:
            stats.hits += 1
            with self.metrics.span(f"pass:{name}", cached=True):
                pass
            return self._cache[name]
        stats.misses += 1
        # Dependencies resolve *before* the span opens, so their work and
        # time are attributed to themselves, not to this pass.
        deps = {dep: self._resolve(dep) for dep in spec.deps}
        with self.metrics.span(f"pass:{name}", cached=False) as span:
            if self.policy is None:
                result = spec.build(self.graph, deps, self.metrics.counter)
            else:
                result = self.policy.run_pass(self, spec, deps)
        for key, amount in span.work.items():
            stats.work[key] = stats.work.get(key, 0) + amount
        stats.wall += span.duration
        self._cache[name] = result
        return result

    # -- export / import (the serve daemon's cache boundary) ----------------

    def export_result(self, name: str) -> bytes:
        """Pass ``name``'s result as a detached byte blob.

        **Detach discipline:** many results capture the live CFG (the
        ``sese`` structure, the DFG, the validated graph itself).
        Handing such an object to a cross-run cache would let a later
        mutation of this manager's graph -- an :class:`~repro.regions.
        edits.EditSession` rewriting a statement -- silently corrupt the
        "cached" answer, because both alias the same mutable graph.
        Serializing *immediately, at export time* snapshots the result:
        the returned bytes share no state with this manager, and
        :meth:`import_result` materializes a fresh object graph on the
        far side.  The regression test
        ``tests/test_serve_cache.py::test_export_detaches_from_live_graph``
        mutates the warm graph after exporting and asserts the cached
        answer is unaffected.
        """
        result = self.get(name)
        codec = _RESULT_CODECS.get(name)
        if codec is not None:
            return codec[0](result)
        return pickle.dumps(result, protocol=EXPORT_PICKLE_PROTOCOL)

    def import_result(self, name: str, blob: bytes) -> object:
        """Materialize an exported blob and adopt it as pass ``name``.

        The caller must guarantee the blob was exported for *this
        manager's source content* (the serve cache keys entries by
        source SHA-256 and engine version for exactly this reason);
        adopting a blob from a different program would poison dependents.
        """
        codec = _RESULT_CODECS.get(name)
        if codec is not None:
            result = codec[1](blob)
        else:
            result = pickle.loads(blob)
        self.adopt(name, result)
        return result

    def run_all(self, names: list[str] | None = None) -> dict[str, object]:
        """Resolve ``names`` (default: every registered pass) in
        topological order; returns ``{name: result}``."""
        self.refresh()
        wanted = names if names is not None else self.registry.names()
        return {name: self._resolve(name) for name in wanted}

    # -- reporting ---------------------------------------------------------

    def report(self) -> list[dict]:
        """Per-pass profile rows in registration order (touched passes only)."""
        rows = []
        for name in self.registry.names():
            stats = self.stats.get(name)
            if stats is None:
                continue
            rows.append({"pass": name, **stats.as_dict()})
        return rows

    def rebind(self, graph: CFG) -> None:
        """Point the manager at a replacement graph (e.g. the transformed
        copy EPR returns), dropping the whole cache."""
        self._drop(set(self._cache))
        self.graph = graph
        self._seen_shape = graph.shape_version
        self._seen_exprs = graph.expr_version
