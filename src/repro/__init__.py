"""repro -- dependence flow graphs for program analysis.

A production-quality reproduction of R. Johnson and K. Pingali,
*Dependence-Based Program Analysis*, PLDI 1993: the dependence flow graph
(DFG) and its forward/backward dataflow algorithms, together with every
substrate they rest on (a small imperative language, normalized CFGs,
dominance, the O(E) cycle-equivalence/SESE-region algorithm) and every
baseline they are measured against (def-use chains, SSA + SCCP, Kildall
vector constant propagation, Morel-Renvoise partial redundancy
elimination).

Quickstart::

    from repro import parse_program, build_cfg, build_dfg
    from repro import dfg_constant_propagation, optimize

    program = parse_program("x := 2; y := x + 3; print y;")
    graph = build_cfg(program)
    dfg = build_dfg(graph)
    constants = dfg_constant_propagation(graph, dfg)
    optimized, report = optimize(program)

See ``examples/`` for runnable walkthroughs and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro.cfg.builder import build_cfg
from repro.cfg.dot import cfg_to_dot
from repro.cfg.graph import CFG, Edge, Node, NodeKind
from repro.cfg.interp import run_cfg
from repro.cfg.normalize import normalize, split_critical_edges
from repro.controldep.cdg import (
    control_dependence_edges,
    control_dependence_nodes,
)
from repro.controldep.cycle_equiv import cycle_equivalence
from repro.controldep.factored import FactoredCDG, build_factored_cdg
from repro.controldep.sese import ProgramStructure, Region, build_program_structure
from repro.core.anticipate import AnticipatabilityResult, dfg_anticipatability
from repro.core.build import build_dfg
from repro.core.constprop import DFGConstants, dfg_constant_propagation
from repro.core.dce import dfg_dead_code_elimination
from repro.core.loopdeps import (
    LoopDependence,
    analyze_loop_dependences,
    parallelizable_loops,
)
from repro.core.dfg import CTRL_VAR, DFG, DepEdge, Head, HeadKind, Port, PortKind
from repro.core.epr import EPRResult, eliminate_partial_redundancies, epr_all
from repro.core.verify import verify_dfg
from repro.defuse.chains import DefUseChains, build_def_use_chains
from repro.defuse.constprop import defuse_constant_propagation
from repro.lang.ast_nodes import Program
from repro.lang.interp import ExecutionResult, run_program
from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import pretty_expr, pretty_program
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.opt.copyprop import copy_propagation
from repro.opt.cfg_epr import cfg_eliminate_partial_redundancies
from repro.opt.pipeline import optimize
from repro.pipeline.manager import AnalysisManager
from repro.pipeline.passes import default_registry
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.ssa.sccp import sparse_conditional_constant_propagation
from repro.ssa.ssagraph import SSAForm
from repro.util.counters import WorkCounter
from repro.util.metrics import Metrics

__version__ = "1.0.0"

__all__ = [
    "AnalysisManager",
    "AnticipatabilityResult",
    "CFG",
    "CTRL_VAR",
    "DFG",
    "DFGConstants",
    "DefUseChains",
    "DepEdge",
    "EPRResult",
    "Edge",
    "ExecutionResult",
    "FactoredCDG",
    "Head",
    "HeadKind",
    "Metrics",
    "Node",
    "NodeKind",
    "Port",
    "PortKind",
    "Program",
    "ProgramStructure",
    "Region",
    "SSAForm",
    "WorkCounter",
    "build_cfg",
    "build_def_use_chains",
    "build_dfg",
    "build_factored_cdg",
    "build_program_structure",
    "build_ssa_cytron",
    "build_ssa_from_dfg",
    "cfg_constant_propagation",
    "cfg_eliminate_partial_redundancies",
    "copy_propagation",
    "cfg_to_dot",
    "control_dependence_edges",
    "control_dependence_nodes",
    "cycle_equivalence",
    "default_registry",
    "defuse_constant_propagation",
    "dfg_anticipatability",
    "dfg_constant_propagation",
    "dfg_dead_code_elimination",
    "eliminate_partial_redundancies",
    "analyze_loop_dependences",
    "parallelizable_loops",
    "epr_all",
    "normalize",
    "optimize",
    "parse_expr",
    "parse_program",
    "pretty_expr",
    "pretty_program",
    "run_cfg",
    "run_program",
    "sparse_conditional_constant_propagation",
    "split_critical_edges",
    "verify_dfg",
]
