"""Compressed-sparse-row snapshots of a CFG.

The dict-of-objects :class:`~repro.cfg.graph.CFG` is the right structure
for *mutation* -- stable ids survive node removal, edges are first-class
-- but its hot-path cost is brutal: every successor step is a dict probe
plus an attribute load on an ``Edge`` object.  A :class:`CSRGraph` is the
analysis-time twin: every node and edge is renumbered into a dense
``0..n-1`` / ``0..m-1`` index space and adjacency becomes three flat
integer arrays per direction (offsets / neighbor index / edge index), so
traversals touch nothing but ``list[int]`` indexing and locals.

Determinism: dense node order is the CFG's node-insertion order and the
per-node adjacency order is exactly the CFG's ``_out`` / ``_in`` edge
order, so every kernel that walks a snapshot visits in the same order as
its legacy dict-based twin -- class ids, DFS numberings and worklist
schedules come out identical, not merely equivalent.

Invalidation: a snapshot records the ``shape_version`` it was built
from.  The ``csr`` pass registered in
:mod:`repro.pipeline.passes` is shape-only (``uses_exprs=False``), so
the analysis manager drops it exactly when the graph's shape changes and
keeps it warm across expression rewrites; :func:`CSRGraph.check` guards
direct callers that hold a snapshot across mutations.
"""

from __future__ import annotations

from repro.cfg.graph import CFG
from repro.robust.errors import StaleSnapshotError


class CSRGraph:
    """An immutable flat-array view of one CFG shape version."""

    __slots__ = (
        "graph", "shape_version", "n", "m",
        "node_ids", "node_index", "edge_ids", "edge_index",
        "edge_src", "edge_dst",
        "succ_off", "succ_node", "succ_edge",
        "pred_off", "pred_node", "pred_edge",
        "start", "end", "memo",
    )

    def __init__(self, graph: CFG) -> None:
        self.graph = graph
        self.shape_version = graph.shape_version
        nodes = graph.nodes
        edges = graph.edges
        self.n = n = len(nodes)
        self.m = m = len(edges)

        #: dense index -> CFG node id (insertion order), and the inverse.
        self.node_ids: list[int] = list(nodes)
        self.node_index: dict[int, int] = {
            nid: i for i, nid in enumerate(self.node_ids)
        }
        #: dense index -> CFG edge id (insertion order), and the inverse.
        self.edge_ids: list[int] = list(edges)
        self.edge_index: dict[int, int] = {
            eid: i for i, eid in enumerate(self.edge_ids)
        }

        node_index = self.node_index
        edge_index = self.edge_index
        self.edge_src: list[int] = [0] * m
        self.edge_dst: list[int] = [0] * m
        for eid, edge in edges.items():
            e = edge_index[eid]
            self.edge_src[e] = node_index[edge.src]
            self.edge_dst[e] = node_index[edge.dst]

        # CSR adjacency in the CFG's own out-/in-edge order.
        out_lists = graph._out
        in_lists = graph._in
        self.succ_off = self._offsets(
            len(out_lists[nid]) for nid in self.node_ids
        )
        self.pred_off = self._offsets(
            len(in_lists[nid]) for nid in self.node_ids
        )
        self.succ_node: list[int] = [0] * m
        self.succ_edge: list[int] = [0] * m
        self.pred_node: list[int] = [0] * m
        self.pred_edge: list[int] = [0] * m
        edge_src, edge_dst = self.edge_src, self.edge_dst
        cursor = list(self.succ_off[:-1])
        for v, nid in enumerate(self.node_ids):
            for eid in out_lists[nid]:
                e = edge_index[eid]
                at = cursor[v]
                self.succ_node[at] = edge_dst[e]
                self.succ_edge[at] = e
                cursor[v] = at + 1
        cursor = list(self.pred_off[:-1])
        for v, nid in enumerate(self.node_ids):
            for eid in in_lists[nid]:
                e = edge_index[eid]
                at = cursor[v]
                self.pred_node[at] = edge_src[e]
                self.pred_edge[at] = e
                cursor[v] = at + 1

        self.start = node_index[graph.start] if graph.start in node_index else -1
        self.end = node_index[graph.end] if graph.end in node_index else -1

        #: Kernel scratch memo.  A snapshot is immutable, so derived
        #: arrays (dominator idoms, Euler tours) computed by one kernel
        #: are valid for every later kernel on the same snapshot; the
        #: dominance module keys entries by (kind, direction).
        self.memo: dict = {}

    @staticmethod
    def _offsets(degrees) -> list[int]:
        offsets = [0]
        total = 0
        for degree in degrees:
            total += degree
            offsets.append(total)
        return offsets

    # -- guards ------------------------------------------------------------

    @property
    def fresh(self) -> bool:
        """Does this snapshot still describe the graph's current shape?"""
        return self.shape_version == self.graph.shape_version

    def check(self) -> "CSRGraph":
        """Raise if the underlying CFG mutated since the snapshot."""
        if not self.fresh:
            raise StaleSnapshotError(
                f"stale CSR snapshot: built at shape_version "
                f"{self.shape_version}, graph is now at "
                f"{self.graph.shape_version}",
                phase="csr-check",
            )
        return self

    # -- convenience -------------------------------------------------------

    def succs(self, v: int) -> list[int]:
        """Dense successor indices of dense node ``v``."""
        return self.succ_node[self.succ_off[v]:self.succ_off[v + 1]]

    def preds(self, v: int) -> list[int]:
        """Dense predecessor indices of dense node ``v``."""
        return self.pred_node[self.pred_off[v]:self.pred_off[v + 1]]

    def __repr__(self) -> str:
        return (
            f"CSRGraph({self.n} nodes, {self.m} edges, "
            f"shape_version={self.shape_version})"
        )


def build_csr(graph: CFG) -> CSRGraph:
    """Snapshot ``graph`` into CSR form (O(V + E))."""
    return CSRGraph(graph)


def split_csr(csr: CSRGraph) -> tuple[list[int], list[int], int]:
    """The *split graph* of Definition 2 in CSR form.

    Every CFG edge is materialized as a vertex between its endpoints:
    vertices ``0..n-1`` are the CFG nodes (dense order) and vertex
    ``n + e`` is dense edge ``e``.  Returns ``(offsets, targets,
    num_vertices)`` for the successor direction; predecessors are the
    same arrays read through :func:`reverse_adjacency`.
    """
    n, m = csr.n, csr.m
    total = n + m
    offsets = [0] * (total + 1)
    # Node vertex v keeps its out-degree; every edge vertex has degree 1.
    for v in range(n):
        offsets[v + 1] = offsets[v] + (csr.succ_off[v + 1] - csr.succ_off[v])
    for e in range(m):
        offsets[n + e + 1] = offsets[n + e] + 1
    targets = [0] * offsets[total]
    for v in range(n):
        at = offsets[v]
        for i in range(csr.succ_off[v], csr.succ_off[v + 1]):
            targets[at] = n + csr.succ_edge[i]
            at += 1
    for e in range(m):
        targets[offsets[n + e]] = csr.edge_dst[e]
    return offsets, targets, total


def reverse_adjacency(
    offsets: list[int], targets: list[int], total: int
) -> tuple[list[int], list[int]]:
    """Transpose a CSR adjacency, preserving a stable source order."""
    degree = [0] * total
    for t in targets:
        degree[t] += 1
    roffsets = [0] * (total + 1)
    for v in range(total):
        roffsets[v + 1] = roffsets[v] + degree[v]
    rtargets = [0] * len(targets)
    cursor = list(roffsets[:-1])
    for v in range(total):
        for i in range(offsets[v], offsets[v + 1]):
            t = targets[i]
            rtargets[cursor[t]] = v
            cursor[t] += 1
    return roffsets, rtargets
