"""Performance subsystem: flat-array graph kernels and batch drivers.

Three layers, mirroring the plan in DESIGN.md section 8:

* :mod:`repro.perf.csr` -- an immutable :class:`~repro.perf.csr.CSRGraph`
  snapshot of a CFG: contiguous integer arrays for successors,
  predecessors and edge ids, built once per CFG shape version and cached
  as the ``csr`` pass in the analysis pipeline manager;
* :mod:`repro.perf.kernels` -- iterative array-based kernels (reverse
  postorder, DFS edge classification, Cooper-Harvey-Kennedy dominators)
  that the graph and control-dependence modules dispatch to;
* :mod:`repro.perf.bitset` + :mod:`repro.perf.batch` -- a bitset fast
  path for separable gen/kill dataflow problems and the ``repro bench``
  / ``repro batch`` workload drivers.

Everything here is a *fast path*: each kernel has a dict-based legacy
twin that remains the differential-testing oracle
(``tests/test_perf_equivalence.py`` holds the equivalence suite).
"""

from repro.perf.csr import CSRGraph, build_csr

__all__ = ["CSRGraph", "build_csr"]
