"""Bitset fast path for separable gen/kill dataflow problems.

The generic :func:`repro.dataflow.solver.solve_dataflow` manipulates
frozensets: every transfer allocates set objects and hashes elements.
For *separable* problems -- where the transfer is ``out = (in - kill) |
gen`` (or gen-then-kill) with per-node constant gen/kill sets -- the
whole fact domain can be numbered once and each fact packed into a
single Python int bitmask.  Meet is ``|`` or ``&`` of ints, transfer is
two bitwise ops, and a fact comparison is an int comparison: the solver
inner loop does no hashing and no allocation beyond small ints.

The worklist is a priority queue ordered by reverse-postorder index (of
the problem's direction), so forward problems process nodes in
topological-ish order and revisits stay cheap.  Monotone frameworks on
finite lattices have an order-independent fixpoint, so the result is
*identical* (after decoding) to the generic solver's -- the equivalence
tests assert exact equality against :func:`solve_dataflow` on every
problem.

:mod:`repro.dataflow.bitsets` compiles each concrete analysis (liveness,
reaching definitions, available/anticipatable expressions) down to a
:class:`BitsetProblem`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.perf.kernels import csr_rpo
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph


class BitsetProblem:
    """A dataflow problem compiled to per-node bitmasks.

    ``gen``/``kill`` are dense-node-indexed int masks.  ``kill_then_gen``
    selects ``(in & ~kill) | gen`` (liveness, reaching, anticipatable --
    a node that both computes and kills still exposes its own gen);
    otherwise ``(in | gen) & ~kill`` (available expressions).  The
    boundary vertex (start for forward problems, end for backward) has
    its meet input *replaced* by ``boundary_mask`` before the transfer
    is applied.
    """

    __slots__ = (
        "direction", "meet_is_union", "kill_then_gen",
        "gen", "kill", "boundary_mask", "initial_mask",
    )

    def __init__(
        self,
        direction: str,
        meet_is_union: bool,
        kill_then_gen: bool,
        gen: list[int],
        kill: list[int],
        boundary_mask: int,
        initial_mask: int,
    ) -> None:
        self.direction = direction
        self.meet_is_union = meet_is_union
        self.kill_then_gen = kill_then_gen
        self.gen = gen
        self.kill = kill
        self.boundary_mask = boundary_mask
        self.initial_mask = initial_mask


def solve_bitset(
    csr: "CSRGraph",
    problem: BitsetProblem,
    counter: WorkCounter | None = None,
) -> list[int]:
    """Fixpoint of ``problem`` over the snapshot; returns the fact mask
    per dense edge.

    Counters mirror the generic solver's: ``node_visits`` (worklist
    pops) and ``fact_updates`` (edge facts that changed).
    """
    csr.check()  # a stale snapshot would silently index the wrong shape
    n = csr.n
    if len(problem.gen) != n or len(problem.kill) != n:
        from repro.robust.errors import AnalysisError

        raise AnalysisError(
            f"bitset problem arity mismatch: gen/kill cover "
            f"{len(problem.gen)}/{len(problem.kill)} nodes, snapshot "
            f"has {n}",
            phase="solve-bitset",
        )
    forward = problem.direction == "forward"
    if forward:
        in_off, in_edge = csr.pred_off, csr.pred_edge
        out_off, out_edge = csr.succ_off, csr.succ_edge
        out_node = csr.succ_node
        root = csr.start
    else:
        in_off, in_edge = csr.succ_off, csr.succ_edge
        out_off, out_edge = csr.pred_off, csr.pred_edge
        out_node = csr.pred_node
        root = csr.end
    if root < 0:
        from repro.robust.errors import AnalysisError

        raise AnalysisError(
            "bitset solve on a snapshot with no "
            + ("start" if forward else "end")
            + " node",
            phase="solve-bitset",
        )

    rpo = csr_rpo(out_off, out_node, root, n)
    position = [0] * n
    for i, v in enumerate(rpo):
        position[v] = i

    gen, kill = problem.gen, problem.kill
    notkill = [~k for k in kill]
    union = problem.meet_is_union
    kill_then_gen = problem.kill_then_gen
    boundary_mask = problem.boundary_mask

    facts = [problem.initial_mask] * csr.m
    # Priority worklist: every reachable node, ordered by RPO index.
    heap = list(range(len(rpo)))
    in_queue = bytearray(n)
    for v in rpo:
        in_queue[v] = 1

    node_visits = 0
    fact_updates = 0
    while heap:
        v = rpo[heappop(heap)]
        in_queue[v] = 0
        node_visits += 1
        if v == root:
            combined = boundary_mask
        else:
            i0 = in_off[v]
            i1 = in_off[v + 1]
            if i0 == i1:
                combined = 0
            else:
                combined = facts[in_edge[i0]]
                if union:
                    for i in range(i0 + 1, i1):
                        combined |= facts[in_edge[i]]
                else:
                    for i in range(i0 + 1, i1):
                        combined &= facts[in_edge[i]]
        if kill_then_gen:
            out = (combined & notkill[v]) | gen[v]
        else:
            out = (combined | gen[v]) & notkill[v]
        for i in range(out_off[v], out_off[v + 1]):
            e = out_edge[i]
            if facts[e] != out:
                facts[e] = out
                fact_updates += 1
                w = out_node[i]
                if not in_queue[w]:
                    in_queue[w] = 1
                    heappush(heap, position[w])
    if counter is not None:
        counter.tick("node_visits", node_visits)
        counter.tick("fact_updates", fact_updates)
    return facts


#: byte value -> bit offsets set in it (decode helper).
_BYTE_BITS = [
    tuple(j for j in range(8) if b >> j & 1) for b in range(256)
]


class MaskDecoder:
    """Translates int masks back to shared frozensets over one universe.

    Facts repeat heavily across edges (and across analyses sharing a
    universe -- AV and ANT of the same graph produce many identical
    masks), so each distinct mask is decoded once and the frozenset
    shared via ``_cache``.  Decoding unions cached per-byte partial
    sets: a set union copies entries *with their stored hashes*, so each
    universe element's (potentially Python-level) ``__hash__`` runs O(1)
    times total instead of once per distinct mask containing it.

    Keep one decoder per universe and reuse it across solves to hit both
    caches; :func:`decode_masks` is the one-shot convenience wrapper.
    """

    __slots__ = ("universe", "_cache", "_parts")

    def __init__(self, universe: list) -> None:
        self.universe = universe
        self._cache: dict[int, frozenset] = {0: frozenset()}
        self._parts: dict[tuple[int, int], frozenset] = {}

    def decode(self, mask: int) -> frozenset:
        """The frozenset of universe elements whose bits are set."""
        value = self._cache.get(mask)
        if value is None:
            parts_cache = self._parts
            parts = []
            rest = mask
            k = 0
            # Chunk into 64-bit words: masks repeat whole words far more
            # often than they repeat wholesale, so the per-(position,
            # word) parts almost always hit the cache.
            while rest:
                word = rest & 0xFFFFFFFFFFFFFFFF
                if word:
                    key = (k, word)
                    part = parts_cache.get(key)
                    if part is None:
                        part = self._build_part(k * 64, word)
                        parts_cache[key] = part
                    parts.append(part)
                rest >>= 64
                k += 1
            value = frozenset().union(*parts)
            self._cache[mask] = value
        return value

    def _build_part(self, base: int, word: int) -> frozenset:
        universe = self.universe
        byte_bits = _BYTE_BITS
        items = []
        while word:
            b = word & 0xFF
            if b:
                for j in byte_bits[b]:
                    items.append(universe[base + j])
            word >>= 8
            base += 8
        return frozenset(items)

    def decode_all(
        self, facts: list[int], csr: "CSRGraph"
    ) -> dict[int, frozenset]:
        """Per-dense-edge masks -> ``{edge_id: frozenset}``."""
        cache = self._cache
        decode = self.decode
        edge_ids = csr.edge_ids
        result: dict[int, frozenset] = {}
        for e, mask in enumerate(facts):
            value = cache.get(mask)
            if value is None:
                value = decode(mask)
            result[edge_ids[e]] = value
        return result


def decode_masks(
    facts: list[int],
    csr: "CSRGraph",
    universe: list,
) -> dict[int, frozenset]:
    """One-shot decode of per-dense-edge masks to ``{edge_id: frozenset}``."""
    return MaskDecoder(universe).decode_all(facts, csr)
