"""Iterative array-based graph kernels over CSR adjacency.

Each kernel works on the raw ``(offsets, targets)`` pair so the same
code runs on a :class:`~repro.perf.csr.CSRGraph`'s successor arrays, its
predecessor arrays (for post-dominance), or the split graph of
Definition 2.  All state lives in flat integer lists indexed by dense
vertex number; there is no recursion, no dict probing and no per-visit
allocation in any inner loop.

The dominator kernel is the Cooper-Harvey-Kennedy iterative scheme over
reverse-postorder numbers -- the same algorithm as the legacy
:func:`repro.graphs.dominance.dominator_tree`, restated on arrays so the
``intersect`` walk is two ``list[int]`` chases instead of dict lookups.
"""

from __future__ import annotations

UNVISITED = -1


def csr_postorder(
    offsets: list[int], targets: list[int], root: int, total: int
) -> list[int]:
    """Postorder of the vertices reachable from ``root`` (iterative)."""
    state = [UNVISITED] * total  # UNVISITED, or next adjacency cursor
    order: list[int] = []
    append = order.append
    stack = [root]
    state[root] = offsets[root]
    while stack:
        v = stack[-1]
        cursor = state[v]
        end = offsets[v + 1]
        advanced = False
        while cursor < end:
            w = targets[cursor]
            cursor += 1
            if state[w] == UNVISITED:
                state[v] = cursor
                state[w] = offsets[w]
                stack.append(w)
                advanced = True
                break
        if not advanced:
            state[v] = cursor
            stack.pop()
            append(v)
    return order


def csr_rpo(
    offsets: list[int], targets: list[int], root: int, total: int
) -> list[int]:
    """Reverse postorder from ``root`` -- the canonical forward dataflow
    iteration order."""
    order = csr_postorder(offsets, targets, root, total)
    order.reverse()
    return order


def csr_dfs_classify(
    offsets: list[int],
    targets: list[int],
    edge_of: list[int],
    root: int,
    total: int,
) -> "CSRDFS":
    """Full DFS bookkeeping: pre/post clocks, parents, edge classes.

    ``edge_of[i]`` names the dense edge travelled by adjacency slot
    ``i``; the classification arrays are keyed by it.  Semantics match
    :func:`repro.graphs.dfs.depth_first_search`: a sortie ``u -> w`` is a
    tree edge when it discovers ``w``, a back edge when ``w`` is still
    open, a forward edge when ``w`` finished with a later preorder
    number, and a cross edge otherwise.
    """
    result = CSRDFS(total, len(edge_of))
    pre, post = result.pre, result.post
    parent, parent_edge = result.parent, result.parent_edge
    edge_class = result.edge_class
    preorder, postorder = result.preorder, result.postorder
    # 0 unvisited, 1 open, 2 done -- packed alongside the cursor.
    color = [0] * total
    cursor = [0] * total
    clock = 0

    color[root] = 1
    pre[root] = clock
    clock += 1
    preorder.append(root)
    cursor[root] = offsets[root]
    stack = [root]
    while stack:
        v = stack[-1]
        at = cursor[v]
        end = offsets[v + 1]
        advanced = False
        while at < end:
            w = targets[at]
            e = edge_of[at]
            at += 1
            c = color[w]
            if c == 0:
                color[w] = 1
                pre[w] = clock
                clock += 1
                preorder.append(w)
                parent[w] = v
                parent_edge[w] = e
                edge_class[e] = TREE
                cursor[v] = at
                cursor[w] = offsets[w]
                stack.append(w)
                advanced = True
                break
            if c == 1:
                edge_class[e] = BACK
                result.back.append(e)
            elif pre[w] > pre[v]:
                edge_class[e] = FORWARD
                result.forward.append(e)
            else:
                edge_class[e] = CROSS
                result.cross.append(e)
        if not advanced:
            cursor[v] = at
            stack.pop()
            color[v] = 2
            post[v] = clock
            clock += 1
            postorder.append(v)
    return result


#: Edge classification codes (match DFSResult's four lists).
TREE, BACK, FORWARD, CROSS = 0, 1, 2, 3
UNREACHED = -2


class CSRDFS:
    """Arrays produced by :func:`csr_dfs_classify`."""

    __slots__ = (
        "pre", "post", "parent", "parent_edge", "edge_class",
        "preorder", "postorder", "back", "forward", "cross",
    )

    def __init__(self, total: int, edges: int) -> None:
        self.pre = [UNVISITED] * total
        self.post = [UNVISITED] * total
        self.parent = [UNVISITED] * total
        self.parent_edge = [UNVISITED] * total
        self.edge_class = [UNREACHED] * edges
        self.preorder: list[int] = []
        self.postorder: list[int] = []
        #: Non-tree dense edges in encounter order (tree edges are
        #: recoverable in discovery order from ``preorder``/``parent``).
        self.back: list[int] = []
        self.forward: list[int] = []
        self.cross: list[int] = []


def csr_dominators(
    succ_off: list[int],
    succ_tgt: list[int],
    pred_off: list[int],
    pred_tgt: list[int],
    root: int,
    total: int,
) -> tuple[list[int], list[int]]:
    """Cooper-Harvey-Kennedy immediate dominators on CSR arrays.

    Returns ``(idom, rpo)``: ``idom[v]`` is the immediate dominator of
    dense vertex ``v`` (``root`` maps to itself, unreachable vertices to
    ``UNVISITED``), and ``rpo`` is the reverse postorder the fixpoint
    iterated over.
    """
    rpo = csr_rpo(succ_off, succ_tgt, root, total)
    position = [UNVISITED] * total
    for i, v in enumerate(rpo):
        position[v] = i
    idom = [UNVISITED] * total
    idom[root] = root

    changed = True
    while changed:
        changed = False
        for v in rpo:
            if v == root:
                continue
            new_idom = UNVISITED
            for i in range(pred_off[v], pred_off[v + 1]):
                p = pred_tgt[i]
                if position[p] == UNVISITED or idom[p] == UNVISITED:
                    continue
                if new_idom == UNVISITED:
                    new_idom = p
                else:
                    # intersect(new_idom, p) by RPO position.
                    a, b = new_idom, p
                    while a != b:
                        while position[a] > position[b]:
                            a = idom[a]
                        while position[b] > position[a]:
                            b = idom[b]
                    new_idom = a
            if new_idom != UNVISITED and idom[v] != new_idom:
                idom[v] = new_idom
                changed = True
    return idom, rpo
